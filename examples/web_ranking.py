"""Edge concentration and fast SimRank* on a web graph.

Generates an R-MAT web graph (the Web-Google stand-in), compresses
its in-neighbourhood structure via biclique concentration, and runs
the accuracy-matched algorithm comparison of Figure 6(e) in
miniature: memo-eSR* vs memo-gSR* vs iter-gSR* vs psum-SR.

Run:  python examples/web_ranking.py
"""

import time

import numpy as np

from repro.baselines import psum_simrank_fast
from repro.bigraph import compress_graph
from repro.core import (
    iterations_for_accuracy,
    memo_simrank_star_exponential,
    memo_simrank_star_factorized,
    simrank_star,
)
from repro.datasets import web_graph


def main() -> None:
    graph = web_graph(10, density=8.0, seed=9)  # 1024 pages
    print(f"web graph: {graph.num_nodes} pages, {graph.num_edges} links")

    compressed = compress_graph(graph)
    print(
        f"edge concentration: {graph.num_edges} -> "
        f"{compressed.num_edges} edges "
        f"({compressed.compression_ratio:.1%} saved, "
        f"{compressed.num_concentration_nodes} concentration nodes)"
    )

    epsilon = 1e-3
    k_geo = iterations_for_accuracy(0.6, epsilon, "geometric")
    k_exp = iterations_for_accuracy(0.6, epsilon, "exponential")
    print(f"\naccuracy eps = {epsilon}: K_geo = {k_geo}, K_exp = {k_exp}")

    runs = {
        "memo-eSR*": lambda: memo_simrank_star_exponential(
            graph, 0.6, k_exp, compressed=compressed
        ),
        "memo-gSR*": lambda: memo_simrank_star_factorized(
            graph, 0.6, k_geo, compressed=compressed
        ),
        "iter-gSR*": lambda: simrank_star(graph, 0.6, k_geo),
        "psum-SR": lambda: psum_simrank_fast(graph, 0.6, k_geo),
    }
    results = {}
    print(f"\n{'algorithm':10} {'seconds':>8}")
    for name, fn in runs.items():
        start = time.perf_counter()
        results[name] = fn()
        print(f"{name:10} {time.perf_counter() - start:8.3f}")

    drift = np.abs(results["memo-gSR*"] - results["iter-gSR*"]).max()
    print(f"\nmemo-gSR* == iter-gSR* (max diff {drift:.2e})")


if __name__ == "__main__":
    main()
