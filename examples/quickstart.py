"""Quickstart: SimRank* in five minutes.

Builds the paper's two worked examples — the Figure 1 citation graph
and the Figure 3 family tree — and shows the zero-SimRank problem and
how SimRank* fixes it.

Run:  python examples/quickstart.py
"""

from repro import simrank_star, top_k
from repro.baselines import simrank_matrix
from repro.core import path_contribution
from repro.graph import family_tree, figure1_citation_graph


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The zero-SimRank problem (Figure 1)
    # ------------------------------------------------------------------
    graph = figure1_citation_graph()
    c = 0.8
    simrank = simrank_matrix(graph, c, num_iterations=60)
    star = simrank_star(graph, c, num_iterations=60)

    h, d = graph.node_of("h"), graph.node_of("d")
    print("Papers h and d share the in-link source a via the path")
    print("h <- e <- a -> d, but the source is NOT in the middle:")
    print(f"  SimRank (h, d) = {simrank[h, d]:.3f}   <- blind to it")
    print(f"  SimRank*(h, d) = {star[h, d]:.3f}   <- sees it")

    # ------------------------------------------------------------------
    # 2. Top-k similar nodes without the full matrix
    # ------------------------------------------------------------------
    i = graph.node_of("i")
    print("\nTop-3 nodes most SimRank*-similar to paper 'i':")
    for node, score in top_k(graph, i, k=3, c=c, num_terms=30):
        print(f"  {graph.label_of(node)}: {score:.3f}")

    # ------------------------------------------------------------------
    # 3. Why symmetry matters (Figure 3)
    # ------------------------------------------------------------------
    tree = family_tree()
    tree_star = simrank_star(tree, c, num_iterations=80)

    def score(a: str, b: str) -> float:
        return tree_star[tree.node_of(a), tree.node_of(b)]

    print("\nFamily-tree intuition (all length-4 in-link paths):")
    print(f"  Me      ~ Cousin  : {score('Me', 'Cousin'):.4f}  (source centred)")
    print(f"  Uncle   ~ Son     : {score('Uncle', 'Son'):.4f}  (off-centre)")
    print(f"  Grandpa ~ Grandson: {score('Grandpa', 'Grandson'):.4f}  (one-directional)")
    print("\nPer-path contribution rates behind that ordering:")
    for label, l1, l2 in (("(2,2)", 2, 2), ("(1,3)", 1, 3), ("(0,4)", 0, 4)):
        print(f"  split {label}: {path_contribution(c, l1, l2):.4f}")


if __name__ == "__main__":
    main()
