"""Quickstart: SimRank* in five minutes.

Builds the paper's two worked examples — the Figure 1 citation graph
and the Figure 3 family tree — through the stateful
:class:`repro.SimilarityEngine`: construct it once per graph, then ask
for scores, top-k rankings and full matrices; the expensive shared
structure is built on the first query and reused by every later one,
and labels work everywhere (no hand-translating node ids).

Run:  python examples/quickstart.py
"""

from repro import SimilarityEngine
from repro.baselines import simrank_matrix
from repro.core import path_contribution
from repro.graph import family_tree, figure1_citation_graph


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The zero-SimRank problem (Figure 1)
    # ------------------------------------------------------------------
    graph = figure1_citation_graph()
    c = 0.8
    engine = SimilarityEngine(graph, measure="gSR*", c=c,
                              num_iterations=60)
    simrank = simrank_matrix(graph, c, num_iterations=60)

    h, d = graph.node_of("h"), graph.node_of("d")
    print("Papers h and d share the in-link source a via the path")
    print("h <- e <- a -> d, but the source is NOT in the middle:")
    print(f"  SimRank (h, d) = {simrank[h, d]:.3f}   <- blind to it")
    print(f"  SimRank*(h, d) = {engine.score('h', 'd'):.3f}   <- sees it")

    # ------------------------------------------------------------------
    # 2. Top-k similar nodes without the full matrix
    # ------------------------------------------------------------------
    # The engine reuses the transition matrix cached by the score()
    # call above and memoizes each query column, so follow-up queries
    # cost a dictionary lookup.
    print("\nTop-3 nodes most SimRank*-similar to paper 'i':")
    for entry in engine.top_k("i", k=3):
        print(f"  {entry.label}: {entry.score:.3f}")
    print(
        "(artifacts built once: "
        f"{engine.stats.transition_builds} transition build, "
        f"{engine.stats.column_computes} column walks)"
    )

    # ------------------------------------------------------------------
    # 3. Why symmetry matters (Figure 3)
    # ------------------------------------------------------------------
    tree_engine = SimilarityEngine(family_tree(), measure="gSR*", c=c,
                                   num_iterations=80)

    def score(a: str, b: str) -> float:
        return tree_engine.score(a, b)

    print("\nFamily-tree intuition (all length-4 in-link paths):")
    print(f"  Me      ~ Cousin  : {score('Me', 'Cousin'):.4f}  (source centred)")
    print(f"  Uncle   ~ Son     : {score('Uncle', 'Son'):.4f}  (off-centre)")
    print(f"  Grandpa ~ Grandson: {score('Grandpa', 'Grandson'):.4f}  (one-directional)")
    print("\nPer-path contribution rates behind that ordering:")
    for label, l1, l2 in (("(2,2)", 2, 2), ("(1,3)", 1, 3), ("(0,4)", 0, 4)):
        print(f"  split {label}: {path_contribution(c, l1, l2):.4f}")


if __name__ == "__main__":
    main()
