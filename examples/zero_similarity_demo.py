"""The zero-similarity problem, quantified.

Regenerates the paper's Figure 2 (which in-link path shapes each
measure counts), demonstrates Theorem 1 on the two-ray path example,
and runs the Figure 6(d) census on a citation network.

Run:  python examples/zero_similarity_demo.py
"""

from repro.analysis import zero_similarity_census
from repro.baselines import simrank_matrix
from repro.core import accommodated_path_shapes, simrank_star
from repro.datasets import citation_network
from repro.graph import two_ray_path


def main() -> None:
    # ------------------------------------------------------------------
    # Figure 2: path shapes counted per measure
    # ------------------------------------------------------------------
    print("Figure 2 — in-link path shapes (l1, l2) counted per measure:")
    print(f"{'len':>3}  {'SimRank':20} {'RWR':10} SimRank*")
    for length in range(1, 5):
        sr = accommodated_path_shapes("simrank", length) or ["none"]
        rw = accommodated_path_shapes("rwr", length)
        star = accommodated_path_shapes("simrank_star", length)
        print(f"{length:>3}  {str(sr):20} {str(rw):10} {star}")

    # ------------------------------------------------------------------
    # Theorem 1 on the two-ray path a_-3 <- ... <- a_0 -> ... -> a_3
    # ------------------------------------------------------------------
    graph = two_ray_path(3)
    sr = simrank_matrix(graph, 0.8, 60)
    star = simrank_star(graph, 0.8, 60)
    print("\nTwo-ray path, right-ray node 1 vs left-ray nodes (4, 5, 6):")
    print("(only node 4 sits at equal depth, so SimRank sees only it)")
    for v, depth in ((4, 1), (5, 2), (6, 3)):
        print(
            f"  depth 1 vs {depth}: SimRank = {sr[1, v]:.4f}   "
            f"SimRank* = {star[1, v]:.4f}"
        )

    # ------------------------------------------------------------------
    # Figure 6(d) census on a generated citation DAG
    # ------------------------------------------------------------------
    net = citation_network(500, avg_out_degree=8.0, seed=1)
    census = zero_similarity_census(net.graph)
    print("\nZero-similarity census on a 500-paper citation DAG:")
    for key, value in census.as_percentages().items():
        print(f"  {key:30} {value:6.2f}")


if __name__ == "__main__":
    main()
