"""Related-paper search on a citation network.

Generates a topical citation DAG (the CitHepTh stand-in), issues a
related-paper query through one :class:`repro.SimilarityEngine` per
measure (SimRank*, SimRank, RWR — same serving API, different
registry entries), and scores each result list against the planted
topical ground truth — a miniature version of the paper's Exp-1.

Run:  python examples/citation_analysis.py
"""

import numpy as np

from repro import SimilarityEngine
from repro.analysis import query_ground_truth
from repro.analysis.ranking import ndcg_for_scores
from repro.datasets import citation_network


def main() -> None:
    net = citation_network(
        num_papers=600, avg_out_degree=8.0, num_topics=6, seed=3
    )
    graph = net.graph
    print(f"citation DAG: {graph.num_nodes} papers, "
          f"{graph.num_edges} citations")

    # pick a mid-generation, well-cited paper as the query
    query = int(np.argmax(net.citation_counts[200:400])) + 200
    truth = query_ground_truth(net.topics, query)
    truth[query] = 0.0

    engines = {
        name: SimilarityEngine(graph, measure=name, c=0.6,
                               num_iterations=10)
        for name in ("gSR*", "SR", "RWR")
    }

    # ask for the query column *before* any full matrix exists, so the
    # engine serves it by the O(L^2 m) series walk — compared against
    # the full matrix below
    column = engines["gSR*"].single_source(query)
    assert engines["gSR*"].stats.column_computes == 1

    print(f"\nquery paper {query} "
          f"({net.citation_counts[query]} citations)")
    print(f"{'measure':10} {'NDCG@20':>8}  top-5 related papers")
    for name, engine in engines.items():
        # rank by row `query` of the score matrix: "how similar is
        # each candidate, seen from the query". For the symmetric
        # measures this equals engine.single_source(query); for the
        # asymmetric RWR the direction matters, so be explicit.
        pred = np.asarray(engine.matrix())[query].copy()
        pred[query] = -1.0
        quality = ndcg_for_scores(pred, truth, p=20)
        top = np.argsort(-pred)[:5]
        print(f"{name:10} {quality:8.3f}  {top.tolist()}")

    full = np.asarray(engines["gSR*"].matrix())[:, query]
    print(f"\nsingle-source column agrees with the full matrix: "
          f"max diff = {np.abs(column - full).max():.2e}")


if __name__ == "__main__":
    main()
