"""Related-paper search on a citation network.

Generates a topical citation DAG (the CitHepTh stand-in), issues a
related-paper query with SimRank*, SimRank, and RWR, and scores each
result list against the planted topical ground truth — a miniature
version of the paper's Exp-1.

Run:  python examples/citation_analysis.py
"""

import numpy as np

from repro import simrank_star, single_source
from repro.analysis import query_ground_truth
from repro.analysis.ranking import ndcg_for_scores
from repro.baselines import rwr, simrank_matrix
from repro.datasets import citation_network


def main() -> None:
    net = citation_network(
        num_papers=600, avg_out_degree=8.0, num_topics=6, seed=3
    )
    graph = net.graph
    print(f"citation DAG: {graph.num_nodes} papers, "
          f"{graph.num_edges} citations")

    # pick a mid-generation, well-cited paper as the query
    query = int(np.argmax(net.citation_counts[200:400])) + 200
    truth = query_ground_truth(net.topics, query)
    truth[query] = 0.0

    rankings = {
        "SimRank*": simrank_star(graph, 0.6, 10)[query],
        "SimRank": simrank_matrix(graph, 0.6, 10)[query],
        "RWR": rwr(graph, 0.6, 10)[query],
    }
    print(f"\nquery paper {query} "
          f"({net.citation_counts[query]} citations)")
    print(f"{'measure':10} {'NDCG@20':>8}  top-5 related papers")
    for name, scores in rankings.items():
        pred = scores.copy()
        pred[query] = -1.0
        quality = ndcg_for_scores(pred, truth, p=20)
        top = np.argsort(-pred)[:5]
        print(f"{name:10} {quality:8.3f}  {top.tolist()}")

    # single-source queries avoid the full n x n computation
    column = single_source(graph, query, c=0.6, num_terms=10)
    full = simrank_star(graph, 0.6, 10)[:, query]
    print(f"\nsingle-source column agrees with the full matrix: "
          f"max diff = {np.abs(column - full).max():.2e}")


if __name__ == "__main__":
    main()
