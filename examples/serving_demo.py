"""Serving demo: coalescing, result caching, and a mid-traffic hot-swap.

Stands up a `repro.serve.ServingService` over a random citation-style
graph, fires concurrent query traffic at it, and shows the three
things the serving layer adds on top of the engine:

1. **micro-batch coalescing** — 48 concurrent top-k requests collapse
   into a handful of blocked multi-source walks;
2. **versioned result caching** — a repeated round is answered without
   touching the kernel at all;
3. **snapshot hot-swap** — a graph mutation rebuilds the engine in the
   background and swaps it in while traffic keeps flowing, with zero
   failed requests.

It finishes by serving one query over real HTTP (stdlib client against
the stdlib server on an ephemeral port) — the same path
``python -m repro.serve serve`` exposes.
"""

import asyncio
import json
import urllib.request

from repro.graph import random_digraph
from repro.serve import ServingService, serve_http

GRAPH_NODES = 300
GRAPH_EDGES = 1800
CLIENTS = 48


async def demo(service: ServingService) -> None:
    # -- 1. coalescing: concurrent requests become a few batches -----
    rankings = await asyncio.gather(
        *(service.top_k(q, k=5) for q in range(CLIENTS))
    )
    stats = service.broker.stats
    print(f"round 1: {len(rankings)} concurrent top-k requests -> "
          f"{stats.batches} blocked walks "
          f"(largest batch {stats.largest_batch}, "
          f"mean {stats.mean_batch_size:.1f})")

    # -- 2. caching: the same round again is pure cache -------------
    again = await asyncio.gather(
        *(service.top_k(q, k=5) for q in range(CLIENTS))
    )
    print(f"round 2: identical round -> {stats.cache_hits} answers "
          f"straight from the versioned result cache "
          f"(batches still {stats.batches})")
    assert again == rankings

    # -- 3. hot-swap: mutate mid-traffic, nobody fails ---------------
    watched = 7
    before = await service.top_k(watched, k=3)
    traffic = asyncio.gather(
        *(service.top_k(q, k=5) for q in range(CLIENTS))
    )
    # build + swap happens off the event loop, like the HTTP endpoint
    snapshot = await asyncio.get_running_loop().run_in_executor(
        None,
        lambda: service.mutate(add=[(n, watched) for n in range(3)]),
    )
    await traffic  # the in-flight round finished on its old snapshot
    after = await service.top_k(watched, k=3)
    print(f"hot-swap: generation {snapshot.seq} swapped in "
          f"mid-traffic, {service.broker.stats.errors} failed "
          f"requests")
    print(f"  node {watched} top-3 before: "
          f"{[round(e.score, 4) for e in before]}")
    print(f"  node {watched} top-3 after:  "
          f"{[round(e.score, 4) for e in after]} "
          f"(three new in-links)")


def demo_http(service: ServingService) -> None:
    server = serve_http(service, port=0, background=True)
    try:
        request = urllib.request.Request(
            f"{server.url}/top_k",
            data=json.dumps({"query": 7, "k": 3}).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            document = json.loads(response.read())
        top = document["results"][0]
        print(f"HTTP: POST {server.url}/top_k -> top neighbour "
              f"{top['node']} (score {top['score']:.4f})")
    finally:
        server.stop()


def main() -> None:
    graph = random_digraph(GRAPH_NODES, GRAPH_EDGES, seed=7)
    service = ServingService(
        graph,
        measure="gSR*",
        num_iterations=8,
        max_batch=16,        # coalesce up to 16 requests per walk
        max_wait_ms=2.0,     # linger at most 2 ms for stragglers
        cache_entries=512,   # versioned LRU of rendered answers
    )
    print(f"serving {graph!r} with measure=gSR*")
    service.warmup()

    asyncio.run(_run_async(service))

    # the HTTP front end needs the service's background loop
    service.start_background()
    try:
        demo_http(service)
    finally:
        service.close()

    status = service.status()
    print(f"final: {status['broker']['requests']} requests, "
          f"{status['broker']['batches']} batches, "
          f"{status['cache']['hits']} cache hits, "
          f"{status['snapshots']['swaps']} snapshot swap(s)")


async def _run_async(service: ServingService) -> None:
    async with service:
        await demo(service)


if __name__ == "__main__":
    main()
