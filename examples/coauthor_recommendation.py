"""Collaborator recommendation on a co-authorship network.

Generates a DBLP-like co-authorship graph, recommends potential
collaborators with SimRank* (excluding existing co-authors), and
inspects the role consistency of the recommendations via H-index —
the Figure 6(b) analysis in miniature.

Run:  python examples/coauthor_recommendation.py
"""

import numpy as np

from repro import SimilarityEngine
from repro.analysis import top_pair_attribute_difference
from repro.datasets import coauthor_network


def main() -> None:
    net = coauthor_network(
        num_authors=400, papers_per_author=2.2, num_topics=8, seed=5
    )
    graph = net.graph
    print(
        f"co-authorship graph: {graph.num_nodes} authors, "
        f"{net.num_undirected_edges} collaborations"
    )

    engine = SimilarityEngine(graph, measure="gSR*", c=0.6,
                              num_iterations=10)

    # recommend for the most prolific author; existing co-authors are
    # excluded directly by the engine's top-k
    author = int(np.argmax(net.h_indices))
    recommendations = engine.top_k(
        author, k=5, exclude=graph.out_neighbors(author)
    )
    print(f"\nauthor {author} (H-index {net.h_indices[author]})")
    print("top-5 recommended new collaborators (id, score, H-index):")
    for entry in recommendations:
        print(
            f"  {entry.node:4d}  score={entry.score:.4f}  "
            f"H-index={net.h_indices[entry.node]}"
        )

    scores = np.asarray(engine.matrix())

    # are highly similar pairs role-consistent?
    gaps = top_pair_attribute_difference(
        scores, net.h_indices, fractions=(0.001, 0.01)
    )
    print("\nrole consistency (avg |H-index| difference):")
    print(f"  top 0.1% similar pairs: {gaps[0.001]:.2f}")
    print(f"  top 1%   similar pairs: {gaps[0.01]:.2f}")
    print(f"  random pairs          : {gaps['random']:.2f}")


if __name__ == "__main__":
    main()
