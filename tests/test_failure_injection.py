"""Failure injection: corrupted structures must be detected, and the
public API must reject inconsistent inputs loudly."""

import numpy as np
import pytest

from repro.bigraph import (
    Biclique,
    CompressedGraph,
    compress_graph,
    mine_bicliques,
)
from repro.bigraph.induced import InducedBigraph, induced_bigraph
from repro.core import simrank_star_fixed_point_residual, simrank_star
from repro.graph import DiGraph, figure1_citation_graph, random_digraph


class TestCompressedGraphValidation:
    def test_validate_catches_phantom_biclique(self):
        # a biclique claiming edges the graph does not have
        g = DiGraph(4, edges=[(0, 2), (0, 3), (1, 2)])  # (1,3) missing
        phantom = Biclique(frozenset({0, 1}), frozenset({2, 3}))
        corrupted = CompressedGraph(
            graph=g,
            bicliques=(phantom,),
            direct_tops={2: frozenset(), 3: frozenset()},
            hub_memberships={2: frozenset({0}), 3: frozenset({0})},
        )
        with pytest.raises(AssertionError):
            corrupted.validate()

    def test_validate_catches_dropped_edge(self):
        g = DiGraph(3, edges=[(0, 2), (1, 2)])
        corrupted = CompressedGraph(
            graph=g,
            bicliques=(),
            direct_tops={2: frozenset({0})},  # edge (1, 2) lost
            hub_memberships={2: frozenset()},
        )
        with pytest.raises(AssertionError):
            corrupted.validate()

    def test_validate_catches_double_counted_edge(self):
        g = figure1_citation_graph()
        good = compress_graph(g)
        # re-add a concentrated edge as a direct edge
        biclique = good.bicliques[0]
        victim = next(iter(biclique.bottoms))
        extra = next(iter(biclique.tops))
        tampered_direct = dict(good.direct_tops)
        tampered_direct[victim] = tampered_direct[victim] | {extra}
        corrupted = CompressedGraph(
            graph=g,
            bicliques=good.bicliques,
            direct_tops=tampered_direct,
            hub_memberships=good.hub_memberships,
        )
        with pytest.raises(AssertionError):
            corrupted.validate()


class TestResidualDiagnostic:
    def test_residual_flags_wrong_matrix(self):
        g = random_digraph(10, 30, seed=0)
        wrong = np.eye(10)  # not the fixed point
        assert simrank_star_fixed_point_residual(g, wrong, 0.6) > 0.1

    def test_residual_accepts_right_matrix(self):
        g = random_digraph(10, 30, seed=1)
        s = simrank_star(g, 0.6, 150)
        assert simrank_star_fixed_point_residual(g, s, 0.6) < 1e-12


class TestMinerRobustness:
    def test_empty_bigraph(self):
        assert mine_bicliques(induced_bigraph(DiGraph(5))) == []

    def test_single_bottom_node_cannot_form_biclique(self):
        g = DiGraph(4, edges=[(0, 3), (1, 3), (2, 3)])
        assert mine_bicliques(induced_bigraph(g)) == []

    def test_hand_built_bigraph(self):
        # two bottoms sharing three tops: one obvious biclique
        bigraph = InducedBigraph(
            top=(0, 1, 2),
            bottom=(3, 4),
            in_sets={3: frozenset({0, 1, 2}), 4: frozenset({0, 1, 2})},
        )
        found = mine_bicliques(bigraph)
        assert len(found) == 1
        assert found[0].tops == frozenset({0, 1, 2})
        assert found[0].bottoms == frozenset({3, 4})
        assert found[0].saving == 1

    def test_zero_saving_block_rejected(self):
        # a 2x2 block saves nothing (4 edges -> 4 edges): must be skipped
        bigraph = InducedBigraph(
            top=(0, 1),
            bottom=(2, 3),
            in_sets={2: frozenset({0, 1}), 3: frozenset({0, 1})},
        )
        assert mine_bicliques(bigraph) == []

    def test_tiny_seeding_cap_still_correct(self):
        g = figure1_citation_graph()
        compressed = compress_graph(g, max_set_size_for_seeding=2)
        compressed.validate()
        assert compressed.num_edges <= g.num_edges


class TestApiInputRejection:
    def test_square_matrix_required(self):
        from repro.analysis import grouped_similarity

        with pytest.raises(ValueError, match="square"):
            grouped_similarity(np.ones((2, 3)), np.ones(2))

    def test_attribute_length_checked(self):
        from repro.analysis import top_pair_attribute_difference

        with pytest.raises(ValueError, match="length"):
            top_pair_attribute_difference(np.ones((3, 3)), np.ones(5))

    def test_memo_rejects_foreign_compressed_graph(self):
        # a compressed graph built for another topology produces
        # wrong results; the factorization check catches the mismatch
        g1 = random_digraph(10, 30, seed=2)
        g2 = random_digraph(10, 30, seed=3)
        foreign = compress_graph(g2)
        from repro.core import memo_simrank_star_factorized

        ours = memo_simrank_star_factorized(g1, 0.6, 5)
        theirs = memo_simrank_star_factorized(
            g1, 0.6, 5, compressed=foreign
        )
        # the API trusts the caller here; this documents the hazard —
        # results differ, and validate() exposes it
        assert not np.allclose(ours, theirs)
        with pytest.raises(AssertionError):
            CompressedGraph(
                graph=g1,
                bicliques=foreign.bicliques,
                direct_tops=foreign.direct_tops,
                hub_memberships=foreign.hub_memberships,
            ).validate()
