"""Tests for the ``python -m repro.bench`` regression harness."""

import json

import pytest

from repro.bench import BenchCase, compare_runs, run_suite
from repro.bench.runner import run_case
from repro.bench.__main__ import main

# A workload small enough for the test suite; the CLI structure is the
# same at every size.
TINY = [
    "--nodes", "60", "--edges", "240", "--queries", "8",
    "--num-terms", "4", "--allpairs-nodes", "40",
    "--allpairs-edges", "160", "--repeat", "1", "--warmup", "0",
]


def run_tiny(tmp_path, *extra):
    out = tmp_path / "BENCH_test.json"
    code = main(
        ["--quick", "--tag", "test", "--output", str(out), *TINY, *extra]
    )
    return code, out


class TestCli:
    def test_writes_valid_json(self, tmp_path, capsys):
        code, out = run_tiny(tmp_path)
        assert code == 0
        document = json.loads(out.read_text())
        assert document["schema"] == 1
        assert document["tag"] == "test"
        assert document["params"]["nodes"] == 60
        assert document["machine"]["numpy"]
        results = document["results"]
        for case in (
            "build_transition",
            "single_source_reference",
            "batch_per_query_loop",
            "batch_blocked_kernel",
            "engine_batch_top_k",
            "allpairs_iter_gsr",
        ):
            assert case in results
            assert results[case]["seconds_min"] > 0
            assert results[case]["peak_bytes"] >= 0
        assert "speedup_blocked_vs_loop" in document["derived"]

    def test_no_write(self, tmp_path, capsys):
        out = tmp_path / "BENCH_x.json"
        code = main(
            ["--quick", "--output", str(out), "--no-write", *TINY]
        )
        assert code == 0
        assert not out.exists()

    def test_compare_against_itself_passes(self, tmp_path, capsys):
        code, out = run_tiny(tmp_path)
        assert code == 0
        # speedup floor lowered (at this tiny scale the blocked
        # kernel's advantage is overhead-dominated) and the threshold
        # widened: every tiny-workload case is microsecond-scale,
        # where run-to-run jitter is unbounded
        code, _ = run_tiny(
            tmp_path, "--compare", str(out), "--speedup-floor", "0.01",
            "--threshold", "1000",
        )
        assert code == 0
        assert "no regression" in capsys.readouterr().out

    def test_compare_detects_regression(self, tmp_path, capsys):
        code, out = run_tiny(tmp_path)
        assert code == 0
        doctored = json.loads(out.read_text())
        for case in doctored["results"].values():
            case["seconds_min"] /= 1e6  # impossible baseline
        baseline = tmp_path / "BENCH_doctored.json"
        baseline.write_text(json.dumps(doctored))
        # --min-gate-ms 0 keeps the sub-ms doctored times gated
        code, _ = run_tiny(
            tmp_path, "--compare", str(baseline),
            "--speedup-floor", "0.01", "--min-gate-ms", "0",
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_compare_missing_baseline(self, tmp_path, capsys):
        code, _ = run_tiny(
            tmp_path, "--compare", str(tmp_path / "nope.json")
        )
        assert code == 2

    def test_float32_suite_runs(self, tmp_path, capsys):
        code, out = run_tiny(tmp_path, "--dtype", "float32")
        assert code == 0
        assert json.loads(out.read_text())["params"]["dtype"] == "float32"


class TestRunner:
    def test_run_case_counts_repeats(self):
        calls = []
        case = BenchCase(
            "probe", lambda: (1,), lambda x: calls.append(x)
        )
        result = run_case(case, warmup=2, repeat=3)
        # 2 warmup + 3 timed + 1 tracemalloc
        assert len(calls) == 6
        assert len(result.seconds) == 3
        assert result.seconds_min <= result.seconds_mean

    def test_fresh_state_reruns_setup(self):
        built = []

        def setup():
            built.append(1)
            return (len(built),)

        case = BenchCase("probe", setup, lambda x: x, fresh_state=True)
        run_case(case, warmup=1, repeat=2)
        assert len(built) == 4  # warmup + 2 repeats + tracemalloc

    def test_run_case_rejects_zero_repeats(self):
        case = BenchCase("probe", lambda: (), lambda: None)
        with pytest.raises(ValueError):
            run_case(case, repeat=0)

    def test_run_suite_and_compare_roundtrip(self):
        cases = [
            BenchCase("a", lambda: (), lambda: sum(range(100))),
            BenchCase("b", lambda: (), lambda: sum(range(100))),
        ]
        run = run_suite(
            cases, tag="t", params={}, warmup=0, repeat=1
        )
        document = run.to_dict()
        ok, lines = compare_runs(document, document, threshold=3.0)
        assert ok
        assert len(lines) == 2
        # a missing case fails the gate
        shrunk = json.loads(json.dumps(document))
        del shrunk["results"]["b"]
        ok, lines = compare_runs(shrunk, document)
        assert not ok
        assert any("missing" in line for line in lines)

    def test_compare_skips_sub_ms_cases_by_default(self):
        document = {
            "results": {"fast": {"seconds_min": 1e-5}},
            "derived": {},
        }
        slower = {
            "results": {"fast": {"seconds_min": 1e-3}},
            "derived": {},
        }
        ok, lines = compare_runs(slower, document, threshold=3.0)
        assert ok  # 100x slower but sub-ms baseline: not gated
        assert any("not gated" in line for line in lines)
        ok, _ = compare_runs(
            slower, document, threshold=3.0, min_gate_seconds=0.0
        )
        assert not ok


class TestListFlag:
    def test_list_enumerates_cases_without_running(self, tmp_path, capsys):
        code = main(["--list"])
        assert code == 0
        out = capsys.readouterr().out
        for case in (
            "build_transition",
            "batch_blocked_kernel",
            "engine_batch_top_k",
            "serving_load",
        ):
            assert case in out
        # nothing was written
        assert not list(tmp_path.glob("BENCH_*.json"))

    def test_list_wins_over_run_flags(self, tmp_path, capsys):
        out_file = tmp_path / "BENCH_x.json"
        code = main(["--list", "--tag", "x", "--output", str(out_file)])
        assert code == 0
        assert not out_file.exists()


class TestServingLoad:
    def test_serve_flag_embeds_serving_document(self, tmp_path, capsys):
        code, out = run_tiny(
            tmp_path, "--serve", "--clients", "4",
            "--requests-per-client", "2", "--max-wait-ms", "1.0",
        )
        assert code == 0
        document = json.loads(out.read_text())
        serving = document["serving"]
        assert serving["params"]["clients"] == 4
        assert serving["params"]["total_requests"] == 8
        assert serving["sequential"]["requests_per_second"] > 0
        assert serving["coalesced"]["requests_per_second"] > 0
        assert serving["speedup_throughput"] > 0
        latency = serving["coalesced"]["latency"]
        assert latency["count"] == 8
        assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]
        assert sum(latency["histogram"].values()) == 8
        assert serving["broker"]["dispatched"] >= 8

    def test_loadgen_latency_stats(self):
        from repro.bench.loadgen import LatencyStats

        stats = LatencyStats.from_seconds(
            [0.001, 0.002, 0.004, 0.1]
        )
        assert stats.count == 4
        assert stats.p50_ms <= stats.p95_ms <= stats.p99_ms
        assert stats.max_ms == pytest.approx(100.0)
        assert sum(stats.histogram.values()) == 4
        assert stats.histogram["<2ms"] == 1     # the 1.0 ms sample
        assert stats.histogram["<4ms"] == 1     # the 2.0 ms sample
        assert stats.histogram["<128ms"] == 1   # the 100 ms sample

    def test_loadgen_rejects_empty_samples(self):
        from repro.bench.loadgen import LatencyStats

        with pytest.raises(ValueError):
            LatencyStats.from_seconds([])
