"""Tests for :mod:`repro.cluster` — sharded serving, failure paths.

The expensive part of every test here is forking workers (``spawn``
context: a fresh interpreter + numpy import per worker), so the
happy-path tests share one module-scoped router; the failure-injection
and hot-swap tests build their own, on deliberately small graphs.
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.cluster import (
    ClusterError,
    ShardRouter,
    WorkerPool,
    graph_from_payload,
    graph_to_payload,
)
from repro.engine import SimilarityConfig, SimilarityEngine
from repro.graph.generators import random_digraph
from repro.index.artifacts import graph_fingerprint
from repro.serve import ServingService, SnapshotManager

CONFIG = SimilarityConfig(measure="gSR*", c=0.6, num_iterations=8)


@pytest.fixture(scope="module")
def cluster_env():
    """A started 2-worker router over a 300-node graph."""
    graph = random_digraph(300, 1800, seed=7)
    snapshots = SnapshotManager(graph, CONFIG)
    router = ShardRouter(WorkerPool(workers=2), snapshots)
    router.start()
    yield graph, snapshots, router
    router.stop()


@pytest.fixture(scope="module")
def reference_engine(cluster_env):
    graph, _, _ = cluster_env
    return SimilarityEngine(graph, CONFIG)


# ---------------------------------------------------------------------------
# payloads (no processes involved)
# ---------------------------------------------------------------------------
def test_graph_payload_roundtrip_preserves_digest():
    graph = random_digraph(60, 240, seed=3)
    rebuilt = graph_from_payload(graph_to_payload(graph))
    assert rebuilt == graph
    assert (
        graph_fingerprint(rebuilt)["digest"]
        == graph_fingerprint(graph)["digest"]
    )


def test_labels_survive_payload_roundtrip():
    from repro.graph import figure1_citation_graph

    graph = figure1_citation_graph()
    rebuilt = graph_from_payload(graph_to_payload(graph))
    assert rebuilt.labels == graph.labels


def test_pool_rejects_bad_worker_count():
    with pytest.raises(ValueError, match="workers"):
        WorkerPool(workers=0)


def test_router_compute_requires_start():
    snapshots = SnapshotManager(random_digraph(20, 60, seed=1), CONFIG)
    router = ShardRouter(WorkerPool(workers=1), snapshots)
    with pytest.raises(ClusterError, match="not started"):
        router.compute(0, [0, 1])


# ---------------------------------------------------------------------------
# sharded serving: parity + distribution
# ---------------------------------------------------------------------------
def test_sharded_columns_match_in_process_engine(
    cluster_env, reference_engine
):
    _, _, router = cluster_env
    snapshot = router.pin()
    try:
        ids = list(range(0, 40))
        columns = router.compute(snapshot.seq, ids)
    finally:
        router.unpin(snapshot.seq)
    assert sorted(columns) == ids
    for q in ids:
        np.testing.assert_array_equal(
            columns[q], reference_engine.single_source(q)
        )


def test_batch_is_sharded_across_every_worker(cluster_env):
    _, _, router = cluster_env
    snapshot = router.pin()
    try:
        router.compute(snapshot.seq, list(range(100, 140)))
    finally:
        router.unpin(snapshot.seq)
    status = router.pool.worker_status()
    assert all(w["alive"] for w in status)
    assert all(w["shards_served"] >= 1 for w in status)
    assert router.shards_dispatched >= 2


def test_small_batches_rotate_across_workers(cluster_env):
    """Size-1 batches must not all land on worker 0 (round-robin)."""
    _, _, router = cluster_env
    before = [
        w["shards_served"] for w in router.pool.worker_status()
    ]
    snapshot = router.pin()
    try:
        for q in range(60, 60 + 2 * router.pool.size):
            router.compute(snapshot.seq, [q])
    finally:
        router.unpin(snapshot.seq)
    after = [
        w["shards_served"] for w in router.pool.worker_status()
    ]
    assert all(b > a for a, b in zip(before, after)), (
        "single-query batches were not rotated across the pool"
    )


def test_duplicate_and_empty_batches(cluster_env):
    _, _, router = cluster_env
    snapshot = router.pin()
    try:
        columns = router.compute(snapshot.seq, [5, 5, 9, 5])
        assert sorted(columns) == [5, 9]
        assert router.compute(snapshot.seq, []) == {}
    finally:
        router.unpin(snapshot.seq)


# ---------------------------------------------------------------------------
# worker failure: killed workers respawn, requests never drop
# ---------------------------------------------------------------------------
def test_killed_worker_is_respawned_and_shard_retried(cluster_env):
    _, _, router = cluster_env
    before = router.pool.describe()["respawns"]
    router.pool.kill_worker(0)
    snapshot = router.pin()
    try:
        columns = router.compute(snapshot.seq, list(range(150, 190)))
    finally:
        router.unpin(snapshot.seq)
    assert sorted(columns) == list(range(150, 190))
    assert router.pool.describe()["respawns"] == before + 1
    assert router.shard_retries >= 1
    assert all(w["alive"] for w in router.pool.worker_status())


def test_kill_mid_batch_request_still_completes(cluster_env):
    _, _, router = cluster_env
    before = router.pool.describe()["respawns"]
    ids = list(range(190, 260))
    killer = threading.Thread(
        target=lambda: (time.sleep(0.005),
                        router.pool.kill_worker(1))
    )
    snapshot = router.pin()
    try:
        killer.start()
        first = router.compute(snapshot.seq, ids)
        killer.join()
        # whether the kill landed mid-shard or between batches, the
        # next batch must route through a healthy (respawned) worker
        second = router.compute(snapshot.seq, list(range(260, 290)))
    finally:
        router.unpin(snapshot.seq)
    assert sorted(first) == ids
    assert sorted(second) == list(range(260, 290))
    assert router.pool.describe()["respawns"] >= before + 1


# ---------------------------------------------------------------------------
# hot-swap: two-phase propagation, abort-on-failure, corrupt index
# ---------------------------------------------------------------------------
@pytest.fixture()
def swap_env():
    graph = random_digraph(120, 600, seed=11)
    snapshots = SnapshotManager(graph, CONFIG)
    router = ShardRouter(WorkerPool(workers=2), snapshots)
    snapshots.pre_swap = router.pre_swap
    snapshots.post_swap = router.post_swap
    router.start()
    yield graph, snapshots, router
    router.stop()


def test_two_phase_swap_propagates_to_all_workers(swap_env):
    _, snapshots, router = swap_env
    base_seq = snapshots.current.seq
    snapshot = router.pin()
    old_columns = router.compute(snapshot.seq, [3])
    router.unpin(snapshot.seq)

    fresh = snapshots.mutate(add=[(0, 3), (1, 3), (2, 3)])
    assert fresh.seq == base_seq + 1
    status = router.pool.worker_status()
    assert all(w["current_seq"] == fresh.seq for w in status)

    pinned = router.pin()
    try:
        assert pinned.seq == fresh.seq
        new_columns = router.compute(pinned.seq, [3])
    finally:
        router.unpin(pinned.seq)
    # the mutation gave node 3 new in-links: its column must change
    assert not np.array_equal(new_columns[3], old_columns[3])
    expected = SimilarityEngine(
        fresh.graph, CONFIG
    ).single_source(3)
    np.testing.assert_array_equal(new_columns[3], expected)
    # the drained old generation is released from the workers
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        gens = [
            w["generations"] for w in router.pool.worker_status()
        ]
        if all(g == [fresh.seq] for g in gens):
            break
        time.sleep(0.05)
    assert all(g == [fresh.seq] for g in gens)


def test_failed_prepare_aborts_swap_and_old_snapshot_serves(
    swap_env, monkeypatch
):
    _, snapshots, router = swap_env
    base = snapshots.current

    def broken_prepare(snapshot):
        raise ClusterError("injected: workers cannot prepare")

    monkeypatch.setattr(router.pool, "prepare", broken_prepare)
    with pytest.raises(ClusterError, match="injected"):
        snapshots.mutate(add=[(0, 5)])
    # no swap happened; the old generation still answers queries
    assert snapshots.current is base
    snapshot = router.pin()
    try:
        columns = router.compute(snapshot.seq, [0, 1, 2])
    finally:
        router.unpin(snapshot.seq)
    assert sorted(columns) == [0, 1, 2]


def test_aborted_prepare_unregisters_the_failed_generation(
    swap_env, monkeypatch
):
    """A failed swap must not poison later respawns with a bad gen."""
    _, snapshots, router = swap_env
    pool = router.pool

    def failing_prepare_worker(self, worker, seq):
        raise ClusterError("injected: prepare_failed")

    monkeypatch.setattr(
        WorkerPool, "_prepare_worker", failing_prepare_worker
    )
    with pytest.raises(ClusterError, match="injected"):
        snapshots.mutate(add=[(0, 5)])
    monkeypatch.undo()
    # the failed generation is gone from the replay set and disk
    assert pool.describe()["generations"] == [0]
    assert not pool.generation_path(1).exists()
    # crash recovery replays only healthy generations
    pool.kill_worker(0)
    snapshot = router.pin()
    try:
        columns = router.compute(snapshot.seq, [0, 1, 2, 3])
    finally:
        router.unpin(snapshot.seq)
    assert sorted(columns) == [0, 1, 2, 3]


def test_respawn_refused_after_stop():
    snapshots = SnapshotManager(
        random_digraph(30, 90, seed=2), CONFIG
    )
    router = ShardRouter(WorkerPool(workers=1), snapshots)
    router.start()
    router.stop()
    with pytest.raises(ClusterError, match="stopped"):
        router.pool.respawn(0)


def test_corrupt_index_mid_swap_falls_back_to_worker_rebuild(
    swap_env, monkeypatch
):
    _, snapshots, router = swap_env
    pool = router.pool
    # force the full-index path: the scenario under test is a corrupt
    # gen-<seq>.simidx container, which delta swaps never write
    snapshots.delta_mode = "off"
    register = WorkerPool._register_generation

    def corrupting_register(self, snapshot):
        payload = register(self, snapshot)
        # scribble over the persisted container *after* the parent
        # wrote it and *before* any worker maps it — the worst-timed
        # corruption a real deployment could see
        self.generation_path(snapshot.seq).write_bytes(
            b"not a simidx file"
        )
        return payload

    monkeypatch.setattr(
        WorkerPool, "_register_generation", corrupting_register
    )
    fresh = snapshots.mutate(add=[(0, 7), (1, 7)])
    # the swap still completed: workers rebuilt from the shipped
    # graph instead of the corrupt file, and serve the new content
    status = pool.worker_status()
    assert all(w["current_seq"] == fresh.seq for w in status)
    assert sum(w["prepare_rebuilds"] for w in status) >= 2
    snapshot = router.pin()
    try:
        columns = router.compute(snapshot.seq, [7])
    finally:
        router.unpin(snapshot.seq)
    expected = SimilarityEngine(
        fresh.graph, CONFIG
    ).single_source(7)
    np.testing.assert_array_equal(columns[7], expected)


# ---------------------------------------------------------------------------
# the full service: concurrent traffic + mutation, zero failures
# ---------------------------------------------------------------------------
def test_service_with_workers_serves_and_swaps_mid_traffic():
    graph = random_digraph(120, 600, seed=13)
    service = ServingService(
        graph,
        CONFIG,
        workers=2,
        max_batch=16,
        max_wait_ms=1.0,
        cache_entries=0,
    )

    async def drive():
        async with service:
            loop = asyncio.get_running_loop()
            first = asyncio.gather(
                *(service.top_k(q, k=5) for q in range(40))
            )
            # hot-swap while those queries are in flight
            mutated = loop.run_in_executor(
                None, service.mutate, [(0, 9), (1, 9)]
            )
            rankings = await first
            fresh = await mutated
            after = await asyncio.gather(
                *(service.top_k(q, k=5) for q in range(40, 60))
            )
            return rankings, fresh, after, service.status()

    rankings, fresh, after, status = asyncio.run(drive())
    assert len(rankings) == 40 and len(after) == 20
    assert all(len(r) == 5 for r in rankings + after)
    assert fresh.seq == 1
    assert status["broker"]["errors"] == 0
    cluster = status["cluster"]
    assert cluster["pool"]["workers"] == 2
    assert cluster["shards_dispatched"] > 0
    assert all(
        w["current_seq"] == fresh.seq
        for w in cluster["worker_status"]
        if w["alive"]
    )
    service.close()


def test_cluster_mirrors_index_to_manager_path(tmp_path):
    """workers=K + index_path: one serialisation per generation.

    The pool writes the generation file; the manager's ``index_path``
    gets a cheap mirrored copy (not a second full export). A small
    mutation rides the delta path: the base file stays untouched and
    a chained segment lands beside it, and the chain must
    fingerprint-match the *served* graph after the mutation — a
    restarted manager warm-loads base + segment without rebuilding.
    """
    from repro.index import SimilarityIndex
    from repro.index.delta import delta_sibling_path

    graph = random_digraph(80, 400, seed=19)
    path = tmp_path / "g.simidx"
    service = ServingService(
        graph, CONFIG, workers=1, cache_entries=0,
        index_path=str(path),
    )
    service.start_background()
    try:
        assert path.exists()  # mirrored at pool start
        saves_after_start = service.snapshots.index_saves
        base_graph = service.snapshots.current.graph.copy()
        fresh = service.mutate(add=[(0, 9)])
        # the delta swap leaves the base container alone and chains
        # one persisted segment beside it
        base = SimilarityIndex.load(path)
        assert base.matches(base_graph, service.config)
        assert delta_sibling_path(path, 1).exists()
        # exactly one more persist per mutation (the segment)
        assert service.snapshots.index_saves == saves_after_start + 1
        # the persisted chain matches the served graph: a restart
        # over the mutated content warm-loads instead of rebuilding
        restarted = SnapshotManager(
            fresh.graph.copy(), CONFIG, index_path=path
        )
        assert restarted.index_loads == 1
        assert restarted.delta_segments_loaded == 1
    finally:
        service.close()


def test_service_background_sync_with_workers():
    graph = random_digraph(80, 400, seed=17)
    service = ServingService(
        graph, CONFIG, workers=1, cache_entries=0
    )
    service.start_background()
    try:
        ranking = service.top_k_sync(4, k=3)
        assert len(ranking) == 3
        score = service.score_sync(2, 3)
        expected = SimilarityEngine(graph, CONFIG).score(2, 3)
        assert score == pytest.approx(expected, abs=1e-12)
        assert service.status()["cluster"]["pool"]["started"]
    finally:
        service.close()
    assert not service.cluster.started
