"""Tests for the sparse matrix views (A, Q, W)."""

import numpy as np
import pytest

from repro.graph import (
    DiGraph,
    adjacency_matrix,
    backward_transition_matrix,
    figure1_citation_graph,
    forward_transition_matrix,
    row_normalize,
)


@pytest.fixture
def diamond():
    return DiGraph(4, edges=[(0, 1), (0, 2), (1, 3), (2, 3)])


class TestAdjacency:
    def test_entries_follow_paper_convention(self, diamond):
        a = adjacency_matrix(diamond).toarray()
        # [A]_{ij} = 1 iff edge i -> j
        expected = np.array(
            [
                [0, 1, 1, 0],
                [0, 0, 0, 1],
                [0, 0, 0, 1],
                [0, 0, 0, 0],
            ],
            dtype=float,
        )
        np.testing.assert_array_equal(a, expected)

    def test_power_counts_paths(self, diamond):
        # [A^2]_{0,3} = 2: the two length-2 paths 0->1->3 and 0->2->3.
        a = adjacency_matrix(diamond)
        a2 = (a @ a).toarray()
        assert a2[0, 3] == 2

    def test_empty_graph(self):
        a = adjacency_matrix(DiGraph(3))
        assert a.shape == (3, 3)
        assert a.nnz == 0


class TestRowNormalize:
    def test_rows_sum_to_one_or_zero(self, diamond):
        q = row_normalize(adjacency_matrix(diamond))
        sums = np.asarray(q.sum(axis=1)).ravel()
        np.testing.assert_allclose(sums, [1.0, 1.0, 1.0, 0.0])

    def test_zero_rows_preserved(self):
        g = DiGraph(2, edges=[(0, 1)])
        w = row_normalize(adjacency_matrix(g))
        assert w.toarray()[1].sum() == 0.0

    def test_does_not_mutate_input(self, diamond):
        a = adjacency_matrix(diamond)
        before = a.toarray().copy()
        row_normalize(a)
        np.testing.assert_array_equal(a.toarray(), before)


class TestBackwardTransition:
    def test_entries(self, diamond):
        q = backward_transition_matrix(diamond).toarray()
        # [Q]_{ij} = 1/|I(i)| iff j -> i.  I(3) = {1, 2}.
        assert q[3, 1] == 0.5
        assert q[3, 2] == 0.5
        assert q[1, 0] == 1.0
        # node 0 has no in-edges -> zero row
        assert q[0].sum() == 0.0

    def test_rows_stochastic_where_in_edges_exist(self):
        g = figure1_citation_graph()
        q = backward_transition_matrix(g).toarray()
        in_deg = g.in_degrees()
        sums = q.sum(axis=1)
        for v in g.nodes():
            if in_deg[v] > 0:
                assert sums[v] == pytest.approx(1.0)
            else:
                assert sums[v] == 0.0


class TestForwardTransition:
    def test_entries(self, diamond):
        w = forward_transition_matrix(diamond).toarray()
        # O(0) = {1, 2}
        assert w[0, 1] == 0.5
        assert w[0, 2] == 0.5
        assert w[3].sum() == 0.0  # sink

    def test_w_is_q_of_reverse(self, diamond):
        w = forward_transition_matrix(diamond).toarray()
        q_rev = backward_transition_matrix(diamond.reverse()).toarray()
        np.testing.assert_allclose(w, q_rev)


class TestDtypeOption:
    def test_adjacency_dtype(self, diamond):
        a32 = adjacency_matrix(diamond, dtype="float32")
        a64 = adjacency_matrix(diamond)
        assert a32.dtype == np.float32
        assert a64.dtype == np.float64
        np.testing.assert_array_equal(
            a32.toarray(), a64.toarray().astype(np.float32)
        )

    def test_transition_dtype(self, diamond):
        q32 = backward_transition_matrix(diamond, dtype=np.float32)
        q64 = backward_transition_matrix(diamond)
        assert q32.dtype == np.float32
        np.testing.assert_allclose(
            q32.toarray(), q64.toarray(), atol=1e-7
        )
        w32 = forward_transition_matrix(diamond, dtype=np.float32)
        assert w32.dtype == np.float32

    def test_builders_use_edge_arrays(self, diamond):
        # the vectorised builder must agree with a COO assembled from
        # the Python-level edge iterator
        import scipy.sparse as sp

        rows, cols = zip(*diamond.edges())
        n = diamond.num_nodes
        expected = sp.csr_array(
            (np.ones(len(rows)), (rows, cols)), shape=(n, n)
        )
        got = adjacency_matrix(diamond)
        assert (got != expected).nnz == 0
