"""The Monte-Carlo approx tier: walks, estimator, persistence, wiring.

Four concerns, mirroring the subsystem's layers:

* **walk index** — deterministic builds, deduplicated bucket
  invariants, and ``.simidx`` round-trips (including corrupt and
  truncated walk segments being rejected cleanly);
* **estimator quality** — precision@k against the exact kernels on
  the citation datasets at the default epsilon, and bit-for-bit
  seed-reproducibility of the estimates;
* **engine/config routing** — ``mode="approx"`` validation and the
  engine serving columns and rankings through the estimator;
* **surfaces** — serve ``/status`` approx stats and the
  ``run_approx_compare`` bench document.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.approx import (
    DEAD,
    DEFAULT_EPSILON,
    WalkIndex,
    approx_params,
    samples_for_epsilon,
)
from repro.datasets import citation_network, scale_free_graph
from repro.engine.config import SimilarityConfig
from repro.engine.engine import SimilarityEngine
from repro.graph.digraph import DiGraph
from repro.graph.matrices import backward_transition_matrix
from repro.index import (
    IndexFormatError,
    SimilarityIndex,
    load_index,
    verify_index,
)


def small_graph() -> DiGraph:
    return DiGraph(
        8,
        edges=[
            (0, 2), (1, 2), (0, 3), (1, 3), (2, 4), (3, 4),
            (2, 5), (4, 6), (5, 6), (4, 7), (5, 7), (6, 7),
        ],
    )


APPROX = SimilarityConfig(
    measure="gSR*", num_iterations=8, mode="approx", seed=11
)


# ---------------------------------------------------------------------------
# walk index
# ---------------------------------------------------------------------------
def test_walk_index_is_deterministic_per_seed():
    q = backward_transition_matrix(small_graph())
    a = WalkIndex.build(q, walk_length=3, samples=16, seed=5)
    b = WalkIndex.build(q, walk_length=3, samples=16, seed=5)
    c = WalkIndex.build(q, walk_length=3, samples=16, seed=6)
    assert a == b
    assert a != c


def test_walk_bucket_counts_preserve_multiplicity():
    q = backward_transition_matrix(small_graph())
    walks = WalkIndex.build(q, walk_length=2, samples=32, seed=1)
    for level in range(1, walks.walk_length + 1):
        lo = int(walks.level_offsets[level - 1])
        hi = int(walks.level_offsets[level])
        counts = walks.counts[lo:hi]
        alive = int(
            (walks.endpoints[level - 1] != DEAD).sum()
        )
        # dedup drops repeats from sources but never sampled mass
        assert int(counts.sum()) == alive
        if counts.size:
            assert int(counts.min()) >= 1
            assert int(counts.max()) <= walks.samples


def test_walk_bucket_sources_match_endpoints():
    q = backward_transition_matrix(small_graph())
    walks = WalkIndex.build(q, walk_length=2, samples=16, seed=2)
    for node in range(walks.num_nodes):
        for src in walks.bucket(1, node):
            endpoints = walks.endpoints[0, int(src)].tolist()
            assert node in endpoints


def test_walk_build_rejects_bad_geometry():
    q = backward_transition_matrix(small_graph())
    with pytest.raises(ValueError):
        WalkIndex.build(q, walk_length=-1, samples=8)
    with pytest.raises(ValueError):
        WalkIndex.build(q, walk_length=2, samples=0)
    with pytest.raises(ValueError):
        WalkIndex.build(q, walk_length=2, samples=1 << 17)


def test_samples_for_epsilon_policy():
    assert samples_for_epsilon(DEFAULT_EPSILON) == 64
    assert samples_for_epsilon(0.9) == 16      # clamped floor
    assert samples_for_epsilon(0.0001) == 512  # clamped ceiling
    with pytest.raises(ValueError):
        samples_for_epsilon(0.0)
    assert approx_params(truncation=2, epsilon=None) == (2, 64)


# ---------------------------------------------------------------------------
# estimator quality
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("papers, seed", [(1200, 3), (800, 7)])
def test_precision_at_10_on_citation_datasets(papers, seed):
    """Default-epsilon approx ranks >= 0.9 precision@10 vs exact."""
    graph = citation_network(papers, seed=seed).graph
    exact = SimilarityEngine(
        graph, SimilarityConfig(measure="gSR*", num_iterations=10)
    )
    approx = SimilarityEngine(
        graph, exact.config.replace(mode="approx", seed=11)
    )
    rng = np.random.default_rng(5)
    queries = [
        int(q)
        for q in rng.choice(graph.num_nodes, 15, replace=False)
    ]
    hits = sum(
        len(
            set(exact.top_k(q, k=10).nodes)
            & set(approx.top_k(q, k=10).nodes)
        )
        for q in queries
    )
    assert hits / (10 * len(queries)) >= 0.9


def test_estimates_are_seed_reproducible():
    graph = small_graph()
    first = SimilarityEngine(graph, APPROX)
    second = SimilarityEngine(graph, APPROX)
    for query in range(graph.num_nodes):
        np.testing.assert_array_equal(
            first.columns([query])[query],
            second.columns([query])[query],
        )
    different = SimilarityEngine(
        graph, APPROX.replace(seed=99)
    )
    assert any(
        not np.array_equal(
            first.columns([q])[q], different.columns([q])[q]
        )
        for q in range(graph.num_nodes)
    )


def test_approx_column_tracks_exact_on_dense_meeting_graph():
    graph = small_graph()
    exact = SimilarityEngine(
        graph, SimilarityConfig(measure="gSR*", num_iterations=8)
    )
    approx = SimilarityEngine(graph, APPROX.replace(epsilon=0.01))
    for query in (2, 6, 7):
        exact_col = exact.columns([query])[query]
        approx_col = approx.columns([query])[query]
        assert np.max(np.abs(exact_col - approx_col)) < 0.2
        # the top neighbour agrees where the signal is strongest
        mask = np.arange(graph.num_nodes) != query
        assert (
            int(np.argmax(np.where(mask, approx_col, -1.0)))
            == int(np.argmax(np.where(mask, exact_col, -1.0)))
        )


# ---------------------------------------------------------------------------
# engine / config routing
# ---------------------------------------------------------------------------
def test_config_validates_mode_epsilon_seed():
    with pytest.raises(ValueError):
        SimilarityConfig(measure="gSR*", mode="fuzzy")
    with pytest.raises(ValueError):
        SimilarityConfig(measure="gSR*", mode="approx", epsilon=1.5)
    with pytest.raises(ValueError):
        SimilarityConfig(measure="gSR*", mode="approx", epsilon=0.0)
    config = SimilarityConfig(
        measure="gSR*", mode="approx", epsilon=0.1, seed=3
    )
    assert config.mode == "approx"
    assert config.seed == 3


def test_engine_routes_topk_and_batch_through_estimator():
    graph = small_graph()
    engine = SimilarityEngine(graph, APPROX)
    ranking = engine.top_k(7, k=3)
    assert len(ranking.nodes) == 3
    assert 7 not in ranking.nodes
    batch = engine.batch_top_k([6, 7], k=3)
    assert [r.query for r in batch] == [6, 7]
    status = engine.approx_status()
    assert status["walk_length"] == engine.walk_index.walk_length
    stats = status["estimator"]
    # the serving paths may answer from memoized estimator columns,
    # so count total estimator work rather than one specific entry
    assert stats["topk_queries"] + stats["columns"] >= 2


def test_exact_engine_reports_no_approx_status():
    engine = SimilarityEngine(
        small_graph(),
        SimilarityConfig(measure="gSR*", num_iterations=8),
    )
    assert engine.approx_status() is None


# ---------------------------------------------------------------------------
# .simidx round-trip of the walk segments
# ---------------------------------------------------------------------------
def build_approx_index() -> SimilarityIndex:
    return SimilarityIndex.build(
        small_graph(),
        measure="gSR*",
        num_iterations=8,
        mode="approx",
        epsilon=0.1,
        seed=11,
    )


def test_simidx_round_trips_walk_segments(tmp_path):
    index = build_approx_index()
    path = index.save(tmp_path / "approx.simidx")
    assert verify_index(path) == []
    loaded = load_index(path)
    assert loaded.walks == index.walks
    assert loaded.meta.mode == "approx"
    assert loaded.meta.walk_samples == index.walks.samples
    # an engine adopted from the mmap'd index answers identically
    original = SimilarityEngine(small_graph(), APPROX.replace(epsilon=0.1))
    adopted = SimilarityEngine.from_index(loaded, small_graph())
    np.testing.assert_array_equal(
        original.columns([4])[4], adopted.columns([4])[4]
    )


def test_corrupt_walk_segment_is_reported(tmp_path):
    index = build_approx_index()
    path = index.save(tmp_path / "approx.simidx")
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.seek(size - 16)
        byte = handle.read(1)
        handle.seek(size - 16)
        handle.write(bytes([byte[0] ^ 0xFF]))
    problems = verify_index(path)
    assert problems, "flipped payload byte must fail verification"


def test_truncated_walk_segment_is_rejected(tmp_path):
    index = build_approx_index()
    path = index.save(tmp_path / "approx.simidx")
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(size - 64)
    problems = verify_index(path)
    assert problems, "truncated walk payload must fail verification"
    with pytest.raises(IndexFormatError):
        load_index(path)


# ---------------------------------------------------------------------------
# surfaces: serve status + bench document + scale-free generator
# ---------------------------------------------------------------------------
def test_serve_status_reports_approx_section():
    from repro.serve.service import ServingService

    service = ServingService(small_graph(), APPROX)
    try:
        service.start_background()
        service.top_k_sync(7, k=3)
        document = service.status()
        assert document["config"]["mode"] == "approx"
        approx = document["approx"]
        assert approx["walk_length"] >= 1
        assert approx["index_bytes"] > 0
        stats = approx["estimator"]
        assert stats["topk_queries"] + stats["columns"] >= 1
    finally:
        service.close()


def test_scale_free_generator_is_deterministic():
    a = scale_free_graph(400, avg_out_degree=6.0, seed=9)
    b = scale_free_graph(400, avg_out_degree=6.0, seed=9)
    c = scale_free_graph(400, avg_out_degree=6.0, seed=10)
    assert sorted(a.edges()) == sorted(b.edges())
    assert sorted(a.edges()) != sorted(c.edges())
    assert a.num_nodes == 400
    # heavy-tailed in-degrees: the hub collects far more than the mean
    in_degrees = a.in_degrees()
    assert in_degrees.max() > 4 * in_degrees.mean()


def test_scale_free_generator_validates_arguments():
    with pytest.raises(ValueError):
        scale_free_graph(0)
    with pytest.raises(ValueError):
        scale_free_graph(10, avg_out_degree=0.0)
    with pytest.raises(ValueError):
        scale_free_graph(10, pa_bias=1.0)


def test_run_approx_compare_document_shape():
    from repro.bench.approx import run_approx_compare

    document = run_approx_compare(
        node_counts=(300, 600),
        queries=4,
        precision_floor=0.0,
        speedup_floor=None,
    )
    assert set(document["scales"]) == {"300", "600"}
    largest = document["scales"]["600"]
    assert largest["approx"]["walk_index_bytes"] > 0
    assert 0.0 <= largest["precision_at_k"] <= 1.0
    assert document["speedup_key"] == "speedup_approx_vs_exact"
    assert document["speedup_approx_vs_exact"] == largest["speedup"]
    assert document["checks"]["precision_at_k"] is True
    assert "speedup_at_largest_scale" not in document["checks"]
