"""Hand-derived fixed-point values on canonical graphs.

Each case solves Eq. (13) analytically, so these tests pin the
implementation to the model — independent of any other code path.
"""

import numpy as np
import pytest

from repro.baselines import rwr, simrank_matrix
from repro.core import (
    simrank_star,
    simrank_star_exponential_closed,
)
from repro.graph import (
    DiGraph,
    cycle_graph,
    path_graph,
    star_graph,
    two_ray_path,
)


class TestOutwardStar:
    """Hub 0 -> leaves. Solving Eq. (13) by hand:

    s(hub, hub)   = 1 - C                  (hub has no in-edges)
    s(hub, leaf)  = C/2 * (1 - C)          (one step from the hub)
    s(leaf, leaf) = C^2/2 * (1 - C)        (two half-steps)
    s(leaf, leaf')... wait, leaves i != j share the hub parent:
    s(i, j) = C/2 * (s(hub, j) + s(i, hub)) = C^2/2 * (1 - C).
    """

    @pytest.fixture(scope="class")
    def scores(self):
        c = 0.8
        return c, simrank_star(star_graph(5), c, 300)

    def test_hub_self_similarity(self, scores):
        c, s = scores
        assert s[0, 0] == pytest.approx(1 - c, abs=1e-10)

    def test_hub_leaf(self, scores):
        c, s = scores
        assert s[0, 1] == pytest.approx(0.5 * c * (1 - c), abs=1e-10)

    def test_leaf_leaf(self, scores):
        c, s = scores
        assert s[1, 2] == pytest.approx(
            0.5 * c * c * (1 - c), abs=1e-10
        )

    def test_leaf_self(self, scores):
        # s(leaf, leaf) diagonal: C/2*(s(hub,leaf)+s(leaf,hub)) + (1-C)
        #                      = C^2/2 (1-C) + (1-C)
        c, s = scores
        assert s[1, 1] == pytest.approx(
            (1 - c) * (1 + 0.5 * c * c), abs=1e-10
        )

    def test_simrank_on_leaves(self):
        # classic SimRank (matrix form): s(i, j) = C * s(hub, hub)
        #                              = C (1-C) for leaves
        c = 0.8
        s = simrank_matrix(star_graph(5), c, 300)
        assert s[1, 2] == pytest.approx(c * (1 - c), abs=1e-10)


class TestInwardStar:
    def test_leaves_unrelated(self):
        # leaves -> hub: leaves have no in-edges anywhere upstream,
        # so no in-link path joins two leaves.
        s = simrank_star(star_graph(5, inward=True), 0.8, 200)
        assert s[1, 2] == 0.0

    def test_hub_leaf_positive(self):
        # leaf ->^1 hub is a one-directional in-link path
        s = simrank_star(star_graph(5, inward=True), 0.8, 200)
        assert s[0, 1] > 0.0


class TestSingleEdge:
    """0 -> 1: s(0,1) = C/2 * s(0,0) = C/2 (1-C)."""

    def test_values(self):
        c = 0.6
        s = simrank_star(DiGraph(2, edges=[(0, 1)]), c, 300)
        assert s[0, 0] == pytest.approx(1 - c, abs=1e-12)
        assert s[0, 1] == pytest.approx(0.5 * c * (1 - c), abs=1e-12)
        # s(1,1) = C/2*(s(0,1) + s(1,0)) + (1-C) = C^2/2(1-C) + (1-C)
        assert s[1, 1] == pytest.approx(
            (1 - c) * (1 + 0.5 * c * c), abs=1e-12
        )

    def test_chain_decay(self):
        # on a path, s(0, k) = (C/2)^k * (1-C): each hop halves & damps
        c = 0.6
        s = simrank_star(path_graph(5), c, 400)
        for k in range(5):
            assert s[0, k] == pytest.approx(
                (0.5 * c) ** k * (1 - c), abs=1e-12
            ), k


class TestCycle:
    """Directed n-cycle: every node is equivalent; by symmetry the
    fixed point depends only on the ring distance."""

    def test_rotational_symmetry(self):
        s = simrank_star(cycle_graph(5), 0.8, 400)
        for shift in range(1, 5):
            np.testing.assert_allclose(
                s[0, shift], s[1, (1 + shift) % 5], atol=1e-10
            )

    def test_row_sums_equal(self):
        s = simrank_star(cycle_graph(6), 0.8, 400)
        sums = s.sum(axis=1)
        np.testing.assert_allclose(sums, sums[0], atol=1e-10)

    def test_cycle_simrank_diag_formula(self):
        # On a cycle Q is a permutation: S = (1-C) sum C^l P^l (P^T)^l
        # = (1-C) sum C^l I ... on the diagonal = (1-C)/(1-C) = ...
        # every node: s(v,v) = (1-C) * 1/(1-C) = 1.
        s = simrank_matrix(cycle_graph(4), 0.6, 500)
        np.testing.assert_allclose(np.diag(s), 1.0, atol=1e-8)


class TestTwoRayHandValues:
    def test_depth1_cross_pair(self):
        # 1 <- 0 -> n+1: the only in-link path, symmetric, length 2.
        # Solving Eq. (13) restricted to the reachable pattern gives
        # s(1, n+1) = C^2/2 * (1-C) / (1 - C^2/2)... derive instead by
        # the series: each T_l contributes (1/2^l) binom(l, l/2)-ish —
        # cleanest is cross-validation against the closed-form
        # exponential variant, plus positivity ordering.
        g = two_ray_path(2)
        geo = simrank_star(g, 0.8, 400)
        exp = simrank_star_exponential_closed(g, 0.8)
        assert geo[1, 3] > geo[1, 4] > 0
        assert exp[1, 3] > exp[1, 4] > 0

    def test_rwr_sees_only_forward(self):
        g = two_ray_path(2)
        r = rwr(g, 0.8, 200)
        assert r[0, 1] > 0 and r[0, 2] > 0  # root reaches its rays
        assert r[1, 3] == 0.0  # cross-ray: no directed path
        assert r[1, 0] == 0.0  # against the edge direction


class TestSelfLoop:
    def test_bounded_and_convergent(self):
        g = DiGraph(2, edges=[(0, 0), (0, 1)])
        s = simrank_star(g, 0.8, 500)
        assert np.isfinite(s).all()
        assert s.max() <= 1.0 + 1e-9
        # self-loop: node 0 is its own in-neighbour, boosting s(0,0)
        assert s[0, 0] > 1 - 0.8

    def test_all_measures_finite_on_loops(self):
        g = DiGraph(3, edges=[(0, 0), (0, 1), (1, 2), (2, 0)])
        from repro.measures import MEASURES, compute_measure

        for name in MEASURES:
            out = compute_measure(name, g, 0.6, 8)
            assert np.isfinite(out).all(), name
