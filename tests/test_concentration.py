"""Tests for the induced bigraph, biclique mining, edge concentration."""

import numpy as np
import pytest

from repro.bigraph import (
    Biclique,
    compress_graph,
    induced_bigraph,
    mine_bicliques,
)
from repro.graph import (
    DiGraph,
    figure1_citation_graph,
    path_graph,
    random_digraph,
    rmat,
)


class TestInducedBigraph:
    def test_figure4_structure(self):
        # Figure 4: T = {a,b,d,e,f,h,j,k}, B = {b,c,d,e,f,g,h,i},
        # |E~| = |E| = 18.
        g = figure1_citation_graph()
        bg = induced_bigraph(g)
        assert {g.label_of(v) for v in bg.top} == set("abdefhjk")
        assert {g.label_of(v) for v in bg.bottom} == set("bcdefghi")
        assert bg.num_edges == g.num_edges == 18

    def test_in_sets_match_graph(self):
        g = random_digraph(20, 60, seed=0)
        bg = induced_bigraph(g)
        for v in bg.bottom:
            assert bg.in_sets[v] == frozenset(g.in_neighbors(v))

    def test_edgeless_graph(self):
        bg = induced_bigraph(DiGraph(3))
        assert bg.top == ()
        assert bg.bottom == ()
        assert bg.num_edges == 0

    def test_repr(self):
        bg = induced_bigraph(path_graph(3))
        assert "|T|=2" in repr(bg)


class TestBicliqueMining:
    def test_figure4_bicliques_found(self):
        # The paper's two bicliques: ({b,d}, {c,g,i}) and
        # ({e,j,k}, {h,i}).
        g = figure1_citation_graph()
        found = mine_bicliques(induced_bigraph(g))
        as_labels = {
            (
                frozenset(g.label_of(t) for t in b.tops),
                frozenset(g.label_of(t) for t in b.bottoms),
            )
            for b in found
        }
        assert (frozenset("bd"), frozenset("cgi")) in as_labels
        assert (frozenset("ejk"), frozenset("hi")) in as_labels

    def test_savings_positive_and_disjoint(self):
        g = rmat(8, 1200, seed=1)
        found = mine_bicliques(induced_bigraph(g))
        seen_edges: set[tuple[int, int]] = set()
        for b in found:
            assert b.saving > 0
            assert len(b.tops) >= 2 and len(b.bottoms) >= 2
            for t in b.tops:
                for y in b.bottoms:
                    assert (t, y) not in seen_edges  # edge-disjoint
                    seen_edges.add((t, y))
                    assert g.has_edge(t, y)  # real edges only

    def test_biclique_covers_complete_block(self):
        # Every (top, bottom) pair of a mined biclique must be an edge.
        g = random_digraph(30, 200, seed=2)
        for b in mine_bicliques(induced_bigraph(g)):
            for t in b.tops:
                for y in b.bottoms:
                    assert g.has_edge(t, y)

    def test_max_bicliques_cap(self):
        g = rmat(8, 1200, seed=3)
        found = mine_bicliques(induced_bigraph(g), max_bicliques=2)
        assert len(found) <= 2

    def test_no_bicliques_on_path(self):
        # a path graph has all in-degrees 1: nothing to share
        assert mine_bicliques(induced_bigraph(path_graph(10))) == []

    def test_biclique_dataclass(self):
        b = Biclique(frozenset({1, 2}), frozenset({3, 4, 5}))
        assert b.num_edges == 6
        assert b.saving == 1
        assert "X=[1, 2]" in repr(b)

    def test_deterministic(self):
        g = rmat(7, 500, seed=4)
        a = mine_bicliques(induced_bigraph(g))
        b = mine_bicliques(induced_bigraph(g))
        assert a == b


class TestCompression:
    def test_figure4_edge_reduction(self):
        # "the number of edges in G^ is decreased by 2": 18 -> 16.
        g = figure1_citation_graph()
        compressed = compress_graph(g)
        assert compressed.num_edges == 16
        assert compressed.num_concentration_nodes == 2
        assert compressed.compression_ratio == pytest.approx(2 / 18)

    def test_factorization_reconstructs_adjacency(self):
        for seed in range(3):
            g = rmat(7, 600, seed=seed)
            compress_graph(g).validate()

    def test_factorization_on_figure1(self):
        compress_graph(figure1_citation_graph()).validate()

    def test_example2_partial_sum_structure(self):
        # Example 2: Partial_{I(i)} = Partial_{v1} + Partial_{v2} + s(h, .)
        # and Partial_{I(h)} = Partial_{v2}: after concentration, h's
        # direct tops are empty and i's are {h}.
        g = figure1_citation_graph()
        compressed = compress_graph(g)
        h, i = g.node_of("h"), g.node_of("i")
        assert compressed.direct_tops[h] == frozenset()
        assert compressed.direct_tops[i] == frozenset({h})
        assert len(compressed.hub_memberships[h]) == 1
        assert len(compressed.hub_memberships[i]) == 2

    def test_mtilde_never_exceeds_m(self):
        for seed in range(4):
            g = random_digraph(40, 300, seed=seed)
            compressed = compress_graph(g)
            assert compressed.num_edges <= g.num_edges
            expected = g.num_edges - sum(
                b.saving for b in compressed.bicliques
            )
            assert compressed.num_edges == expected

    def test_incompressible_graph_unchanged(self):
        g = path_graph(8)
        compressed = compress_graph(g)
        assert compressed.num_edges == g.num_edges
        assert compressed.num_concentration_nodes == 0
        assert compressed.compression_ratio == 0.0

    def test_fan_in_out_accessors(self):
        g = figure1_citation_graph()
        compressed = compress_graph(g)
        labels_of = lambda nodes: {g.label_of(v) for v in nodes}
        fans = {
            (
                frozenset(labels_of(compressed.fan_in(v))),
                frozenset(labels_of(compressed.fan_out(v))),
            )
            for v in range(compressed.num_concentration_nodes)
        }
        assert (frozenset("bd"), frozenset("cgi")) in fans
        assert (frozenset("ejk"), frozenset("hi")) in fans

    def test_denser_graphs_compress_better(self):
        # the Figure 6(g) premise: density boosts neighbourhood
        # overlap, hence compression.
        sparse = rmat(8, 700, seed=5)
        dense = rmat(8, 2800, seed=5)
        ratio_sparse = compress_graph(sparse).compression_ratio
        ratio_dense = compress_graph(dense).compression_ratio
        assert ratio_dense > ratio_sparse
