"""Tests for :mod:`repro.obs` and :mod:`repro.bench.signal`.

Covers the Prometheus exposition format, histogram invariants, the
tracing pipeline end to end (including trace-id propagation through
real worker processes), slow-query log bounding, cross-process metric
merging, and the E-Divisive change-point gate.
"""

from __future__ import annotations

import asyncio
import json
import os
import re

import pytest

from repro.bench.signal import (
    detect_changes,
    e_divisive,
    run_detection,
)
from repro.graph.generators import random_digraph
from repro.obs import (
    MetricsRegistry,
    NullObservability,
    Observability,
    SlowQueryLog,
    Trace,
    Tracer,
)
from repro.serve import ServingService


# ---------------------------------------------------------------------------
# Prometheus text exposition conformance
# ---------------------------------------------------------------------------
def test_counter_exposition_has_help_type_and_value():
    registry = MetricsRegistry()
    counter = registry.counter("acme_requests_total", "Requests.")
    counter.inc(3)
    text = registry.render()
    assert "# HELP acme_requests_total Requests.\n" in text
    assert "# TYPE acme_requests_total counter\n" in text
    assert "acme_requests_total 3.0\n" in text


def test_labelled_samples_sort_and_escape():
    registry = MetricsRegistry()
    counter = registry.counter(
        "acme_ops_total", "Ops.", labelnames=("zone", "op")
    )
    counter.labels(zone='us"1', op="read\nwrite\\x").inc()
    text = registry.render()
    # labels render sorted by name; values escape \ " and newline
    assert (
        'acme_ops_total{op="read\\nwrite\\\\x",zone="us\\"1"} 1.0\n'
        in text
    )


def test_metric_names_and_duplicates_are_validated():
    registry = MetricsRegistry()
    registry.counter("ok_name_total", "x")
    with pytest.raises(ValueError):
        registry.counter("ok_name_total", "duplicate")
    with pytest.raises(ValueError):
        registry.counter("0bad", "leading digit")
    with pytest.raises(ValueError):
        registry.gauge("bad-dash", "punctuation")


def test_counter_is_monotonic():
    registry = MetricsRegistry()
    counter = registry.counter("acme_total", "x")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_every_metric_line_is_well_formed():
    """Each sample line must parse as <name>{labels}? <float>."""
    obs = Observability()
    obs.requests_top_k.inc()
    obs.request_duration.observe(0.012)
    obs.shard_dispatch.labels(worker="0").observe(0.001)
    sample = re.compile(
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (?:[0-9.e+-]+|\+Inf)$"
    )
    for line in obs.render().strip().splitlines():
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE "))
        else:
            assert sample.match(line), line


# ---------------------------------------------------------------------------
# histogram invariants
# ---------------------------------------------------------------------------
def _bucket_counts(text: str, name: str) -> list[tuple[str, float]]:
    rows = []
    for line in text.splitlines():
        if line.startswith(f"{name}_bucket"):
            le = re.search(r'le="([^"]+)"', line).group(1)
            rows.append((le, float(line.rsplit(" ", 1)[1])))
    return rows


def test_histogram_buckets_are_cumulative_and_bounded():
    registry = MetricsRegistry()
    histogram = registry.histogram(
        "acme_latency_seconds", "x", buckets=(0.01, 0.1, 1.0)
    )
    for value in (0.005, 0.005, 0.05, 0.5, 5.0):
        histogram.observe(value)
    text = registry.render()
    rows = _bucket_counts(text, "acme_latency_seconds")
    assert [le for le, _ in rows] == ["0.01", "0.1", "1.0", "+Inf"]
    counts = [count for _, count in rows]
    assert counts == sorted(counts)  # cumulative => non-decreasing
    assert counts == [2.0, 3.0, 4.0, 5.0]
    assert "acme_latency_seconds_count 5.0\n" in text
    assert registry.sample_value(
        "acme_latency_seconds_sum"
    ) == pytest.approx(5.56)


def test_histogram_rejects_bad_buckets():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.histogram("acme_h", "x", buckets=(1.0, 1.0))
    with pytest.raises(ValueError):
        registry.histogram("acme_h2", "x", buckets=(2.0, 1.0))


def test_callback_metrics_pull_at_render_time():
    registry = MetricsRegistry()
    state = {"served": 0}
    registry.counter_fn(
        "acme_served_total", "x", lambda: state["served"]
    )
    state["served"] = 7
    assert registry.sample_value("acme_served_total") == 7.0
    # a failing callback contributes no samples instead of raising
    registry.gauge_fn("acme_broken", "x", lambda: 1 / 0)
    assert "acme_broken" not in registry.render().replace(
        "# HELP acme_broken", ""
    ).replace("# TYPE acme_broken", "")


# ---------------------------------------------------------------------------
# cross-process merge
# ---------------------------------------------------------------------------
def _worker_registry(shards: int) -> MetricsRegistry:
    registry = MetricsRegistry()
    counter = registry.counter("repro_worker_shards_total", "x")
    counter.inc(shards)
    histogram = registry.histogram(
        "repro_worker_compute_seconds", "x", buckets=(0.1, 1.0)
    )
    histogram.observe(0.05)
    return registry


def test_ingest_is_idempotent_per_source():
    parent = MetricsRegistry()
    snapshot = _worker_registry(5).snapshot()
    parent.ingest("worker-0", snapshot)
    parent.ingest("worker-0", snapshot)  # re-shipped on every ping
    text = parent.render()
    assert (
        'repro_worker_shards_total{worker="worker-0"} 5.0' in text
    )
    assert text.count("repro_worker_shards_total{") == 1


def test_ingest_replaces_with_newer_snapshot_and_adds_sources():
    parent = MetricsRegistry()
    parent.ingest("worker-0", _worker_registry(5).snapshot())
    parent.ingest("worker-0", _worker_registry(9).snapshot())
    parent.ingest("worker-1", _worker_registry(2).snapshot())
    text = parent.render()
    assert (
        'repro_worker_shards_total{worker="worker-0"} 9.0' in text
    )
    assert (
        'repro_worker_shards_total{worker="worker-1"} 2.0' in text
    )
    # histogram buckets survive the pickle/merge round trip
    assert (
        'repro_worker_compute_seconds_bucket{le="0.1",'
        'worker="worker-1"} 1.0' in text
    )


def test_snapshot_is_json_safe():
    # worker snapshots travel over a pipe; keep them plain data
    snapshot = _worker_registry(3).snapshot()
    assert json.loads(json.dumps(snapshot)) == snapshot


# ---------------------------------------------------------------------------
# tracing and the slow-query log
# ---------------------------------------------------------------------------
def test_trace_spans_record_order_and_meta():
    trace = Trace("cafe", "top_k")
    with trace.span("compute", batch=4):
        pass
    trace.add_span("render", 0.001)
    assert trace.span_names() == ["compute", "render"]
    document = trace.to_dict()
    assert document["spans"][0]["batch"] == 4
    assert document["spans"][1]["duration_ms"] == 1.0


def test_tracer_routes_only_slow_or_failed_traces():
    tracer = Tracer(slow_query_ms=10_000.0)
    fast = tracer.start("top_k")
    tracer.finish(fast)
    assert tracer.slow_queries == 0
    failed = tracer.start("top_k")
    tracer.finish(failed, status="error")  # failures always log
    assert tracer.slow_queries == 1
    assert tracer.slow_log.entries()[-1]["status"] == "error"
    assert [t.trace_id for t in tracer.last()] == [
        fast.trace_id, failed.trace_id,
    ]


def test_tracer_none_threshold_disables_logging():
    tracer = Tracer(slow_query_ms=None)
    trace = tracer.start("top_k")
    tracer.finish(trace, status="error")
    assert tracer.slow_queries == 0
    assert tracer.slow_log.entries() == []


def test_slow_query_log_ring_is_bounded():
    log = SlowQueryLog(max_entries=3)
    for n in range(10):
        log.write({"trace_id": f"t{n}"})
    assert [e["trace_id"] for e in log.entries()] == ["t7", "t8", "t9"]
    assert log.written == 10


def test_slow_query_log_rotates_once_and_bounds_disk(tmp_path):
    path = tmp_path / "slow.jsonl"
    log = SlowQueryLog(path, max_entries=8, max_bytes=400)
    for n in range(50):
        log.write({"trace_id": f"{n:04d}", "pad": "x" * 40})
    assert log.rotations >= 1
    rotated = tmp_path / "slow.jsonl.1"
    assert rotated.exists()
    assert path.stat().st_size <= 400
    assert rotated.stat().st_size <= 400
    # both files still parse line by line, newest entries in `path`
    lines = path.read_text().strip().splitlines()
    assert json.loads(lines[-1])["trace_id"] == "0049"
    json.loads(rotated.read_text().strip().splitlines()[-1])


# ---------------------------------------------------------------------------
# service integration: in-process
# ---------------------------------------------------------------------------
@pytest.fixture()
def traced_service():
    graph = random_digraph(80, 320, seed=11)
    service = ServingService(graph, slow_query_ms=0.0)
    service.start_background()
    yield service
    service.close()


def test_request_spans_cover_the_full_pipeline(traced_service):
    traced_service.top_k_sync(3, k=5)
    trace = traced_service.observability.tracer.last()[-1]
    assert trace.span_names() == [
        "coalesce", "dispatch", "compute", "render",
    ]
    assert trace.status == "ok"
    entry = traced_service.observability.tracer.slow_log.entries()[-1]
    assert entry["trace_id"] == trace.trace_id
    assert entry["slow_query_ms"] == 0.0


def test_metrics_text_reflects_served_requests(traced_service):
    for q in range(4):
        traced_service.top_k_sync(q, k=5)
    traced_service.score_sync(1, 2)
    text = traced_service.metrics_text()
    assert "# TYPE repro_requests_total counter\n" in text
    registry = traced_service.observability.registry
    assert registry.sample_value(
        "repro_requests_total", {"kind": "top_k"}
    ) == 4.0
    assert registry.sample_value(
        "repro_requests_total", {"kind": "score"}
    ) == 1.0
    assert registry.sample_value(
        "repro_request_duration_seconds_count"
    ) == 5.0
    assert registry.sample_value("repro_broker_requests_total") == 5.0


def test_swap_stages_reach_the_histogram(traced_service):
    traced_service.mutate(add=[(0, 0)])  # self-loop: never pre-existing
    registry = traced_service.observability.registry
    for stage in ("build", "prepare", "commit", "total"):
        assert registry.sample_value(
            "repro_swap_stage_seconds_count",
            {"kind": "delta", "stage": stage},
        ) == 1.0
    assert registry.sample_value(
        "repro_snapshot_delta_swaps_total"
    ) == 1.0


def test_telemetry_disabled_serves_without_metrics():
    graph = random_digraph(40, 160, seed=5)
    service = ServingService(graph, telemetry=False)
    service.start_background()
    try:
        ranking = service.top_k_sync(1, k=3)
        assert len(ranking) == 3
        assert isinstance(service.observability, NullObservability)
        assert "telemetry disabled" in service.metrics_text()
        assert service.status()["observability"] == {"enabled": False}
    finally:
        service.close()


# ---------------------------------------------------------------------------
# service integration: trace ids cross worker processes
# ---------------------------------------------------------------------------
def test_trace_ids_propagate_through_worker_processes():
    graph = random_digraph(120, 600, seed=23)
    service = ServingService(graph, workers=2, slow_query_ms=None)

    async def drive():
        async with service:
            await asyncio.gather(
                *(service.top_k(q, k=5) for q in range(6))
            )
            # scrape while the pool is up: collection pings workers
            return service.metrics_text()

    text = asyncio.run(drive())
    try:
        traces = service.observability.tracer.last()
        assert len(traces) == 6
        shard_spans = [
            span
            for trace in traces
            for span in trace.spans
            if span.name == "shard"
        ]
        assert shard_spans, "no shard spans recorded"
        # every shard span proves the worker echoed this request's
        # trace id back over the pipe, from a different process
        for span in shard_spans:
            assert span.meta["echoed"] is True
            assert span.meta["pid"] != os.getpid()
        # the coalesced batch crossed both workers
        workers = {
            span.meta["worker"]
            for trace in traces
            for span in trace.spans
            if span.name == "shard"
        }
        assert workers == {0, 1}

        # worker-side registries merge into /metrics with a label
        for worker in ("worker-0", "worker-1"):
            assert (
                f'repro_worker_shards_total{{worker="{worker}"}}'
                in text
            )
        total_columns = sum(
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_worker_columns_served_total{")
        )
        assert total_columns >= 6.0
        # merging is stable across repeated scrapes
        again = service.observability.registry.render()
        assert again.count("repro_worker_shards_total{") == 2
    finally:
        service.close()


# ---------------------------------------------------------------------------
# change-point detection
# ---------------------------------------------------------------------------
def test_e_divisive_finds_an_injected_step():
    series = [10.0, 10.1, 9.9, 10.0, 20.2, 19.8, 20.1, 20.0]
    points = e_divisive(series, seed=3)
    assert [p["index"] for p in points] == [4]
    assert points[0]["p_value"] <= 0.05


def test_e_divisive_is_quiet_on_stationary_noise():
    series = [10.0 + 0.3 * ((i * 7) % 5 - 2) for i in range(12)]
    assert e_divisive(series, seed=3) == []
    assert e_divisive([5.0] * 10, seed=3) == []
    assert e_divisive([1.0, 2.0, 3.0], seed=3) == []  # too short


def _bench_entry(tag: str, case_ms: float, speedup: float) -> dict:
    return {
        "tag": tag,
        "document": {
            "results": {"case_a": {"seconds_min": case_ms / 1e3}},
            "derived": {"speedup_a": speedup},
        },
    }


def _synthetic_history(regressed: bool) -> list[dict]:
    entries = [
        _bench_entry(f"r{i}", 10.0 + 0.1 * (i % 3), 4.0)
        for i in range(5)
    ]
    late_ms = 20.0 if regressed else 10.0
    entries += [
        _bench_entry(f"r{i}", late_ms + 0.1 * (i % 3), 4.0)
        for i in range(5, 10)
    ]
    return entries


def test_detect_changes_flags_direction_per_orientation():
    findings = detect_changes(_synthetic_history(regressed=True))
    assert [f["metric"] for f in findings] == ["case_a"]
    finding = findings[0]
    assert finding["direction"] == "regression"
    assert finding["tag"] == "r5"
    assert finding["ratio"] == pytest.approx(2.0, rel=0.05)
    # a timing drop is an improvement, not a regression
    improved = list(reversed(_synthetic_history(regressed=True)))
    for i, entry in enumerate(improved):
        entry["tag"] = f"r{i}"
    down = detect_changes(improved)
    assert down[0]["direction"] == "improvement"


def test_speedup_drop_is_a_regression():
    entries = [
        _bench_entry(f"r{i}", 10.0 + 0.1 * (i % 3), 4.0 + 0.02 * (i % 2))
        for i in range(5)
    ]
    entries += [
        _bench_entry(f"r{i}", 10.0 + 0.1 * (i % 3), 2.0 + 0.02 * (i % 2))
        for i in range(5, 10)
    ]
    findings = detect_changes(entries)
    assert [f["metric"] for f in findings] == ["speedup_a"]
    assert findings[0]["direction"] == "regression"


def test_run_detection_gates_unless_allowlisted(tmp_path):
    entries = _synthetic_history(regressed=True)
    ok, findings = run_detection(
        entries, expected_path=tmp_path / "missing.json"
    )
    assert not ok
    assert findings[0]["expected"] is False

    allowlist = tmp_path / "expected.json"
    allowlist.write_text(json.dumps({
        "expected": [{
            "metric": "case_a",
            "tag": "r5",
            "reason": "workload doubled on purpose",
        }],
    }))
    ok, findings = run_detection(entries, expected_path=allowlist)
    assert ok
    assert findings[0]["expected"] is True
    assert findings[0]["reason"] == "workload doubled on purpose"

    ok, _ = run_detection(
        _synthetic_history(regressed=False),
        expected_path=tmp_path / "missing.json",
    )
    assert ok


def test_min_shift_suppresses_small_moves():
    entries = [
        _bench_entry(f"r{i}", 10.0, 4.0) for i in range(5)
    ] + [
        _bench_entry(f"r{i}", 10.5, 4.0) for i in range(5, 10)
    ]
    assert detect_changes(entries, min_shift=0.10) == []
    assert detect_changes(entries, min_shift=0.01) != []


def test_bench_cli_history_detect_gate(tmp_path, monkeypatch, capsys):
    from repro.bench.__main__ import main

    monkeypatch.chdir(tmp_path)
    base = 1_600_000_000
    for i, entry in enumerate(_synthetic_history(regressed=True)):
        path = tmp_path / f"BENCH_{entry['tag']}.json"
        path.write_text(json.dumps(dict(
            entry["document"], tag=entry["tag"],
        )))
        os.utime(path, (base + i, base + i))  # commit order via mtime
    assert main(["--history", "--detect"]) == 1
    out = capsys.readouterr().out
    assert "FAIL regression" in out

    (tmp_path / "BENCH_expected_changes.json").write_text(json.dumps({
        "expected": [{"metric": "case_a", "tag": "r5",
                      "reason": "intentional"}],
    }))
    assert main(["--history", "--detect"]) == 0
    out = capsys.readouterr().out
    assert "ok  expected regression" in out
