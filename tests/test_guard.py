"""Tests for the guard layer: shedding, deadlines, breaker, canary."""

import asyncio
import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.graph import figure1_citation_graph, random_digraph
from repro.serve import (
    BreakerBoard,
    Canary,
    CircuitBreaker,
    DeadlineExceeded,
    Overloaded,
    ServingService,
    serve_http,
)
from repro.serve.__main__ import smoke_exit_code


def run(coro):
    return asyncio.run(coro)


def make_service(graph=None, **kwargs):
    if graph is None:
        graph = random_digraph(60, 300, seed=3)
    kwargs.setdefault("num_iterations", 6)
    return ServingService(graph, **kwargs)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, clock=clock)
        assert breaker.state == "closed"
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_restores_or_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            threshold=1, cooldown_s=5.0, clock=clock
        )
        breaker.record_failure()
        assert not breaker.allow()          # open, inside cooldown
        clock.now += 5.1
        assert breaker.allow()              # the half-open probe
        assert breaker.state == "half_open"
        assert not breaker.allow()          # only one probe at a time
        breaker.record_failure()            # probe failed -> reopen
        assert breaker.state == "open"
        clock.now += 5.1
        assert breaker.allow()
        breaker.record_success()            # probe passed -> restore
        assert breaker.state == "closed" and breaker.allow()

    def test_numeric_values_for_the_gauge(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, clock=clock)
        assert breaker.value == 0
        breaker.record_failure()
        assert breaker.value == 2
        clock.now += 10.0
        breaker.allow()
        assert breaker.value == 1


class TestBreakerBoard:
    def test_counts_trips_restores_and_logs_transitions(self):
        clock = FakeClock()
        board = BreakerBoard(
            2, threshold=1, cooldown_s=1.0, clock=clock
        )
        assert board.record_failure(0) is True      # opened
        assert board.trips == 1
        assert board.states()[0] == "open"
        assert board.states()[1] == "closed"
        clock.now += 1.1
        assert board.allow(0)
        board.record_success(0)
        assert board.restores == 1
        kinds = [
            (row["from"], row["to"]) for row in board.transitions
        ]
        assert ("closed", "open") in kinds
        assert ("open", "half_open") in kinds
        assert ("half_open", "closed") in kinds
        assert all(
            row["worker"] == 0 for row in board.transitions
        )

    def test_values_feed_the_labelled_gauge(self):
        board = BreakerBoard(3, threshold=1, clock=FakeClock())
        board.record_failure(2)
        assert board.values() == [(0, 0), (1, 0), (2, 2)]

    def test_fallbacks_are_counted(self):
        board = BreakerBoard(1, threshold=1)
        board.record_fallback()
        board.record_fallback()
        assert board.fallbacks == 2


class TestLoadShedding:
    def test_flood_beyond_queue_depth_sheds_with_retry_after(self):
        service = make_service(
            max_queue_depth=2,
            max_batch=1,
            max_wait_ms=0.0,
            cache_entries=0,
        )

        async def drive():
            results = await asyncio.gather(
                *(service.top_k(q, k=3) for q in range(40)),
                return_exceptions=True,
            )
            return results

        async def main():
            async with service:
                return await drive()

        results = run(main())
        answered = [r for r in results if not isinstance(r, Exception)]
        shed = [r for r in results if isinstance(r, Overloaded)]
        unexpected = [
            r for r in results
            if isinstance(r, Exception)
            and not isinstance(r, Overloaded)
        ]
        assert not unexpected
        assert len(answered) + len(shed) == 40
        assert shed, "a 40-deep flood into a 2-slot queue must shed"
        assert all(e.retry_after > 0 for e in shed)
        assert service.broker.stats.shed == len(shed)

    def test_zero_depth_never_sheds(self):
        service = make_service(max_queue_depth=0, cache_entries=0)

        async def main():
            async with service:
                return await asyncio.gather(
                    *(service.top_k(q, k=3) for q in range(30))
                )

        assert len(run(main())) == 30
        assert service.broker.stats.shed == 0

    def test_negative_depth_is_rejected(self):
        with pytest.raises(ValueError):
            make_service(max_queue_depth=-1)


class TestDeadlines:
    def test_expired_request_is_answered_deadline_exceeded(self):
        service = make_service(cache_entries=0, max_wait_ms=5.0)

        async def main():
            async with service:
                with pytest.raises(DeadlineExceeded):
                    await service.top_k(0, k=3, deadline_ms=0.001)

        run(main())
        assert service.broker.stats.deadline_expired == 1

    def test_expired_member_does_not_poison_its_batch(self):
        service = make_service(
            cache_entries=0, max_batch=8, max_wait_ms=20.0
        )

        async def main():
            async with service:
                return await asyncio.gather(
                    service.top_k(0, k=3, deadline_ms=0.001),
                    service.top_k(1, k=3),
                    service.top_k(2, k=3),
                    return_exceptions=True,
                )

        doomed, ok1, ok2 = run(main())
        assert isinstance(doomed, DeadlineExceeded)
        assert not isinstance(ok1, Exception)
        assert not isinstance(ok2, Exception)

    def test_server_default_deadline_applies(self):
        service = make_service(
            cache_entries=0, default_deadline_ms=0.001,
            max_wait_ms=5.0,
        )

        async def main():
            async with service:
                with pytest.raises(DeadlineExceeded):
                    await service.top_k(0, k=3)
                # an explicit budget overrides the tiny default
                return await service.top_k(1, k=3, deadline_ms=60000)

        assert len(run(main())) == 3

    def test_zero_override_disables_the_default(self):
        service = make_service(
            cache_entries=0, default_deadline_ms=0.001,
            max_wait_ms=5.0,
        )

        async def main():
            async with service:
                return await service.top_k(0, k=3, deadline_ms=0)

        assert len(run(main())) == 3


class TestCanaryLocal:
    def test_healthy_green_auto_promotes(self):
        service = make_service(
            graph=figure1_citation_graph(),
            num_iterations=8,
            cache_entries=0,
            canary_min_requests=4,
        )

        async def main():
            async with service:
                blue_seq = service.snapshots.current.seq
                canary = service.mutate_canary(
                    add=[("a", "h")], fraction=0.5
                )
                for _ in range(40):
                    await service.top_k("h", k=3)
                    if canary.outcome:
                        break
                await asyncio.sleep(0.2)
                return blue_seq, canary

        blue_seq, canary = run(main())
        assert canary.outcome == "promote"
        assert service.snapshots.current.seq > blue_seq
        assert service.snapshots.canary_promotes == 1
        assert service.broker.canary is None

    def test_faulty_green_auto_rolls_back(self):
        service = make_service(
            graph=figure1_citation_graph(),
            num_iterations=8,
            cache_entries=0,
            canary_min_requests=4,
        )

        def bad_green():
            raise RuntimeError("forced bad green")

        async def main():
            async with service:
                blue_seq = service.snapshots.current.seq
                canary = service.mutate_canary(
                    add=[("a", "h")],
                    fraction=0.5,
                    inject_green_fault=bad_green,
                )
                for _ in range(80):
                    try:
                        await service.top_k("h", k=3)
                    except RuntimeError:
                        pass
                    if canary.outcome:
                        break
                await asyncio.sleep(0.2)
                # blue keeps serving after the rollback
                ranking = await service.top_k("h", k=3)
                return blue_seq, canary, ranking

        blue_seq, canary, ranking = run(main())
        assert canary.outcome == "rollback"
        assert service.snapshots.current.seq == blue_seq
        assert service.snapshots.canary_rollbacks == 1
        assert len(ranking) == 3

    def test_only_one_canary_in_flight(self):
        service = make_service(
            graph=figure1_citation_graph(), num_iterations=8
        )

        async def main():
            async with service:
                service.mutate_canary(add=[("a", "h")])
                with pytest.raises(RuntimeError, match="in flight"):
                    service.mutate_canary(add=[("b", "h")])

        run(main())

    def test_rolled_back_seq_is_never_reused(self):
        service = make_service(
            graph=figure1_citation_graph(),
            num_iterations=8,
            cache_entries=0,
            canary_min_requests=2,
        )

        def bad_green():
            raise RuntimeError("forced bad green")

        async def main():
            async with service:
                canary = service.mutate_canary(
                    add=[("a", "h")],
                    fraction=1.0,
                    inject_green_fault=bad_green,
                )
                green_seq = canary.green.seq
                for _ in range(40):
                    try:
                        await service.top_k("h", k=3)
                    except RuntimeError:
                        pass
                    if canary.outcome:
                        break
                await asyncio.sleep(0.2)
                snapshot = service.mutate(add=[("b", "h")])
                return green_seq, snapshot.seq

        green_seq, next_seq = run(main())
        assert next_seq > green_seq

    def test_canary_describe_in_status(self):
        service = make_service(
            graph=figure1_citation_graph(), num_iterations=8
        )

        async def main():
            async with service:
                assert service.status()["guard"]["canary"] is None
                service.mutate_canary(add=[("a", "h")])
                return service.status()["guard"]["canary"]

        document = run(main())
        assert document["outcome"] is None
        assert document["counts"]["green"] == {"ok": 0, "errors": 0}


class TestCanaryDecisions:
    def test_deterministic_traffic_split(self):
        canary = Canary("blue", "green", fraction=0.25)
        # the accumulator starts primed, so the first call probes
        # green immediately, then settles into 1-in-4
        sides = [canary.choose() for _ in range(9)]
        assert sides[0] == "green"
        assert sides[1:].count("green") == 2
        assert all(s in ("blue", "green") for s in sides)

    def test_error_delta_rolls_back(self):
        canary = Canary(
            "b", "g", min_requests=4, max_error_delta=0.1
        )
        for _ in range(4):
            canary.record("green", False, 0.01)
        assert canary.decide() == "rollback"

    def test_p95_regression_rolls_back(self):
        canary = Canary("b", "g", min_requests=4, max_p95_ratio=2.0)
        for _ in range(20):
            canary.record("blue", True, 0.010)
        for _ in range(4):
            canary.record("green", True, 0.100)
        assert canary.decide() == "rollback"

    def test_finalize_is_single_shot(self):
        canary = Canary("b", "g", min_requests=1)
        canary.record("green", True, 0.01)
        assert canary.finalize("promote") is True
        assert canary.finalize("rollback") is False
        assert canary.decide() is None
        assert canary.outcome == "promote"


class TestBreakerThroughRouter:
    def test_kill_trips_fallback_answers_probe_restores(self):
        service = make_service(
            workers=2,
            backend="thread",
            cache_entries=0,
            breaker_threshold=1,
            breaker_cooldown_s=0.2,
        )

        async def main():
            async with service:
                await asyncio.gather(
                    *(service.top_k(q, k=3) for q in range(8))
                )
                service.cluster.pool.kill_worker(0)
                # answered via the in-process fallback, not dropped
                rankings = await asyncio.gather(
                    *(service.top_k(q, k=3) for q in range(8))
                )
                assert all(len(r) == 3 for r in rankings)
                board = service.cluster.breakers
                assert board.trips >= 1
                assert board.fallbacks >= 1
                await asyncio.sleep(0.25)
                await asyncio.gather(
                    *(service.top_k(q, k=3) for q in range(8))
                )
                return board

        board = run(main())
        assert board.restores >= 1
        assert set(board.states().values()) == {"closed"}

    def test_breaker_states_surface_in_status_and_metrics(self):
        service = make_service(
            workers=2, backend="thread", breaker_threshold=1
        )

        async def main():
            async with service:
                await service.top_k(0, k=3)
                status = service.status()
                text = service.metrics_text()
                return status, text

        status, text = run(main())
        breaker = status["guard"]["breaker"]
        assert breaker["threshold"] == 1
        assert breaker["states"] == {"0": "closed", "1": "closed"}
        assert 'repro_breaker_state{worker="0"}' in text
        assert "repro_breaker_trips_total" in text


class TestGuardOverHTTP:
    def test_shed_answers_429_with_retry_after(self):
        service = make_service(
            max_queue_depth=1,
            max_batch=1,
            max_wait_ms=0.0,
            cache_entries=0,
        )
        service.start_background()
        server = serve_http(service, background=True)
        url = server.url
        codes = []
        retry_afters = []

        def client(q):
            body = json.dumps({"query": q % 50, "k": 3}).encode()
            request = urllib.request.Request(
                f"{url}/top_k", data=body,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=30
                ) as reply:
                    reply.read()
                    codes.append(reply.status)
            except urllib.error.HTTPError as exc:
                payload = json.loads(exc.read())
                codes.append(exc.code)
                if exc.code == 429:
                    retry_afters.append(
                        (exc.headers.get("Retry-After"),
                         payload.get("retry_after"))
                    )

        try:
            with ThreadPoolExecutor(max_workers=32) as pool:
                list(pool.map(client, range(64)))
        finally:
            server.stop()
            service.close()
        assert len(codes) == 64
        assert set(codes) <= {200, 429}
        assert 429 in codes, "64-deep flood into depth 1 must shed"
        for header, body_value in retry_afters:
            assert float(header) > 0
            assert body_value == pytest.approx(float(header))

    def test_expired_deadline_answers_504(self):
        service = make_service(
            cache_entries=0, max_wait_ms=5.0
        )
        service.start_background()
        server = serve_http(service, background=True)
        try:
            body = json.dumps(
                {"query": 0, "k": 3, "deadline_ms": 0.001}
            ).encode()
            request = urllib.request.Request(
                f"{server.url}/top_k", data=body,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == 504
            assert "deadline" in json.loads(excinfo.value.read())[
                "error"
            ]
        finally:
            server.stop()
            service.close()

    def test_mutate_canary_route_and_conflict_409(self):
        service = make_service(
            graph=figure1_citation_graph(), num_iterations=8
        )
        service.start_background()
        server = serve_http(service, background=True)

        def post_mutate(payload):
            body = json.dumps(payload).encode()
            request = urllib.request.Request(
                f"{server.url}/mutate", data=body,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            return urllib.request.urlopen(request, timeout=60)

        try:
            with post_mutate(
                {"add": [["a", "h"]], "canary": True,
                 "fraction": 0.5}
            ) as reply:
                document = json.loads(reply.read())
            assert document["canary"]["fraction"] == 0.5
            assert document["canary"]["outcome"] is None
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post_mutate(
                    {"add": [["b", "h"]], "canary": True}
                )
            assert excinfo.value.code == 409
            excinfo.value.read()
        finally:
            server.stop()
            service.close()


class TestAccountingProperty:
    """Satellite: answered + shed + expired == submitted, always."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_sequences_never_lose_a_request(
        self, backend, seed
    ):
        import random

        rng = random.Random(seed)
        depth = rng.choice([1, 2, 4])
        service = make_service(
            graph=random_digraph(40, 200, seed=5),
            workers=2,
            backend=backend,
            cache_entries=0,
            max_batch=rng.choice([1, 4]),
            max_wait_ms=rng.choice([0.0, 2.0]),
            max_queue_depth=depth,
            default_deadline_ms=rng.choice([0.0, 5000.0]),
        )
        total = 36
        deadlines = [
            rng.choice([None, 0.001, 0.5, 50.0, 60000.0])
            for _ in range(total)
        ]

        async def main():
            async with service:
                return await asyncio.gather(
                    *(
                        service.top_k(
                            q % 40, k=3, deadline_ms=deadlines[q]
                        )
                        for q in range(total)
                    ),
                    return_exceptions=True,
                )

        results = run(main())
        answered = sum(
            1 for r in results if not isinstance(r, Exception)
        )
        shed = sum(1 for r in results if isinstance(r, Overloaded))
        expired = sum(
            1 for r in results if isinstance(r, DeadlineExceeded)
        )
        other = total - answered - shed - expired
        assert other == 0, [
            r for r in results
            if isinstance(r, Exception)
            and not isinstance(r, (Overloaded, DeadlineExceeded))
        ]
        stats = service.broker.stats
        assert stats.shed == shed
        assert stats.deadline_expired == expired


class TestSmokeExitCode:
    """Satellite: per-request failures must never exit 0."""

    def test_failures_alone_force_nonzero(self):
        assert smoke_exit_code({"a": True, "b": True}, ["boom"]) == 1

    def test_failed_check_forces_nonzero(self):
        assert smoke_exit_code({"a": True, "b": False}, []) == 1

    def test_clean_run_exits_zero(self):
        assert smoke_exit_code({"a": True}, []) == 0
