"""Tests for memo-gSR* / memo-eSR* (Algorithm 1 and factorised form)."""

import numpy as np
import pytest

from repro.baselines.psum import psum_operation_count
from repro.bigraph import compress_graph
from repro.core import (
    MemoRun,
    memo_operation_count,
    memo_simrank_star,
    memo_simrank_star_exponential,
    memo_simrank_star_factorized,
    run_memo_esr,
    run_memo_gsr,
    simrank_star,
    simrank_star_exponential,
)
from repro.graph import (
    DiGraph,
    figure1_citation_graph,
    path_graph,
    random_digraph,
    rmat,
)


class TestMemoGSRStarEquality:
    """memo-gSR* must compute exactly what iter-gSR* computes."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_algorithm1_equals_iterative(self, seed):
        g = random_digraph(25, 120, seed=seed)
        np.testing.assert_allclose(
            memo_simrank_star(g, 0.6, 5),
            simrank_star(g, 0.6, 5),
            atol=1e-12,
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_factorized_equals_iterative(self, seed):
        g = rmat(6, 250, seed=seed)
        np.testing.assert_allclose(
            memo_simrank_star_factorized(g, 0.8, 6),
            simrank_star(g, 0.8, 6),
            atol=1e-12,
        )

    def test_on_figure1_graph(self):
        g = figure1_citation_graph()
        expected = simrank_star(g, 0.8, 15)
        np.testing.assert_allclose(
            memo_simrank_star(g, 0.8, 15), expected, atol=1e-12
        )
        np.testing.assert_allclose(
            memo_simrank_star_factorized(g, 0.8, 15), expected, atol=1e-12
        )

    def test_reusing_compressed_graph(self):
        g = random_digraph(20, 100, seed=3)
        compressed = compress_graph(g)
        a = memo_simrank_star(g, 0.6, 4, compressed=compressed)
        b = memo_simrank_star(g, 0.6, 4)
        np.testing.assert_allclose(a, b, atol=1e-14)

    def test_incompressible_graph_still_works(self):
        g = path_graph(10)
        np.testing.assert_allclose(
            memo_simrank_star(g, 0.6, 5),
            simrank_star(g, 0.6, 5),
            atol=1e-14,
        )

    def test_epsilon_mode(self):
        g = random_digraph(15, 60, seed=4)
        exact = simrank_star(g, 0.6, 200)
        approx = memo_simrank_star_factorized(
            g, 0.6, num_iterations=None, epsilon=1e-4
        )
        assert np.abs(exact - approx).max() <= 1e-4

    def test_parameter_validation(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            memo_simrank_star(g, 1.1)
        with pytest.raises(ValueError):
            memo_simrank_star(g, 0.6, num_iterations=2, epsilon=1e-2)
        with pytest.raises(ValueError):
            memo_simrank_star_factorized(g, 0.6, num_iterations=-1)


class TestMemoESRStar:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_equals_plain_exponential(self, seed):
        g = rmat(6, 250, seed=seed)
        np.testing.assert_allclose(
            memo_simrank_star_exponential(g, 0.8, 12),
            simrank_star_exponential(g, 0.8, 12),
            atol=1e-12,
        )

    def test_epsilon_mode_uses_factorial_bound(self):
        g = random_digraph(15, 60, seed=5)
        from repro.core import simrank_star_exponential_closed

        exact = simrank_star_exponential_closed(g, 0.6)
        approx = memo_simrank_star_exponential(
            g, 0.6, num_iterations=None, epsilon=1e-3
        )
        assert np.abs(exact - approx).max() <= 2e-3


class TestOperationCounts:
    def test_memo_beats_psum_on_compressible_graph(self):
        g = rmat(7, 900, seed=6)
        compressed = compress_graph(g)
        k = 5
        assert memo_operation_count(compressed, k) < psum_operation_count(
            g, k
        )

    def test_memo_count_uses_mtilde(self):
        g = figure1_citation_graph()
        compressed = compress_graph(g)
        assert memo_operation_count(compressed, 3) == 3 * 11 * 16

    def test_psum_count_formula(self):
        g = figure1_citation_graph()
        assert psum_operation_count(g, 3) == 3 * 2 * 11 * 18


class TestTimedRuns:
    def test_run_memo_gsr_structure(self):
        g = rmat(6, 250, seed=7)
        run = run_memo_gsr(g, 0.6, 5)
        assert isinstance(run, MemoRun)
        np.testing.assert_allclose(
            run.scores, simrank_star(g, 0.6, 5), atol=1e-12
        )
        assert run.compress_seconds >= 0
        assert run.iterate_seconds > 0
        assert run.total_seconds == pytest.approx(
            run.compress_seconds + run.iterate_seconds
        )
        assert run.operation_count == memo_operation_count(
            run.compressed, 5
        )

    def test_run_memo_esr_accuracy_mode(self):
        g = rmat(6, 250, seed=8)
        run = run_memo_esr(g, 0.6, num_iterations=None, epsilon=1e-3)
        from repro.core import simrank_star_exponential_closed

        exact = simrank_star_exponential_closed(g, 0.6)
        assert np.abs(run.scores - exact).max() <= 2e-3

    def test_esr_fewer_iterations_than_gsr_for_same_epsilon(self):
        # the operation-count reflection of eSR*'s faster convergence
        g = rmat(6, 250, seed=9)
        gsr = run_memo_gsr(g, 0.8, num_iterations=None, epsilon=1e-3)
        esr = run_memo_esr(g, 0.8, num_iterations=None, epsilon=1e-3)
        assert esr.operation_count < gsr.operation_count
