"""Tests for the zero-copy shard transport (PR 9).

Covers the :mod:`repro.cluster.shm` ring protocol at the unit level
(no processes), the shm-vs-pickle parity and fallback behaviour of
:class:`~repro.cluster.WorkerPool`, worker-side top-k tie-break
parity, the :class:`~repro.cluster.ThreadWorkerPool` backend, and the
rebalanced :meth:`~repro.cluster.ShardRouter._split`.

Forking spawn workers is the expensive part, so the process-backed
tests share module-scoped routers; failure-injection tests build
their own small ones.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.cluster import (
    ClusterError,
    ShardRouter,
    ThreadWorkerPool,
    WorkerPool,
    run_tasks,
)
from repro.cluster.shm import (
    HEADER_BYTES,
    ResultRing,
    RingError,
    ring_available,
)
from repro.engine import SimilarityConfig, SimilarityEngine
from repro.graph import DiGraph
from repro.graph.generators import random_digraph
from repro.serve import ServingService, SnapshotManager

CONFIG = SimilarityConfig(measure="gSR*", c=0.6, num_iterations=8)


def tie_heavy_graph() -> DiGraph:
    """A complete bipartite digraph: every left node is structurally
    identical, so top-k rankings are wall-to-wall score ties — the
    regime where worker-side selection must reproduce the parent's
    tie-break exactly."""
    left, right = 6, 5
    edges = [(u, left + v) for u in range(left) for v in range(right)]
    return DiGraph(left + right, edges=edges)


@pytest.fixture(scope="module")
def shm_env():
    """A started 2-worker shm-transport router over a small graph."""
    graph = random_digraph(120, 600, seed=11)
    snapshots = SnapshotManager(graph, CONFIG)
    router = ShardRouter(WorkerPool(workers=2), snapshots)
    router.start()
    yield graph, snapshots, router
    router.stop()


@pytest.fixture(scope="module")
def pickle_env(shm_env):
    """The same graph served over the forced-pickle transport."""
    graph, _, _ = shm_env
    snapshots = SnapshotManager(graph, CONFIG)
    router = ShardRouter(
        WorkerPool(workers=2, transport="pickle"), snapshots
    )
    router.start()
    yield graph, snapshots, router
    router.stop()


# ---------------------------------------------------------------------------
# ring protocol, no processes
# ---------------------------------------------------------------------------
class TestResultRing:
    def test_write_read_roundtrip_and_views_are_readonly(self):
        ring = ResultRing.create(slots=2, slot_bytes=4096)
        try:
            cols = [np.arange(8.0), np.arange(8.0) * 2]
            desc = ring.write(tag=1, ids=[4, 9], columns=cols)
            block = ring.read(desc)
            assert np.array_equal(block[0], cols[0])
            assert np.array_equal(block[1], cols[1])
            assert not block.flags.writeable
            assert desc["ids"] == [4, 9]
        finally:
            ring.destroy()

    def test_stale_tag_and_torn_write_detected(self):
        ring = ResultRing.create(slots=2, slot_bytes=4096)
        try:
            desc = ring.write(
                tag=1, ids=[0], columns=[np.ones(4)]
            )
            # slot recycled by a later write with the same slot index
            ring.write(tag=3, ids=[1], columns=[np.zeros(4)])
            with pytest.raises(RingError, match="stale"):
                ring.read(desc)
            # header nbytes disagreeing with the descriptor shape
            fresh = ring.write(tag=4, ids=[2], columns=[np.ones(4)])
            ring._header(fresh["slot"])[1] = 1
            with pytest.raises(RingError, match="torn"):
                ring.read(fresh)
        finally:
            ring.destroy()

    def test_oversized_block_raises_ring_error(self):
        ring = ResultRing.create(
            slots=1, slot_bytes=HEADER_BYTES + 32
        )
        try:
            assert not ring.fits(1, 8, np.float64)
            with pytest.raises(RingError, match="exceeds"):
                ring.write(
                    tag=1, ids=[0], columns=[np.ones(8)]
                )
        finally:
            ring.destroy()

    def test_bytes_payload_roundtrip_and_stale_tag(self):
        ring = ResultRing.create(slots=2, slot_bytes=256)
        try:
            desc = ring.write_bytes(tag=5, payload=b"hello rings")
            assert ring.read_bytes(desc) == b"hello rings"
            with pytest.raises(RingError, match="stale"):
                ring.read_bytes(dict(desc, tag=6))
            with pytest.raises(RingError, match="exceeds"):
                ring.write_bytes(tag=7, payload=b"x" * 512)
        finally:
            ring.destroy()

    def test_descriptor_for_other_ring_rejected(self):
        a = ResultRing.create(slots=1, slot_bytes=256)
        b = ResultRing.create(slots=1, slot_bytes=256)
        try:
            desc = a.write(tag=1, ids=[0], columns=[np.ones(2)])
            with pytest.raises(RingError, match="different ring"):
                b.read(desc)
        finally:
            a.destroy()
            b.destroy()

    def test_ring_available_probes_true_here(self):
        assert ring_available() is True


# ---------------------------------------------------------------------------
# shm vs pickle parity and accounting
# ---------------------------------------------------------------------------
def test_shm_and_pickle_columns_bit_identical(shm_env, pickle_env):
    _, _, shm_router = shm_env
    _, _, pickle_router = pickle_env
    ids = list(range(24))
    shm_snap = shm_router.pin()
    pickle_snap = pickle_router.pin()
    try:
        shm_cols = shm_router.compute(shm_snap.seq, ids)
        pickle_cols = pickle_router.compute(pickle_snap.seq, ids)
    finally:
        shm_router.unpin(shm_snap.seq)
        pickle_router.unpin(pickle_snap.seq)
    for q in ids:
        assert np.array_equal(
            np.asarray(shm_cols[q]), np.asarray(pickle_cols[q])
        ), f"column {q} differs between transports"


def test_transport_stats_attribute_bytes_to_the_right_path(
    shm_env, pickle_env
):
    _, _, shm_router = shm_env
    _, _, pickle_router = pickle_env
    shm_stats = shm_router.pool.transport_stats()
    pickle_stats = pickle_router.pool.transport_stats()
    assert shm_stats["mode"] == "shm"
    assert pickle_stats["mode"] == "pickle"
    assert shm_stats["ring_replies"] > 0
    assert pickle_stats["ring_replies"] == 0
    assert pickle_stats["pickle_replies"] > 0
    # the descriptor path ships orders of magnitude fewer bytes for
    # the same column traffic
    assert (
        shm_stats["transport_bytes"]
        < pickle_stats["transport_bytes"]
    )
    assert shm_stats["ring_bytes_per_worker"] > 0
    for row in shm_stats["per_worker"]:
        assert set(row) >= {
            "index", "ring_replies", "pickle_replies",
            "task_replies", "transport_bytes", "compute_seconds",
            "transport_seconds",
        }


def test_worker_killed_mid_run_retries_to_completion(shm_env):
    _, _, router = shm_env
    snapshot = router.pin()
    try:
        before = router.compute(snapshot.seq, [0, 1, 2, 3])
        router.pool.kill_worker(0)
        after = router.compute(snapshot.seq, [0, 1, 2, 3])
    finally:
        router.unpin(snapshot.seq)
    for q in before:
        assert np.array_equal(
            np.asarray(before[q]), np.asarray(after[q])
        )
    assert sum(w.respawns for w in router.pool._workers) >= 1


def test_stale_ring_descriptor_crashes_shard_not_request(shm_env):
    """A descriptor naming an unknown ring is a WorkerCrash — the
    router's respawn-and-retry machinery, not a poisoned result."""
    from repro.cluster.pool import WorkerCrash

    _, _, router = shm_env
    worker = router.pool._workers[0]
    with pytest.raises(WorkerCrash, match="unknown ring"):
        router.pool._read_ring(
            worker, {"name": "psm_gone", "slot": 0, "tag": 1,
                     "ids": [0], "rows": 1, "cols": 4,
                     "dtype": "float64"}
        )


def test_shm_unavailable_degrades_to_counted_pickle(monkeypatch):
    import repro.cluster.pool as pool_mod

    monkeypatch.setattr(pool_mod, "ring_available", lambda: False)
    graph = random_digraph(60, 240, seed=3)
    snapshots = SnapshotManager(graph, CONFIG)
    router = ShardRouter(WorkerPool(workers=1), snapshots)
    router.start()
    try:
        snapshot = router.pin()
        try:
            columns = router.compute(snapshot.seq, [0, 1, 2])
        finally:
            router.unpin(snapshot.seq)
        stats = router.pool.transport_stats()
    finally:
        router.stop()
    assert stats["ring_unavailable"] is True
    assert stats["ring_replies"] == 0
    assert stats["pickle_replies"] > 0
    reference = SimilarityEngine(graph, CONFIG)
    expected = reference.columns([0, 1, 2])
    for q, col in expected.items():
        assert np.allclose(np.asarray(columns[q]), col)


def test_block_too_large_for_slot_falls_back_to_pickle():
    graph = random_digraph(80, 320, seed=5)
    snapshots = SnapshotManager(graph, CONFIG)
    # a slot that fits at most one column: any multi-column shard
    # must take the counted pickle fallback, with identical results
    router = ShardRouter(
        WorkerPool(workers=1, ring_max_batch=1, ring_mb=0.001),
        snapshots,
    )
    router.start()
    try:
        snapshot = router.pin()
        try:
            columns = router.compute(snapshot.seq, list(range(6)))
        finally:
            router.unpin(snapshot.seq)
        stats = router.pool.transport_stats()
        status = router.pool.worker_status()
    finally:
        router.stop()
    assert stats["pickle_replies"] > 0
    assert any(w.get("ring_fallbacks", 0) > 0 for w in status)
    reference = SimilarityEngine(graph, CONFIG)
    expected = reference.columns(list(range(6)))
    for q, col in expected.items():
        assert np.allclose(np.asarray(columns[q]), col)


# ---------------------------------------------------------------------------
# worker-side top-k
# ---------------------------------------------------------------------------
def test_run_tasks_matches_engine_and_isolates_bad_tasks():
    engine = SimilarityEngine(tie_heavy_graph(), CONFIG)
    results, ncols = run_tasks(engine, [
        {"op": "top_k", "query": 0, "k": 4},
        {"op": "score", "query": 0, "u": 1},
        {"op": "top_k", "query": 0, "k": -2},   # bad on its own terms
        {"op": "top_k", "query": 2, "k": 3, "include_query": True},
    ])
    assert ncols == 2  # queries 0 and 2, deduplicated
    expected = engine.top_k(0, k=4)
    assert results[0][0] == "top_k"
    assert list(results[0][1]) == expected.nodes
    assert list(results[0][2]) == pytest.approx(expected.scores)
    assert results[1][0] == "score"
    assert results[2][0] == "error"
    assert results[3][0] == "top_k"


def test_worker_topk_ties_match_parent_selection():
    """compute_tasks through real workers reproduces the parent's
    exact tie-break (argpartition + lexsort) on a tie-heavy graph."""
    graph = tie_heavy_graph()
    snapshots = SnapshotManager(graph, CONFIG)
    router = ShardRouter(WorkerPool(workers=2), snapshots)
    router.start()
    try:
        snapshot = router.pin()
        try:
            tasks = [
                {"op": "top_k", "query": q, "k": 4,
                 "include_query": False}
                for q in range(6)
            ]
            results = router.compute_tasks(snapshot.seq, tasks)
        finally:
            router.unpin(snapshot.seq)
    finally:
        router.stop()
    reference = SimilarityEngine(graph, CONFIG)
    for q, item in enumerate(results):
        expected = reference.top_k(q, k=4)
        assert item[0] == "top_k"
        assert list(item[1]) == expected.nodes, f"tie-break @ {q}"
        assert list(item[2]) == pytest.approx(expected.scores)


@pytest.mark.parametrize("backend", ["process", "thread"])
def test_service_worker_topk_matches_inprocess(backend):
    graph = tie_heavy_graph()

    async def run():
        async with ServingService(
            graph, CONFIG, workers=2, backend=backend,
            cache_entries=0, telemetry=False,
        ) as svc:
            rankings = await asyncio.gather(
                *(svc.top_k(q, k=4) for q in range(6))
            )
            score = await svc.score(0, 7)
        async with ServingService(
            graph, CONFIG, cache_entries=0, telemetry=False
        ) as ref:
            expected = await asyncio.gather(
                *(ref.top_k(q, k=4) for q in range(6))
            )
            ref_score = await ref.score(0, 7)
        return rankings, score, expected, ref_score

    rankings, score, expected, ref_score = asyncio.run(run())
    assert score == ref_score
    for got, want in zip(rankings, expected):
        assert got.to_pairs() == want.to_pairs()


def test_service_bad_k_fails_only_its_own_request():
    graph = tie_heavy_graph()

    async def run():
        async with ServingService(
            graph, CONFIG, workers=1, cache_entries=0,
            telemetry=False,
        ) as svc:
            good, bad = await asyncio.gather(
                svc.top_k(0, k=3),
                svc.top_k(1, k=-1),
                return_exceptions=True,
            )
        return good, bad

    good, bad = asyncio.run(run())
    assert not isinstance(good, Exception) and len(good) == 3
    assert isinstance(bad, Exception)


# ---------------------------------------------------------------------------
# thread backend
# ---------------------------------------------------------------------------
class TestThreadBackend:
    def test_pool_duck_types_and_rejects_chaos(self):
        pool = ThreadWorkerPool(workers=3)
        assert pool.backend == "thread"
        assert pool.persists_index is False
        assert pool.size == 3
        with pytest.raises(ClusterError, match="process"):
            pool.kill_worker(0)

    def test_router_parity_and_describe(self):
        graph = random_digraph(90, 450, seed=9)
        snapshots = SnapshotManager(graph, CONFIG)
        router = ShardRouter(ThreadWorkerPool(workers=3), snapshots)
        router.start()
        try:
            snapshot = router.pin()
            try:
                columns = router.compute(
                    snapshot.seq, list(range(12))
                )
                tasks = [
                    {"op": "top_k", "query": 0, "k": 3,
                     "include_query": False},
                    {"op": "score", "query": 1, "u": 2},
                ]
                task_results = router.compute_tasks(
                    snapshot.seq, tasks
                )
            finally:
                router.unpin(snapshot.seq)
            description = router.describe()
        finally:
            router.stop()
        reference = SimilarityEngine(graph, CONFIG)
        expected = reference.columns(list(range(12)))
        for q, col in expected.items():
            assert np.allclose(np.asarray(columns[q]), col)
        ranked = reference.top_k(0, k=3)
        assert list(task_results[0][1]) == ranked.nodes
        assert task_results[1][0] == "score"
        pool_doc = description["pool"]
        assert pool_doc["backend"] == "thread"
        assert pool_doc["transport"]["mode"] == "inproc"
        assert pool_doc["transport"]["transport_bytes"] == 0

    def test_service_mutation_swaps_through_thread_pool(self):
        graph = random_digraph(60, 240, seed=13)

        async def run():
            async with ServingService(
                graph, CONFIG, workers=2, backend="thread",
                cache_entries=0, telemetry=False,
            ) as svc:
                before = await svc.top_k(0, k=3)
                await asyncio.get_running_loop().run_in_executor(
                    None, svc.mutate, [(0, 0)]
                )
                after = await svc.top_k(0, k=3)
                status = svc.status()
            return before, after, status

        before, after, status = asyncio.run(run())
        assert len(before) == 3 and len(after) == 3
        assert status["snapshots"]["swaps"] >= 1
        assert status["cluster"]["pool"]["current_seq"] >= 1

    def test_service_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ServingService(
                random_digraph(20, 60, seed=1), CONFIG,
                workers=1, backend="fiber",
            )


# ---------------------------------------------------------------------------
# shard splitting
# ---------------------------------------------------------------------------
class TestSplitBalance:
    @pytest.mark.parametrize("workers", [1, 2, 3, 4, 5, 8])
    @pytest.mark.parametrize(
        "batch", [1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 64]
    )
    def test_split_never_empty_never_lopsided(self, workers, batch):
        router = ShardRouter(
            WorkerPool(workers=workers),
            SnapshotManager(
                random_digraph(10, 30, seed=1), CONFIG
            ),
        )
        ids = list(range(batch))
        shards = router._split(ids)
        # order-preserving cover, no shard empty, at most one/worker
        assert [q for shard in shards for q in shard] == ids
        assert all(shards)
        assert len(shards) <= workers
        widths = [len(s) for s in shards]
        assert max(widths) < 2 * min(widths)
        assert max(widths) - min(widths) <= 1
