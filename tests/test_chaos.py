"""The scripted chaos drill, at test scale, on both backends."""

import json

import pytest

from repro.serve.chaos import classify_status, run_drill


class TestClassifyStatus:
    def test_accounted_outcomes(self):
        assert classify_status(200) == "ok"
        assert classify_status(429) == "shed"
        assert classify_status(504) == "deadline"

    def test_everything_else_is_an_error(self):
        for code in (400, 404, 409, 500, 502):
            assert classify_status(code) == "error"


@pytest.mark.parametrize("backend", ["thread", "process"])
class TestChaosDrill:
    def test_kill_hang_corrupt_and_bad_green(self, backend, tmp_path):
        report_path = tmp_path / "chaos.json"
        transitions_path = tmp_path / "transitions.jsonl"
        report = run_drill(
            backend=backend,
            workers=2,
            clients=4,
            requests_per_client=2,
            nodes=80,
            edges=400,
            breaker_cooldown_s=0.2,
            shard_timeout=0.5,
            canary_min_requests=3,
            report_path=report_path,
            transitions_path=transitions_path,
        )
        assert report["ok"], report["checks"]

        # zero dropped: every submitted request resolved to an
        # answer or an explicit shed/deadline
        counts = report["counts"]
        accounted = (
            counts["ok"] + counts["shed"] + counts["deadline"]
        )
        assert accounted == report["submitted"]
        assert counts["error"] == 0

        # each injected fault (kill, hang, corrupt) tripped a
        # breaker, and at least one half-open probe restored one
        assert report["breaker"]["trips"] >= 3
        assert report["breaker"]["restores"] >= 1
        assert report["breaker"]["fallbacks"] >= 1

        # the forced-bad-green canary rolled back, blue kept serving
        assert report["canary"]["outcome"] == "rollback"
        assert report["waves"][-1]["name"] == "after-rollback"
        assert report["waves"][-1]["ok"] > 0

        # the CI artifacts landed and parse
        saved = json.loads(report_path.read_text())
        assert saved["checks"] == report["checks"]
        rows = [
            json.loads(line)
            for line in transitions_path.read_text().splitlines()
        ]
        assert rows, "breaker transitions must be logged"
        assert {"t", "worker", "from", "to"} <= set(rows[0])
        assert any(row["to"] == "open" for row in rows)
        assert any(row["to"] == "closed" for row in rows)
