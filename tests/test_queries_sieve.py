"""Tests for single-source queries, top-k, threshold sieving,
weight schemes and convergence bounds."""

import math

import numpy as np
import pytest

from repro.core import (
    ExponentialWeights,
    GeometricWeights,
    HarmonicWeights,
    clip_small,
    exponential_error_bound,
    geometric_error_bound,
    iterations_for_accuracy,
    sieve_to_sparse,
    simrank_star_series,
    single_pair,
    single_source,
    storage_savings,
    top_k,
)
from repro.graph import figure1_citation_graph, path_graph, random_digraph


class TestSingleSource:
    @pytest.mark.parametrize("query", [0, 3, 7])
    def test_matches_full_series_column(self, query):
        g = random_digraph(15, 60, seed=0)
        full = simrank_star_series(g, 0.6, 8)
        vec = single_source(g, query, 0.6, 8)
        np.testing.assert_allclose(vec, full[:, query], atol=1e-12)

    def test_exponential_weights_column(self):
        g = random_digraph(15, 60, seed=1)
        w = ExponentialWeights(0.6)
        full = simrank_star_series(g, 0.6, 8, weights=w)
        vec = single_source(g, 2, 0.6, 8, weights=w)
        np.testing.assert_allclose(vec, full[:, 2], atol=1e-12)

    def test_single_pair(self):
        g = figure1_citation_graph()
        h, d = g.node_of("h"), g.node_of("d")
        value = single_pair(g, h, d, 0.8, num_terms=40)
        assert value == pytest.approx(0.0098, abs=1e-3)

    def test_validates_inputs(self):
        g = path_graph(4)
        with pytest.raises(IndexError):
            single_source(g, 9)
        with pytest.raises(ValueError):
            single_source(g, 0, num_terms=-1)
        with pytest.raises(ValueError):
            single_source(g, 0, 0.6, 5, weights=GeometricWeights(0.7))


class TestTopK:
    def test_orders_by_score(self):
        g = random_digraph(20, 90, seed=2)
        ranked = top_k(g, 4, k=5, num_terms=8)
        scores = [s for _, s in ranked]
        assert scores == sorted(scores, reverse=True)
        assert len(ranked) == 5

    def test_excludes_query_by_default(self):
        g = random_digraph(20, 90, seed=3)
        assert all(node != 4 for node, _ in top_k(g, 4, k=19))

    def test_include_query_puts_query_first_usually(self):
        # the self-pair carries the l=0 weight; on most graphs it tops
        g = figure1_citation_graph()
        a = g.node_of("a")
        ranked = top_k(g, a, k=1, c=0.8, include_query=True)
        assert ranked[0][0] == a

    def test_deterministic_tie_break(self):
        g = path_graph(6)  # plenty of zero ties
        first = top_k(g, 0, k=5)
        second = top_k(g, 0, k=5)
        assert first == second

    def test_k_zero(self):
        assert top_k(path_graph(3), 0, k=0) == []

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            top_k(path_graph(3), 0, k=-1)


class TestSieve:
    def test_clip_zeroes_small_entries(self):
        s = np.array([[0.5, 1e-5], [2e-4, 0.0]])
        clipped = clip_small(s, 1e-4)
        np.testing.assert_array_equal(
            clipped, np.array([[0.5, 0.0], [2e-4, 0.0]])
        )

    def test_clip_copies(self):
        s = np.array([[1e-6]])
        clip_small(s)
        assert s[0, 0] == 1e-6

    def test_sparse_conversion(self):
        s = np.array([[0.5, 1e-6], [0.0, 0.2]])
        sparse = sieve_to_sparse(s, 1e-4)
        assert sparse.nnz == 2

    def test_storage_savings(self):
        s = np.array([[0.5, 1e-6], [1e-7, 0.2]])
        assert storage_savings(s, 1e-4) == pytest.approx(0.5)
        assert storage_savings(np.zeros((0, 0))) == 0.0

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            clip_small(np.ones((1, 1)), -1.0)


class TestWeightSchemes:
    def test_geometric_normalised(self):
        w = GeometricWeights(0.6)
        total = sum(w.length_weight(l) for l in range(200))
        assert total == pytest.approx(1.0)

    def test_exponential_normalised(self):
        w = ExponentialWeights(0.6)
        total = sum(w.length_weight(l) for l in range(40))
        assert total == pytest.approx(1.0)

    def test_harmonic_normalised(self):
        w = HarmonicWeights(0.6)
        total = sum(w.length_weight(l) for l in range(500))
        assert total == pytest.approx(1.0)
        assert w.length_weight(0) == 0.0

    def test_all_decreasing_for_length_ge_one(self):
        for scheme in (
            GeometricWeights(0.8),
            ExponentialWeights(0.8),
            HarmonicWeights(0.8),
        ):
            values = [scheme.length_weight(l) for l in range(1, 12)]
            assert all(a > b for a, b in zip(values, values[1:])), (
                scheme.name
            )

    def test_invalid_damping_rejected(self):
        for cls in (GeometricWeights, ExponentialWeights, HarmonicWeights):
            with pytest.raises(ValueError):
                cls(0.0)
            with pytest.raises(ValueError):
                cls(1.0)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            GeometricWeights(0.5).length_weight(-1)

    def test_names(self):
        assert GeometricWeights(0.5).name == "geometric"
        assert ExponentialWeights(0.5).name == "exponential"
        assert HarmonicWeights(0.5).name == "harmonic"


class TestConvergenceBounds:
    def test_bound_values(self):
        assert geometric_error_bound(0.8, 4) == pytest.approx(0.8 ** 5)
        assert exponential_error_bound(0.8, 4) == pytest.approx(
            0.8 ** 5 / math.factorial(5)
        )

    def test_exponential_always_tighter(self):
        for k in range(10):
            assert exponential_error_bound(0.6, k) <= geometric_error_bound(
                0.6, k
            )

    def test_iterations_for_accuracy_geometric(self):
        k = iterations_for_accuracy(0.8, 1e-3, "geometric")
        assert geometric_error_bound(0.8, k) <= 1e-3
        assert k == 0 or geometric_error_bound(0.8, k - 1) > 1e-3

    def test_iterations_for_accuracy_exponential(self):
        k = iterations_for_accuracy(0.8, 1e-3, "exponential")
        assert exponential_error_bound(0.8, k) <= 1e-3
        assert k == 0 or exponential_error_bound(0.8, k - 1) > 1e-3

    def test_weight_scheme_bounds_agree(self):
        assert GeometricWeights(0.7).error_bound(3) == pytest.approx(
            geometric_error_bound(0.7, 3)
        )
        assert ExponentialWeights(0.7).error_bound(3) == pytest.approx(
            exponential_error_bound(0.7, 3)
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            geometric_error_bound(1.5, 2)
        with pytest.raises(ValueError):
            geometric_error_bound(0.5, -1)
        with pytest.raises(ValueError):
            iterations_for_accuracy(0.5, 2.0)
        with pytest.raises(ValueError):
            iterations_for_accuracy(0.5, 1e-3, "sideways")
