"""Tests for the coalescing request broker and the serving facade."""

import asyncio

import numpy as np
import pytest

from repro.engine import SimilarityEngine
from repro.graph import figure1_citation_graph, random_digraph
from repro.serve import QueryBroker, ServingService, SnapshotManager


def run(coro):
    return asyncio.run(coro)


def make_service(graph=None, **kwargs):
    if graph is None:
        graph = random_digraph(60, 300, seed=3)
    kwargs.setdefault("num_iterations", 6)
    return ServingService(graph, **kwargs)


class TestCoalescing:
    def test_concurrent_requests_coalesce_into_batches(self):
        service = make_service(max_batch=16, max_wait_ms=5.0)

        async def drive():
            async with service:
                return await asyncio.gather(
                    *(service.top_k(q, k=5) for q in range(32))
                )

        rankings = run(drive())
        assert len(rankings) == 32
        stats = service.broker.stats
        assert stats.requests == 32
        assert stats.dispatched == 32
        assert stats.batches < 32            # coalescing happened
        assert stats.largest_batch > 1
        assert stats.largest_batch <= 16     # max_batch respected
        assert stats.coalesced_requests > 0
        assert sum(
            size * count for size, count in stats.batch_sizes.items()
        ) == 32

    def test_coalesced_answers_match_engine_answers(self):
        graph = random_digraph(50, 250, seed=4)
        service = make_service(graph.copy(), max_batch=8)
        engine = SimilarityEngine(graph, num_iterations=6)

        async def drive():
            async with service:
                return await asyncio.gather(
                    *(service.top_k(q, k=4) for q in range(20))
                )

        rankings = run(drive())
        for q, ranking in enumerate(rankings):
            assert ranking == engine.top_k(q, k=4)

    def test_score_requests_ride_the_same_batches(self):
        graph = figure1_citation_graph()
        service = make_service(graph.copy(), num_iterations=10)
        engine = SimilarityEngine(graph, num_iterations=10)

        async def drive():
            async with service:
                return await asyncio.gather(
                    service.score("h", "d"),
                    service.score("i", "j"),
                    service.top_k("h", k=3),
                )

        s1, s2, ranking = run(drive())
        assert s1 == pytest.approx(engine.score("h", "d"))
        assert s2 == pytest.approx(engine.score("i", "j"))
        assert ranking == engine.top_k("h", k=3)

    def test_max_batch_one_still_serves(self):
        service = make_service(max_batch=1, max_wait_ms=0.0)

        async def drive():
            async with service:
                return await asyncio.gather(
                    *(service.top_k(q, k=3) for q in range(6))
                )

        assert len(run(drive())) == 6
        stats = service.broker.stats
        assert stats.batches == 6
        assert stats.largest_batch == 1

    def test_duplicate_queries_in_one_batch_share_one_walk(self):
        service = make_service(max_batch=32, max_wait_ms=5.0)

        async def drive():
            async with service:
                return await asyncio.gather(
                    *(service.top_k(7, k=3) for _ in range(10))
                )

        rankings = run(drive())
        assert all(r == rankings[0] for r in rankings)
        engine = service.snapshots.current.engine
        # one column compute regardless of how many callers asked
        assert engine.stats.column_computes == 1


class TestCacheIntegration:
    def test_repeat_round_hits_result_cache(self):
        service = make_service(cache_entries=256, max_batch=8)

        async def drive():
            async with service:
                first = await asyncio.gather(
                    *(service.top_k(q, k=5) for q in range(8))
                )
                second = await asyncio.gather(
                    *(service.top_k(q, k=5) for q in range(8))
                )
                return first, second

        first, second = run(drive())
        assert first == second
        assert service.broker.stats.cache_hits == 8
        assert service.cache.stats.hits == 8

    def test_different_k_is_a_different_cache_entry(self):
        service = make_service(cache_entries=256)

        async def drive():
            async with service:
                a = await service.top_k(3, k=3)
                b = await service.top_k(3, k=5)
                return a, b

        a, b = run(drive())
        assert len(a) == 3 and len(b) == 5
        assert service.broker.stats.cache_hits == 0

    def test_cache_disabled_with_zero_entries(self):
        service = make_service(cache_entries=0)
        assert service.cache is None

        async def drive():
            async with service:
                await service.top_k(1, k=3)
                await service.top_k(1, k=3)

        run(drive())
        # second request is a broker round-trip but an engine memo hit
        assert service.broker.stats.dispatched == 2


class TestErrors:
    def test_unknown_label_fails_only_its_own_request(self):
        service = make_service(
            figure1_citation_graph(), num_iterations=8
        )

        async def drive():
            async with service:
                good, bad = await asyncio.gather(
                    service.top_k("h", k=3),
                    service.top_k("no-such-node", k=3),
                    return_exceptions=True,
                )
                return good, bad

        good, bad = run(drive())
        assert not isinstance(good, Exception)
        assert isinstance(bad, KeyError)
        assert service.broker.stats.errors == 1

    def test_out_of_range_id_raises(self):
        service = make_service()

        async def drive():
            async with service:
                await service.top_k(10_000, k=3)

        with pytest.raises(IndexError):
            run(drive())

    def test_submit_without_start_raises(self):
        service = make_service()

        async def drive():
            await service.top_k(0, k=3)

        with pytest.raises(RuntimeError, match="not running"):
            run(drive())

    def test_broker_validates_knobs(self):
        manager = SnapshotManager(
            random_digraph(10, 30, seed=0), num_iterations=4
        )
        with pytest.raises(ValueError):
            QueryBroker(manager, max_batch=0)
        with pytest.raises(ValueError):
            QueryBroker(manager, max_wait_ms=-1.0)


class TestBackgroundLoop:
    def test_sync_queries_from_threads_funnel_into_broker(self):
        import threading

        service = make_service(max_batch=16, max_wait_ms=10.0)
        service.start_background()
        try:
            results = {}
            barrier = threading.Barrier(8)

            def worker(q):
                barrier.wait()
                results[q] = service.top_k_sync(q, k=4)

            threads = [
                threading.Thread(target=worker, args=(q,))
                for q in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(results) == 8
            assert service.broker.stats.largest_batch > 1
        finally:
            service.close()

    def test_close_is_idempotent(self):
        service = make_service()
        service.start_background()
        service.close()
        service.close()  # no-op

    def test_sync_without_background_raises(self):
        service = make_service()
        with pytest.raises(RuntimeError, match="background loop"):
            service.top_k_sync(0)


class TestStatus:
    def test_status_document_shape(self):
        service = make_service(cache_entries=32)

        async def drive():
            async with service:
                await service.top_k(0, k=3)

        run(drive())
        status = service.status()
        assert status["broker"]["requests"] == 1
        assert status["batching"]["max_batch"] == 32
        assert status["cache"]["entries"] == 1
        assert status["snapshots"]["current"]["seq"] == 0
        assert status["config"]["measure"] == "gSR*"
        assert status["uptime_seconds"] >= 0
        # JSON-serialisable end to end
        import json

        json.dumps(status)


class TestMalformedRequestsDoNotBrickTheBroker:
    def test_bad_k_fails_its_caller_only(self):
        service = make_service(max_batch=8, max_wait_ms=5.0)

        async def drive():
            async with service:
                bad, good = await asyncio.gather(
                    service.top_k(0, k=-1),
                    service.top_k(1, k=3),
                    return_exceptions=True,
                )
                # the broker survived: a later request still answers
                later = await service.top_k(2, k=3)
                return bad, good, later

        bad, good, later = run(drive())
        assert isinstance(bad, ValueError)
        assert not isinstance(good, Exception) and len(good) == 3
        assert len(later) == 3
        assert service.broker.running is False  # cleanly stopped

    def test_render_failure_mid_batch_spares_the_rest(self):
        # force a failure past the early-validation guard, inside the
        # dispatcher's render loop itself
        import repro.serve.broker as broker_mod

        service = make_service(max_batch=8, max_wait_ms=5.0)
        original = broker_mod.Ranking.from_scores
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("injected render failure")
            return original(*args, **kwargs)

        async def drive():
            async with service:
                first = await asyncio.gather(
                    *(service.top_k(q, k=3) for q in range(4)),
                    return_exceptions=True,
                )
                recovered = await service.top_k(9, k=3)
                return first, recovered

        broker_mod.Ranking.from_scores = flaky
        try:
            first, recovered = run(drive())
        finally:
            broker_mod.Ranking.from_scores = original
        failures = [r for r in first if isinstance(r, Exception)]
        successes = [r for r in first if not isinstance(r, Exception)]
        assert len(failures) == 1  # only the injected one
        assert len(successes) == 3
        assert len(recovered) == 3  # dispatcher alive afterwards
        assert service.broker.stats.errors == 1
