"""Mutation-during-serving: snapshots, hot-swap, and staleness.

Covers the satellite checklist: ``DiGraph.edge_arrays`` refresh after
mutation, engine staleness fingerprints after direct graph mutation,
and the snapshot-swap path — the old snapshot keeps answering
(identically) while the new generation serves fresh results, with
zero failed requests across a mid-traffic mutation.
"""

import asyncio

import numpy as np
import pytest

from repro.engine import SimilarityEngine
from repro.graph import DiGraph, random_digraph
from repro.serve import ServingService, SnapshotManager


class TestEdgeArraysUnderMutation:
    def test_edge_arrays_refresh_after_add_edge(self):
        g = DiGraph(4, edges=[(0, 1), (1, 2)])
        heads, tails = g.edge_arrays()
        assert list(zip(heads, tails)) == [(0, 1), (1, 2)]
        g.add_edge(2, 3)
        heads2, tails2 = g.edge_arrays()
        assert list(zip(heads2, tails2)) == [(0, 1), (1, 2), (2, 3)]

    def test_edge_arrays_refresh_after_remove_edge(self):
        g = DiGraph(3, edges=[(0, 1), (1, 2)])
        g.edge_arrays()  # prime the cache
        g.remove_edge(0, 1)
        heads, tails = g.edge_arrays()
        assert list(zip(heads, tails)) == [(1, 2)]

    def test_edge_arrays_cache_reused_without_mutation(self):
        g = DiGraph(3, edges=[(0, 1)])
        heads1, _ = g.edge_arrays()
        heads2, _ = g.edge_arrays()
        assert heads1 is heads2  # same cached object

    def test_edge_count_preserving_swap_changes_arrays(self):
        g = DiGraph(4, edges=[(0, 1), (2, 3)])
        g.edge_arrays()
        g.remove_edge(0, 1)
        g.add_edge(1, 0)  # same m, different edges
        heads, tails = g.edge_arrays()
        assert list(zip(heads, tails)) == [(1, 0), (2, 3)]


class TestEngineStaleness:
    def test_direct_graph_mutation_detected_by_fingerprint(self):
        g = random_digraph(30, 120, seed=8)
        engine = SimilarityEngine(g, num_iterations=6)
        before = engine.single_source(0).copy()
        g.add_edge(0, 5) if not g.has_edge(0, 5) else g.remove_edge(0, 5)
        after = engine.single_source(0)
        assert engine.stats.invalidations == 1
        assert engine.stats.transition_builds == 2
        assert not np.array_equal(before, after)

    def test_edge_swap_preserving_count_still_invalidates(self):
        g = DiGraph(5, edges=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        engine = SimilarityEngine(g, num_iterations=6)
        engine.single_source(1)
        g.remove_edge(0, 1)
        g.add_edge(1, 0)  # num_edges unchanged, version moved
        engine.single_source(1)
        assert engine.stats.invalidations == 1


class TestSnapshotManager:
    def test_initial_snapshot_copies_the_graph(self):
        g = DiGraph(3, edges=[(0, 1)])
        manager = SnapshotManager(g, num_iterations=5)
        snapshot = manager.current
        assert snapshot.graph is not g
        assert snapshot.graph == g
        # external mutation of the caller's graph is invisible
        g.add_edge(1, 2)
        assert not snapshot.graph.has_edge(1, 2)

    def test_mutate_swaps_to_new_generation(self):
        manager = SnapshotManager(
            DiGraph(4, edges=[(0, 1), (1, 2)]), num_iterations=5
        )
        old = manager.current
        fresh = manager.mutate(add=[(2, 3)])
        assert manager.current is fresh
        assert fresh.seq == old.seq + 1
        assert fresh.graph.has_edge(2, 3)
        assert not old.graph.has_edge(2, 3)  # old generation untouched
        assert manager.swaps == 1 and manager.builds == 1

    def test_mutate_remove_and_labels(self):
        g = DiGraph.from_label_edges(
            [("a", "b"), ("b", "c"), ("c", "a")]
        )
        manager = SnapshotManager(g, num_iterations=5)
        fresh = manager.mutate(remove=[("a", "b")])
        assert not fresh.graph.has_edge(
            fresh.graph.node_of("a"), fresh.graph.node_of("b")
        )

    def test_failed_mutation_swaps_nothing(self):
        manager = SnapshotManager(
            DiGraph(3, edges=[(0, 1)]), num_iterations=5
        )
        old = manager.current
        with pytest.raises(KeyError):
            manager.mutate(remove=[(1, 2)])  # edge absent
        assert manager.current is old
        assert manager.swaps == 0

    def test_new_snapshot_arrives_warm(self):
        manager = SnapshotManager(
            random_digraph(20, 80, seed=10), num_iterations=5
        )
        fresh = manager.mutate(add=[(0, 1)])
        # Q / Q^T arrived during the background build, pre-swap —
        # built outright on the full path, adopted from the spliced
        # index on the delta path
        stats = fresh.engine.stats
        assert stats.transition_builds + stats.index_adoptions == 1

    def test_warmup_builds_artifacts(self):
        manager = SnapshotManager(
            random_digraph(20, 80, seed=11), num_iterations=5
        )
        stats = manager.warmup()
        assert stats["transition_builds"] == 1


class TestSwapMidTraffic:
    def test_zero_failed_requests_across_mutation(self):
        """The acceptance scenario: mutate while queries are in flight."""
        graph = random_digraph(80, 400, seed=12)
        service = ServingService(
            graph, num_iterations=6, max_batch=8, max_wait_ms=1.0,
            cache_entries=0,
        )
        mutation_done = asyncio.Event()

        async def traffic(rounds=6):
            answered = 0
            for r in range(rounds):
                rankings = await asyncio.gather(
                    *(service.top_k(q, k=5) for q in range(12))
                )
                answered += len(rankings)
                if r == 2:
                    # mid-traffic mutation (synchronous build + swap
                    # in an executor, exactly like the HTTP endpoint)
                    await asyncio.get_running_loop().run_in_executor(
                        None, service.mutate, [(0, 1), (1, 0)]
                    )
                    mutation_done.set()
            return answered

        async def drive():
            async with service:
                return await traffic()

        answered = asyncio.run(drive())
        assert answered == 72                    # zero failed requests
        assert mutation_done.is_set()
        assert service.broker.stats.errors == 0
        assert service.snapshots.swaps == 1
        assert service.snapshots.current.seq == 1

    def test_old_snapshot_keeps_answering_new_serves_fresh(self):
        graph = DiGraph(5, edges=[(0, 2), (1, 2), (3, 2), (3, 4)])
        manager = SnapshotManager(graph, num_iterations=8)
        old = manager.current
        before = old.engine.top_k(2, k=3)
        fresh = manager.mutate(add=[(4, 2), (0, 4)])
        # the pinned old snapshot answers exactly as before the swap
        assert old.engine.top_k(2, k=3) == before
        # the new generation sees the mutation
        after = fresh.engine.top_k(2, k=3)
        assert [e.score for e in after] != [e.score for e in before]
        # and the manager now routes new queries to the new snapshot
        assert manager.current is fresh

    def test_cached_results_are_version_scoped(self):
        service = ServingService(
            DiGraph(4, edges=[(0, 2), (1, 2)]),
            num_iterations=6,
            cache_entries=64,
        )

        async def drive():
            async with service:
                before = await service.top_k(2, k=2)
                service.mutate(add=[(3, 2)])
                after = await service.top_k(2, k=2)
                return before, after

        before, after = asyncio.run(drive())
        # the post-swap request missed the (versioned) cache and was
        # answered by the new snapshot
        assert service.broker.stats.cache_hits == 0
        assert [e.score for e in before] != [e.score for e in after]


class TestPersistentIndex:
    """Restart-from-disk: the snapshot manager and repro.index."""

    def _manager(self, graph, path, **overrides):
        from repro.engine import SimilarityConfig

        config = SimilarityConfig(
            measure="memo-gSR*", num_iterations=6
        )
        return SnapshotManager(
            graph, config, index_path=path, **overrides
        )

    def test_warmup_persists_a_fresh_index(self, tmp_path):
        path = tmp_path / "serve.simidx"
        manager = self._manager(random_digraph(80, 480, seed=3), path)
        assert not path.exists()
        manager.warmup()
        assert path.exists()
        assert manager.index_saves == 1
        assert manager.index_loads == 0
        # a second warmup does not rewrite an adopted/just-saved index
        manager.warmup()
        assert manager.index_saves == 1

    def test_restart_serves_first_query_without_rebuilding(
        self, tmp_path
    ):
        path = tmp_path / "serve.simidx"
        graph = random_digraph(80, 480, seed=3)
        self._manager(graph, path).warmup()

        # "restart": a brand-new manager process over the same graph
        restarted = self._manager(graph, path)
        assert restarted.index_loads == 1
        engine = restarted.current.engine
        column = engine.single_source(7)
        restarted.warmup()
        stats = engine.stats.snapshot()
        assert stats["transition_builds"] == 0
        assert stats["compression_builds"] == 0
        assert stats["index_adoptions"] >= 2
        assert restarted.index_saves == 0  # nothing new to persist
        # identical answers to a cold-built engine
        fresh = self._manager(graph, tmp_path / "other.simidx")
        np.testing.assert_allclose(
            column, fresh.current.engine.single_source(7), atol=1e-14
        )

    def test_mutate_persists_the_new_generation(self, tmp_path):
        path = tmp_path / "serve.simidx"
        graph = random_digraph(40, 200, seed=4)
        manager = self._manager(graph, path)
        manager.warmup()
        if graph.has_edge(0, 1):
            manager.mutate(remove=[(0, 1)])
        else:
            manager.mutate(add=[(0, 1)])
        assert manager.index_saves == 2
        # a restart over the *mutated* content warm-loads
        mutated = manager.current.graph.copy()
        restarted = self._manager(mutated, path)
        assert restarted.index_loads == 1

    def test_stale_index_is_ignored_not_fatal(self, tmp_path):
        path = tmp_path / "serve.simidx"
        self._manager(random_digraph(40, 200, seed=5), path).warmup()
        other = random_digraph(40, 200, seed=6)
        manager = self._manager(other, path)
        assert manager.index_loads == 0  # fingerprint mismatch
        manager.warmup()  # rebuilds and overwrites
        assert manager.index_saves == 1
        assert self._manager(other, path).index_loads == 1

    def test_corrupt_index_is_ignored_not_fatal(self, tmp_path):
        path = tmp_path / "serve.simidx"
        graph = random_digraph(40, 200, seed=5)
        self._manager(graph, path).warmup()
        raw = bytearray(path.read_bytes())
        raw[:4] = b"JUNK"
        path.write_bytes(bytes(raw))
        manager = self._manager(graph, path)
        assert manager.index_load_errors == 1
        assert manager.current.engine.single_source(0) is not None

    def test_persist_index_false_never_writes(self, tmp_path):
        path = tmp_path / "serve.simidx"
        graph = random_digraph(40, 200, seed=5)
        manager = self._manager(graph, path, persist_index=False)
        manager.warmup()
        assert not path.exists()
        assert manager.index_saves == 0

    def test_describe_reports_index_counters(self, tmp_path):
        path = tmp_path / "serve.simidx"
        manager = self._manager(random_digraph(40, 200, seed=5), path)
        manager.warmup()
        document = manager.describe()
        assert document["index"]["path"] == str(path)
        assert document["index"]["saves"] == 1
        assert document["index"]["loads"] == 0
        assert document["index"]["load_errors"] == 0

    def test_service_passthrough_and_status(self, tmp_path):
        path = tmp_path / "serve.simidx"
        graph = random_digraph(40, 200, seed=5)
        service = ServingService(
            graph,
            measure="gSR*",
            num_iterations=6,
            index_path=path,
        )
        service.warmup()
        status = service.status()
        assert status["snapshots"]["index"]["saves"] == 1
        assert "transition_builds" in status["engine"]
