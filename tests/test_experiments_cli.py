"""Integration tests for the experiments registry and CLI.

The heavy experiments are exercised by ``benchmarks/``; here we cover
registry dispatch, the CLI plumbing, and the cheapest two experiments
end to end.
"""

import pytest

from repro.bench.harness import ExperimentResult
from repro.experiments import EXPERIMENTS, main, run_experiment


class TestRegistry:
    def test_all_twelve_exhibits_registered(self):
        assert set(EXPERIMENTS) == {
            "fig1", "fig5", "fig6a", "fig6b", "fig6c", "fig6d",
            "fig6e", "fig6f", "fig6g", "fig6h",
            "abl-weights", "abl-biclique",
        }

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_fig1_end_to_end(self):
        result = run_experiment("fig1", fast=True)
        assert isinstance(result, ExperimentResult)
        assert result.failed_checks() == []
        # 7 pairs x 4 measures = 28 checks
        assert len(result.checks) == 28
        assert "Figure 1 (C = 0.8)" in result.tables

    def test_fig5_end_to_end(self):
        result = run_experiment("fig5", fast=True)
        assert result.failed_checks() == []
        rows = result.tables["Datasets (stand-ins vs paper)"]
        assert [r["Dataset"] for r in rows] == [
            "cit-hepth", "dblp", "d05", "d08", "d11",
            "web-google", "cit-patent",
        ]


class TestCli:
    def test_cli_runs_fig1(self, capsys):
        exit_code = main(["fig1"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "=== Figure 1" in out
        assert "[ok]" in out

    def test_cli_rejects_unknown_id(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_cli_fast_flag(self, capsys):
        assert main(["fig5", "--fast"]) == 0

    def test_cli_multiple_ids(self, capsys):
        assert main(["fig1", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 5" in out
