"""Tests for the blocked multi-source kernel, the shared coefficient
table, the in-place spmm building block, and dtype threading through
the iteration cores."""

import math

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    ExponentialWeights,
    GeometricWeights,
    HarmonicWeights,
    memo_simrank_star_factorized,
    multi_source,
    series_coefficients,
    simrank_star,
    simrank_star_exponential,
    simrank_star_series,
    single_source,
    single_source_reference,
)
from repro.core import kernels
from repro.core.multi_source import _coefficients_cached
from repro.graph import figure1_citation_graph, path_graph, random_digraph
from repro.graph.matrices import backward_transition_matrix


class TestSeriesCoefficients:
    def test_values_match_formula(self):
        w = GeometricWeights(0.6)
        table = series_coefficients(4, w)
        for beta in range(5):
            for alpha in range(5):
                length = alpha + beta
                expected = 0.0
                if length <= 4:
                    expected = (
                        w.length_weight(length)
                        * math.comb(length, alpha)
                        / 2.0 ** length
                    )
                assert table[beta, alpha] == expected

    def test_cached_per_configuration(self):
        _coefficients_cached.cache_clear()
        a = series_coefficients(6, GeometricWeights(0.6))
        b = series_coefficients(6, GeometricWeights(0.6))
        assert a is b  # equal frozen dataclasses share one table
        c = series_coefficients(6, GeometricWeights(0.7))
        assert c is not a

    def test_table_is_read_only(self):
        table = series_coefficients(3, GeometricWeights(0.6))
        with pytest.raises(ValueError):
            table[0, 0] = 1.0

    def test_rejects_negative_terms(self):
        with pytest.raises(ValueError):
            series_coefficients(-1, GeometricWeights(0.6))


class TestBlockedParity:
    """The acceptance bar: blocked == per-query walk, column by column."""

    def test_matches_reference_float64(self):
        g = random_digraph(150, 900, seed=8)
        queries = [0, 3, 77, 3, 149]  # duplicates allowed
        block = multi_source(g, queries, 0.6, 10)
        assert block.shape == (150, len(queries))
        for j, q in enumerate(queries):
            ref = single_source_reference(g, q, 0.6, 10)
            np.testing.assert_allclose(
                block[:, j], ref, atol=1e-10, rtol=0
            )

    def test_matches_reference_float32_loose(self):
        g = random_digraph(120, 700, seed=9)
        queries = [1, 5, 9]
        block = multi_source(g, queries, 0.6, 8, dtype=np.float32)
        assert block.dtype == np.float32
        for j, q in enumerate(queries):
            ref = single_source_reference(g, q, 0.6, 8)
            np.testing.assert_allclose(
                block[:, j], ref, atol=1e-4, rtol=1e-4
            )

    @pytest.mark.parametrize(
        "scheme", [GeometricWeights, ExponentialWeights, HarmonicWeights]
    )
    def test_matches_reference_all_weight_schemes(self, scheme):
        g = random_digraph(80, 500, seed=10)
        w = scheme(0.7)
        block = multi_source(g, [2, 11], 0.7, 7, weights=w)
        for j, q in enumerate([2, 11]):
            ref = single_source_reference(g, q, 0.7, 7, weights=w)
            np.testing.assert_allclose(
                block[:, j], ref, atol=1e-10, rtol=0
            )

    def test_block_size_chunking_is_exact(self):
        g = random_digraph(60, 360, seed=11)
        queries = list(range(10))
        whole = multi_source(g, queries, 0.6, 6)
        chunked = multi_source(g, queries, 0.6, 6, block_size=3)
        np.testing.assert_array_equal(whole, chunked)

    def test_single_source_is_the_b1_case(self):
        g = random_digraph(70, 420, seed=12)
        via_single = single_source(g, 7, 0.6, 9)
        via_block = multi_source(g, [7], 0.6, 9)[:, 0]
        np.testing.assert_array_equal(via_single, via_block)

    def test_column_agrees_with_series_matrix(self):
        g = figure1_citation_graph()
        full = simrank_star_series(g, 0.8, 8)
        block = multi_source(g, [0, 4, 10], 0.8, 8)
        for j, q in enumerate([0, 4, 10]):
            np.testing.assert_allclose(
                block[:, j], full[:, q], atol=1e-12
            )

    def test_prebuilt_transition_reused(self):
        g = random_digraph(50, 300, seed=13)
        q = backward_transition_matrix(g)
        qt = q.T.tocsr()
        with_prebuilt = multi_source(
            g, [4, 8], 0.6, 6, transition=q, transition_t=qt
        )
        without = multi_source(g, [4, 8], 0.6, 6)
        np.testing.assert_array_equal(with_prebuilt, without)

    def test_float64_transition_converted_for_float32(self):
        g = random_digraph(40, 200, seed=14)
        q64 = backward_transition_matrix(g)
        out = multi_source(
            g, [3], 0.6, 5, transition=q64, dtype=np.float32
        )
        assert out.dtype == np.float32


class TestMultiSourceValidation:
    def test_empty_batch(self):
        g = path_graph(5)
        out = multi_source(g, [], 0.6, 5)
        assert out.shape == (5, 0)

    def test_out_of_range_query(self):
        with pytest.raises(IndexError, match="out of range"):
            multi_source(path_graph(3), [0, 3], 0.6, 5)
        with pytest.raises(IndexError, match="out of range"):
            multi_source(path_graph(3), [-1], 0.6, 5)

    def test_weight_damping_mismatch(self):
        with pytest.raises(ValueError, match="disagrees"):
            multi_source(
                path_graph(3), [0], 0.6, 5,
                weights=GeometricWeights(0.7),
            )

    def test_bad_block_size(self):
        with pytest.raises(ValueError, match="block_size"):
            multi_source(path_graph(3), [0], 0.6, 5, block_size=0)

    def test_bad_damping_and_terms(self):
        with pytest.raises(ValueError):
            multi_source(path_graph(3), [0], 1.5, 5)
        with pytest.raises(ValueError):
            multi_source(path_graph(3), [0], 0.6, -2)


class TestSpmm:
    def _operands(self, dtype=np.float64):
        rng = np.random.default_rng(0)
        a = sp.csr_array(
            sp.random(9, 7, density=0.4, random_state=1, dtype=np.float64)
        ).astype(dtype)
        x = rng.random((7, 3)).astype(dtype)
        return a, x

    def test_matches_operator(self):
        a, x = self._operands()
        out = np.empty((9, 3))
        kernels.spmm(a, x, out=out)
        np.testing.assert_allclose(out, a @ x, atol=1e-15)

    def test_accumulate(self):
        a, x = self._operands()
        out = np.ones((9, 3))
        kernels.spmm(a, x, out=out, accumulate=True)
        np.testing.assert_allclose(out, 1.0 + a @ x, atol=1e-15)

    def test_float32(self):
        a, x = self._operands(np.float32)
        out = np.empty((9, 3), dtype=np.float32)
        kernels.spmm(a, x, out=out)
        np.testing.assert_allclose(out, a @ x, atol=1e-6)

    def test_fallback_path_matches(self, monkeypatch):
        a, x = self._operands()
        fast = np.empty((9, 3))
        kernels.spmm(a, x, out=fast)
        monkeypatch.setattr(kernels, "_HAVE_SPARSETOOLS", False)
        slow = np.empty((9, 3))
        kernels.spmm(a, x, out=slow)
        np.testing.assert_allclose(slow, fast, atol=1e-15)

    def test_rejects_aliasing_and_bad_shapes(self):
        a, x = self._operands()
        with pytest.raises(ValueError, match="alias"):
            square = sp.csr_array(np.eye(7))
            kernels.spmm(square, x, out=x)
        with pytest.raises(ValueError, match="shape mismatch"):
            kernels.spmm(a, x, out=np.empty((3, 3)))
        with pytest.raises(TypeError, match="CSR"):
            kernels.spmm(a.tocsc(), x, out=np.empty((9, 3)))

    def test_symmetrize_and_diagonal(self):
        m = np.arange(9.0).reshape(3, 3)
        out = np.empty_like(m)
        kernels.symmetrize(m, out=out, scale=0.5)
        np.testing.assert_allclose(out, 0.5 * (m + m.T))
        kernels.add_scaled_identity(out, 2.0)
        np.testing.assert_allclose(np.diag(out), np.diag(m) + 2.0)
        with pytest.raises(ValueError, match="distinct"):
            kernels.symmetrize(m, out=m, scale=1.0)


class TestCoreDtype:
    """float32 opt-in threads through every iteration core."""

    def test_iterative(self):
        g = random_digraph(60, 360, seed=15)
        full = simrank_star(g, 0.6, 8)
        half = simrank_star(g, 0.6, 8, dtype="float32")
        assert full.dtype == np.float64 and half.dtype == np.float32
        np.testing.assert_allclose(half, full, atol=1e-4)

    def test_exponential(self):
        g = random_digraph(60, 360, seed=16)
        full = simrank_star_exponential(g, 0.6, 8)
        half = simrank_star_exponential(g, 0.6, 8, dtype=np.float32)
        assert half.dtype == np.float32
        np.testing.assert_allclose(half, full, atol=1e-4)

    def test_memo_factorized(self):
        g = random_digraph(60, 360, seed=17)
        full = memo_simrank_star_factorized(g, 0.6, 6)
        half = memo_simrank_star_factorized(g, 0.6, 6, dtype="float32")
        assert half.dtype == np.float32
        np.testing.assert_allclose(half, full, atol=1e-4)

    def test_reference_loop_unchanged_by_default(self):
        # the allocation-free cores must not drift from the simple
        # recurrences they replaced
        g = random_digraph(60, 360, seed=18)
        np.testing.assert_allclose(
            simrank_star(g, 0.8, 10),
            simrank_star_series(g, 0.8, 10),
            atol=1e-12,
        )


class TestQueryIdTypes:
    def test_float_ids_rejected_not_truncated(self):
        g = path_graph(5)
        with pytest.raises(TypeError, match="integers"):
            multi_source(g, [1.7], 0.6, 5)
        with pytest.raises(TypeError, match="integers"):
            single_source(g, 2.9, 0.6, 5)

    def test_numpy_integer_ids_accepted(self):
        g = path_graph(5)
        ids = np.array([0, 2], dtype=np.int32)
        out = multi_source(g, ids, 0.6, 5)
        np.testing.assert_array_equal(
            out, multi_source(g, [0, 2], 0.6, 5)
        )
