"""Unit tests for the DiGraph substrate."""

import numpy as np
import pytest

from repro.graph import DiGraph


class TestConstruction:
    def test_empty_graph(self):
        g = DiGraph(0)
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.density == 0.0

    def test_nodes_without_edges(self):
        g = DiGraph(5)
        assert g.num_nodes == 5
        assert g.num_edges == 0
        assert list(g.nodes()) == [0, 1, 2, 3, 4]

    def test_negative_node_count_rejected(self):
        with pytest.raises(ValueError):
            DiGraph(-1)

    def test_edges_in_constructor(self):
        g = DiGraph(3, edges=[(0, 1), (1, 2)])
        assert g.num_edges == 2
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_duplicate_edges_collapse(self):
        g = DiGraph(2, edges=[(0, 1), (0, 1), (0, 1)])
        assert g.num_edges == 1

    def test_from_edges_infers_node_count(self):
        g = DiGraph.from_edges([(0, 4), (2, 3)])
        assert g.num_nodes == 5

    def test_from_edges_explicit_node_count(self):
        g = DiGraph.from_edges([(0, 1)], num_nodes=10)
        assert g.num_nodes == 10

    def test_from_label_edges_first_appearance_order(self):
        g = DiGraph.from_label_edges([("x", "y"), ("y", "z"), ("x", "z")])
        assert g.node_of("x") == 0
        assert g.node_of("y") == 1
        assert g.node_of("z") == 2
        assert g.has_edge(0, 2)

    def test_self_loop_allowed(self):
        g = DiGraph(1, edges=[(0, 0)])
        assert g.has_edge(0, 0)
        assert g.has_self_loops()

    def test_out_of_range_edge_rejected(self):
        g = DiGraph(2)
        with pytest.raises(IndexError):
            g.add_edge(0, 2)
        with pytest.raises(IndexError):
            g.add_edge(-1, 0)


class TestNeighbors:
    @pytest.fixture
    def diamond(self):
        # 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        return DiGraph(4, edges=[(0, 1), (0, 2), (1, 3), (2, 3)])

    def test_out_neighbors_sorted(self, diamond):
        assert diamond.out_neighbors(0) == (1, 2)

    def test_in_neighbors_sorted(self, diamond):
        assert diamond.in_neighbors(3) == (1, 2)

    def test_empty_neighborhoods(self, diamond):
        assert diamond.in_neighbors(0) == ()
        assert diamond.out_neighbors(3) == ()

    def test_degrees(self, diamond):
        assert diamond.in_degree(3) == 2
        assert diamond.out_degree(0) == 2
        assert diamond.in_degree(0) == 0

    def test_degree_vectors(self, diamond):
        np.testing.assert_array_equal(
            diamond.in_degrees(), np.array([0, 1, 1, 2])
        )
        np.testing.assert_array_equal(
            diamond.out_degrees(), np.array([2, 1, 1, 0])
        )

    def test_sources_and_sinks(self, diamond):
        assert diamond.sources() == [0]
        assert diamond.sinks() == [3]

    def test_edges_iterator_sorted(self, diamond):
        assert list(diamond.edges()) == [(0, 1), (0, 2), (1, 3), (2, 3)]


class TestMutation:
    def test_remove_edge(self):
        g = DiGraph(2, edges=[(0, 1)])
        g.remove_edge(0, 1)
        assert g.num_edges == 0
        assert not g.has_edge(0, 1)

    def test_remove_missing_edge_raises(self):
        g = DiGraph(2)
        with pytest.raises(KeyError):
            g.remove_edge(0, 1)

    def test_remove_updates_in_neighbors(self):
        g = DiGraph(3, edges=[(0, 2), (1, 2)])
        g.remove_edge(0, 2)
        assert g.in_neighbors(2) == (1,)


class TestLabels:
    def test_label_roundtrip(self):
        g = DiGraph(2, labels=["p", "q"])
        assert g.label_of(0) == "p"
        assert g.node_of("q") == 1

    def test_unlabelled_graph_uses_ids(self):
        g = DiGraph(2)
        assert g.label_of(1) == 1
        with pytest.raises(KeyError):
            g.node_of("p")

    def test_wrong_label_count_rejected(self):
        with pytest.raises(ValueError):
            DiGraph(2, labels=["only-one"])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            DiGraph(2, labels=["same", "same"])

    def test_unknown_label_raises(self):
        g = DiGraph(1, labels=["a"])
        with pytest.raises(KeyError):
            g.node_of("zzz")


class TestDerivedGraphs:
    def test_reverse_flips_edges(self):
        g = DiGraph(3, edges=[(0, 1), (1, 2)])
        r = g.reverse()
        assert r.has_edge(1, 0)
        assert r.has_edge(2, 1)
        assert r.num_edges == 2

    def test_reverse_twice_is_identity(self):
        g = DiGraph(4, edges=[(0, 1), (2, 3), (1, 3)])
        assert g.reverse().reverse() == g

    def test_to_undirected_symmetrizes(self):
        g = DiGraph(2, edges=[(0, 1)])
        u = g.to_undirected()
        assert u.has_edge(0, 1) and u.has_edge(1, 0)
        assert u.is_symmetric()

    def test_is_symmetric_detects_asymmetry(self):
        g = DiGraph(2, edges=[(0, 1)])
        assert not g.is_symmetric()

    def test_copy_is_independent(self):
        g = DiGraph(2, edges=[(0, 1)])
        c = g.copy()
        c.add_edge(1, 0)
        assert not g.has_edge(1, 0)
        assert g != c

    def test_equality(self):
        g1 = DiGraph(2, edges=[(0, 1)])
        g2 = DiGraph(2, edges=[(0, 1)])
        assert g1 == g2
        assert g1 != DiGraph(2)

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(DiGraph(1))

    def test_repr(self):
        assert repr(DiGraph(3, edges=[(0, 1)])) == "DiGraph(n=3, m=1)"


class TestEdgeArrays:
    def test_matches_edges_iteration(self):
        g = DiGraph(5, edges=[(0, 1), (0, 3), (2, 1), (4, 0), (2, 2)])
        heads, tails = g.edge_arrays()
        assert list(zip(heads.tolist(), tails.tolist())) == list(
            g.edges()
        )

    def test_empty_graph(self):
        heads, tails = DiGraph(3).edge_arrays()
        assert heads.size == 0 and tails.size == 0

    def test_cached_until_mutation(self):
        g = DiGraph(4, edges=[(0, 1), (1, 2)])
        first = g.edge_arrays()
        assert g.edge_arrays()[0] is first[0]  # version unchanged
        g.add_edge(2, 3)
        heads, tails = g.edge_arrays()
        assert heads.size == 3
        assert list(zip(heads.tolist(), tails.tolist())) == list(
            g.edges()
        )

    def test_arrays_are_read_only(self):
        g = DiGraph(3, edges=[(0, 1)])
        heads, _ = g.edge_arrays()
        try:
            heads[0] = 2
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("cached edge array was writable")
