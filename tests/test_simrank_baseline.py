"""Tests for SimRank baselines: iterative, matrix, series, psum, mtx.

networkx is used as an independent oracle for the Jeh–Widom recursion.
"""

import networkx as nx
import numpy as np
import pytest

from repro.baselines import (
    mtx_simrank,
    psum_simrank,
    simrank,
    simrank_matrix,
    simrank_series,
)
from repro.graph import (
    DiGraph,
    backward_transition_matrix,
    cycle_graph,
    figure1_citation_graph,
    path_graph,
    random_digraph,
    two_ray_path,
)


def networkx_simrank(graph, c):
    """Independent oracle: networkx's converged Jeh–Widom SimRank."""
    g = nx.DiGraph()
    g.add_nodes_from(graph.nodes())
    g.add_edges_from(graph.edges())
    result = nx.simrank_similarity(
        g, importance_factor=c, max_iterations=2000, tolerance=1e-10
    )
    n = graph.num_nodes
    out = np.zeros((n, n))
    for i, row in result.items():
        for j, val in row.items():
            out[i, j] = val
    return out


class TestIterativeSimRank:
    def test_identity_at_zero_iterations(self):
        g = random_digraph(10, 30, seed=0)
        np.testing.assert_array_equal(simrank(g, 0.8, 0), np.eye(10))

    def test_diagonal_pinned_to_one(self):
        g = random_digraph(15, 60, seed=1)
        s = simrank(g, 0.6, 4)
        np.testing.assert_allclose(np.diag(s), 1.0)

    def test_symmetry(self):
        g = random_digraph(15, 60, seed=2)
        s = simrank(g, 0.6, 4)
        np.testing.assert_allclose(s, s.T)

    def test_range(self):
        g = random_digraph(15, 60, seed=3)
        s = simrank(g, 0.8, 5)
        assert s.min() >= 0.0
        assert s.max() <= 1.0 + 1e-12

    def test_source_nodes_score_zero(self):
        # pairs involving a node with no in-edges score 0 (a != b)
        g = figure1_citation_graph()
        s = simrank(g, 0.8, 8)
        a = g.node_of("a")
        for v in g.nodes():
            if v != a:
                assert s[a, v] == 0.0

    def test_matches_networkx_oracle(self):
        g = random_digraph(12, 40, seed=4)
        ours = simrank(g, 0.7, 60)  # converged
        theirs = networkx_simrank(g, 0.7)
        np.testing.assert_allclose(ours, theirs, atol=1e-6)

    def test_matches_networkx_on_figure1(self):
        g = figure1_citation_graph()
        ours = simrank(g, 0.8, 120)
        theirs = networkx_simrank(g, 0.8)
        np.testing.assert_allclose(ours, theirs, atol=1e-6)

    def test_figure1_table_zero_pattern(self):
        # Column 'SR' of Figure 1: these pairs have zero SimRank.
        g = figure1_citation_graph()
        s = simrank(g, 0.8, 20)
        node = g.node_of
        for pair in [("h", "d"), ("a", "f"), ("a", "c"), ("g", "a"),
                     ("g", "b"), ("i", "a")]:
            assert s[node(pair[0]), node(pair[1])] == 0.0, pair

    def test_figure1_table_nonzero_value(self):
        # s(i, h) = .044 at C = 0.8. The paper computes SimRank through
        # the matrix form Eq. (3) (its power series Eq. (4)), whose
        # diagonal is (1-C)-normalised — the value confirms that.
        g = figure1_citation_graph()
        s = simrank_matrix(g, 0.8, 60)
        val = s[g.node_of("i"), g.node_of("h")]
        assert val == pytest.approx(0.044, abs=5e-4)

    def test_rejects_bad_damping(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            simrank(g, 0.0)
        with pytest.raises(ValueError):
            simrank(g, 1.0)

    def test_rejects_negative_iterations(self):
        with pytest.raises(ValueError):
            simrank(path_graph(3), 0.6, -1)


class TestZeroSimRankTheorem:
    """Theorem 1: s(a,b) = 0 without a symmetric in-link path."""

    def test_two_ray_path_zero_structure(self):
        # a_{-n} <- ... <- a_0 -> ... -> a_n: SimRank(a_i, a_j) = 0
        # whenever |i| != |j| (no common source at equal distance).
        n = 3
        g = two_ray_path(n)
        s = simrank(g, 0.8, 30)
        # right ray nodes 1..n at depth 1..n; left ray n+1..2n
        def depth(v):
            return v if 1 <= v <= n else v - n
        for u in range(1, 2 * n + 1):
            for v in range(1, 2 * n + 1):
                if u == v:
                    continue
                same_side = (u <= n) == (v <= n)
                if depth(u) != depth(v) or same_side:
                    assert s[u, v] == 0.0, (u, v)
                else:
                    assert s[u, v] > 0.0, (u, v)

    def test_directed_path_all_zero(self):
        # On a simple path every distinct pair has no symmetric in-link
        # path, hence SimRank = 0 off the diagonal.
        g = path_graph(6)
        s = simrank(g, 0.8, 30)
        off_diag = s - np.diag(np.diag(s))
        np.testing.assert_array_equal(off_diag, 0.0)


class TestMatrixAndSeriesForms:
    def test_matrix_equals_series(self):
        g = random_digraph(20, 80, seed=5)
        np.testing.assert_allclose(
            simrank_matrix(g, 0.6, 7), simrank_series(g, 0.6, 7),
            atol=1e-12,
        )

    def test_series_term_zero(self):
        g = random_digraph(8, 20, seed=6)
        np.testing.assert_allclose(
            simrank_series(g, 0.6, 0), (1 - 0.6) * np.eye(8)
        )

    def test_matrix_form_fixed_point(self):
        # The converged iterate satisfies S = C Q S Q^T + (1-C) I.
        g = random_digraph(15, 50, seed=7)
        c = 0.6
        s = simrank_matrix(g, c, 60)
        q = backward_transition_matrix(g).toarray()
        residual = c * q @ s @ q.T + (1 - c) * np.eye(15) - s
        assert np.abs(residual).max() < 1e-10

    def test_matrix_diagonal_not_pinned(self):
        # Eq. (3)'s fixed point has diag <= 1 with equality only for
        # nodes with no in-edges... (those rows are (1-C) e_v).
        g = cycle_graph(4)
        s = simrank_matrix(g, 0.6, 50)
        assert np.all(np.diag(s) <= 1.0)
        assert np.diag(s).max() < 1.0

    def test_iterative_vs_matrix_close_when_damping_small(self):
        # The two forms differ only in diagonal handling; for small C
        # the difference is second-order.
        g = random_digraph(12, 40, seed=8)
        a = simrank(g, 0.2, 20)
        b = simrank_matrix(g, 0.2, 20)
        off = ~np.eye(12, dtype=bool)
        assert np.abs(a - b)[off].max() < 0.05

    def test_zero_pattern_agrees_between_forms(self):
        g = figure1_citation_graph()
        a = simrank(g, 0.8, 20)
        b = simrank_matrix(g, 0.8, 20)
        np.testing.assert_array_equal(a == 0.0, b == 0.0)


class TestPsumSimRank:
    def test_equals_naive_simrank(self):
        g = random_digraph(15, 60, seed=9)
        np.testing.assert_allclose(
            psum_simrank(g, 0.6, 5), simrank(g, 0.6, 5), atol=1e-12
        )

    def test_equals_naive_on_figure1(self):
        g = figure1_citation_graph()
        np.testing.assert_allclose(
            psum_simrank(g, 0.8, 10), simrank(g, 0.8, 10), atol=1e-12
        )

    def test_handles_isolated_nodes(self):
        g = DiGraph(4, edges=[(0, 1)])
        s = psum_simrank(g, 0.6, 3)
        np.testing.assert_allclose(np.diag(s), 1.0)
        assert s[2, 3] == 0.0

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            psum_simrank(path_graph(3), 1.5)
        with pytest.raises(ValueError):
            psum_simrank(path_graph(3), 0.6, -2)


class TestMtxSimRank:
    def test_full_rank_matches_matrix_form(self):
        g = random_digraph(12, 40, seed=10)
        exact = simrank_matrix(g, 0.6, 80)
        svd = mtx_simrank(g, 0.6)
        np.testing.assert_allclose(svd, exact, atol=1e-8)

    def test_full_rank_matches_kron_solve(self):
        # Independent closed form: vec(S) = (1-C)(I - C Q (x) Q)^{-1} vec(I)
        g = random_digraph(8, 25, seed=11)
        c = 0.7
        q = backward_transition_matrix(g).toarray()
        n = g.num_nodes
        lhs = np.eye(n * n) - c * np.kron(q, q)
        vec_s = (1 - c) * np.linalg.solve(
            lhs, np.eye(n).reshape(-1, order="F")
        )
        expected = vec_s.reshape((n, n), order="F")
        np.testing.assert_allclose(mtx_simrank(g, c), expected, atol=1e-8)

    def test_low_rank_approximation_degrades_gracefully(self):
        g = random_digraph(15, 50, seed=12)
        exact = mtx_simrank(g, 0.6)
        approx = mtx_simrank(g, 0.6, rank=8)
        # still symmetric-ish and in a sane range
        assert np.abs(approx - exact).max() < 1.0

    def test_edgeless_graph(self):
        s = mtx_simrank(DiGraph(4), 0.6)
        np.testing.assert_allclose(s, 0.4 * np.eye(4))

    def test_empty_graph(self):
        assert mtx_simrank(DiGraph(0), 0.6).shape == (0, 0)

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            mtx_simrank(path_graph(3), 0.6, rank=0)
