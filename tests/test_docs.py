"""The documentation tier: docstrings, doctests, links, CLI reference.

Four enforcement layers keep the docs from rotting:

* **docstring audit** — every public symbol exported from ``repro``,
  ``repro.serve``, ``repro.index``, and ``repro.cluster`` must carry a
  docstring, and every exported callable/class an executable
  ``>>>`` example.
* **doctest tier** — those examples (plus the package quickstarts)
  actually run, module by module.
* **link check** — every relative link in ``README.md`` and
  ``docs/*.md`` must point at an existing file, and every anchor at a
  real heading in its target.
* **CLI reference check** — every flag of every
  ``python -m repro.serve`` / ``repro.index`` / ``repro.bench``
  subcommand must be documented in ``docs/operations.md`` (so help
  text and the runbook cannot drift apart).
"""

from __future__ import annotations

import argparse
import doctest
import importlib
import inspect
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

#: Namespaces whose exports must be documented with examples.
AUDITED_MODULES = (
    "repro",
    "repro.serve",
    "repro.index",
    "repro.cluster",
    "repro.approx",
    "repro.obs",
)

#: Modules whose doctests make up the executable-example tier.
DOCTEST_MODULES = (
    "repro",
    "repro.cliopts",
    "repro.graph.digraph",
    "repro.engine.config",
    "repro.engine.engine",
    "repro.engine.registry",
    "repro.engine.results",
    "repro.core.iterative",
    "repro.core.exponential",
    "repro.core.memo",
    "repro.core.queries",
    "repro.core.multi_source",
    "repro.measures",
    "repro.index.artifacts",
    "repro.index.store",
    "repro.index.delta",
    "repro.serve.broker",
    "repro.serve.cache",
    "repro.serve.chaos",
    "repro.serve.guard",
    "repro.serve.http",
    "repro.serve.service",
    "repro.serve.snapshot",
    "repro.cluster.worker",
    "repro.cluster.pool",
    "repro.cluster.router",
    "repro.cluster.shm",
    "repro.cluster.thread_pool",
    "repro.cluster",
    "repro.approx",
    "repro.approx.walks",
    "repro.approx.estimator",
    "repro.datasets.scale_free",
    "repro.obs",
    "repro.obs.metrics",
    "repro.obs.trace",
    "repro.bench.signal",
)

MARKDOWN_FILES = sorted(
    [REPO / "README.md", *(REPO / "docs").glob("*.md")]
)


# ---------------------------------------------------------------------------
# docstring audit
# ---------------------------------------------------------------------------
def _exports():
    for module_name in AUDITED_MODULES:
        module = importlib.import_module(module_name)
        for name in module.__all__:
            yield module_name, name, getattr(module, name)


@pytest.mark.parametrize(
    "module_name, name, obj",
    list(_exports()),
    ids=[f"{m}.{n}" for m, n, _ in _exports()],
)
def test_public_symbol_has_docstring(module_name, name, obj):
    doc = inspect.getdoc(obj)
    assert doc and doc.strip(), (
        f"{module_name}.{name} is exported but has no docstring"
    )


@pytest.mark.parametrize(
    "module_name, name, obj",
    [
        (m, n, o)
        for m, n, o in _exports()
        if inspect.isclass(o) or inspect.isroutine(o)
    ],
    ids=[
        f"{m}.{n}"
        for m, n, o in _exports()
        if inspect.isclass(o) or inspect.isroutine(o)
    ],
)
def test_public_symbol_has_executable_example(module_name, name, obj):
    doc = inspect.getdoc(obj) or ""
    assert ">>>" in doc, (
        f"{module_name}.{name} has no executable (>>>) example in its "
        "docstring; examples are what the doctest tier runs, and what "
        "keeps the documentation honest"
    )


# ---------------------------------------------------------------------------
# doctest tier
# ---------------------------------------------------------------------------
@pytest.fixture()
def _pristine_measure_registry():
    """Doctests may register demo measures; undo that afterwards.

    The measure registry is process-global (like entry points), so
    the ``register_measure`` example would otherwise leak its demo
    measure into every later test that iterates ``MEASURES``.
    """
    from repro.engine import registry

    before = dict(registry._REGISTRY)
    yield
    registry._REGISTRY.clear()
    registry._REGISTRY.update(before)


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_module_doctests_pass(module_name, _pristine_measure_registry):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, (
        f"{module_name} contributes no doctest examples"
    )
    assert result.failed == 0, (
        f"{result.failed} of {result.attempted} doctest examples "
        f"failed in {module_name} (run python -m doctest -v on it)"
    )


# ---------------------------------------------------------------------------
# markdown link check
# ---------------------------------------------------------------------------
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#+\s+(.*)$", re.MULTILINE)


def _anchor_slug(heading: str) -> str:
    """GitHub-style anchor: lowercase, punctuation out, spaces to -."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    return {
        _anchor_slug(m.group(1))
        for m in _HEADING.finditer(path.read_text())
    }


@pytest.mark.parametrize(
    "markdown", MARKDOWN_FILES, ids=[p.name for p in MARKDOWN_FILES]
)
def test_markdown_links_resolve(markdown):
    problems = []
    for match in _LINK.finditer(markdown.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # external: not checked offline
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = (markdown.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(f"{target}: file does not exist")
                continue
        else:
            resolved = markdown
        if anchor and resolved.suffix == ".md":
            if anchor not in _anchors(resolved):
                problems.append(
                    f"{target}: no heading for anchor #{anchor} "
                    f"in {resolved.name}"
                )
    assert not problems, (
        f"broken links in {markdown.name}:\n  " + "\n  ".join(problems)
    )


def test_docs_tree_exists():
    for name in (
        "architecture.md", "operations.md", "tuning.md",
        "observability.md",
    ):
        assert (REPO / "docs" / name).exists(), f"docs/{name} missing"


def test_readme_links_every_docs_page():
    readme = (REPO / "README.md").read_text()
    for name in (
        "architecture.md", "operations.md", "tuning.md",
        "observability.md",
    ):
        assert f"docs/{name}" in readme, (
            f"README.md does not link docs/{name}"
        )


# ---------------------------------------------------------------------------
# CLI reference check (help text vs docs/operations.md)
# ---------------------------------------------------------------------------
def _cli_surface():
    """``(cli, subcommand, flag)`` triples for every accepted option."""
    from repro.bench.__main__ import build_parser as bench_parser
    from repro.index.__main__ import build_parser as index_parser
    from repro.serve.__main__ import build_parser as serve_parser

    for cli, parser in (
        ("repro.serve", serve_parser()),
        ("repro.index", index_parser()),
        ("repro.bench", bench_parser()),
    ):
        subparsers = [
            action
            for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        ]
        if not subparsers:
            for action in parser._actions:
                for opt in action.option_strings:
                    if opt.startswith("--") and opt != "--help":
                        yield cli, "(top level)", opt
            continue
        for name, sub in subparsers[0].choices.items():
            for action in sub._actions:
                for opt in action.option_strings:
                    if opt.startswith("--") and opt != "--help":
                        yield cli, name, opt


def test_every_cli_flag_is_documented_in_operations():
    """docs/operations.md must name every flag each CLI accepts.

    This is the anti-drift direction that matters operationally: a
    flag that exists but is undocumented is invisible to operators.
    (The reverse — documented but nonexistent — is covered by the
    flags below being collected from the live parsers, so a removed
    flag fails here the moment the docs still mention... the doc
    update that removes it from the parser table.)
    """
    operations = (REPO / "docs" / "operations.md").read_text()
    missing = sorted(
        {
            f"{cli} {sub}: {flag}"
            for cli, sub, flag in _cli_surface()
            if flag not in operations
        }
    )
    assert not missing, (
        "CLI flags accepted by the parsers but absent from "
        "docs/operations.md:\n  " + "\n  ".join(missing)
    )


def test_cli_subcommands_documented():
    operations = (REPO / "docs" / "operations.md").read_text()
    subcommands = {
        (cli, sub) for cli, sub, _ in _cli_surface()
        if sub != "(top level)"
    }
    for cli, sub in sorted(subcommands):
        assert f"`{sub}`" in operations, (
            f"subcommand {cli} {sub} not documented in "
            "docs/operations.md"
        )


def test_help_output_renders_for_every_cli():
    """``--help`` must build cleanly (argparse exits 0) for each CLI."""
    from repro.bench.__main__ import main as bench_main
    from repro.index.__main__ import main as index_main
    from repro.serve.__main__ import main as serve_main

    for main in (serve_main, index_main, bench_main):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
