"""Property-based tests (hypothesis) on core invariants.

Random small digraphs probe the algebraic identities the paper proves:
symmetry, boundedness, monotone partial sums, Theorem 1's zero
pattern, form equivalences, and compression exactness.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import psum_simrank, simrank, simrank_matrix
from repro.bigraph import compress_graph
from repro.core import (
    inlink_path_exists,
    memo_simrank_star_factorized,
    simrank_star,
    simrank_star_exponential,
    simrank_star_exponential_closed,
    simrank_star_series,
    single_source,
    symmetric_inlink_path_exists,
)
from repro.graph import DiGraph

MAX_NODES = 9


@st.composite
def digraphs(draw):
    """Random digraphs with 1..MAX_NODES nodes, arbitrary density."""
    n = draw(st.integers(min_value=1, max_value=MAX_NODES))
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = draw(
        st.lists(st.sampled_from(possible), max_size=3 * n, unique=True)
        if possible
        else st.just([])
    )
    return DiGraph(n, edges=edges)


@st.composite
def damping(draw):
    return draw(
        st.floats(min_value=0.1, max_value=0.9, allow_nan=False)
    )


class TestSimRankStarInvariants:
    @given(digraphs(), damping())
    @settings(max_examples=60, deadline=None)
    def test_symmetric_and_bounded(self, g, c):
        s = simrank_star(g, c, 8)
        np.testing.assert_allclose(s, s.T, atol=1e-12)
        assert s.min() >= -1e-12
        assert s.max() <= 1.0 + 1e-9

    @given(digraphs(), damping())
    @settings(max_examples=40, deadline=None)
    def test_partial_sums_monotone(self, g, c):
        # every series term is non-negative, so iterates only grow
        prev = simrank_star(g, c, 0)
        for k in (1, 2, 4):
            nxt = simrank_star(g, c, k)
            assert (nxt >= prev - 1e-12).all()
            prev = nxt

    @given(digraphs(), damping())
    @settings(max_examples=40, deadline=None)
    def test_iterate_equals_series(self, g, c):
        np.testing.assert_allclose(
            simrank_star(g, c, 5),
            simrank_star_series(g, c, 5),
            atol=1e-10,
        )

    @given(digraphs(), damping())
    @settings(max_examples=40, deadline=None)
    def test_memo_equals_iterative(self, g, c):
        np.testing.assert_allclose(
            memo_simrank_star_factorized(g, c, 5),
            simrank_star(g, c, 5),
            atol=1e-10,
        )

    @given(digraphs(), damping())
    @settings(max_examples=30, deadline=None)
    def test_exponential_iteration_matches_closed_form(self, g, c):
        np.testing.assert_allclose(
            simrank_star_exponential(g, c, 30),
            simrank_star_exponential_closed(g, c),
            atol=1e-9,
        )

    @given(digraphs(), damping(), st.integers(0, MAX_NODES - 1))
    @settings(max_examples=40, deadline=None)
    def test_single_source_matches_series_column(self, g, c, query):
        if query >= g.num_nodes:
            query = g.num_nodes - 1
        full = simrank_star_series(g, c, 6)
        vec = single_source(g, query, c, 6)
        np.testing.assert_allclose(vec, full[:, query], atol=1e-10)

    @given(digraphs())
    @settings(max_examples=40, deadline=None)
    def test_nonzero_pattern_is_inlink_path_existence(self, g):
        s = simrank_star(g, 0.6, 4 * g.num_nodes)
        np.testing.assert_array_equal(s > 1e-13, inlink_path_exists(g))

    @given(digraphs())
    @settings(max_examples=40, deadline=None)
    def test_simrank_star_dominates_simrank_zero_pattern(self, g):
        # wherever SimRank is positive, SimRank* must be too
        sr = simrank_matrix(g, 0.6, 4 * g.num_nodes)
        srs = simrank_star(g, 0.6, 4 * g.num_nodes)
        assert ((sr > 1e-13) <= (srs > 1e-13)).all()


class TestSimRankInvariants:
    @given(digraphs(), damping())
    @settings(max_examples=40, deadline=None)
    def test_psum_equals_naive(self, g, c):
        np.testing.assert_allclose(
            psum_simrank(g, c, 4), simrank(g, c, 4), atol=1e-10
        )

    @given(digraphs())
    @settings(max_examples=40, deadline=None)
    def test_theorem1_zero_pattern(self, g):
        s = simrank_matrix(g, 0.6, 4 * g.num_nodes)
        np.testing.assert_array_equal(
            s > 1e-13, symmetric_inlink_path_exists(g)
        )


class TestCompressionInvariants:
    @given(digraphs())
    @settings(max_examples=60, deadline=None)
    def test_factorization_exact(self, g):
        compress_graph(g).validate()

    @given(digraphs())
    @settings(max_examples=60, deadline=None)
    def test_mtilde_at_most_m(self, g):
        compressed = compress_graph(g)
        assert compressed.num_edges <= g.num_edges
        saving = sum(b.saving for b in compressed.bicliques)
        assert compressed.num_edges == g.num_edges - saving
