"""Tests for the bench harness, memory measurement, and measures
registry."""

import numpy as np
import pytest

from repro.bench import (
    ExperimentResult,
    format_table,
    measure_peak_memory,
    timed,
)
from repro.graph import figure1_citation_graph, path_graph
from repro.measures import (
    MEASURES,
    SEMANTIC_MEASURES,
    TIMED_ALGORITHMS,
    compute_measure,
)


class TestFormatTable:
    def test_aligned_columns(self):
        out = format_table(
            [{"a": 1, "bb": "x"}, {"a": 22, "bb": "yy"}], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in out and "bb" in out
        # all body lines equal width
        widths = {len(line) for line in lines[2:5]}
        assert len(widths) == 1

    def test_missing_keys_filled_blank(self):
        out = format_table([{"a": 1}, {"a": 2, "b": 3}])
        assert "b" in out

    def test_empty(self):
        assert "(empty)" in format_table([], title="nothing")

    def test_floats_compact(self):
        out = format_table([{"x": 0.123456789}])
        assert "0.1235" in out


class TestExperimentResult:
    def test_checks_lifecycle(self):
        result = ExperimentResult(name="demo")
        result.add_check("good", True)
        result.add_check("bad", False)
        assert result.failed_checks() == ["bad"]
        with pytest.raises(AssertionError, match="bad"):
            result.assert_all_checks()

    def test_all_pass(self):
        result = ExperimentResult(name="demo")
        result.add_check("good", True)
        result.assert_all_checks()  # no raise

    def test_render_contains_everything(self):
        result = ExperimentResult(name="demo")
        result.tables["t1"] = [{"col": 1}]
        result.notes.append("a note")
        result.add_check("claim", True)
        out = result.render()
        assert "=== demo ===" in out
        assert "t1" in out
        assert "a note" in out
        assert "[ok] claim" in out

    def test_render_marks_failures(self):
        result = ExperimentResult(name="demo")
        result.add_check("claim", False)
        assert "[FAIL] claim" in result.render()


class TestTimedAndMemory:
    def test_timed_returns_result_and_duration(self):
        value, seconds = timed(sum, [1, 2, 3])
        assert value == 6
        assert seconds >= 0

    def test_measure_peak_memory_sees_numpy(self):
        def allocate():
            return np.zeros((256, 256))  # 512 KiB

        result, peak = measure_peak_memory(allocate)
        assert result.shape == (256, 256)
        assert peak >= 256 * 256 * 8

    def test_measure_peak_memory_propagates_errors(self):
        def boom():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            measure_peak_memory(boom)


class TestMeasuresRegistry:
    def test_registry_labels(self):
        assert set(SEMANTIC_MEASURES) == {"eSR*", "gSR*", "SR", "PR", "RWR"}
        assert set(TIMED_ALGORITHMS) == {
            "memo-eSR*", "memo-gSR*", "iter-gSR*", "psum-SR", "mtx-SR",
        }
        assert set(MEASURES) == set(SEMANTIC_MEASURES) | set(
            TIMED_ALGORITHMS
        )

    def test_compute_measure_dispatch(self):
        g = figure1_citation_graph()
        s = compute_measure("gSR*", g, c=0.8, num_iterations=10)
        assert s.shape == (11, 11)

    def test_unknown_measure(self):
        with pytest.raises(KeyError, match="unknown measure"):
            compute_measure("PageRank", path_graph(3))

    def test_gsr_variants_agree(self):
        # iter-gSR* and memo-gSR* are the same measure
        g = figure1_citation_graph()
        a = compute_measure("iter-gSR*", g, 0.6, 8)
        b = compute_measure("memo-gSR*", g, 0.6, 8)
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_esr_accuracy_matched_to_geometric(self):
        # the eSR* wrapper translates K into an equivalent epsilon
        g = figure1_citation_graph()
        from repro.core import simrank_star_exponential_closed

        approx = compute_measure("eSR*", g, 0.6, 10)
        exact = simrank_star_exponential_closed(g, 0.6)
        assert np.abs(approx - exact).max() < 0.6 ** 11 + 1e-9
