"""Tests for in-link path machinery (Lemma 1, Figures 2-3)."""

import numpy as np
import pytest

from repro.core import (
    GeometricWeights,
    accommodated_path_shapes,
    count_inlink_paths,
    count_specific_paths,
    dissymmetric_inlink_path_exists,
    inlink_path_exists,
    path_contribution,
    reachability,
    symmetric_inlink_path_exists,
    symmetry_weights,
)
from repro.baselines import simrank_matrix, rwr
from repro.core import simrank_star
from repro.graph import (
    DiGraph,
    cycle_graph,
    family_tree,
    figure1_citation_graph,
    path_graph,
    random_digraph,
    two_ray_path,
)


class TestLemma1Counting:
    def test_pure_forward_pattern_is_adjacency_power(self):
        g = random_digraph(10, 30, seed=0)
        from repro.graph import adjacency_matrix

        a = adjacency_matrix(g).toarray()
        np.testing.assert_array_equal(
            count_specific_paths(g, ">>>"), a @ a @ a
        )

    def test_mixed_pattern(self):
        # i -> * <- j counted by A A^T
        g = DiGraph(3, edges=[(0, 1), (2, 1)])
        counts = count_specific_paths(g, "><")
        assert counts[0, 2] == 1
        assert counts[0, 1] == 0

    def test_inlink_path_counts_on_figure1(self):
        g = figure1_citation_graph()
        h, d = g.node_of("h"), g.node_of("d")
        # exactly one in-link path h <-<- a -> d (l1=2, l2=1)
        assert count_inlink_paths(g, 2, 1)[h, d] == 1
        # and one h <-<- a -> b -> f -> d (l1=2, l2=3)
        assert count_inlink_paths(g, 2, 3)[h, d] == 1
        # no symmetric path of any length
        for k in range(1, 6):
            assert count_inlink_paths(g, k, k)[h, d] == 0

    def test_zero_steps_is_identity(self):
        g = path_graph(4)
        np.testing.assert_array_equal(
            count_inlink_paths(g, 0, 0), np.eye(4)
        )

    def test_invalid_pattern_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            count_specific_paths(g, ">x<")
        with pytest.raises(ValueError):
            count_specific_paths(g, "")
        with pytest.raises(ValueError):
            count_inlink_paths(g, -1, 2)


class TestReachability:
    def test_path_graph_closure(self):
        g = path_graph(4)
        r = reachability(g)
        for i in range(4):
            for j in range(4):
                assert r[i, j] == (i <= j)

    def test_exclude_self_on_dag(self):
        g = path_graph(3)
        r = reachability(g, include_self=False)
        assert not r[0, 0]
        assert r[0, 1] and r[0, 2]

    def test_cycle_reaches_self(self):
        g = cycle_graph(3)
        r = reachability(g, include_self=False)
        assert r.all()  # everything reaches everything on a cycle

    def test_empty(self):
        assert reachability(DiGraph(0)).shape == (0, 0)


class TestSymmetricPathExistence:
    def test_matches_simrank_nonzero_pattern(self):
        # Theorem 1 (both directions): SR > 0 iff symmetric path.
        for seed in range(4):
            g = random_digraph(12, 30, seed=seed)
            sym = symmetric_inlink_path_exists(g)
            s = simrank_matrix(g, 0.6, 40)
            np.testing.assert_array_equal(sym, s > 1e-13, err_msg=str(seed))

    def test_matches_bruteforce_counting(self):
        g = random_digraph(10, 25, seed=7)
        sym = symmetric_inlink_path_exists(g)
        brute = np.eye(10, dtype=bool)
        for k in range(1, 11):
            brute |= count_inlink_paths(g, k, k) > 0
        np.testing.assert_array_equal(sym, brute)

    def test_figure1_hd_has_no_symmetric_path(self):
        g = figure1_citation_graph()
        sym = symmetric_inlink_path_exists(g)
        assert not sym[g.node_of("h"), g.node_of("d")]
        assert sym[g.node_of("g"), g.node_of("i")]


class TestInlinkAndDissymmetricExistence:
    def test_inlink_matches_simrank_star_nonzero(self):
        for seed in range(4):
            g = random_digraph(12, 30, seed=seed)
            exists = inlink_path_exists(g)
            s = simrank_star(g, 0.6, 60)
            np.testing.assert_array_equal(
                exists, s > 1e-14, err_msg=str(seed)
            )

    def test_rwr_nonzero_iff_directed_path(self):
        for seed in range(3):
            g = random_digraph(12, 30, seed=seed)
            r = rwr(g, 0.6, 60)
            reach = reachability(g, include_self=True)
            np.testing.assert_array_equal(r > 1e-14, reach)

    def test_dissymmetric_on_two_ray_path(self):
        # (1, n+1) is equidistant (symmetric only at depth 1); deeper
        # cross pairs at equal depth also have ONLY symmetric paths
        # (single parent chain), so no dissymmetric path exists there.
        g = two_ray_path(2)
        dis = dissymmetric_inlink_path_exists(g)
        assert not dis[1, 3]  # depth-1 pair: only the symmetric path
        assert dis[1, 4]  # depths 1 vs 2: only dissymmetric paths
        assert dis[0, 1]  # root -> child: unidirectional

    def test_dissymmetric_vs_bruteforce(self):
        g = random_digraph(10, 25, seed=9)
        dis = dissymmetric_inlink_path_exists(g)
        brute = np.zeros((10, 10), dtype=bool)
        for l1 in range(0, 8):
            for l2 in range(0, 8):
                if l1 != l2:
                    brute |= count_inlink_paths(g, l1, l2) > 0
        # brute force is truncated at length 7 legs; it must be a
        # subset of the exact answer and equal on this small graph
        np.testing.assert_array_equal(dis, brute)

    def test_figure1_hd_dissymmetric_only(self):
        g = figure1_citation_graph()
        h, d = g.node_of("h"), g.node_of("d")
        assert dissymmetric_inlink_path_exists(g)[h, d]
        assert not symmetric_inlink_path_exists(g)[h, d]


class TestContributionRates:
    def test_paper_worked_examples(self):
        # (1-0.8) * 0.8^3 * binom(3,2)/2^3 = 0.0384
        assert path_contribution(0.8, 2, 1) == pytest.approx(0.0384)
        # (1-0.8) * 0.8^5 * binom(5,2)/2^5 = 0.02048
        assert path_contribution(0.8, 2, 3) == pytest.approx(0.02048)

    def test_figure3_ordering(self):
        # rho_A (Me-Cousin, 2+2) > rho_B (Uncle-Son, 1+3)
        #   > rho_C (Grandpa-Grandson, 0+4)
        rho_a = path_contribution(0.8, 2, 2)
        rho_b = path_contribution(0.8, 1, 3)
        rho_c = path_contribution(0.8, 0, 4)
        assert rho_a > rho_b > rho_c > 0

    def test_symmetric_peak(self):
        # for fixed length, the centred split earns the most
        contributions = [path_contribution(0.6, a, 6 - a) for a in range(7)]
        assert max(contributions) == contributions[3]
        assert contributions[0] == contributions[6] == min(contributions)

    def test_custom_wescheme(self):
        rate = path_contribution(
            0.8, 2, 1, weights=GeometricWeights(0.8)
        )
        assert rate == pytest.approx(0.0384)

    def test_rejects_negative_steps(self):
        with pytest.raises(ValueError):
            path_contribution(0.6, -1, 2)


class TestSymmetryWeights:
    def test_sum_to_one(self):
        for l in range(8):
            assert symmetry_weights(l).sum() == pytest.approx(1.0)

    def test_unimodal(self):
        w = symmetry_weights(6)
        assert np.argmax(w) == 3
        diffs = np.diff(w)
        assert (diffs[:3] > 0).all() and (diffs[3:] < 0).all()

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            symmetry_weights(-1)


class TestFigure2Shapes:
    def test_simrank_shapes(self):
        assert accommodated_path_shapes("simrank", 1) == []
        assert accommodated_path_shapes("simrank", 2) == [(1, 1)]
        assert accommodated_path_shapes("simrank", 4) == [(2, 2)]

    def test_rwr_shapes(self):
        assert accommodated_path_shapes("rwr", 3) == [(0, 3)]

    def test_simrank_star_counts_all(self):
        for length in range(1, 5):
            shapes = accommodated_path_shapes("simrank_star", length)
            assert len(shapes) == length + 1
            assert set(accommodated_path_shapes("simrank", length)) <= set(
                shapes
            )
            assert set(accommodated_path_shapes("rwr", length)) <= set(
                shapes
            )

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            accommodated_path_shapes("pagerank", 2)
        with pytest.raises(ValueError):
            accommodated_path_shapes("simrank", 0)


class TestFamilyTreeSemantics:
    """Figure 3's narrative, checked end to end on real measures."""

    @pytest.fixture(scope="class")
    def tree(self):
        g = family_tree()
        return g, simrank_star(g, 0.8, 80)

    def test_simrank_star_relates_everyone(self, tree):
        # "all nodes in the family tree G should have some relevances"
        g, s = tree
        assert (s > 0).all()

    def test_rwr_misses_me_and_cousin(self, tree):
        g, _ = tree
        r = rwr(g, 0.8, 60)
        me, cousin = g.node_of("Me"), g.node_of("Cousin")
        assert r[me, cousin] == 0.0  # no directed path either way
        assert r[cousin, me] == 0.0

    def test_simrank_misses_me_and_uncle(self, tree):
        g, _ = tree
        s = simrank_matrix(g, 0.8, 60)
        me, uncle = g.node_of("Me"), g.node_of("Uncle")
        assert s[me, uncle] == 0.0  # depths 2 vs 1: never equidistant
        # but SimRank* sees them
        assert tree[1][me, uncle] > 0.0
