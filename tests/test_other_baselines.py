"""Tests for P-Rank, RWR/PPR, co-citation/coupling, SimRank++."""

import numpy as np
import pytest

from repro.baselines import (
    cocitation,
    cocitation_jaccard,
    coupling,
    coupling_jaccard,
    evidence_matrix,
    ppr,
    prank,
    prank_matrix,
    rwr,
    rwr_matrix,
    simrank,
    simrank_matrix,
    simrank_plus_plus,
)
from repro.graph import (
    DiGraph,
    family_tree,
    figure1_citation_graph,
    path_graph,
    random_digraph,
)


class TestPRank:
    def test_lambda_one_recovers_simrank(self):
        g = random_digraph(12, 40, seed=0)
        np.testing.assert_allclose(
            prank(g, 0.6, in_weight=1.0, num_iterations=5),
            simrank(g, 0.6, 5),
            atol=1e-12,
        )

    def test_symmetry_and_range(self):
        g = random_digraph(12, 40, seed=1)
        s = prank(g, 0.8, 0.5, 5)
        np.testing.assert_allclose(s, s.T)
        assert s.min() >= 0.0 and s.max() <= 1.0 + 1e-12

    def test_figure1_hd_nonzero(self):
        # P-Rank finds (h, d) similar via the out-link source i in the
        # centre of h -> i <- d (the paper's motivating contrast).
        g = figure1_citation_graph()
        s = prank(g, 0.8, 0.5, 20)
        assert s[g.node_of("h"), g.node_of("d")] > 0.0

    def test_figure1_pr_column_values(self):
        # The paper's 'PR' column comes from the matrix-form P-Rank
        # (lambda = 0.5, C = 0.8), printed to 3 decimals: .049, .075,
        # 0, 0, 0, 0, .041. (g, b) is 0.0002 — it prints as zero.
        g = figure1_citation_graph()
        s = prank_matrix(g, 0.8, 0.5, 60)
        node = g.node_of
        expected = {
            ("h", "d"): 0.049,
            ("a", "f"): 0.075,
            ("a", "c"): 0.0,
            ("g", "a"): 0.0,
            ("g", "b"): 0.0,
            ("i", "a"): 0.0,
            ("i", "h"): 0.041,
        }
        for (x, y), want in expected.items():
            assert s[node(x), node(y)] == pytest.approx(
                want, abs=5e-4
            ), (x, y)

    def test_figure1_nonzero_pattern(self):
        g = figure1_citation_graph()
        s = prank(g, 0.8, 0.5, 20)
        node = g.node_of
        for x, y in [("h", "d"), ("a", "f"), ("i", "h")]:
            assert s[node(x), node(y)] > 0.0, (x, y)

    def test_inserted_node_rebreaks_prank(self):
        # The paper: replace h -> i by h -> l -> i and P-Rank(h, d)
        # returns to zero — P-Rank does not cure zero-similarity.
        g = figure1_citation_graph()
        edges = [(g.label_of(u), g.label_of(v)) for u, v in g.edges()]
        edges.remove(("h", "i"))
        edges += [("h", "l"), ("l", "i")]
        g2 = DiGraph.from_label_edges(edges)
        s = prank(g2, 0.8, 0.5, 30)
        assert s[g2.node_of("h"), g2.node_of("d")] == 0.0

    def test_matrix_form_soft_diagonal(self):
        g = random_digraph(10, 30, seed=2)
        s = prank_matrix(g, 0.6, 0.5, 30)
        assert np.all(np.diag(s) <= 1.0)
        np.testing.assert_allclose(s, s.T, atol=1e-12)

    def test_matrix_lambda_one_is_simrank_matrix(self):
        g = random_digraph(10, 30, seed=3)
        np.testing.assert_allclose(
            prank_matrix(g, 0.6, 1.0, 6),
            simrank_matrix(g, 0.6, 6),
            atol=1e-12,
        )

    def test_parameter_validation(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            prank(g, 0.6, in_weight=1.5)
        with pytest.raises(ValueError):
            prank(g, 2.0)
        with pytest.raises(ValueError):
            prank(g, 0.6, 0.5, -1)
        with pytest.raises(ValueError):
            prank_matrix(g, 0.6, -0.1)


class TestRWR:
    def test_truncated_series_matches_definition(self):
        # S_K = (1-C) sum_{k<=K} C^k W^k, checked directly.
        g = random_digraph(10, 30, seed=4)
        c, k = 0.6, 4
        from repro.graph import forward_transition_matrix

        w = forward_transition_matrix(g).toarray()
        expected = np.zeros((10, 10))
        power = np.eye(10)
        for level in range(k + 1):
            expected += (c ** level) * power
            power = w @ power
        expected *= 1 - c
        np.testing.assert_allclose(rwr(g, c, k), expected, atol=1e-12)

    def test_converges_to_closed_form(self):
        g = random_digraph(10, 30, seed=5)
        np.testing.assert_allclose(
            rwr(g, 0.6, 200), rwr_matrix(g, 0.6), atol=1e-10
        )

    def test_zero_iff_no_directed_path(self):
        # RWR's own zero-similarity issue (Section 3.1).
        g = figure1_citation_graph()
        s = rwr(g, 0.8, 30)
        node = g.node_of
        # no directed path h ~> d, g is a sink, i is a sink
        for x, y in [("h", "d"), ("g", "a"), ("g", "b"), ("i", "a"),
                     ("i", "h")]:
            assert s[node(x), node(y)] == 0.0, (x, y)
        # directed paths exist: a -> b -> f, a -> b/d -> c
        assert s[node("a"), node("f")] > 0.0
        assert s[node("a"), node("c")] > 0.0

    def test_asymmetric_on_family_tree(self):
        # "Since there is no path directed from Me to Father, RWR
        #  alleges Me and Father being dissimilar" — but Father -> Me
        #  scores positive. RWR similarity is not symmetric.
        g = family_tree()
        s = rwr(g, 0.8, 20)
        me, father = g.node_of("Me"), g.node_of("Father")
        assert s[father, me] > 0.0
        assert s[me, father] == 0.0

    def test_rows_bounded(self):
        g = random_digraph(15, 60, seed=6)
        s = rwr(g, 0.9, 100)
        assert s.min() >= 0.0
        # row sums of (1-C)(I-CW)^{-1} are <= 1 (equality iff no sinks
        # reachable); entries certainly bounded by 1.
        assert s.max() <= 1.0 + 1e-12

    def test_ppr_is_row_of_rwr(self):
        g = random_digraph(12, 50, seed=7)
        full = rwr(g, 0.6, 300)
        vec = ppr(g, source=3, c=0.6, num_iterations=300)
        np.testing.assert_allclose(vec, full[3], atol=1e-10)

    def test_ppr_validates_source(self):
        with pytest.raises(IndexError):
            ppr(path_graph(3), source=5)

    def test_parameter_validation(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            rwr(g, 0.0)
        with pytest.raises(ValueError):
            rwr(g, 0.6, -1)
        with pytest.raises(ValueError):
            ppr(g, 0, 0.6, -1)


class TestCocitationCoupling:
    @pytest.fixture
    def g(self):
        return figure1_citation_graph()

    def test_cocitation_counts(self, g):
        cc = cocitation(g)
        h, i = g.node_of("h"), g.node_of("i")
        # I(h) = {e,j,k}, I(i) = {b,d,e,j,k,h} -> 3 in common
        assert cc[h, i] == 3
        assert cc[h, h] == 3  # |I(h)|

    def test_coupling_counts(self, g):
        bc = coupling(g)
        b, d = g.node_of("b"), g.node_of("d")
        # O(b) = {c,f,g,i}, O(d) = {c,g,i} -> 3 in common
        assert bc[b, d] == 3

    def test_jaccard_range_and_diagonal(self, g):
        jac = cocitation_jaccard(g)
        assert jac.min() >= 0.0 and jac.max() <= 1.0
        for v in g.nodes():
            expected = 1.0 if g.in_degree(v) > 0 else 0.0
            assert jac[v, v] == expected

    def test_coupling_jaccard_zero_denominator(self):
        g = DiGraph(3, edges=[(0, 1)])
        jac = coupling_jaccard(g)
        assert jac[1, 2] == 0.0  # both have no out-edges: 0/0 -> 0

    def test_symmetry(self, g):
        np.testing.assert_array_equal(cocitation(g), cocitation(g).T)
        np.testing.assert_array_equal(coupling(g), coupling(g).T)


class TestEvidence:
    def test_evidence_values(self):
        g = figure1_citation_graph()
        ev = evidence_matrix(g)
        h, i = g.node_of("h"), g.node_of("i")
        # 3 common in-neighbours -> 1/2 + 1/4 + 1/8 = 0.875
        assert ev[h, i] == pytest.approx(0.875)
        # no common in-neighbours -> 0
        a = g.node_of("a")
        assert ev[a, h] == 0.0

    def test_simrank_plus_plus_bounded_by_simrank(self):
        g = random_digraph(12, 40, seed=8)
        spp = simrank_plus_plus(g, 0.6, 5)
        s = simrank(g, 0.6, 5)
        off = ~np.eye(12, dtype=bool)
        assert np.all(spp[off] <= s[off] + 1e-12)
        np.testing.assert_allclose(np.diag(spp), 1.0)
