"""Tests for similarity joins and global top-k pairs."""

import numpy as np
import pytest

from repro.core import simrank_star
from repro.core.join import similarity_join, top_pairs
from repro.graph import figure1_citation_graph, path_graph, random_digraph


class TestSimilarityJoin:
    def test_matches_matrix_threshold(self):
        g = random_digraph(15, 60, seed=0)
        scores = simrank_star(g, 0.6, 10)
        joined = similarity_join(g, threshold=0.01, scores=scores)
        expected = {
            (u, v)
            for u in range(15)
            for v in range(u + 1, 15)
            if scores[u, v] >= 0.01
        }
        assert {(u, v) for u, v, _ in joined} == expected

    def test_sorted_descending(self):
        g = random_digraph(15, 60, seed=1)
        joined = similarity_join(g, threshold=0.0)
        values = [s for _, _, s in joined]
        assert values == sorted(values, reverse=True)

    def test_unordered_pairs_only(self):
        g = figure1_citation_graph()
        joined = similarity_join(g, threshold=1e-4, c=0.8)
        assert all(u < v for u, v, _ in joined)

    def test_reuses_precomputed_scores(self):
        g = random_digraph(10, 30, seed=2)
        scores = simrank_star(g, 0.6, 10)
        a = similarity_join(g, threshold=0.005, scores=scores)
        b = similarity_join(g, threshold=0.005)
        assert a == b

    def test_threshold_one_plus_returns_empty(self):
        g = path_graph(4)
        assert similarity_join(g, threshold=1.01) == []

    def test_validation(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            similarity_join(g, threshold=-0.1)
        with pytest.raises(ValueError):
            similarity_join(g, scores=np.ones((2, 2)))


class TestTopPairs:
    def test_figure1_top_pair_is_gb(self):
        # (g, b) = .075 is the highest off-diagonal SR* among the
        # non-trivially-related pairs; verify top pairs are sensible.
        g = figure1_citation_graph()
        scores = simrank_star(g, 0.8, 100)
        pairs = top_pairs(g, k=3, scores=scores)
        assert len(pairs) == 3
        best = pairs[0]
        # best pair's score equals the matrix maximum off-diagonal
        iu, ju = np.triu_indices(11, k=1)
        assert best[2] == pytest.approx(scores[iu, ju].max())

    def test_k_bounds(self):
        g = path_graph(4)
        assert top_pairs(g, k=0) == []
        assert len(top_pairs(g, k=100)) == 6  # all pairs
        with pytest.raises(ValueError):
            top_pairs(g, k=-1)

    def test_deterministic_ties(self):
        g = path_graph(5)
        assert top_pairs(g, k=4) == top_pairs(g, k=4)
