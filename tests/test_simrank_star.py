"""Tests for SimRank* core: series, recursion, exponential, Figure 1."""

import numpy as np
import pytest

from repro.core import (
    ExponentialWeights,
    GeometricWeights,
    geometric_error_bound,
    simrank_star,
    simrank_star_exponential,
    simrank_star_exponential_closed,
    simrank_star_exponential_series,
    simrank_star_fixed_point_residual,
    simrank_star_series,
    simrank_star_series_bruteforce,
    transition_polynomials,
)
from repro.graph import (
    DiGraph,
    figure1_citation_graph,
    path_graph,
    random_digraph,
    two_ray_path,
)

# Figure 1, column 'SR*' (C = 0.8, values printed to 3 decimals).
FIGURE1_SRSTAR = {
    ("h", "d"): 0.010,
    ("a", "f"): 0.032,
    ("a", "c"): 0.025,
    ("g", "a"): 0.025,
    ("g", "b"): 0.075,
    ("i", "a"): 0.015,
    ("i", "h"): 0.031,
}


class TestGeometricSimRankStar:
    def test_zero_iterations_is_scaled_identity(self):
        g = random_digraph(8, 20, seed=0)
        np.testing.assert_allclose(
            simrank_star(g, 0.6, 0), 0.4 * np.eye(8)
        )

    def test_symmetry(self):
        g = random_digraph(20, 80, seed=1)
        s = simrank_star(g, 0.8, 10)
        np.testing.assert_allclose(s, s.T, atol=1e-14)

    def test_range(self):
        g = random_digraph(20, 80, seed=2)
        s = simrank_star(g, 0.8, 30)
        assert s.min() >= 0.0
        assert s.max() <= 1.0 + 1e-12

    def test_iterate_equals_series_partial_sum(self):
        # Lemma 4: the Eq. (14) iterate IS the Eq. (9) partial sum.
        g = random_digraph(15, 60, seed=3)
        for k in (0, 1, 3, 6):
            np.testing.assert_allclose(
                simrank_star(g, 0.6, k),
                simrank_star_series(g, 0.6, k),
                atol=1e-12,
            )

    def test_series_recurrence_matches_bruteforce(self):
        # The T_l recurrence against the literal binomial expansion.
        g = random_digraph(10, 35, seed=4)
        np.testing.assert_allclose(
            simrank_star_series(g, 0.7, 6),
            simrank_star_series_bruteforce(g, 0.7, 6),
            atol=1e-12,
        )

    def test_fixed_point_residual_vanishes(self):
        g = random_digraph(15, 50, seed=5)
        s = simrank_star(g, 0.6, 80)
        assert simrank_star_fixed_point_residual(g, s, 0.6) < 1e-12

    def test_convergence_bound_lemma3(self):
        # ||S - S_k||_max <= C^{k+1}
        g = random_digraph(12, 45, seed=6)
        c = 0.8
        exact = simrank_star(g, c, 200)
        for k in (1, 3, 5, 8):
            gap = np.abs(exact - simrank_star(g, c, k)).max()
            assert gap <= geometric_error_bound(c, k) + 1e-12

    def test_epsilon_parameter_reaches_accuracy(self):
        g = random_digraph(12, 45, seed=7)
        exact = simrank_star(g, 0.6, 200)
        approx = simrank_star(g, 0.6, num_iterations=None, epsilon=1e-4)
        assert np.abs(exact - approx).max() <= 1e-4

    def test_rejects_conflicting_parameters(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            simrank_star(g, 0.6, num_iterations=7, epsilon=1e-3)
        with pytest.raises(ValueError):
            simrank_star(g, 1.2)
        with pytest.raises(ValueError):
            simrank_star(g, 0.6, num_iterations=None)

    def test_transition_polynomials_are_stochastic_mixtures(self):
        # ||T_l||_max <= 1 (the normalisation argument of Section 3.2)
        g = random_digraph(12, 45, seed=8)
        for t in transition_polynomials(g, 6):
            assert t.min() >= -1e-15
            assert t.max() <= 1.0 + 1e-12


class TestFigure1Values:
    """The headline check: reproduce the paper's SR* column exactly."""

    @pytest.fixture(scope="class")
    def scores(self):
        g = figure1_citation_graph()
        return g, simrank_star(g, 0.8, 120)

    def test_figure1_srstar_values(self, scores):
        # abs=1e-3: the paper prints 3 decimals; (i, a) = 0.01447 sits
        # on the rounding boundary of the printed .015.
        g, s = scores
        for (x, y), expected in FIGURE1_SRSTAR.items():
            got = s[g.node_of(x), g.node_of(y)]
            assert got == pytest.approx(expected, abs=1e-3), (x, y)

    def test_all_zero_simrank_pairs_gain_similarity(self, scores):
        # The six pairs SimRank scores 0 are all strictly positive
        # under SimRank* — the whole point of the revision.
        g, s = scores
        for x, y in [("h", "d"), ("a", "f"), ("a", "c"), ("g", "a"),
                     ("g", "b"), ("i", "a")]:
            assert s[g.node_of(x), g.node_of(y)] > 0.0, (x, y)

    def test_hand_computed_fixed_point_values(self, scores):
        # Independent hand derivation from Eq. (17) (see DESIGN.md):
        # s^(a,a) = 1-C = 0.2; s^(a,b) = 0.4*0.2 = 0.08;
        # s^(a,f) = 0.4*0.08 = 0.032; s^(a,d) = 0.2*(0.2+0.032)
        g, s = scores
        a, b, d, f = (g.node_of(x) for x in "abdf")
        assert s[a, a] == pytest.approx(0.2, abs=1e-9)
        assert s[a, b] == pytest.approx(0.08, abs=1e-9)
        assert s[a, f] == pytest.approx(0.032, abs=1e-9)
        assert s[a, d] == pytest.approx(0.0464, abs=1e-9)


class TestSemanticProperties:
    def test_two_ray_path_all_related(self):
        # On the path example all nodes share the root a_0, so every
        # pair gets positive SimRank* (vs SimRank's zeros).
        g = two_ray_path(3)
        s = simrank_star(g, 0.8, 60)
        assert (s > 0).all()

    def test_deeper_pairs_score_lower(self):
        # Within one ray, pairs further from the root relate through
        # longer paths only, so scores decay with depth difference.
        g = two_ray_path(3)
        s = simrank_star(g, 0.8, 60)
        # right ray: 1, 2, 3; root 0
        assert s[0, 1] > s[0, 2] > s[0, 3]

    def test_more_symmetric_pairs_score_higher_at_same_distance(self):
        # Figure 3 ordering at the matrix level: with equal path
        # length, the centred pair (Me, Cousin) beats (Uncle, Son)
        # beats (Grandpa, Grandson).
        from repro.graph import family_tree

        g = family_tree()
        s = simrank_star(g, 0.8, 80)
        me_cousin = s[g.node_of("Me"), g.node_of("Cousin")]
        uncle_son = s[g.node_of("Uncle"), g.node_of("Son")]
        grandpa_grandson = s[
            g.node_of("Grandpa"), g.node_of("Grandson")
        ]
        assert me_cousin > uncle_son > grandpa_grandson > 0

    def test_empty_graph(self):
        s = simrank_star(DiGraph(0), 0.6, 5)
        assert s.shape == (0, 0)

    def test_edgeless_graph(self):
        s = simrank_star(DiGraph(3), 0.6, 5)
        np.testing.assert_allclose(s, 0.4 * np.eye(3))


class TestExponentialSimRankStar:
    def test_iteration_converges_to_closed_form(self):
        g = random_digraph(12, 45, seed=9)
        closed = simrank_star_exponential_closed(g, 0.6)
        iterated = simrank_star_exponential(g, 0.6, 40)
        np.testing.assert_allclose(iterated, closed, atol=1e-12)

    def test_series_converges_to_closed_form(self):
        g = random_digraph(12, 45, seed=10)
        closed = simrank_star_exponential_closed(g, 0.6)
        series = simrank_star_exponential_series(g, 0.6, 40)
        np.testing.assert_allclose(series, closed, atol=1e-12)

    def test_factorially_fast_convergence(self):
        # Eq. (12): 6 terms already reach ~1e-5 accuracy at C = 0.8.
        g = random_digraph(12, 45, seed=11)
        closed = simrank_star_exponential_closed(g, 0.8)
        series = simrank_star_exponential_series(g, 0.8, 6)
        bound = ExponentialWeights(0.8).error_bound(6)
        assert np.abs(series - closed).max() <= bound + 1e-12
        assert bound < 5e-5

    def test_epsilon_needs_fewer_iterations_than_geometric(self):
        from repro.core import iterations_for_accuracy

        k_geo = iterations_for_accuracy(0.8, 1e-4, "geometric")
        k_exp = iterations_for_accuracy(0.8, 1e-4, "exponential")
        assert k_exp < k_geo
        assert k_geo >= 30  # log_{0.8} 1e-4 ~ 41
        assert k_exp <= 8

    def test_symmetry_and_range(self):
        g = random_digraph(15, 60, seed=12)
        s = simrank_star_exponential(g, 0.8, 30)
        np.testing.assert_allclose(s, s.T, atol=1e-12)
        assert s.min() >= 0.0
        assert s.max() <= 1.0 + 1e-12

    def test_same_ranking_as_geometric_on_figure1(self):
        # "the relative order of the geometric SimRank* is well
        #  maintained by its exponential counterpart" (Exp-1 finding
        #  3). The agreement is statistical — near-ties such as
        #  (a, f) = .0320 vs (i, h) = .0311 may swap — so we require a
        #  high rank correlation rather than identical orderings.
        import scipy.stats

        g = figure1_citation_graph()
        geo = simrank_star(g, 0.8, 80)
        exp = simrank_star_exponential(g, 0.8, 40)
        pairs = list(FIGURE1_SRSTAR)
        geo_vals = [geo[g.node_of(x), g.node_of(y)] for x, y in pairs]
        exp_vals = [exp[g.node_of(x), g.node_of(y)] for x, y in pairs]
        tau = scipy.stats.kendalltau(geo_vals, exp_vals).statistic
        assert tau > 0.85

    def test_zero_pattern_matches_geometric(self):
        g = figure1_citation_graph()
        geo = simrank_star(g, 0.8, 60)
        exp = simrank_star_exponential(g, 0.8, 30)
        np.testing.assert_array_equal(geo > 1e-12, exp > 1e-12)

    def test_parameter_validation(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            simrank_star_exponential(g, 0.0)
        with pytest.raises(ValueError):
            simrank_star_exponential(g, 0.6, num_iterations=3, epsilon=1e-3)


class TestWeightSchemeIntegration:
    def test_series_with_explicit_geometric_weights(self):
        g = random_digraph(10, 30, seed=13)
        np.testing.assert_allclose(
            simrank_star_series(g, 0.6, 5),
            simrank_star_series(g, 0.6, 5, weights=GeometricWeights(0.6)),
        )

    def test_series_rejects_mismatched_damping(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            simrank_star_series(g, 0.6, 5, weights=GeometricWeights(0.8))

    def test_exponential_weights_in_series(self):
        g = random_digraph(10, 30, seed=14)
        np.testing.assert_allclose(
            simrank_star_series(
                g, 0.6, 8, weights=ExponentialWeights(0.6)
            ),
            simrank_star_exponential_series(g, 0.6, 8),
        )
