"""Tests for the stateful SimilarityEngine, its config, the measure
registry, and the label-aware result types."""

import numpy as np
import pytest

from repro import (
    MEASURES,
    Ranking,
    ScoreMatrix,
    SimilarityConfig,
    SimilarityEngine,
    available_measures,
    compute_measure,
    get_measure,
    register_measure,
    simrank_star,
    single_source,
    top_k,
)
from repro.baselines import rwr
from repro.engine.registry import _REGISTRY
from repro.engine.results import RankedNode
from repro.graph import figure1_citation_graph, path_graph, random_digraph
from repro.measures import SEMANTIC_MEASURES, TIMED_ALGORITHMS


class TestRegistry:
    def test_every_old_measure_is_registered(self):
        for name, fn in MEASURES.items():
            spec = get_measure(name)
            assert spec.name == name
            assert spec.compute is fn

    def test_registry_results_match_measures_dict(self):
        g = figure1_citation_graph()
        for name in MEASURES:
            via_dict = MEASURES[name](g, 0.6, 4)
            via_registry = get_measure(name).compute(g, 0.6, 4)
            np.testing.assert_array_equal(via_dict, via_registry)

    def test_semantic_and_timed_flags_project_the_old_dicts(self):
        assert set(available_measures(semantic=True)) == set(
            SEMANTIC_MEASURES
        )
        assert set(available_measures(timed=True)) == set(
            TIMED_ALGORITHMS
        )
        assert set(available_measures()) == set(MEASURES)

    def test_metadata(self):
        spec = get_measure("gSR*")
        assert spec.family == "SimRank*"
        assert spec.supports_single_source
        assert spec.weight_scheme == "geometric"
        assert "transition" in spec.uses
        rwr_spec = get_measure("RWR")
        assert not rwr_spec.symmetric
        assert not rwr_spec.supports_single_source

    def test_unknown_measure(self):
        with pytest.raises(KeyError, match="unknown measure"):
            get_measure("PageRank")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_measure(
                "gSR*", label="dup", family="SimRank*"
            )(lambda g, c, k: None)

    def test_custom_measure_plugs_into_engine(self):
        name = "test-cocitation"
        try:
            @register_measure(
                name, label="co-citation (test)", family="co-citation"
            )
            def _cocite(graph, c, num_iterations):
                a = np.zeros((graph.num_nodes, graph.num_nodes))
                for u, v in graph.edges():
                    a[u, v] = 1.0
                return a.T @ a

            g = figure1_citation_graph()
            engine = SimilarityEngine(g, measure=name)
            assert engine.matrix().shape == (11, 11)
            assert engine.score(0, 0) >= 0
            # the live dict views see the runtime registration
            assert name in MEASURES
        finally:
            _REGISTRY.pop(name, None)
        assert name not in MEASURES

    def test_unknown_artifact_rejected(self):
        with pytest.raises(ValueError, match="unknown artifact"):
            register_measure(
                "bad", label="bad", family="x", uses=("sketch",)
            )

    def test_single_source_capability_requires_weight_scheme(self):
        # the fast path is the weighted series walk; without a scheme
        # columns would contradict the measure's own matrix
        with pytest.raises(ValueError, match="weight_scheme"):
            register_measure(
                "bad", label="bad", family="x",
                supports_single_source=True,
            )


class TestSimilarityConfig:
    def test_defaults(self):
        cfg = SimilarityConfig()
        assert cfg.measure == "gSR*"
        assert cfg.c == 0.6
        assert cfg.resolved_iterations("geometric", 5) == 5

    def test_rejects_bad_damping(self):
        for c in (0.0, 1.0, -2, 7):
            with pytest.raises(ValueError, match="damping"):
                SimilarityConfig(c=c)

    def test_rejects_negative_iterations(self):
        with pytest.raises(ValueError, match="num_iterations"):
            SimilarityConfig(num_iterations=-1)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError, match="epsilon"):
            SimilarityConfig(epsilon=2.0)

    def test_rejects_both_truncation_specs(self):
        with pytest.raises(ValueError, match="either"):
            SimilarityConfig(num_iterations=5, epsilon=1e-3)

    def test_rejects_unknown_weights(self):
        with pytest.raises(ValueError, match="weights"):
            SimilarityConfig(weights="harmonic")

    def test_epsilon_resolution_uses_variant_bound(self):
        cfg = SimilarityConfig(c=0.8, epsilon=1e-3)
        k_geo = cfg.resolved_iterations("geometric", 5)
        k_exp = cfg.resolved_iterations("exponential", 10)
        assert k_exp < k_geo  # factorial decay needs fewer terms

    def test_replace_revalidates(self):
        cfg = SimilarityConfig(c=0.6)
        assert cfg.replace(c=0.8).c == 0.8
        with pytest.raises(ValueError):
            cfg.replace(c=1.5)

    def test_engine_rejects_mismatched_weights(self):
        g = path_graph(4)
        with pytest.raises(ValueError, match="length weights"):
            SimilarityEngine(g, measure="gSR*", weights="exponential")
        # matching scheme is fine
        SimilarityEngine(g, measure="gSR*", weights="geometric")

    def test_engine_accepts_config_plus_overrides(self):
        g = path_graph(4)
        cfg = SimilarityConfig(c=0.6)
        engine = SimilarityEngine(g, cfg, c=0.8)
        assert engine.config.c == 0.8

    def test_engine_rejects_unknown_measure(self):
        with pytest.raises(KeyError, match="unknown measure"):
            SimilarityEngine(path_graph(3), measure="PageRank")


class TestCacheReuse:
    def test_transition_built_once_across_queries(self):
        g = random_digraph(30, 140, seed=0)
        engine = SimilarityEngine(g, num_iterations=8)
        for query in (0, 5, 9, 5, 0):
            engine.single_source(query)
        assert engine.stats.transition_builds == 1
        assert engine.stats.column_computes == 3  # distinct queries
        assert engine.stats.hits == 2  # repeats served from memo

    def test_repeated_top_k_serves_from_cache(self):
        g = random_digraph(30, 140, seed=1)
        engine = SimilarityEngine(g, num_iterations=8)
        first = engine.top_k(3, k=5)
        again = engine.top_k(3, k=5)
        assert first == again
        assert engine.stats.column_computes == 1
        assert engine.stats.transition_builds == 1

    def test_batch_top_k_shares_precomputation(self):
        g = random_digraph(25, 100, seed=2)
        engine = SimilarityEngine(g, num_iterations=6)
        rankings = engine.batch_top_k([0, 1, 2, 1], k=3)
        assert len(rankings) == 4
        assert rankings[1] == rankings[3]
        assert engine.stats.transition_builds == 1
        assert engine.stats.column_computes == 3

    def test_matrix_memoized(self):
        g = random_digraph(20, 80, seed=3)
        engine = SimilarityEngine(g, num_iterations=6)
        a = engine.matrix()
        b = engine.matrix()
        assert a is b
        assert engine.stats.matrix_builds == 1

    def test_compression_built_once_for_memo_measure(self):
        g = random_digraph(25, 120, seed=4)
        engine = SimilarityEngine(g, measure="memo-gSR*",
                                  num_iterations=6)
        engine.matrix()
        engine.matrix()
        engine.top_k(0, k=3)
        assert engine.stats.compression_builds == 1
        assert engine.stats.matrix_builds == 1

    def test_columns_reuse_built_matrix(self):
        # once the full matrix exists, columns come from it for free
        g = random_digraph(20, 80, seed=5)
        engine = SimilarityEngine(g, num_iterations=6)
        engine.matrix()
        engine.single_source(2)
        assert engine.stats.column_computes == 0

    def test_score_reuses_any_cached_column(self):
        g = random_digraph(20, 80, seed=6)
        engine = SimilarityEngine(g, num_iterations=6)
        engine.single_source(4)
        engine.score(4, 7)  # symmetric: column 4 already cached
        assert engine.stats.column_computes == 1

    def test_single_source_result_is_read_only(self):
        g = random_digraph(10, 30, seed=7)
        engine = SimilarityEngine(g, num_iterations=5)
        scores = engine.single_source(0)
        with pytest.raises(ValueError):
            scores[0] = 99.0


class TestInvalidation:
    def test_engine_add_edge_invalidates_and_changes_scores(self):
        g = path_graph(5)
        engine = SimilarityEngine(g, num_iterations=8)
        before = engine.score(2, 4)
        engine.add_edge(0, 4)  # 2 and 4 now share in-link source 0...
        after = engine.score(2, 4)
        assert engine.stats.invalidations == 1
        assert after != before
        # parity with a fresh functional computation on the new graph
        assert after == pytest.approx(
            float(single_source(g, 4, 0.6, 8)[2])
        )

    def test_direct_graph_mutation_detected_by_staleness_check(self):
        g = path_graph(5)
        engine = SimilarityEngine(g, num_iterations=8)
        engine.single_source(4)
        g.add_edge(0, 4)  # behind the engine's back
        fresh = engine.single_source(4)
        assert engine.stats.invalidations == 1
        np.testing.assert_allclose(
            fresh, single_source(g, 4, 0.6, 8), atol=1e-12
        )

    def test_explicit_invalidate_drops_everything(self):
        g = random_digraph(15, 60, seed=8)
        engine = SimilarityEngine(g, num_iterations=6)
        engine.matrix()
        engine.single_source(0)
        engine.invalidate()
        engine.matrix()
        assert engine.stats.matrix_builds == 2

    def test_edge_swap_with_constant_counts_detected(self):
        # remove + add keeps (n, m) fixed; the DiGraph mutation
        # counter still moves, so the staleness check catches it
        g = path_graph(5)
        engine = SimilarityEngine(g, num_iterations=8)
        engine.single_source(4)
        g.remove_edge(3, 4)
        g.add_edge(0, 4)
        fresh = engine.single_source(4)
        assert engine.stats.invalidations == 1
        np.testing.assert_allclose(
            fresh, single_source(g, 4, 0.6, 8), atol=1e-12
        )

    def test_digraph_version_counter(self):
        g = path_graph(3)
        v0 = g.version
        g.add_edge(0, 2)
        assert g.version == v0 + 1
        g.add_edge(0, 2)  # duplicate: no structural change
        assert g.version == v0 + 1
        g.remove_edge(0, 2)
        assert g.version == v0 + 2

    def test_compressed_factorization_cached(self):
        from repro.bigraph import compress_graph

        compressed = compress_graph(random_digraph(30, 160, seed=9))
        first = compressed.factorized_in_adjacency()
        assert compressed.factorized_in_adjacency() is first

    def test_remove_edge_invalidates(self):
        g = figure1_citation_graph()
        engine = SimilarityEngine(g, c=0.8, num_iterations=10)
        before = engine.score("h", "d")
        engine.remove_edge("a", "d")
        assert engine.stats.invalidations == 1
        assert engine.score("h", "d") != before


class TestNumericalParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_single_source_matches_functional(self, seed):
        g = random_digraph(20, 90, seed=seed)
        engine = SimilarityEngine(g, c=0.6, num_iterations=8)
        for query in (0, 7, 13):
            np.testing.assert_allclose(
                engine.single_source(query),
                single_source(g, query, 0.6, 8),
                atol=1e-12,
            )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_matrix_matches_functional(self, seed):
        g = random_digraph(18, 70, seed=seed)
        engine = SimilarityEngine(g, c=0.6, num_iterations=8)
        np.testing.assert_allclose(
            np.asarray(engine.matrix()),
            simrank_star(g, 0.6, 8),
            atol=1e-12,
        )

    def test_matrix_and_columns_agree(self):
        g = random_digraph(16, 60, seed=3)
        engine = SimilarityEngine(g, c=0.6, num_iterations=8)
        col = engine.single_source(5)  # series path
        full = np.asarray(engine.matrix())
        np.testing.assert_allclose(col, full[:, 5], atol=1e-12)

    @pytest.mark.parametrize("name", sorted(MEASURES))
    def test_every_measure_matches_compute_measure(self, name):
        g = figure1_citation_graph()
        engine = SimilarityEngine(g, measure=name, c=0.6,
                                  num_iterations=4)
        np.testing.assert_allclose(
            np.asarray(engine.matrix()),
            compute_measure(name, g, 0.6, 4),
            atol=1e-12,
        )

    def test_asymmetric_measure_column_orientation(self):
        # RWR has no single-source fast path; columns slice the matrix
        g = random_digraph(15, 60, seed=4)
        engine = SimilarityEngine(g, measure="RWR", num_iterations=6)
        expected = rwr(g, 0.6, 6)
        np.testing.assert_allclose(
            engine.single_source(3), expected[:, 3], atol=1e-12
        )
        assert engine.score(2, 3) == pytest.approx(expected[2, 3])

    def test_epsilon_config_matches_functional_epsilon(self):
        g = random_digraph(15, 60, seed=5)
        engine = SimilarityEngine(g, c=0.8, epsilon=1e-3)
        np.testing.assert_allclose(
            np.asarray(engine.matrix()),
            simrank_star(g, 0.8, epsilon=1e-3),
            atol=1e-12,
        )


class TestRankingType:
    def test_functional_top_k_surfaces_labels(self):
        g = figure1_citation_graph()
        ranked = top_k(g, g.node_of("i"), k=3, c=0.8, num_terms=30)
        assert isinstance(ranked, Ranking)
        assert all(isinstance(lab, str) for lab in ranked.labels)
        # labels translate the ids
        assert ranked.labels == [g.label_of(n) for n in ranked.nodes]

    def test_unlabelled_graph_uses_ids_as_labels(self):
        g = random_digraph(10, 40, seed=0)
        ranked = top_k(g, 0, k=3)
        assert ranked.labels == ranked.nodes

    def test_entries_unpack_as_pairs(self):
        g = figure1_citation_graph()
        for node, score in top_k(g, 0, k=3, c=0.8):
            assert isinstance(node, int)
            assert isinstance(score, float)

    def test_equality_with_plain_list(self):
        g = random_digraph(10, 40, seed=1)
        ranked = top_k(g, 0, k=3)
        assert ranked == ranked.to_pairs()
        assert ranked.to_pairs() == [(e.node, e.score) for e in ranked]

    def test_slicing_preserves_metadata(self):
        g = figure1_citation_graph()
        ranked = top_k(g, g.node_of("i"), k=5, c=0.8)
        head = ranked[:2]
        assert isinstance(head, Ranking)
        assert head.query == ranked.query
        assert len(head) == 2

    def test_engine_top_k_exclude(self):
        g = random_digraph(20, 80, seed=2)
        engine = SimilarityEngine(g, num_iterations=6)
        banned = {1, 2, 3}
        ranked = engine.top_k(0, k=10, exclude=banned)
        assert not banned & set(ranked.nodes)

    def test_ranked_node_repr_and_label(self):
        item = RankedNode(3, 0.25, label="c")
        assert item == (3, 0.25)
        assert item.label == "c"
        assert "c" in repr(item)


class TestScoreMatrix:
    def test_label_indexing(self):
        g = figure1_citation_graph()
        engine = SimilarityEngine(g, c=0.8, num_iterations=10)
        sm = engine.matrix()
        h, d = g.node_of("h"), g.node_of("d")
        assert sm["h", "d"] == sm[h, d]
        assert sm.score("h", "d") == pytest.approx(float(sm[h, d]))

    def test_mixed_and_raw_indexing(self):
        g = figure1_citation_graph()
        sm = SimilarityEngine(g, c=0.8, num_iterations=5).matrix()
        h = g.node_of("h")
        assert sm["h", 0] == sm[h, 0]
        assert sm[0].shape == (11,)  # row passthrough

    def test_asarray_passthrough(self):
        g = random_digraph(8, 25, seed=0)
        sm = SimilarityEngine(g, num_iterations=5).matrix()
        arr = np.asarray(sm)
        assert arr.shape == (8, 8)
        assert sm.labels is None

    def test_top_k_from_matrix_matches_engine(self):
        g = figure1_citation_graph()
        engine = SimilarityEngine(g, c=0.8, num_iterations=30)
        a = engine.matrix().top_k("i", k=3)
        b = engine.top_k("i", k=3)
        assert a.nodes == b.nodes
        np.testing.assert_allclose(a.scores, b.scores, atol=1e-12)

    def test_unlabelled_matrix_rejects_string_keys(self):
        g = path_graph(4)
        sm = SimilarityEngine(g, num_iterations=4).matrix()
        with pytest.raises(KeyError):
            sm["a", "b"]

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            ScoreMatrix(np.zeros((2, 3)))


class TestBatchTopK:
    """The blocked batch path must be indistinguishable from looping."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batch_equals_sequential_top_k(self, seed):
        g = random_digraph(40, 220, seed=seed)
        queries = [0, 7, 33, 7, 12]
        batch_engine = SimilarityEngine(g, num_iterations=8)
        loop_engine = SimilarityEngine(g.copy(), num_iterations=8)
        batched = batch_engine.batch_top_k(queries, k=6)
        looped = [loop_engine.top_k(q, k=6) for q in queries]
        assert batched == looped

    def test_batch_respects_include_query(self):
        g = random_digraph(25, 120, seed=3)
        engine = SimilarityEngine(g, num_iterations=6)
        with_query = engine.batch_top_k([4], k=5, include_query=True)
        assert 4 in with_query[0].nodes

    def test_batch_reuses_cached_columns(self):
        g = random_digraph(30, 150, seed=4)
        engine = SimilarityEngine(g, num_iterations=6)
        engine.top_k(3, k=5)
        assert engine.stats.column_computes == 1
        engine.batch_top_k([3, 9], k=5)
        # only the fresh query walked; the repeat was a memo hit
        assert engine.stats.column_computes == 2
        assert engine.stats.hits == 1

    def test_batch_then_single_source_hits_memo(self):
        g = random_digraph(30, 150, seed=5)
        engine = SimilarityEngine(g, num_iterations=6)
        engine.batch_top_k([2, 8], k=5)
        engine.single_source(2)
        assert engine.stats.column_computes == 2
        assert engine.stats.hits == 1

    def test_batch_for_matrix_only_measure(self):
        # RWR has no series path: the batch falls back to matrix
        # columns and still matches sequential serving
        g = random_digraph(20, 80, seed=6)
        engine = SimilarityEngine(g, measure="RWR", num_iterations=6)
        other = SimilarityEngine(g.copy(), measure="RWR",
                                 num_iterations=6)
        assert engine.batch_top_k([1, 5], k=4) == [
            other.top_k(1, k=4), other.top_k(5, k=4)
        ]

    def test_batch_accepts_labels(self):
        g = figure1_citation_graph()
        engine = SimilarityEngine(g, c=0.8, num_iterations=10)
        by_label = engine.batch_top_k(["i", "h"], k=3)
        by_id = engine.batch_top_k(
            [g.node_of("i"), g.node_of("h")], k=3
        )
        assert by_label == by_id

    def test_empty_batch(self):
        g = random_digraph(10, 40, seed=7)
        engine = SimilarityEngine(g, num_iterations=5)
        assert engine.batch_top_k([], k=3) == []


class TestDtypePropagation:
    def test_default_is_float64(self):
        cfg = SimilarityConfig()
        assert cfg.dtype == "float64"
        assert cfg.np_dtype == np.float64
        g = random_digraph(20, 80, seed=0)
        engine = SimilarityEngine(g, num_iterations=5)
        assert engine.single_source(0).dtype == np.float64
        assert engine.transition.dtype == np.float64

    def test_float32_columns_and_transition(self):
        g = random_digraph(20, 80, seed=1)
        engine = SimilarityEngine(g, num_iterations=5, dtype="float32")
        assert engine.transition.dtype == np.float32
        scores = engine.single_source(0)
        assert scores.dtype == np.float32
        reference = SimilarityEngine(
            g.copy(), num_iterations=5
        ).single_source(0)
        np.testing.assert_allclose(scores, reference, atol=1e-4)

    def test_numpy_dtype_objects_normalised(self):
        assert SimilarityConfig(dtype=np.float32).dtype == "float32"
        assert SimilarityConfig(dtype=np.dtype("f8")).dtype == "float64"

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValueError, match="dtype"):
            SimilarityConfig(dtype="float16")
        with pytest.raises(ValueError, match="dtype"):
            SimilarityConfig(dtype="int64")

    def test_float32_matrix_build(self):
        g = random_digraph(20, 80, seed=2)
        engine = SimilarityEngine(
            g, measure="gSR*", num_iterations=5, dtype="float32"
        )
        matrix = engine.matrix()
        assert np.asarray(matrix).dtype == np.float32
        reference = simrank_star(g, 0.6, 5)
        np.testing.assert_allclose(
            np.asarray(matrix), reference, atol=1e-4
        )

    def test_batch_top_k_float32_matches_float64_ranking(self):
        g = random_digraph(40, 200, seed=3)
        fast = SimilarityEngine(g, num_iterations=6, dtype="float32")
        exact = SimilarityEngine(g.copy(), num_iterations=6)
        for a, b in zip(fast.batch_top_k([0, 9], k=3),
                        exact.batch_top_k([0, 9], k=3)):
            assert a.nodes == b.nodes
            np.testing.assert_allclose(a.scores, b.scores, atol=1e-4)


class TestRankingSelection:
    """argpartition top-k must match a full sort exactly."""

    def _full_sort(self, scores, query, k, include_query=False,
                   exclude=()):
        order = np.lexsort((np.arange(len(scores)), -scores))
        skip = set(exclude)
        if not include_query:
            skip.add(query)
        pairs = []
        for node in order:
            if len(pairs) >= k:
                break
            if int(node) in skip:
                continue
            pairs.append((int(node), float(scores[node])))
        return pairs

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("k", [0, 1, 5, 40, 1000])
    def test_matches_full_sort_random(self, seed, k):
        rng = np.random.default_rng(seed)
        scores = rng.random(60)
        ranked = Ranking.from_scores(scores, query=3, k=k)
        assert ranked.to_pairs() == self._full_sort(scores, 3, k)

    @pytest.mark.parametrize("k", [1, 3, 10, 25])
    def test_matches_full_sort_with_heavy_ties(self, k):
        rng = np.random.default_rng(99)
        # few distinct values -> ties across the cut-off are common
        scores = rng.integers(0, 4, size=50).astype(float) / 4.0
        ranked = Ranking.from_scores(scores, query=0, k=k)
        assert ranked.to_pairs() == self._full_sort(scores, 0, k)

    def test_exclude_and_include_query(self):
        rng = np.random.default_rng(7)
        scores = rng.random(30)
        exclude = {1, 2, 29}
        ranked = Ranking.from_scores(
            scores, query=5, k=10, include_query=True, exclude=exclude
        )
        assert ranked.to_pairs() == self._full_sort(
            scores, 5, 10, include_query=True, exclude=exclude
        )

    def test_out_of_range_exclusions_ignored(self):
        scores = np.array([0.3, 0.1, 0.2])
        ranked = Ranking.from_scores(
            scores, query=0, k=3, exclude={77, -5}
        )
        assert ranked.nodes == [2, 1]

    def test_all_nodes_excluded(self):
        scores = np.array([0.3, 0.1])
        ranked = Ranking.from_scores(
            scores, query=0, k=5, exclude={1}
        )
        assert len(ranked) == 0

    def test_nan_scores_rank_last_not_dropped(self):
        # a NaN at the cut-off must not wipe the finite answers
        scores = np.array([0.5, np.nan, np.nan, 0.3, 0.1])
        ranked = Ranking.from_scores(scores, query=99, k=3)
        assert ranked.nodes == [0, 3, 4]  # finite scores first
        assert ranked[0].score == 0.5

    def test_matrix_only_measure_serves_float64_under_float32(self):
        # RWR has no dtype support: columns must match the float64
        # matrix, not get silently downcast
        g = random_digraph(15, 60, seed=8)
        engine = SimilarityEngine(
            g, measure="RWR", num_iterations=6, dtype="float32"
        )
        col = engine.single_source(3)
        assert col.dtype == np.float64
        np.testing.assert_array_equal(
            col, np.asarray(engine.matrix())[:, 3]
        )
        assert engine.score(2, 3) == np.asarray(engine.matrix())[2, 3]


class TestColumnMemoBound:
    """SimilarityConfig.max_cached_columns: LRU/FIFO eviction."""

    def test_unbounded_by_default(self):
        g = random_digraph(40, 200, seed=20)
        engine = SimilarityEngine(g, num_iterations=5)
        for q in range(30):
            engine.single_source(q)
        assert len(engine._caches.columns) == 30
        assert engine.stats.column_evictions == 0

    def test_lru_bound_evicts_and_counts(self):
        g = random_digraph(40, 200, seed=21)
        engine = SimilarityEngine(
            g, num_iterations=5, max_cached_columns=4
        )
        for q in range(10):
            engine.single_source(q)
        assert len(engine._caches.columns) == 4
        assert engine.stats.column_evictions == 6
        # most recent queries survived
        assert all(q in engine._caches.columns for q in (6, 7, 8, 9))

    def test_lru_recency_refreshed_by_serving(self):
        g = random_digraph(40, 200, seed=22)
        engine = SimilarityEngine(
            g, num_iterations=5, max_cached_columns=2
        )
        engine.single_source(0)
        engine.single_source(1)
        engine.single_source(0)   # refresh 0: 1 is now least recent
        engine.single_source(2)   # evicts 1
        assert 0 in engine._caches.columns
        assert 1 not in engine._caches.columns

    def test_fifo_policy_ignores_recency(self):
        g = random_digraph(40, 200, seed=23)
        engine = SimilarityEngine(
            g, num_iterations=5, max_cached_columns=2,
            column_policy="fifo",
        )
        engine.single_source(0)
        engine.single_source(1)
        engine.single_source(0)   # a hit, but FIFO does not care
        engine.single_source(2)   # evicts 0 (oldest compute)
        assert 0 not in engine._caches.columns
        assert 1 in engine._caches.columns

    def test_evicted_column_recomputes_identically(self):
        g = random_digraph(40, 200, seed=24)
        bounded = SimilarityEngine(
            g, num_iterations=5, max_cached_columns=1
        )
        unbounded = SimilarityEngine(g, num_iterations=5)
        first = unbounded.single_source(3).copy()
        bounded.single_source(3)
        bounded.single_source(4)  # evicts 3
        np.testing.assert_allclose(bounded.single_source(3), first)
        assert bounded.stats.column_computes == 3

    def test_batch_wider_than_bound_still_answers_every_query(self):
        g = random_digraph(40, 200, seed=25)
        bounded = SimilarityEngine(
            g, num_iterations=5, max_cached_columns=2
        )
        reference = SimilarityEngine(g, num_iterations=5)
        queries = list(range(8))
        got = bounded.batch_top_k(queries, k=3)
        expected = reference.batch_top_k(queries, k=3)
        assert got == expected
        assert len(bounded._caches.columns) == 2
        assert bounded.stats.column_evictions == 6

    def test_invalidate_resets_memo_but_keeps_eviction_stat(self):
        g = random_digraph(40, 200, seed=26)
        engine = SimilarityEngine(
            g, num_iterations=5, max_cached_columns=1
        )
        engine.single_source(0)
        engine.single_source(1)
        assert engine.stats.column_evictions == 1
        engine.invalidate()
        assert len(engine._caches.columns) == 0
        assert engine.stats.column_evictions == 1

    def test_config_validation(self):
        with pytest.raises(ValueError, match="max_cached_columns"):
            SimilarityConfig(max_cached_columns=0)
        with pytest.raises(ValueError, match="max_cached_columns"):
            SimilarityConfig(max_cached_columns=True)
        with pytest.raises(ValueError, match="column_policy"):
            SimilarityConfig(column_policy="random")
        cfg = SimilarityConfig(max_cached_columns=8,
                               column_policy="fifo")
        assert cfg.max_cached_columns == 8


class TestThreadSafety:
    """Concurrent first queries must build shared artifacts once."""

    def test_concurrent_first_queries_single_build(self):
        import concurrent.futures

        g = random_digraph(60, 300, seed=27)
        engine = SimilarityEngine(g, num_iterations=6)
        with concurrent.futures.ThreadPoolExecutor(8) as pool:
            results = list(
                pool.map(engine.single_source, [q % 4 for q in range(32)])
            )
        assert engine.stats.transition_builds == 1
        assert engine.stats.column_computes <= 4
        reference = SimilarityEngine(g, num_iterations=6)
        for q, scores in zip([q % 4 for q in range(32)], results):
            np.testing.assert_allclose(
                scores, reference.single_source(q)
            )

    def test_concurrent_artifact_touch_single_build(self):
        import concurrent.futures

        g = random_digraph(60, 300, seed=28)
        engine = SimilarityEngine(
            g, measure="memo-gSR*", num_iterations=5
        )
        with concurrent.futures.ThreadPoolExecutor(8) as pool:
            list(pool.map(
                lambda _: (engine.transition_t, engine.compressed),
                range(16),
            ))
        assert engine.stats.transition_builds == 1
        assert engine.stats.compression_builds == 1

    def test_concurrent_matrix_single_build(self):
        import concurrent.futures

        g = random_digraph(40, 200, seed=29)
        engine = SimilarityEngine(g, num_iterations=5)
        with concurrent.futures.ThreadPoolExecutor(6) as pool:
            matrices = list(
                pool.map(lambda _: engine.matrix(), range(12))
            )
        assert engine.stats.matrix_builds == 1
        assert all(m is matrices[0] for m in matrices)

    def test_columns_api_dedups_and_returns_all(self):
        g = random_digraph(40, 200, seed=30)
        engine = SimilarityEngine(g, num_iterations=5)
        cols = engine.columns([3, 5, 3, 7])
        assert set(cols) == {3, 5, 7}
        assert engine.stats.column_computes == 3
        np.testing.assert_array_equal(
            cols[5], engine.single_source(5)
        )
        assert engine.stats.hits == 1
