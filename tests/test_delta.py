"""Delta-aware incremental maintenance: O(delta) mutations.

Property-style correctness for the PR's tentpole claim — applying an
edge batch through :func:`repro.index.apply_delta` must be
**bit-identical** to rebuilding every artifact from scratch on the
edited graph, across dtypes and modes; persisted segments must be
checksummed and fingerprint-chained so a corrupt, truncated, or
wrong-base segment can never poison a generation; and the serving
layer must route eligible batches through the fast path (falling back
to a full rebuild transparently) while the compact CLI folds chains
offline.
"""

import json

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.overlay import CsrOverlay
from repro.engine import SimilarityConfig, SimilarityEngine
from repro.graph import DiGraph, random_digraph
from repro.index import (
    IndexFormatError,
    IndexMismatchError,
    SimilarityIndex,
    apply_delta,
    apply_delta_file,
    delta_sibling_path,
    find_delta_siblings,
    load_delta,
    load_index,
    save_delta,
)
from repro.serve import SnapshotManager


def _random_batch(graph, rng, k):
    """``(add, remove)``: k fresh non-self-loop edges in, k out."""
    heads, tails = graph.edge_arrays()
    picks = rng.choice(heads.size, size=k, replace=False)
    remove = [(int(heads[i]), int(tails[i])) for i in picks]
    existing = set(zip(heads.tolist(), tails.tolist()))
    add = []
    while len(add) < k:
        u, v = (int(x) for x in rng.integers(0, graph.num_nodes, 2))
        if u != v and (u, v) not in existing:
            existing.add((u, v))
            add.append((u, v))
    return add, remove


def _edited(graph, add, remove):
    out = graph.copy()
    for u, v in add:
        out.add_edge(u, v)
    for u, v in remove:
        out.remove_edge(u, v)
    return out


def _assert_csr_identical(actual, expected):
    if isinstance(actual, CsrOverlay):
        actual = actual.tocsr()
    np.testing.assert_array_equal(actual.indptr, expected.indptr)
    np.testing.assert_array_equal(actual.indices, expected.indices)
    np.testing.assert_array_equal(actual.data, expected.data)


class TestCopyWithEdits:
    def test_matches_sequential_edits(self):
        graph = random_digraph(40, 200, seed=1)
        rng = np.random.default_rng(2)
        add, remove = _random_batch(graph, rng, 10)
        assert graph.copy_with_edits(add, remove) == _edited(
            graph, add, remove
        )

    def test_source_graph_untouched(self):
        graph = DiGraph(4, edges=[(0, 1), (1, 2)])
        clone = graph.copy_with_edits([(2, 3)], [(0, 1)])
        assert graph.has_edge(0, 1) and not graph.has_edge(2, 3)
        assert clone.has_edge(2, 3) and not clone.has_edge(0, 1)

    def test_bad_removal_raises(self):
        graph = DiGraph(3, edges=[(0, 1)])
        with pytest.raises(KeyError):
            graph.copy_with_edits([], [(1, 2)])


class TestCsrOverlay:
    def _overlay_pair(self, seed=3):
        rng = np.random.default_rng(seed)
        base = sp.random_array(
            (30, 30), density=0.2, random_state=rng, format="csr"
        )
        base.sort_indices()
        rows = np.array([2, 7, 19])
        patch = base[rows, :].copy()
        patch.data = patch.data * 2.0
        return CsrOverlay(base, rows, patch), base, rows, patch

    def test_tocsr_merges_patched_rows(self):
        overlay, base, rows, patch = self._overlay_pair()
        merged = overlay.tocsr()
        dense = base.toarray()
        dense[rows] = patch.toarray()
        np.testing.assert_array_equal(merged.toarray(), dense)

    def test_spmm_matches_merged_matmul(self):
        overlay, *_ = self._overlay_pair()
        rng = np.random.default_rng(4)
        dense = rng.standard_normal((30, 5))
        out = np.empty((30, 5))
        overlay.spmm_into(dense, out)
        np.testing.assert_allclose(
            out, overlay.tocsr() @ dense, atol=1e-13
        )

    def test_with_rows_stacks_patches(self):
        overlay, base, _, _ = self._overlay_pair()
        rows2 = np.array([7, 11])  # 7 re-patched, 11 new
        patch2 = base[rows2, :].copy()
        patch2.data = patch2.data * 3.0
        stacked = overlay.with_rows(rows2, patch2)
        merged = stacked.tocsr().toarray()
        np.testing.assert_array_equal(
            merged[11], patch2.toarray()[1]
        )
        np.testing.assert_array_equal(
            merged[7], patch2.toarray()[0]  # newest patch wins
        )
        merged_old = overlay.tocsr().toarray()
        np.testing.assert_array_equal(merged[2], merged_old[2])


@pytest.mark.parametrize("dtype", ["float64", "float32"])
@pytest.mark.parametrize("measure", ["gSR*", "memo-gSR*"])
class TestApplyDeltaParity:
    """The tentpole invariant: delta result == from-scratch rebuild."""

    def _config(self, measure, dtype):
        return SimilarityConfig(
            measure=measure, num_iterations=6, dtype=dtype
        )

    def test_artifacts_bit_identical(self, dtype, measure):
        graph = random_digraph(50, 300, seed=5)
        config = self._config(measure, dtype)
        base = SimilarityIndex.build(graph, config)
        rng = np.random.default_rng(6)
        add, remove = _random_batch(graph, rng, 12)
        applied, delta = apply_delta(base, add, remove)
        rebuilt = SimilarityIndex.build(
            _edited(graph, add, remove), config
        )
        assert applied.meta == rebuilt.meta
        assert delta.result_digest == rebuilt.meta.graph_digest
        _assert_csr_identical(applied.transition, rebuilt.transition)
        _assert_csr_identical(
            applied.transition_t, rebuilt.transition_t
        )
        if rebuilt.factors is not None:
            # touched rows are demoted out of their bicliques, so the
            # factor *structure* legitimately differs from a global
            # recompression — but both decompositions must reconstruct
            # the same matrix exactly (0/1 counts: no rounding), and
            # the shared h_in side is never rewritten
            def _reconstruct(factors):
                e_direct, h_out, h_in = factors
                return (e_direct + h_out @ h_in).toarray()

            np.testing.assert_array_equal(
                _reconstruct(applied.factors),
                _reconstruct(rebuilt.factors),
            )
            _assert_csr_identical(
                applied.factors[2], base.factors[2]
            )

    def test_engine_columns_bit_identical(self, dtype, measure):
        graph = random_digraph(50, 300, seed=7)
        config = self._config(measure, dtype)
        base = SimilarityIndex.build(graph, config)
        rng = np.random.default_rng(8)
        add, remove = _random_batch(graph, rng, 8)
        edited = _edited(graph, add, remove)
        applied, _ = apply_delta(base, add, remove)
        served = SimilarityEngine.from_index(applied, edited, config)
        oracle = SimilarityEngine(edited, config)
        sample = [0, 13, 27, 49]
        expected = oracle.columns(sample)
        actual = served.columns(sample)
        for q in expected:
            np.testing.assert_array_equal(actual[q], expected[q])

    def test_chained_deltas_stay_bit_identical(self, dtype, measure):
        graph = random_digraph(40, 240, seed=9)
        config = self._config(measure, dtype)
        index = SimilarityIndex.build(graph, config)
        rng = np.random.default_rng(10)
        for depth in range(1, 4):
            add, remove = _random_batch(graph, rng, 6)
            index, delta = apply_delta(
                index, add, remove, chain_depth=depth
            )
            graph = _edited(graph, add, remove)
            assert delta.chain_depth == depth
        rebuilt = SimilarityIndex.build(graph, config)
        _assert_csr_identical(index.transition, rebuilt.transition)
        _assert_csr_identical(
            index.transition_t, rebuilt.transition_t
        )


class TestApplyDeltaApprox:
    def test_approx_walniks_redrawn_deterministically(self):
        graph = random_digraph(60, 360, seed=11)
        config = SimilarityConfig(
            measure="gSR*", mode="approx", num_iterations=5,
            epsilon=0.25, seed=13,
        )
        base = SimilarityIndex.build(graph, config)
        rng = np.random.default_rng(12)
        add, remove = _random_batch(graph, rng, 9)
        applied, _ = apply_delta(base, add, remove)
        rebuilt = SimilarityIndex.build(
            _edited(graph, add, remove), config
        )
        assert applied.meta == rebuilt.meta
        assert applied.walks is not None
        # same seed + same updated Q -> identical redraw, array for array
        for name in (
            "endpoints", "sources", "counts", "indptr", "level_offsets"
        ):
            np.testing.assert_array_equal(
                getattr(applied.walks, name),
                getattr(rebuilt.walks, name),
            )
        assert applied.walks.seed == rebuilt.walks.seed


class TestDeltaSegments:
    def _chain(self, tmp_path, seed=14):
        graph = random_digraph(40, 240, seed=seed)
        config = SimilarityConfig(measure="gSR*", num_iterations=6)
        base = SimilarityIndex.build(graph, config)
        rng = np.random.default_rng(seed + 1)
        add, remove = _random_batch(graph, rng, 7)
        applied, delta = apply_delta(base, add, remove)
        path = tmp_path / "seg.simidx"
        save_delta(delta, path)
        return base, applied, delta, path

    def test_roundtrip(self, tmp_path):
        _, _, delta, path = self._chain(tmp_path)
        loaded = load_delta(path)
        np.testing.assert_array_equal(loaded.added, delta.added)
        np.testing.assert_array_equal(loaded.removed, delta.removed)
        assert loaded.base_digest == delta.base_digest
        assert loaded.result_digest == delta.result_digest
        assert loaded.result_meta == delta.result_meta
        assert loaded.chain_depth == delta.chain_depth

    def test_apply_delta_file_reproduces_result(self, tmp_path):
        base, applied, _, path = self._chain(tmp_path)
        replayed, _ = apply_delta_file(base, path)
        assert replayed.meta == applied.meta
        _assert_csr_identical(
            replayed.transition_t, applied.transition_t.tocsr()
            if isinstance(applied.transition_t, CsrOverlay)
            else applied.transition_t,
        )

    def test_corrupt_segment_rejected(self, tmp_path):
        _, _, _, path = self._chain(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF  # flip a payload byte
        path.write_bytes(bytes(raw))
        with pytest.raises(IndexFormatError):
            load_delta(path)

    def test_truncated_segment_rejected(self, tmp_path):
        _, _, _, path = self._chain(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 16])
        with pytest.raises(IndexFormatError):
            load_delta(path)

    def test_wrong_base_rejected_with_structured_fields(
        self, tmp_path
    ):
        _, _, _, path = self._chain(tmp_path)
        other = SimilarityIndex.build(
            random_digraph(40, 240, seed=99),
            SimilarityConfig(measure="gSR*", num_iterations=6),
        )
        with pytest.raises(IndexMismatchError) as info:
            apply_delta_file(other, path)
        assert info.value.mismatches  # structured per-field report
        fields = {m["field"] for m in info.value.mismatches}
        assert "graph_digest" in fields

    def test_kind_gating_between_index_and_delta(self, tmp_path):
        base, _, _, seg_path = self._chain(tmp_path)
        idx_path = base.save(tmp_path / "base.simidx")
        with pytest.raises(IndexFormatError):
            load_index(seg_path)  # a segment is not an index
        with pytest.raises(IndexFormatError):
            load_delta(idx_path)  # an index is not a segment

    def test_sibling_naming_and_discovery(self, tmp_path):
        index_path = tmp_path / "serve.simidx"
        path = delta_sibling_path(index_path, 7)
        assert path.name == "serve.delta-000007.simidx"
        path.write_bytes(b"")
        (tmp_path / "serve.delta-000002.simidx").write_bytes(b"")
        found = find_delta_siblings(index_path)
        assert [seq for seq, _ in found] == [2, 7]


class TestSnapshotManagerDelta:
    def _manager(self, graph, **kwargs):
        return SnapshotManager(
            graph, measure="memo-gSR*", num_iterations=6, **kwargs
        )

    def test_eligible_batch_takes_delta_path(self):
        graph = random_digraph(60, 600, seed=15)
        manager = self._manager(graph)
        rng = np.random.default_rng(16)
        add, remove = _random_batch(graph, rng, 5)
        fresh = manager.mutate(add=add, remove=remove)
        assert manager.delta_swaps == 1
        assert manager.full_swaps == 0
        assert fresh.delta is not None
        assert fresh.base_seq == 0
        # parity against a cold manager over the edited graph
        oracle = self._manager(_edited(graph, add, remove))
        q = 11
        np.testing.assert_array_equal(
            fresh.engine.single_source(q),
            oracle.current.engine.single_source(q),
        )

    def test_oversized_batch_falls_back_to_full(self):
        graph = random_digraph(30, 120, seed=17)
        manager = self._manager(graph, max_delta_fraction=0.01)
        rng = np.random.default_rng(18)
        add, remove = _random_batch(graph, rng, 10)  # > 1% of edges
        fresh = manager.mutate(add=add, remove=remove)
        assert manager.delta_swaps == 0
        assert manager.full_swaps == 1
        assert fresh.delta is None

    def test_delta_mode_off_always_rebuilds(self):
        graph = random_digraph(30, 120, seed=19)
        manager = self._manager(graph, delta_mode="off")
        manager.mutate(add=[(0, 1) if not graph.has_edge(0, 1)
                            else (1, 0)])
        assert manager.delta_swaps == 0 and manager.full_swaps == 1

    def test_chain_depth_cap_folds_into_full_build(self):
        graph = random_digraph(40, 400, seed=20)
        manager = self._manager(graph, max_chain_depth=2)
        rng = np.random.default_rng(21)
        for _ in range(3):
            snapshot = manager.current
            add, remove = _random_batch(snapshot.graph, rng, 3)
            manager.mutate(add=add, remove=remove)
        assert manager.delta_swaps == 2
        assert manager.full_swaps == 1  # third swap folded the chain

    def test_invalid_batch_still_raises_before_any_swap(self):
        graph = DiGraph(4, edges=[(0, 1)])
        manager = self._manager(graph)
        old = manager.current
        with pytest.raises(KeyError):
            manager.mutate(remove=[(2, 3)])
        assert manager.current is old
        assert manager.swaps == 0

    def test_segments_persisted_and_replayed_on_restart(
        self, tmp_path
    ):
        path = tmp_path / "serve.simidx"
        graph = random_digraph(50, 500, seed=22)
        manager = self._manager(graph, index_path=path)
        manager.warmup()
        rng = np.random.default_rng(23)
        for _ in range(2):
            snapshot = manager.current
            add, remove = _random_batch(snapshot.graph, rng, 4)
            manager.mutate(add=add, remove=remove)
        assert [s for s, _ in find_delta_siblings(path)] == [1, 2]
        served = manager.current.graph.copy()
        restarted = self._manager(served, index_path=path)
        assert restarted.delta_segments_loaded == 2
        assert restarted.index_loads == 1
        q = 33
        np.testing.assert_array_equal(
            restarted.current.engine.single_source(q),
            manager.current.engine.single_source(q),
        )

    def test_full_rebuild_clears_stale_segments(self, tmp_path):
        path = tmp_path / "serve.simidx"
        graph = random_digraph(50, 500, seed=24)
        manager = self._manager(
            graph, index_path=path, max_chain_depth=1
        )
        manager.warmup()
        rng = np.random.default_rng(25)
        for _ in range(2):  # second mutation exceeds the chain cap
            snapshot = manager.current
            add, remove = _random_batch(snapshot.graph, rng, 3)
            manager.mutate(add=add, remove=remove)
        assert manager.full_swaps == 1
        assert find_delta_siblings(path) == []

    def test_swap_latency_and_describe_shapes(self):
        graph = random_digraph(40, 400, seed=26)
        manager = self._manager(graph)
        rng = np.random.default_rng(27)
        add, remove = _random_batch(graph, rng, 3)
        manager.mutate(add=add, remove=remove)
        latency = manager.swap_latency_summary()
        assert latency["delta"]["count"] == 1
        assert latency["full"]["count"] == 0
        assert latency["delta"]["total_s"]["p50"] > 0
        document = manager.describe()
        assert document["delta"]["swaps"] == 1
        assert document["delta"]["chain_depth"] == 1
        assert document["current"]["swap_kind"] == "delta"
        assert document["swap_latency"]["delta"]["count"] == 1


class TestCompactCLI:
    def test_compact_folds_chain_and_removes_segments(
        self, tmp_path, capsys
    ):
        from repro.index.__main__ import main

        path = tmp_path / "serve.simidx"
        graph = random_digraph(50, 500, seed=28)
        manager = SnapshotManager(
            graph, measure="memo-gSR*", num_iterations=6,
            index_path=path,
        )
        manager.warmup()
        rng = np.random.default_rng(29)
        for _ in range(2):
            snapshot = manager.current
            add, remove = _random_batch(snapshot.graph, rng, 4)
            manager.mutate(add=add, remove=remove)
        served = manager.current.graph.copy()
        assert main(["compact", str(path)]) == 0
        assert find_delta_siblings(path) == []
        folded = SimilarityIndex.load(path)
        assert folded.meta.graph_digest == manager.current.engine \
            .export_index().meta.graph_digest
        # the folded base now warm-loads with zero replay
        restarted = SnapshotManager(
            graph=served, measure="memo-gSR*", num_iterations=6,
            index_path=path,
        )
        assert restarted.index_loads == 1
        assert restarted.delta_segments_loaded == 0

    def test_compact_without_segments_is_a_noop(self, tmp_path):
        from repro.index.__main__ import main

        config = SimilarityConfig(measure="gSR*", num_iterations=5)
        index = SimilarityIndex.build(
            random_digraph(20, 80, seed=30), config
        )
        path = index.save(tmp_path / "plain.simidx")
        assert main(["compact", str(path)]) == 0

    def test_compact_stops_at_broken_link(self, tmp_path, capsys):
        from repro.index.__main__ import main

        path = tmp_path / "serve.simidx"
        graph = random_digraph(40, 400, seed=31)
        manager = SnapshotManager(
            graph, measure="gSR*", num_iterations=6, index_path=path
        )
        manager.warmup()
        rng = np.random.default_rng(32)
        for _ in range(2):
            snapshot = manager.current
            add, remove = _random_batch(snapshot.graph, rng, 3)
            manager.mutate(add=add, remove=remove)
        first = delta_sibling_path(path, 1)
        raw = bytearray(first.read_bytes())
        raw[-3] ^= 0xFF
        first.write_bytes(bytes(raw))
        # nothing applies (the chain starts broken) -> exit 1
        assert main(["compact", str(path)]) == 1


class TestBenchHistory:
    def _write(self, directory, name, results, derived):
        (directory / name).write_text(json.dumps({
            "tag": name[len("BENCH_"):-len(".json")],
            "results": {
                case: {"seconds_min": s, "seconds_mean": s,
                       "peak_bytes": 0}
                for case, s in results.items()
            },
            "derived": derived,
        }))

    def test_collect_and_render(self, tmp_path):
        from repro.bench.history import (
            collect_history,
            render_history,
        )

        self._write(
            tmp_path, "BENCH_a.json",
            {"case_x": 0.010}, {"speedup_y": 2.0},
        )
        self._write(
            tmp_path, "BENCH_b.json",
            {"case_x": 0.008, "case_z": 0.001},
            {"speedup_y": 2.5},
        )
        (tmp_path / "BENCH_junk.json").write_text("{not json")
        entries = collect_history(tmp_path)
        assert [e["tag"] for e in entries] == ["a", "b"]
        table = render_history(entries)
        assert "case_x (ms)" in table
        assert "10.00" in table and "8.00" in table
        assert "speedup_y (x)" in table
        # case_z is missing from run a -> rendered as "-"
        row = next(
            line for line in table.splitlines()
            if line.startswith("case_z")
        )
        assert "-" in row and "1.00" in row

    def test_empty_directory(self, tmp_path):
        from repro.bench.history import (
            collect_history,
            render_history,
        )

        assert "no BENCH_" in render_history(
            collect_history(tmp_path)
        )
