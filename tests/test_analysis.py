"""Tests for ranking metrics, ground truth, zero-similarity census,
and role analyses."""

import numpy as np
import pytest

from repro.analysis import (
    evaluate_ranking,
    grouped_similarity,
    kendall_concordance,
    ndcg,
    ndcg_for_scores,
    query_ground_truth,
    spearman_rho,
    stratified_queries,
    top_pair_attribute_difference,
    topic_cosine_matrix,
    zero_similarity_census,
)
from repro.graph import (
    DiGraph,
    figure1_citation_graph,
    path_graph,
    random_digraph,
    two_ray_path,
)


class TestKendall:
    def test_identical_rankings(self):
        assert kendall_concordance([1, 2, 3], [10, 20, 30]) == 1.0

    def test_reversed_rankings(self):
        assert kendall_concordance([1, 2, 3], [30, 20, 10]) == 0.0

    def test_half_concordant(self):
        # one of three pairs concordant... [2,1,3]: pairs (0,1) disc,
        # (0,2) conc, (1,2) conc -> 2/3
        assert kendall_concordance([1, 2, 3], [2, 1, 3]) == pytest.approx(
            2 / 3
        )

    def test_ties_concordant_only_when_tied_in_both(self):
        assert kendall_concordance([1, 1], [2, 2]) == 1.0
        assert kendall_concordance([1, 1], [1, 2]) == 0.0

    def test_single_element(self):
        assert kendall_concordance([5], [7]) == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            kendall_concordance([1, 2], [1, 2, 3])


class TestSpearman:
    def test_perfect(self):
        assert spearman_rho([1, 2, 3, 4], [2, 4, 6, 8]) == 1.0

    def test_reversed(self):
        assert spearman_rho([1, 2, 3, 4], [8, 6, 4, 2]) == -1.0

    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        a, b = rng.random(50), rng.random(50)
        import scipy.stats

        assert spearman_rho(a, b) == pytest.approx(
            scipy.stats.spearmanr(a, b).statistic
        )

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            spearman_rho(np.ones((2, 2)), np.ones((2, 2)))


class TestNDCG:
    def test_perfect_order(self):
        assert ndcg([1.0, 0.8, 0.2]) == 1.0

    def test_worst_order_below_one(self):
        assert ndcg([0.0, 0.1, 1.0]) < 1.0

    def test_cutoff(self):
        full = ndcg([0.2, 1.0, 0.8])
        top2 = ndcg([0.2, 1.0, 0.8], p=2)
        assert 0 < top2 <= 1 and 0 < full <= 1

    def test_all_zero_relevance(self):
        assert ndcg([0.0, 0.0]) == 1.0

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            ndcg([1.0], p=0)

    def test_ndcg_for_scores_perfect(self):
        truth = np.array([0.9, 0.1, 0.5])
        assert ndcg_for_scores(truth, truth) == pytest.approx(1.0)

    def test_ndcg_for_scores_penalises_bad_retrieval(self):
        truth = np.array([1.0, 0.9, 0.0, 0.0])
        good = ndcg_for_scores(np.array([10, 9, 1, 0]), truth, p=2)
        bad = ndcg_for_scores(np.array([0, 1, 9, 10]), truth, p=2)
        assert good == pytest.approx(1.0)
        assert bad < 0.1

    def test_evaluate_ranking_keys(self):
        out = evaluate_ranking([1, 2, 3], [1, 2, 3])
        assert set(out) == {"kendall", "spearman", "ndcg"}
        assert all(v == 1.0 for v in out.values())


class TestGroundTruth:
    def test_cosine_matrix_properties(self):
        rng = np.random.default_rng(1)
        topics = rng.dirichlet(np.ones(5), size=20)
        cos = topic_cosine_matrix(topics)
        np.testing.assert_allclose(np.diag(cos), 1.0)
        np.testing.assert_allclose(cos, cos.T)
        assert cos.min() >= 0.0 and cos.max() <= 1.0 + 1e-12

    def test_query_vector_matches_matrix_column(self):
        rng = np.random.default_rng(2)
        topics = rng.dirichlet(np.ones(4), size=10)
        cos = topic_cosine_matrix(topics)
        np.testing.assert_allclose(
            query_ground_truth(topics, 3), cos[:, 3]
        )

    def test_query_out_of_range(self):
        with pytest.raises(IndexError):
            query_ground_truth(np.ones((3, 2)), 5)

    def test_rejects_1d_topics(self):
        with pytest.raises(ValueError):
            topic_cosine_matrix(np.ones(5))

    def test_stratified_queries_cover_degree_spectrum(self):
        g = random_digraph(200, 900, seed=3)
        queries = stratified_queries(g, 50, num_groups=5, seed=0)
        assert len(queries) == 50
        assert len(set(queries)) == 50  # no duplicates within groups
        degrees = g.in_degrees()[queries]
        # queries must include both low- and high-degree nodes
        assert degrees.min() <= np.percentile(g.in_degrees(), 25)
        assert degrees.max() >= np.percentile(g.in_degrees(), 75)

    def test_stratified_queries_validation(self):
        g = path_graph(5)
        with pytest.raises(ValueError):
            stratified_queries(g, 0)
        with pytest.raises(ValueError):
            stratified_queries(DiGraph(0), 5)


class TestZeroSimilarityCensus:
    def test_figure1_graph(self):
        census = zero_similarity_census(figure1_citation_graph())
        # (h, d) is an SR issue; plenty more exist on this DAG-ish graph
        assert census.simrank_issue > 0.3
        assert (
            census.simrank_completely_dissimilar
            + census.simrank_partially_missing
            == pytest.approx(census.simrank_issue)
        )
        assert (
            census.rwr_completely_dissimilar
            + census.rwr_partially_missing
            == pytest.approx(census.rwr_issue)
        )

    def test_two_ray_path_counts(self):
        # On the paper's path example, SimRank misses contributions for
        # every cross pair of unequal depth plus every same-ray pair.
        g = two_ray_path(2)  # 5 nodes
        census = zero_similarity_census(g)
        # all 20 ordered pairs share the root, so every pair has an
        # in-link path; the only symmetric-only pairs are the
        # equal-depth cross pairs (1,3) and (2,4) in both orders —
        # each is reached solely via the root at equal distance.
        assert census.simrank_issue == pytest.approx(16 / 20)

    def test_cycle_has_no_completely_dissimilar(self):
        from repro.graph import cycle_graph

        census = zero_similarity_census(cycle_graph(4))
        # on a cycle everything reaches everything both ways
        assert census.rwr_completely_dissimilar == 0.0

    def test_empty_and_single(self):
        census = zero_similarity_census(DiGraph(1))
        assert census.simrank_issue == 0.0

    def test_percent_view(self):
        rows = zero_similarity_census(
            figure1_citation_graph()
        ).as_percentages()
        assert rows["zero-SR issue %"] == pytest.approx(
            rows["SR completely dissimilar %"]
            + rows["SR partially missing %"]
        )

    def test_matches_measure_zero_patterns(self):
        # census's "completely dissimilar" fraction == fraction of
        # zero entries in the actual converged measures
        from repro.baselines import rwr, simrank_matrix
        from repro.core import simrank_star

        g = random_digraph(15, 45, seed=4)
        n = g.num_nodes
        off = ~np.eye(n, dtype=bool)
        census = zero_similarity_census(g)
        sr = simrank_matrix(g, 0.6, 60)
        srs = simrank_star(g, 0.6, 60)
        sr_zero_with_evidence = ((sr < 1e-13) & (srs > 1e-13) & off).sum()
        assert census.simrank_completely_dissimilar == pytest.approx(
            sr_zero_with_evidence / (n * (n - 1))
        )


class TestRoles:
    def test_top_pairs_have_small_gaps_for_good_measure(self):
        # build a measure that scores pairs by attribute closeness:
        # its top pairs must have smaller gaps than random
        rng = np.random.default_rng(5)
        attr = rng.integers(0, 100, size=60).astype(float)
        scores = -np.abs(attr[:, None] - attr[None, :])
        out = top_pair_attribute_difference(
            scores, attr, fractions=(0.02, 0.2)
        )
        assert out[0.02] <= out[0.2] <= out["random"]

    def test_random_matches_mean_gap(self):
        rng = np.random.default_rng(6)
        attr = rng.random(30)
        scores = rng.random((30, 30))
        out = top_pair_attribute_difference(scores, attr, fractions=(0.5,))
        iu, ju = np.triu_indices(30, k=1)
        assert out["random"] == pytest.approx(
            np.abs(attr[iu] - attr[ju]).mean()
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            top_pair_attribute_difference(
                np.ones((3, 3)), np.ones(3), fractions=(0.0,)
            )
        with pytest.raises(ValueError):
            top_pair_attribute_difference(np.ones((3, 2)), np.ones(3))
        with pytest.raises(ValueError):
            top_pair_attribute_difference(np.ones((1, 1)), np.ones(1))

    def test_grouped_similarity_structure(self):
        rng = np.random.default_rng(7)
        attr = np.arange(40, dtype=float)
        scores = rng.random((40, 40))
        scores = 0.5 * (scores + scores.T)
        within, cross = grouped_similarity(scores, attr, num_groups=4)
        assert set(within) <= {1, 2, 3, 4}
        assert set(cross) <= {1, 2, 3}

    def test_grouped_similarity_detects_role_structure(self):
        # scores correlated with attribute closeness -> cross decays
        attr = np.arange(50, dtype=float)
        scores = 1.0 / (1.0 + np.abs(attr[:, None] - attr[None, :]))
        within, cross = grouped_similarity(scores, attr, num_groups=5)
        values = [cross[d] for d in sorted(cross)]
        assert values == sorted(values, reverse=True)
        assert min(within.values()) > max(cross.values())

    def test_grouped_similarity_validation(self):
        with pytest.raises(ValueError):
            grouped_similarity(np.ones((3, 3)), np.ones(3), num_groups=0)
