"""Smoke tests: every example script runs clean against the public API."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_at_least_five_scripts():
    assert len(EXAMPLES) >= 5
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_quickstart_demonstrates_the_fix(capsys):
    runpy.run_path(
        str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    # the zero-SimRank pair and its SimRank* repair both appear
    assert "SimRank (h, d) = 0.000" in out
    assert "SimRank*(h, d) = 0.010" in out
