"""Tests for the versioned bounded LRU result cache."""

import threading

import pytest

from repro.serve import ResultCache


class TestResultCache:
    def test_roundtrip_and_stats(self):
        cache = ResultCache(max_entries=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.entries == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")       # refresh a: b is now least recent
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_put_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)   # overwrite refreshes
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_rejects_none_and_bad_bound(self):
        cache = ResultCache(max_entries=1)
        with pytest.raises(ValueError):
            cache.put("a", None)
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)

    def test_versioned_keys_do_not_collide(self):
        # the serving layer embeds (snapshot seq, graph version) in
        # every key: the same logical query under two generations is
        # two entries
        cache = ResultCache(max_entries=8)
        key_v0 = (0, 100, "gSR*", "top_k", 7, None, 10, False)
        key_v1 = (1, 102, "gSR*", "top_k", 7, None, 10, False)
        cache.put(key_v0, "old answer")
        assert cache.get(key_v1) is None
        cache.put(key_v1, "new answer")
        assert cache.get(key_v0) == "old answer"
        assert cache.get(key_v1) == "new answer"

    def test_clear(self):
        cache = ResultCache(max_entries=4)
        cache.put("a", 1)
        cache.clear()
        assert cache.get("a") is None
        assert cache.stats.entries == 0

    def test_thread_safety_smoke(self):
        cache = ResultCache(max_entries=64)
        errors = []

        def worker(base):
            try:
                for i in range(200):
                    cache.put((base, i % 32), i)
                    cache.get((base, (i + 7) % 32))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 64
