"""The persistent precomputation index: build / save / load / adopt.

Covers the PR 4 checklist: save/load parity against freshly built
artifacts in both dtypes, corrupted / truncated-file and
version-mismatch rejection, mmap'd loads serving identical ``top_k``
results, the stale-artifact guard (`IndexMismatchError` instead of
wrong scores), and the `python -m repro.index` CLI.
"""

import json
import struct

import numpy as np
import pytest

from repro.engine import SimilarityConfig, SimilarityEngine
from repro.graph import DiGraph, random_digraph
from repro.index import (
    FORMAT_VERSION,
    IndexFormatError,
    IndexMismatchError,
    SimilarityIndex,
    graph_fingerprint,
    read_header,
    verify_index,
)
from repro.index.__main__ import main as index_main
from repro.index.store import MAGIC


@pytest.fixture(scope="module")
def graph():
    return random_digraph(120, 700, seed=11)


def _csr_equal(a, b):
    return (
        a.shape == b.shape
        and np.array_equal(np.asarray(a.indptr), np.asarray(b.indptr))
        and np.array_equal(
            np.asarray(a.indices), np.asarray(b.indices)
        )
        and np.array_equal(np.asarray(a.data), np.asarray(b.data))
    )


class TestBuild:
    def test_artifact_selection_follows_the_measure(self, graph):
        series = SimilarityIndex.build(graph, measure="gSR*")
        assert series.meta.artifacts == (
            "transition", "transition_t", "coefficients"
        )
        assert series.factors is None
        memo = SimilarityIndex.build(graph, measure="memo-gSR*")
        assert memo.meta.artifacts == (
            "transition", "transition_t", "factors", "coefficients"
        )
        baseline = SimilarityIndex.build(graph, measure="PR")
        assert baseline.meta.artifacts == ()
        assert baseline.transition is None

    def test_fingerprint_is_content_based(self, graph):
        fp1 = graph_fingerprint(graph)
        fp2 = graph_fingerprint(graph.copy())
        assert fp1 == fp2  # independent of object identity / version
        mutated = graph.copy()
        edge = next(iter(mutated.edges()))
        mutated.remove_edge(*edge)
        assert graph_fingerprint(mutated)["digest"] != fp1["digest"]

    def test_epsilon_config_resolves_to_concrete_truncation(self, graph):
        config = SimilarityConfig(measure="gSR*", epsilon=1e-3)
        index = SimilarityIndex.build(graph, config)
        engine = SimilarityEngine(graph, config)
        assert index.meta.truncation == engine.truncation
        # the epsilon config and the equivalent explicit config both match
        index.verify_compatible(graph, config)
        index.verify_compatible(
            graph,
            SimilarityConfig(
                measure="gSR*", num_iterations=engine.truncation
            ),
        )

    def test_build_reuses_prebuilt_artifacts(self, graph):
        engine = SimilarityEngine(graph, measure="memo-gSR*")
        engine.transition_t
        engine.compressed
        index = engine.export_index()
        assert index.transition is engine.transition
        assert index.factors is engine.compressed.factorized_in_adjacency()


class TestRoundTrip:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("mmap", [True, False])
    def test_save_load_parity_against_fresh_build(
        self, graph, tmp_path, dtype, mmap
    ):
        config = SimilarityConfig(
            measure="memo-gSR*", c=0.6, num_iterations=8, dtype=dtype
        )
        built = SimilarityIndex.build(graph, config)
        path = built.save(tmp_path / "g.simidx")
        loaded = SimilarityIndex.load(path, mmap=mmap)
        assert loaded.meta == built.meta
        assert _csr_equal(loaded.transition, built.transition)
        assert _csr_equal(loaded.transition_t, built.transition_t)
        for got, expected in zip(loaded.factors, built.factors):
            assert _csr_equal(got, expected)
        assert np.array_equal(loaded.coefficients, built.coefficients)
        assert loaded.transition.dtype == np.dtype(dtype)

    def test_mmap_load_serves_identical_top_k(self, graph, tmp_path):
        config = SimilarityConfig(measure="gSR*", num_iterations=10)
        path = SimilarityIndex.build(graph, config).save(
            tmp_path / "g.simidx"
        )
        fresh = SimilarityEngine(graph, config)
        served = SimilarityEngine.from_index(
            SimilarityIndex.load(path, mmap=True), graph
        )
        for query in (0, 3, 57, 119):
            expected = fresh.top_k(query, k=10)
            actual = served.top_k(query, k=10)
            assert [r.node for r in actual] == [
                r.node for r in expected
            ]
            np.testing.assert_allclose(
                [r.score for r in actual],
                [r.score for r in expected],
                rtol=0, atol=1e-14,
            )

    def test_from_index_adopts_instead_of_building(
        self, graph, tmp_path
    ):
        config = SimilarityConfig(measure="memo-gSR*", num_iterations=6)
        path = SimilarityIndex.build(graph, config).save(
            tmp_path / "g.simidx"
        )
        engine = SimilarityEngine.from_index(
            SimilarityIndex.load(path), graph
        )
        engine.single_source(4)
        engine.compressed.validate()  # reconstructed factors are exact
        matrix = np.asarray(engine.matrix())
        reference = np.asarray(SimilarityEngine(graph, config).matrix())
        np.testing.assert_allclose(matrix, reference, atol=1e-12)
        stats = engine.stats
        assert stats.transition_builds == 0
        assert stats.compression_builds == 0
        assert stats.index_adoptions >= 3  # Q, Q^T, factors

    def test_reconstructed_compressed_graph_matches_mined(
        self, graph, tmp_path
    ):
        config = SimilarityConfig(measure="memo-gSR*")
        path = SimilarityIndex.build(graph, config).save(
            tmp_path / "g.simidx"
        )
        rebuilt = SimilarityIndex.load(path).compressed_graph(graph)
        mined = SimilarityEngine(graph, config).compressed
        assert rebuilt.direct_tops == mined.direct_tops
        assert rebuilt.hub_memberships == mined.hub_memberships
        assert {
            (b.tops, b.bottoms) for b in rebuilt.bicliques
        } == {(b.tops, b.bottoms) for b in mined.bicliques}
        assert rebuilt.num_edges == mined.num_edges

    def test_loaded_buffers_are_read_only(self, graph, tmp_path):
        path = SimilarityIndex.build(graph, measure="gSR*").save(
            tmp_path / "g.simidx"
        )
        for mmap in (True, False):
            loaded = SimilarityIndex.load(path, mmap=mmap)
            with pytest.raises((ValueError, RuntimeError)):
                loaded.transition.data[0] = 99.0


class TestStaleArtifactGuard:
    def test_other_graph_rejected(self, graph, tmp_path):
        path = SimilarityIndex.build(graph, measure="gSR*").save(
            tmp_path / "g.simidx"
        )
        other = random_digraph(120, 700, seed=12)
        with pytest.raises(IndexMismatchError, match="graph mismatch"):
            SimilarityEngine.from_index(
                SimilarityIndex.load(path), other
            )

    def test_same_counts_different_edges_rejected(self, tmp_path):
        g = DiGraph(4, edges=[(0, 1), (1, 2)])
        path = SimilarityIndex.build(g, measure="gSR*").save(
            tmp_path / "g.simidx"
        )
        swapped = DiGraph(4, edges=[(0, 1), (2, 1)])
        with pytest.raises(IndexMismatchError):
            SimilarityEngine.from_index(
                SimilarityIndex.load(path), swapped
            )

    @pytest.mark.parametrize(
        "override",
        [
            {"measure": "eSR*"},
            {"c": 0.8},
            {"num_iterations": 4},
            {"dtype": "float32"},
        ],
    )
    def test_config_mismatch_rejected(self, graph, tmp_path, override):
        config = SimilarityConfig(
            measure="gSR*", c=0.6, num_iterations=10
        )
        path = SimilarityIndex.build(graph, config).save(
            tmp_path / "g.simidx"
        )
        with pytest.raises(IndexMismatchError, match="config mismatch"):
            SimilarityEngine(
                graph,
                config.replace(**override),
                index=SimilarityIndex.load(path),
            )

    def test_serving_knob_overrides_stay_compatible(
        self, graph, tmp_path
    ):
        path = SimilarityIndex.build(graph, measure="gSR*").save(
            tmp_path / "g.simidx"
        )
        engine = SimilarityEngine.from_index(
            SimilarityIndex.load(path), graph, max_cached_columns=2
        )
        assert engine.config.max_cached_columns == 2
        engine.single_source(0)

    def test_mutation_after_attach_drops_the_index(
        self, graph, tmp_path
    ):
        g = graph.copy()
        path = SimilarityIndex.build(g, measure="gSR*").save(
            tmp_path / "g.simidx"
        )
        engine = SimilarityEngine.from_index(
            SimilarityIndex.load(path), g
        )
        engine.single_source(0)
        assert engine.index is not None
        if g.has_edge(0, 99):
            engine.remove_edge(0, 99)
        else:
            engine.add_edge(0, 99)
        assert engine.index is None  # invalidation dropped it
        engine.single_source(0)  # rebuilds from the live graph
        assert engine.stats.transition_builds == 1


class TestCorruptionRejection:
    def _saved(self, graph, tmp_path):
        return SimilarityIndex.build(graph, measure="memo-gSR*").save(
            tmp_path / "g.simidx"
        )

    def test_bad_magic_rejected(self, graph, tmp_path):
        path = self._saved(graph, tmp_path)
        raw = bytearray(path.read_bytes())
        raw[:4] = b"JUNK"
        path.write_bytes(bytes(raw))
        with pytest.raises(IndexFormatError, match="bad magic"):
            SimilarityIndex.load(path)
        assert verify_index(path)  # reports, does not raise

    def test_truncated_payload_rejected(self, graph, tmp_path):
        path = self._saved(graph, tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(IndexFormatError, match="truncated"):
            SimilarityIndex.load(path)

    def test_truncated_header_rejected(self, graph, tmp_path):
        path = self._saved(graph, tmp_path)
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(IndexFormatError):
            SimilarityIndex.load(path)

    def test_version_mismatch_rejected(self, graph, tmp_path):
        path = self._saved(graph, tmp_path)
        raw = path.read_bytes()
        (header_len,) = struct.unpack("<Q", raw[8:16])
        header = json.loads(raw[16 : 16 + header_len])
        header["format_version"] = FORMAT_VERSION + 1
        patched = json.dumps(header, sort_keys=True).encode()
        # same sort_keys serialisation, +1 on an int: length may move;
        # rebuild the prefix with the new length
        assert len(patched) == header_len
        path.write_bytes(
            MAGIC + struct.pack("<Q", len(patched)) + patched
            + raw[16 + header_len:]
        )
        with pytest.raises(IndexFormatError, match="format version"):
            SimilarityIndex.load(path)

    def test_garbage_dtype_in_parseable_header_rejected(
        self, graph, tmp_path
    ):
        # the header still parses as JSON, but describes an impossible
        # buffer — must surface as IndexFormatError (the snapshot
        # manager treats that as "no index", not a fatal boot error)
        path = self._saved(graph, tmp_path)
        raw = path.read_bytes()
        patched = raw.replace(b'"<f8"', b'"xf8"', 1)
        assert patched != raw
        path.write_bytes(patched)
        with pytest.raises(IndexFormatError):
            SimilarityIndex.load(path)

    def test_flipped_payload_byte_caught_by_verify(
        self, graph, tmp_path
    ):
        path = self._saved(graph, tmp_path)
        assert verify_index(path) == []
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # last byte of the last array
        path.write_bytes(bytes(raw))
        problems = verify_index(path)
        assert problems and "checksum mismatch" in problems[0]

    def test_not_a_file_rejected(self, tmp_path):
        with pytest.raises(IndexFormatError):
            SimilarityIndex.load(tmp_path / "missing.simidx")

    def test_read_header_is_cheap_and_complete(self, graph, tmp_path):
        path = self._saved(graph, tmp_path)
        header, payload_start = read_header(path)
        assert header["meta"]["measure"] == "memo-gSR*"
        assert payload_start % 64 == 0
        for entry in header["arrays"].values():
            assert entry["offset"] % 64 == 0


class TestCli:
    def test_build_verify_inspect_smoke(self, tmp_path, capsys):
        path = tmp_path / "cli.simidx"
        graph_args = [
            "--nodes", "200", "--edges", "1200", "--seed", "5",
            "--measure", "memo-gSR*", "--num-iterations", "6",
        ]
        assert index_main(
            ["build", *graph_args, "--output", str(path)]
        ) == 0
        assert index_main(["verify", str(path)]) == 0
        assert index_main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "memo-gSR*" in out and "graph_digest" in out
        report = tmp_path / "smoke.json"
        assert index_main(
            [
                "smoke", *graph_args, "--index", str(path),
                "--queries", "4", "--min-speedup", "0.0",
                "--output", str(report),
            ]
        ) == 0
        document = json.loads(report.read_text())
        assert document["checks"]["score_parity"]
        assert document["checks"]["no_artifact_rebuild"]

    def test_verify_fails_on_corruption(self, tmp_path, capsys):
        path = tmp_path / "cli.simidx"
        assert index_main(
            ["build", "--nodes", "50", "--edges", "200",
             "--output", str(path)]
        ) == 0
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert index_main(["verify", str(path)]) == 1

    def test_smoke_fails_on_wrong_graph(self, tmp_path):
        path = tmp_path / "cli.simidx"
        assert index_main(
            ["build", "--nodes", "50", "--edges", "200", "--seed",
             "1", "--output", str(path)]
        ) == 0
        with pytest.raises(IndexMismatchError):
            index_main(
                ["smoke", "--nodes", "50", "--edges", "200",
                 "--seed", "2", "--index", str(path),
                 "--output", str(tmp_path / "r.json")]
            )
