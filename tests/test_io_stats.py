"""Tests for edge-list IO and graph statistics."""

import numpy as np
import pytest

from repro.graph import (
    DiGraph,
    degree_histogram,
    figure1_citation_graph,
    graph_stats,
    read_edge_list,
    write_edge_list,
)


class TestEdgeListIO:
    def test_roundtrip(self, tmp_path):
        g = figure1_citation_graph()
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        g2 = read_edge_list(path)
        assert g2.num_nodes == g.num_nodes
        assert list(g2.edges()) == list(g.edges())

    def test_roundtrip_preserves_isolated_nodes(self, tmp_path):
        g = DiGraph(5, edges=[(0, 1)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path).num_nodes == 5

    def test_read_without_header_infers_nodes(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 3\n1 2\n")
        g = read_edge_list(path)
        assert g.num_nodes == 4
        assert g.has_edge(0, 3)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n0 1\n")
        assert read_edge_list(path).num_edges == 1

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2\n")
        with pytest.raises(ValueError, match="g.txt:1"):
            read_edge_list(path)


class TestStats:
    def test_figure1_stats(self):
        s = graph_stats(figure1_citation_graph())
        assert s.num_nodes == 11
        assert s.num_edges == 18
        assert s.density == pytest.approx(18 / 11)
        assert s.num_sources == 3  # a, j, k have no in-edges
        assert s.num_sinks == 3  # c, g, i have no out-edges
        assert not s.is_symmetric

    def test_as_row_matches_figure5_format(self):
        row = graph_stats(figure1_citation_graph()).as_row()
        assert row["|V|"] == 11
        assert row["|E|"] == 18
        assert row["|G|"] == 29
        assert row["Density"] == 1.6

    def test_empty_graph_stats(self):
        s = graph_stats(DiGraph(0))
        assert s.num_nodes == 0
        assert s.density == 0.0

    def test_degree_histogram_in(self):
        g = DiGraph(4, edges=[(0, 1), (0, 2), (1, 2)])
        # in-degrees: 0,1,2,0 -> histogram [2, 1, 1]
        np.testing.assert_array_equal(
            degree_histogram(g, "in"), np.array([2, 1, 1])
        )

    def test_degree_histogram_out(self):
        g = DiGraph(4, edges=[(0, 1), (0, 2), (1, 2)])
        np.testing.assert_array_equal(
            degree_histogram(g, "out"), np.array([2, 1, 1])
        )

    def test_degree_histogram_bad_direction(self):
        with pytest.raises(ValueError):
            degree_histogram(DiGraph(1), "sideways")

    def test_degree_histogram_empty(self):
        np.testing.assert_array_equal(
            degree_histogram(DiGraph(0)), np.array([0])
        )
