"""Tests for graph generators, including the paper's worked examples."""

import numpy as np
import pytest

from repro.graph import (
    citation_dag,
    complete_digraph,
    cycle_graph,
    erdos_renyi,
    family_tree,
    figure1_citation_graph,
    path_graph,
    random_digraph,
    rmat,
    star_graph,
    two_ray_path,
)


class TestFigure1Graph:
    """The reconstruction must satisfy every structural statement the
    paper makes about its Figure 1 / Figure 4 examples."""

    @pytest.fixture
    def g(self):
        return figure1_citation_graph()

    def test_size(self, g):
        assert g.num_nodes == 11
        assert g.num_edges == 18

    def test_a_has_no_in_links(self, g):
        # "s(a, g) = 0 as a has no in-neighbors"
        assert g.in_degree(g.node_of("a")) == 0

    def test_path_h_e_a_d_exists(self, g):
        # "h <- e <- a -> d": edges a->e, e->h, a->d
        a, d, e, h = (g.node_of(x) for x in "adeh")
        assert g.has_edge(a, e)
        assert g.has_edge(e, h)
        assert g.has_edge(a, d)

    def test_path_through_b_f_exists(self, g):
        # "h <- e <- a -> b -> f -> d"
        a, b, d, f = (g.node_of(x) for x in "abdf")
        assert g.has_edge(a, b)
        assert g.has_edge(b, f)
        assert g.has_edge(f, d)

    def test_g_i_common_sources(self, g):
        # "s(g, i) > 0 as there is an in-link source b (resp. d) in the
        #  center of g <- b -> i (resp. g <- d -> i)"
        b, d, gg, i = (g.node_of(x) for x in "bdgi")
        assert g.has_edge(b, gg) and g.has_edge(b, i)
        assert g.has_edge(d, gg) and g.has_edge(d, i)

    def test_biclique_bd_cgi(self, g):
        # "(({b,d}, {c,g,i})) ... c, g, i all have two in-neighbors
        #  {b, d} in common"
        b, d = g.node_of("b"), g.node_of("d")
        for target in "cgi":
            t = g.node_of(target)
            assert set(g.in_neighbors(t)) >= {b, d}

    def test_biclique_ejk_hi(self, g):
        # "I(h) and I(i) have three nodes {e,j,k} in common"
        e, j, k = (g.node_of(x) for x in "ejk")
        h, i = g.node_of("h"), g.node_of("i")
        assert set(g.in_neighbors(h)) == {e, j, k}
        assert {e, j, k} <= set(g.in_neighbors(i))

    def test_in_neighbor_sets_match_example2(self, g):
        # Example 2: I(i) = {b, d} + {e, j, k} + {h}
        i = g.node_of("i")
        expected = {g.node_of(x) for x in "bdejkh"}
        assert set(g.in_neighbors(i)) == expected

    def test_bigraph_node_sets(self, g):
        # Figure 4: T = {a,b,d,e,f,h,j,k}, B = {b,c,d,e,f,g,h,i}
        t = {g.label_of(v) for v in g.nodes() if g.out_degree(v) > 0}
        b = {g.label_of(v) for v in g.nodes() if g.in_degree(v) > 0}
        assert t == set("abdefhjk")
        assert b == set("bcdefghi")


class TestFamilyTree:
    def test_structure(self):
        g = family_tree()
        assert g.num_nodes == 7
        gp = g.node_of("Grandpa")
        me = g.node_of("Me")
        assert g.has_edge(gp, g.node_of("Father"))
        assert g.has_edge(gp, g.node_of("Uncle"))
        assert g.has_edge(me, g.node_of("Son"))

    def test_grandpa_is_root(self):
        g = family_tree()
        assert g.in_degree(g.node_of("Grandpa")) == 0


class TestDeterministicShapes:
    def test_path_graph(self):
        g = path_graph(4)
        assert list(g.edges()) == [(0, 1), (1, 2), (2, 3)]

    def test_two_ray_path(self):
        g = two_ray_path(2)  # a_{-2} <- a_{-1} <- a_0 -> a_1 -> a_2
        assert g.num_nodes == 5
        assert g.num_edges == 4
        assert g.out_degree(0) == 2
        assert g.in_degree(0) == 0
        # every non-root has exactly one in-edge
        assert all(g.in_degree(v) == 1 for v in range(1, 5))

    def test_two_ray_path_rejects_zero(self):
        with pytest.raises(ValueError):
            two_ray_path(0)

    def test_star_outward(self):
        g = star_graph(4)
        assert g.out_degree(0) == 3
        assert g.in_degree(0) == 0

    def test_star_inward(self):
        g = star_graph(4, inward=True)
        assert g.in_degree(0) == 3
        assert g.out_degree(0) == 0

    def test_cycle(self):
        g = cycle_graph(3)
        assert g.has_edge(2, 0)
        assert g.num_edges == 3

    def test_cycle_rejects_empty(self):
        with pytest.raises(ValueError):
            cycle_graph(0)

    def test_complete(self):
        g = complete_digraph(4)
        assert g.num_edges == 12
        assert not g.has_self_loops()


class TestRandomGenerators:
    def test_random_digraph_exact_edge_count(self):
        g = random_digraph(50, 200, seed=1)
        assert g.num_nodes == 50
        assert g.num_edges == 200
        assert not g.has_self_loops()

    def test_random_digraph_dense_request(self):
        g = random_digraph(10, 80, seed=2)  # 80 of 90 possible
        assert g.num_edges == 80

    def test_random_digraph_rejects_impossible(self):
        with pytest.raises(ValueError):
            random_digraph(3, 7)

    def test_random_digraph_reproducible(self):
        assert random_digraph(30, 90, seed=7) == random_digraph(
            30, 90, seed=7
        )

    def test_erdos_renyi_probability_bounds(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 1.5)

    def test_erdos_renyi_extremes(self):
        assert erdos_renyi(5, 0.0).num_edges == 0
        assert erdos_renyi(5, 1.0).num_edges == 20

    def test_rmat_size_and_skew(self):
        g = rmat(7, 600, seed=3)  # 128 nodes
        assert g.num_nodes == 128
        assert g.num_edges <= 600
        assert g.num_edges > 400  # duplicates shouldn't dominate
        # power-law-ish: max in-degree well above the mean
        in_deg = g.in_degrees()
        assert in_deg.max() > 3 * max(in_deg.mean(), 1.0)

    def test_rmat_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            rmat(4, 10, a=0.9, b=0.9, c=0.9)

    def test_citation_dag_acyclic_by_construction(self):
        g = citation_dag(100, 4.0, seed=5)
        # every edge points from a newer to an older node
        assert all(u > v for u, v in g.edges())

    def test_citation_dag_density_close_to_request(self):
        g = citation_dag(400, 5.0, seed=6)
        assert 3.5 <= g.density <= 6.5

    def test_citation_dag_preferential_skew(self):
        pref = citation_dag(500, 5.0, seed=8, preferential=True)
        unif = citation_dag(500, 5.0, seed=8, preferential=False)
        assert pref.in_degrees().max() > unif.in_degrees().max()

    def test_citation_dag_rejects_empty(self):
        with pytest.raises(ValueError):
            citation_dag(0, 2.0)

    def test_citation_dag_reproducible(self):
        assert citation_dag(50, 3.0, seed=9) == citation_dag(
            50, 3.0, seed=9
        )
