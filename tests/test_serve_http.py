"""Tests for the stdlib HTTP front end and the serving smoke CLI."""

import json
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.graph import figure1_citation_graph, random_digraph
from repro.serve import ServingService, serve_http
from repro.serve.__main__ import main as serve_main


def http_json(url, payload=None, timeout=30.0):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
        method="POST" if data is not None else "GET",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


@pytest.fixture()
def server():
    service = ServingService(
        figure1_citation_graph(),
        num_iterations=10,
        max_batch=16,
        max_wait_ms=2.0,
    )
    service.start_background()
    http = serve_http(service, port=0, background=True)
    try:
        yield http
    finally:
        http.stop()
        service.close()


class TestEndpoints:
    def test_healthz(self, server):
        assert http_json(f"{server.url}/healthz") == {"ok": True}

    def test_top_k_by_label(self, server):
        from repro.engine import SimilarityEngine

        document = http_json(
            f"{server.url}/top_k", {"query": "i", "k": 2}
        )
        expected = SimilarityEngine(
            figure1_citation_graph(), num_iterations=10
        ).top_k("i", k=2)
        assert document["query_label"] == "i"
        assert [r["label"] for r in document["results"]] == [
            e.label for e in expected
        ]
        assert [r["score"] for r in document["results"]] == pytest.approx(
            [e.score for e in expected]
        )

    def test_score(self, server):
        document = http_json(
            f"{server.url}/score", {"u": "h", "v": "d"}
        )
        assert document["score"] > 0

    def test_status_reflects_traffic(self, server):
        http_json(f"{server.url}/top_k", {"query": "h", "k": 3})
        status = http_json(f"{server.url}/status")
        assert status["broker"]["requests"] >= 1
        assert status["snapshots"]["current"]["nodes"] == 11

    def test_warmup(self, server):
        document = http_json(f"{server.url}/warmup", {})
        assert document["engine_stats"]["transition_builds"] == 1

    def test_mutate_hot_swaps(self, server):
        before = http_json(
            f"{server.url}/top_k", {"query": "h", "k": 3}
        )
        document = http_json(
            f"{server.url}/mutate", {"add": [["a", "h"], ["b", "h"]]}
        )
        assert document["snapshot"]["seq"] == 1
        after = http_json(
            f"{server.url}/top_k", {"query": "h", "k": 3}
        )
        assert (
            [r["score"] for r in after["results"]]
            != [r["score"] for r in before["results"]]
        )

    def test_unknown_node_answers_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            http_json(f"{server.url}/top_k", {"query": "zzz"})
        assert excinfo.value.code == 400
        assert "error" in json.loads(excinfo.value.read())

    def test_missing_field_answers_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            http_json(f"{server.url}/top_k", {"k": 3})
        assert excinfo.value.code == 400

    def test_bad_json_answers_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/top_k", data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_unknown_route_answers_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            http_json(f"{server.url}/nope")
        assert excinfo.value.code == 404


class TestConcurrentServing:
    def test_64_concurrent_queries_coalesce(self):
        """The CI smoke scenario, in-process: 64 concurrent HTTP
        clients, coalescing proven by broker stats."""
        service = ServingService(
            random_digraph(200, 1200, seed=13),
            num_iterations=6,
            max_batch=32,
            max_wait_ms=2.0,
            cache_entries=0,
        )
        service.start_background()
        http = serve_http(service, port=0, background=True)
        try:
            def query(q):
                return http_json(
                    f"{http.url}/top_k", {"query": q, "k": 5}
                )

            with ThreadPoolExecutor(max_workers=64) as pool:
                answers = list(pool.map(query, range(64)))
            assert len(answers) == 64
            assert all("results" in a for a in answers)
            stats = service.broker.stats
            assert stats.dispatched == 64
            assert stats.errors == 0
            assert stats.largest_batch >= 2       # coalescing proven
            assert stats.batches < 64
        finally:
            http.stop()
            service.close()


class TestSmokeCli:
    def test_smoke_command_passes_and_writes_histogram(
        self, tmp_path, capsys
    ):
        out = tmp_path / "smoke.json"
        code = serve_main([
            "smoke",
            "--nodes", "150", "--edges", "900",
            "--num-iterations", "5",
            "--clients", "16", "--requests-per-client", "2",
            "--output", str(out),
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["total_requests"] == 32
        assert report["checks"]["coalescing_happened"]
        assert report["checks"]["all_requests_answered"]
        latency = report["latency"]
        assert latency["count"] == 32
        assert 0 < latency["p50_ms"] <= latency["p99_ms"]
        assert sum(latency["histogram"].values()) == 32
        assert "passed" in capsys.readouterr().out

    def test_list_like_help_runs(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            serve_main(["--help"])
        assert excinfo.value.code == 0
        assert "smoke" in capsys.readouterr().out


class TestStatusCounters:
    """PR 4 satellite: every caching layer's counters in /status."""

    def test_status_exposes_cache_and_engine_counters(self, server):
        http_json(f"{server.url}/top_k", {"query": "h", "k": 3})
        http_json(f"{server.url}/top_k", {"query": "h", "k": 3})
        status = http_json(f"{server.url}/status")
        cache = status["cache"]
        for key in ("hits", "misses", "evictions", "entries",
                    "hit_rate"):
            assert key in cache
        assert cache["hits"] >= 1  # the repeated query
        engine = status["engine"]
        for key in ("transition_builds", "compression_builds",
                    "index_adoptions", "hits", "misses",
                    "column_evictions"):
            assert key in engine
        assert engine["transition_builds"] == 1
        # nested copy (snapshot-scoped) stays consistent with the hoist
        nested = status["snapshots"]["current"]["engine_stats"]
        assert nested == engine
        assert status["snapshots"]["index"]["path"] is None

    def test_status_cli_renders_counters(self, server, capsys):
        from repro.serve.__main__ import main as cli_main

        http_json(f"{server.url}/top_k", {"query": "h", "k": 3})
        assert cli_main(["status", "--url", server.url]) == 0
        out = capsys.readouterr().out
        assert "result cache" in out
        assert "hit_rate=" in out
        assert "index_adoptions=" in out
        assert "index         not configured" in out
        assert cli_main(["status", "--url", server.url, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert "cache" in document and "engine" in document

    def test_render_status_handles_disabled_cache(self):
        from repro.serve.__main__ import render_status

        text = render_status({"cache": None, "config": {},
                              "snapshots": {}})
        assert "result cache  disabled" in text
