"""Tests for the dataset generators and registry."""

import numpy as np
import pytest

from repro.datasets import (
    citation_network,
    coauthor_network,
    dataset_names,
    figure5_rows,
    load_dataset,
    web_graph,
)
from repro.datasets.coauthor import h_index


class TestCitationNetwork:
    @pytest.fixture(scope="class")
    def net(self):
        return citation_network(300, avg_out_degree=5.0, seed=0)

    def test_is_dag(self, net):
        assert all(u > v for u, v in net.graph.edges())

    def test_topics_row_stochastic(self, net):
        np.testing.assert_allclose(net.topics.sum(axis=1), 1.0)
        assert net.topics.min() >= 0.0

    def test_citation_counts_heavy_tailed(self, net):
        counts = net.citation_counts
        assert counts.max() > 4 * max(counts.mean(), 1.0)

    def test_density_tracks_request(self):
        net = citation_network(400, avg_out_degree=8.0, seed=1)
        assert 6.0 <= net.graph.density <= 9.0

    def test_topical_homophily(self, net):
        # cited papers should be topically closer than random pairs
        from repro.analysis import topic_cosine_matrix

        cos = topic_cosine_matrix(net.topics)
        edges = list(net.graph.edges())
        edge_sim = np.mean([cos[u, v] for u, v in edges])
        rng = np.random.default_rng(0)
        n = net.graph.num_nodes
        rand_sim = np.mean(
            [
                cos[rng.integers(n), rng.integers(n)]
                for _ in range(2000)
            ]
        )
        assert edge_sim > rand_sim * 1.5

    def test_reproducible(self):
        a = citation_network(100, 4.0, seed=7)
        b = citation_network(100, 4.0, seed=7)
        assert a.graph == b.graph
        np.testing.assert_array_equal(a.topics, b.topics)

    def test_validation(self):
        with pytest.raises(ValueError):
            citation_network(0, 4.0)
        with pytest.raises(ValueError):
            citation_network(10, 4.0, num_topics=0)


class TestCoauthorNetwork:
    @pytest.fixture(scope="class")
    def net(self):
        return coauthor_network(200, papers_per_author=2.0, seed=0)

    def test_graph_is_symmetric(self, net):
        assert net.graph.is_symmetric()

    def test_papers_induce_edges(self, net):
        for members in net.papers:
            for i, u in enumerate(members):
                for v in members[i + 1:]:
                    assert net.graph.has_edge(u, v)
                    assert net.graph.has_edge(v, u)

    def test_h_indices_plausible(self, net):
        assert net.h_indices.min() >= 0
        assert net.h_indices.max() >= 2
        # authors on no papers (if any) have h-index 0; authors with
        # papers have h <= paper count
        paper_count = np.zeros(200, dtype=int)
        for members in net.papers:
            for a in members:
                paper_count[a] += 1
        assert (net.h_indices <= np.maximum(paper_count, 0)).all()

    def test_undirected_edge_count(self, net):
        assert net.num_undirected_edges * 2 == net.graph.num_edges

    def test_reproducible(self):
        a = coauthor_network(80, 2.0, seed=3)
        b = coauthor_network(80, 2.0, seed=3)
        assert a.graph == b.graph

    def test_validation(self):
        with pytest.raises(ValueError):
            coauthor_network(1)


class TestHIndex:
    def test_classic_example(self):
        assert h_index(np.array([10, 8, 5, 4, 3])) == 4

    def test_all_zero(self):
        assert h_index(np.array([0, 0, 0])) == 0

    def test_single_paper(self):
        assert h_index(np.array([100])) == 1

    def test_empty(self):
        assert h_index(np.array([])) == 0


class TestRegistry:
    def test_names_match_figure5(self):
        assert dataset_names() == [
            "cit-hepth", "dblp", "d05", "d08", "d11",
            "web-google", "cit-patent",
        ]

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("citeseer")

    def test_caching(self):
        assert load_dataset("d05") is load_dataset("d05")

    def test_directed_flags(self):
        assert load_dataset("cit-hepth").directed
        assert not load_dataset("dblp").directed
        assert load_dataset("dblp").graph.is_symmetric()

    def test_densities_roughly_match_paper(self):
        # |E|/|V| within 45% of Figure 5 for every stand-in
        for row in figure5_rows():
            measured = row["Density"]
            target = row["paper density"]
            assert measured == pytest.approx(target, rel=0.45), row[
                "Dataset"
            ]

    def test_dblp_snapshots_grow(self):
        sizes = [
            load_dataset(n).graph.num_nodes for n in ("d05", "d08", "d11")
        ]
        assert sizes == sorted(sizes)
        edges = [
            load_dataset(n).graph.num_edges for n in ("d05", "d08", "d11")
        ]
        assert edges == sorted(edges)

    def test_attributes_present_where_needed(self):
        for name in ("cit-hepth", "dblp"):
            ds = load_dataset(name)
            assert ds.topics is not None
            assert ds.node_attribute is not None
            assert len(ds.node_attribute) == ds.graph.num_nodes

    def test_web_graph_size(self):
        g = web_graph(8, density=5.0, seed=0)
        assert g.num_nodes == 256
        assert g.num_edges <= 5 * 256

    def test_web_graph_validation(self):
        with pytest.raises(ValueError):
            web_graph(0)
