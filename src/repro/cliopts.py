"""Shared argparse fragments for the ``python -m repro.*`` CLIs.

``repro.serve`` and ``repro.index`` accept the same graph sources
(seeded random digraph, scale-free generator, edge-list file, the
paper's Figure 1 graph) and the same core similarity configuration.
Defining those options once keeps the CLIs from drifting apart — a new
graph source or a changed default lands in all of them, and
``docs/operations.md`` can truthfully document them as shared.

>>> import argparse
>>> from repro.cliopts import add_graph_options, build_graph
>>> parser = argparse.ArgumentParser()
>>> add_graph_options(parser)
>>> build_graph(parser.parse_args(["--figure1"])).num_nodes
11
"""

from __future__ import annotations

import argparse

__all__ = [
    "add_config_options",
    "add_graph_options",
    "build_graph",
    "config_from_args",
]


def add_graph_options(parser: argparse.ArgumentParser) -> None:
    """The shared graph-source options (``--nodes`` ... ``--figure1``).

    >>> import argparse
    >>> parser = argparse.ArgumentParser()
    >>> add_graph_options(parser)
    >>> parser.parse_args([]).nodes
    2000
    """
    parser.add_argument(
        "--nodes", type=int, default=2000,
        help="random-graph node count (default 2000)",
    )
    parser.add_argument(
        "--edges", type=int, default=12000,
        help="random-graph edge count (default 12000)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--edge-file", default=None,
        help="use a graph read from an edge-list file instead "
        "(one 'u v' pair per line)",
    )
    parser.add_argument(
        "--figure1", action="store_true",
        help="use the paper's 11-node Figure 1 citation graph",
    )
    parser.add_argument(
        "--scale-free", action="store_true",
        help="use the seeded preferential-attachment generator "
        "(heavy-tailed in-degrees; the large-graph benchmark tier) "
        "with --nodes nodes and about --edges edges",
    )


def build_graph(args: argparse.Namespace):
    """The :class:`~repro.graph.DiGraph` the parsed options describe.

    >>> import argparse
    >>> parser = argparse.ArgumentParser()
    >>> add_graph_options(parser)
    >>> args = parser.parse_args(["--nodes", "20", "--edges", "40"])
    >>> graph = build_graph(args)
    >>> graph.num_nodes, graph.num_edges
    (20, 40)
    >>> scale_free = build_graph(parser.parse_args(
    ...     ["--scale-free", "--nodes", "50", "--edges", "200"]))
    >>> scale_free.num_nodes
    50
    """
    if args.figure1:
        from repro.graph import figure1_citation_graph

        return figure1_citation_graph()
    if args.edge_file is not None:
        from repro.graph.io import read_edge_list

        return read_edge_list(args.edge_file)
    if getattr(args, "scale_free", False):
        from repro.datasets import scale_free_graph

        return scale_free_graph(
            args.nodes,
            avg_out_degree=max(1.0, args.edges / max(1, args.nodes)),
            seed=args.seed,
        )
    from repro.graph.generators import random_digraph

    return random_digraph(args.nodes, args.edges, seed=args.seed)


def add_config_options(parser: argparse.ArgumentParser) -> None:
    """The shared similarity-config options (measure/damping/...).

    >>> import argparse
    >>> parser = argparse.ArgumentParser()
    >>> add_config_options(parser)
    >>> args = parser.parse_args(["-c", "0.8", "--mode", "approx"])
    >>> args.measure, args.damping, args.mode
    ('gSR*', 0.8, 'approx')
    """
    parser.add_argument("--measure", default="gSR*")
    parser.add_argument("-c", "--damping", type=float, default=0.6)
    parser.add_argument("--num-iterations", type=int, default=10)
    parser.add_argument(
        "--dtype", choices=("float64", "float32"), default="float64"
    )
    parser.add_argument(
        "--mode", choices=("exact", "approx"), default="exact",
        help="exact kernels (default) or the Monte-Carlo walk-index "
        "tier",
    )
    parser.add_argument(
        "--epsilon", type=float, default=None,
        help="accuracy target; in --mode approx it sizes the walk "
        "sample budget (default 0.05), in exact mode it replaces "
        "--num-iterations via the series error bound",
    )


def config_from_args(args: argparse.Namespace):
    """A :class:`~repro.engine.SimilarityConfig` from the parsed options.

    In exact mode an explicit ``--epsilon`` takes over truncation
    duty, so ``--num-iterations``'s default does not collide with it;
    in approx mode the two coexist (truncation from one, sample
    budget from the other). The graph options' ``--seed`` doubles as
    the approx sampling seed — one seed pins the whole run.

    >>> import argparse
    >>> parser = argparse.ArgumentParser()
    >>> add_config_options(parser)
    >>> config_from_args(parser.parse_args(["--measure", "eSR*"]))
    SimilarityConfig(measure='eSR*', c=0.6, num_iterations=10, \
epsilon=None, weights='auto', dtype='float64', \
max_cached_columns=None, column_policy='lru', mode='exact', seed=0)
    >>> config_from_args(parser.parse_args(
    ...     ["--mode", "approx", "--epsilon", "0.1"])).mode
    'approx'
    """
    from repro.engine.config import SimilarityConfig

    num_iterations = args.num_iterations
    if args.mode == "exact" and args.epsilon is not None:
        num_iterations = None
    return SimilarityConfig(
        measure=args.measure,
        c=args.damping,
        num_iterations=num_iterations,
        epsilon=args.epsilon,
        dtype=args.dtype,
        mode=args.mode,
        seed=getattr(args, "seed", None) or 0,
    )
