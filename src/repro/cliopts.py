"""Shared argparse fragments for the ``python -m repro.*`` CLIs.

``repro.serve`` and ``repro.index`` accept the same graph sources
(seeded random digraph, edge-list file, the paper's Figure 1 graph)
and the same core similarity configuration. Defining those options
once keeps the two CLIs from drifting apart — a new graph source or a
changed default lands in both, and ``docs/operations.md`` can
truthfully document them as shared.

>>> import argparse
>>> from repro.cliopts import add_graph_options, build_graph
>>> parser = argparse.ArgumentParser()
>>> add_graph_options(parser)
>>> build_graph(parser.parse_args(["--figure1"])).num_nodes
11
"""

from __future__ import annotations

import argparse

__all__ = [
    "add_config_options",
    "add_graph_options",
    "build_graph",
    "config_from_args",
]


def add_graph_options(parser: argparse.ArgumentParser) -> None:
    """The shared graph-source options (``--nodes`` ... ``--figure1``).

    >>> import argparse
    >>> parser = argparse.ArgumentParser()
    >>> add_graph_options(parser)
    >>> parser.parse_args([]).nodes
    2000
    """
    parser.add_argument(
        "--nodes", type=int, default=2000,
        help="random-graph node count (default 2000)",
    )
    parser.add_argument(
        "--edges", type=int, default=12000,
        help="random-graph edge count (default 12000)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--edge-file", default=None,
        help="use a graph read from an edge-list file instead "
        "(one 'u v' pair per line)",
    )
    parser.add_argument(
        "--figure1", action="store_true",
        help="use the paper's 11-node Figure 1 citation graph",
    )


def build_graph(args: argparse.Namespace):
    """The :class:`~repro.graph.DiGraph` the parsed options describe.

    >>> import argparse
    >>> parser = argparse.ArgumentParser()
    >>> add_graph_options(parser)
    >>> args = parser.parse_args(["--nodes", "20", "--edges", "40"])
    >>> graph = build_graph(args)
    >>> graph.num_nodes, graph.num_edges
    (20, 40)
    """
    if args.figure1:
        from repro.graph import figure1_citation_graph

        return figure1_citation_graph()
    if args.edge_file is not None:
        from repro.graph.io import read_edge_list

        return read_edge_list(args.edge_file)
    from repro.graph.generators import random_digraph

    return random_digraph(args.nodes, args.edges, seed=args.seed)


def add_config_options(parser: argparse.ArgumentParser) -> None:
    """The shared similarity-config options (measure/damping/...).

    >>> import argparse
    >>> parser = argparse.ArgumentParser()
    >>> add_config_options(parser)
    >>> args = parser.parse_args(["-c", "0.8"])
    >>> args.measure, args.damping
    ('gSR*', 0.8)
    """
    parser.add_argument("--measure", default="gSR*")
    parser.add_argument("-c", "--damping", type=float, default=0.6)
    parser.add_argument("--num-iterations", type=int, default=10)
    parser.add_argument(
        "--dtype", choices=("float64", "float32"), default="float64"
    )


def config_from_args(args: argparse.Namespace):
    """A :class:`~repro.engine.SimilarityConfig` from the parsed options.

    >>> import argparse
    >>> parser = argparse.ArgumentParser()
    >>> add_config_options(parser)
    >>> config_from_args(parser.parse_args(["--measure", "eSR*"]))
    SimilarityConfig(measure='eSR*', c=0.6, num_iterations=10, \
epsilon=None, weights='auto', dtype='float64', \
max_cached_columns=None, column_policy='lru')
    """
    from repro.engine.config import SimilarityConfig

    return SimilarityConfig(
        measure=args.measure,
        c=args.damping,
        num_iterations=args.num_iterations,
        dtype=args.dtype,
    )
