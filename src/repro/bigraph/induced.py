"""The induced bipartite graph of Definition 2.

``G~ = (T u B, E~)`` where ``T`` holds every node of ``G`` with
out-edges, ``B`` every node with in-edges, and ``(u, v)`` is an edge of
the bigraph iff ``u -> v`` in ``G``. A node appearing in both ``T``
and ``B`` is treated as two distinct bigraph nodes with the same label
— here the two sides simply index the same integer ids from different
dictionaries, so no relabelling is needed.

The bigraph view makes in-neighbourhood overlap explicit: the nodes of
``T`` connected to ``x in B`` are exactly ``I(x)`` in ``G``, and
``|E~| = |E|``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.digraph import DiGraph

__all__ = ["InducedBigraph", "induced_bigraph"]


@dataclass(frozen=True)
class InducedBigraph:
    """``G~ = (T u B, E~)`` for a digraph ``G``.

    Attributes
    ----------
    top:
        Sorted node ids with at least one out-edge (the paper's ``T``).
    bottom:
        Sorted node ids with at least one in-edge (the paper's ``B``).
    in_sets:
        ``x -> I(x)`` for every ``x`` in ``bottom``; every member of
        ``I(x)`` belongs to ``top``.
    """

    top: tuple[int, ...]
    bottom: tuple[int, ...]
    in_sets: dict[int, frozenset[int]] = field(repr=False)

    @property
    def num_edges(self) -> int:
        """``|E~|``, always equal to ``|E|`` of the source graph."""
        return sum(len(s) for s in self.in_sets.values())

    def __repr__(self) -> str:
        return (
            f"InducedBigraph(|T|={len(self.top)}, |B|={len(self.bottom)},"
            f" |E|={self.num_edges})"
        )


def induced_bigraph(graph: DiGraph) -> InducedBigraph:
    """Build the induced bigraph of ``graph`` (Definition 2)."""
    top = tuple(
        v for v in graph.nodes() if graph.out_degree(v) > 0
    )
    bottom = tuple(
        v for v in graph.nodes() if graph.in_degree(v) > 0
    )
    in_sets = {
        v: frozenset(graph.in_neighbors(v)) for v in bottom
    }
    return InducedBigraph(top=top, bottom=bottom, in_sets=in_sets)
