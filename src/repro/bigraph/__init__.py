"""Bipartite-compression substrate for fine-grained memoization.

Section 4.3 of the paper: to share partial sums across overlapping
in-neighbour sets, the graph's neighbourhood structure is viewed as an
*induced bigraph* (Definition 2), dense blocks of which — *bicliques*
(Definition 3) — are replaced by star-shaped *edge concentration*
nodes. The exact optimisation is NP-hard (edge concentration, Lin
2000), so :mod:`repro.bigraph.biclique` implements a frequent-itemset
style heuristic in the spirit of Buehrer & Chellapilla (WSDM 2008).
"""

from repro.bigraph.biclique import Biclique, mine_bicliques
from repro.bigraph.compressed import CompressedGraph
from repro.bigraph.concentration import compress_graph
from repro.bigraph.induced import InducedBigraph, induced_bigraph

__all__ = [
    "Biclique",
    "CompressedGraph",
    "InducedBigraph",
    "compress_graph",
    "induced_bigraph",
    "mine_bicliques",
]
