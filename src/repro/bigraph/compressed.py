"""The compressed graph ``G^ = (T u B u V^, E^)`` of Section 4.3.

Each mined biclique ``(X, Y)`` is replaced by an *edge concentration
node* ``v``: its fan-in ``gamma(v)`` is ``X`` and its fan-out is ``Y``,
so the block's ``|X| * |Y|`` bigraph edges become ``|X| + |Y|`` edges.
The mixed neighbourhood ``N(x)`` of a bottom node ``x`` (Algorithm 1's
notation) then splits into the surviving direct tops
``N(x) & T`` and the concentration nodes ``N(x) & V^``.

Besides the set view consumed by the literal Algorithm 1, the class
exposes a *factorised matrix view*: with ``E_direct`` the surviving
direct edges (bottom x top), ``H_out`` the bottom x hub incidence and
``H_in`` the hub x top incidence::

    A^T = E_direct + H_out @ H_in

exactly, with ``nnz(E_direct) + nnz(H_out) + nnz(H_in) = m~``. Every
product ``Q S`` in the SimRank* iteration can therefore be evaluated
with ``m~`` instead of ``m`` multiply-adds — the matrix-level
embodiment of fine-grained partial-sum sharing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.bigraph.biclique import Biclique
from repro.graph.digraph import DiGraph

__all__ = ["CompressedGraph"]


@dataclass(frozen=True)
class CompressedGraph:
    """``G^``: the original graph plus its concentrated neighbourhoods.

    Attributes
    ----------
    graph:
        The original digraph ``G``.
    bicliques:
        The concentrated blocks; concentration node ``v`` (0-based)
        corresponds to ``bicliques[v]``.
    direct_tops:
        ``x -> N(x) & T``: in-neighbours of ``x`` still wired directly.
    hub_memberships:
        ``x -> N(x) & V^``: concentration nodes feeding ``x``.
    """

    graph: DiGraph
    bicliques: tuple[Biclique, ...]
    direct_tops: dict[int, frozenset[int]] = field(repr=False)
    hub_memberships: dict[int, frozenset[int]] = field(repr=False)

    # ------------------------------------------------------------------
    # reconstruction from the factorised view
    # ------------------------------------------------------------------
    @classmethod
    def from_factors(
        cls,
        graph: DiGraph,
        e_direct: sp.csr_array,
        h_out: sp.csr_array,
        h_in: sp.csr_array,
    ) -> "CompressedGraph":
        """Rebuild the full ``G^`` view from its factor matrices.

        The factor triple determines the concentration exactly: row
        ``v`` of ``H_in`` is biclique ``v``'s fan-in ``X``, column
        ``v`` of ``H_out`` its fan-out ``Y``, row ``x`` of
        ``E_direct`` the surviving direct tops of ``x``, and row ``x``
        of ``H_out`` its hub memberships. This is how
        :class:`~repro.index.SimilarityIndex` reassembles a compressed
        graph from (possibly memory-mapped) stored factors without
        re-running biclique mining; the set views keep serving the
        Algorithm 1 memo kernels, and the factorised cache is
        pre-seeded with the given matrices so the matrix kernels stay
        zero-copy.

        Mirroring :func:`~repro.bigraph.concentration.compress_graph`,
        the set-view dicts are keyed by every node of ``graph`` with
        at least one in-edge (the induced bigraph's bottom side), even
        when the corresponding row is empty.
        """

        def rows_of(matrix: sp.csr_array, row: int) -> frozenset[int]:
            start, stop = matrix.indptr[row], matrix.indptr[row + 1]
            return frozenset(
                int(j) for j in matrix.indices[start:stop]
            )

        bottoms = [
            v for v in graph.nodes() if graph.in_degree(v) > 0
        ]
        h_out_t = h_out.T.tocsr()  # row v = bottoms fed by hub v
        bicliques = tuple(
            Biclique(
                tops=rows_of(h_in, v), bottoms=rows_of(h_out_t, v)
            )
            for v in range(h_in.shape[0])
        )
        compressed = cls(
            graph=graph,
            bicliques=bicliques,
            direct_tops={
                y: rows_of(e_direct, y) for y in bottoms
            },
            hub_memberships={
                y: rows_of(h_out, y) for y in bottoms
            },
        )
        object.__setattr__(
            compressed, "_factorized", (e_direct, h_out, h_in)
        )
        return compressed

    # ------------------------------------------------------------------
    # Algorithm 1's accessors
    # ------------------------------------------------------------------
    @property
    def num_concentration_nodes(self) -> int:
        """``|V^|``."""
        return len(self.bicliques)

    def fan_in(self, hub: int) -> frozenset[int]:
        """``gamma(v)``: the top nodes feeding concentration node ``v``."""
        return self.bicliques[hub].tops

    def fan_out(self, hub: int) -> frozenset[int]:
        """The bottom nodes concentration node ``v`` feeds."""
        return self.bicliques[hub].bottoms

    @property
    def num_edges(self) -> int:
        """``m~ = |E^|``: direct + hub fan-in + hub fan-out edges."""
        direct = sum(len(s) for s in self.direct_tops.values())
        hub_out = sum(len(s) for s in self.hub_memberships.values())
        hub_in = sum(len(b.tops) for b in self.bicliques)
        return direct + hub_out + hub_in

    @property
    def compression_ratio(self) -> float:
        """The paper's ratio ``(1 - m~/m) * 100%`` as a fraction."""
        m = self.graph.num_edges
        return 1.0 - self.num_edges / m if m else 0.0

    # ------------------------------------------------------------------
    # Factorised matrix view
    # ------------------------------------------------------------------
    def factorized_in_adjacency(
        self,
    ) -> tuple[sp.csr_array, sp.csr_array, sp.csr_array]:
        """``(E_direct, H_out, H_in)`` with ``A^T = E_direct + H_out H_in``.

        Shapes: ``E_direct`` is ``n x n`` (row = bottom node, col = top
        node), ``H_out`` is ``n x h``, ``H_in`` is ``h x n`` for
        ``h = |V^|`` concentration nodes.

        The triple is built once and cached on the instance — a
        compressed graph is immutable, and callers that reuse one
        across runs (``compressed=`` on the memo kernels, the
        query-serving engine) would otherwise rebuild identical
        matrices every time.
        """
        cached = getattr(self, "_factorized", None)
        if cached is None:
            cached = self._build_factorized()
            object.__setattr__(self, "_factorized", cached)
        return cached

    def _build_factorized(
        self,
    ) -> tuple[sp.csr_array, sp.csr_array, sp.csr_array]:
        n = self.graph.num_nodes
        h = self.num_concentration_nodes
        rows, cols = [], []
        for x, tops in self.direct_tops.items():
            for t in tops:
                rows.append(x)
                cols.append(t)
        e_direct = sp.csr_array(
            (np.ones(len(rows)), (rows, cols)), shape=(n, n)
        )
        rows, cols = [], []
        for x, hubs in self.hub_memberships.items():
            for v in hubs:
                rows.append(x)
                cols.append(v)
        h_out = sp.csr_array(
            (np.ones(len(rows)), (rows, cols)), shape=(n, h)
        )
        rows, cols = [], []
        for v, biclique in enumerate(self.bicliques):
            for t in biclique.tops:
                rows.append(v)
                cols.append(t)
        h_in = sp.csr_array(
            (np.ones(len(rows)), (rows, cols)), shape=(h, n)
        )
        return e_direct, h_out, h_in

    def validate(self) -> None:
        """Check ``E_direct + H_out H_in`` reconstructs ``A^T`` exactly.

        Raises ``AssertionError`` on any inconsistency — used by tests
        and available to cautious callers after a custom compression.
        """
        from repro.graph.matrices import adjacency_matrix

        e_direct, h_out, h_in = self.factorized_in_adjacency()
        reconstructed = (e_direct + h_out @ h_in).toarray()
        original = adjacency_matrix(self.graph).T.toarray()
        assert np.array_equal(reconstructed, original), (
            "compressed graph does not reconstruct A^T"
        )
