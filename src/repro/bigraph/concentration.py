"""Edge concentration: bigraph -> compressed graph (Section 4.3).

Drives the whole preprocessing phase of ``memo-gSR*`` / ``memo-eSR*``
(Algorithm 1 lines 1-2): build the induced bigraph, mine bicliques,
and rewrite each one as a star through a concentration node. The
construction cost is the paper's ``O(|E~| log(|T| + |B|))`` heuristic
plus linear bookkeeping.
"""

from __future__ import annotations

from repro.bigraph.biclique import mine_bicliques
from repro.bigraph.compressed import CompressedGraph
from repro.bigraph.induced import induced_bigraph
from repro.graph.digraph import DiGraph

__all__ = ["compress_graph"]


def compress_graph(
    graph: DiGraph,
    max_bicliques: int | None = None,
    max_set_size_for_seeding: int = 64,
) -> CompressedGraph:
    """Compress ``graph``'s in-neighbourhood structure via bicliques.

    Returns a :class:`CompressedGraph` whose edge count ``m~`` is at
    most ``m`` (strictly below whenever any positive-saving biclique
    exists; ``m~ = m - sum_i saving_i``).
    """
    bigraph = induced_bigraph(graph)
    bicliques = mine_bicliques(
        bigraph,
        max_bicliques=max_bicliques,
        max_set_size_for_seeding=max_set_size_for_seeding,
    )
    direct: dict[int, set[int]] = {
        y: set(tops) for y, tops in bigraph.in_sets.items()
    }
    hubs: dict[int, set[int]] = {y: set() for y in bigraph.bottom}
    for hub_index, biclique in enumerate(bicliques):
        for y in biclique.bottoms:
            direct[y] -= biclique.tops
            hubs[y].add(hub_index)
    return CompressedGraph(
        graph=graph,
        bicliques=tuple(bicliques),
        direct_tops={y: frozenset(s) for y, s in direct.items()},
        hub_memberships={y: frozenset(s) for y, s in hubs.items()},
    )
