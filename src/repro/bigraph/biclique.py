"""Greedy biclique mining on the induced bigraph.

Finding the edge-minimising set of bicliques is NP-hard (the edge
concentration problem, Lin 2000), so — like the paper, which adopts
Buehrer & Chellapilla's frequent-itemset heuristic — we mine greedily:

1. count, for every pair of top nodes, how many bottom nodes contain
   both (the pair's *support* — exactly frequent-itemset counting of
   size-2 itemsets over the in-neighbour sets);
2. repeatedly take the highest-support pair as a seed
   ``X = {a, b}, Y = cover(a) & cover(b)`` and greedily grow ``X`` by
   the top node that keeps the saving ``|X||Y| - (|X|+|Y|)`` rising;
3. accept the biclique if its saving is positive, delete its edges,
   and incrementally repair the support counts (a lazy max-heap keeps
   the next-best seed retrievable without rescanning).

Every returned biclique satisfies Definition 3 with respect to the
*remaining* edges, so the bicliques are edge-disjoint and can all be
concentrated simultaneously.
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass

from repro.bigraph.induced import InducedBigraph

__all__ = ["Biclique", "mine_bicliques"]


@dataclass(frozen=True)
class Biclique:
    """A complete bipartite block ``(X, Y)`` of the induced bigraph."""

    tops: frozenset[int]
    bottoms: frozenset[int]

    @property
    def num_edges(self) -> int:
        """Edges the block covers in ``G~``: ``|X| * |Y|``."""
        return len(self.tops) * len(self.bottoms)

    @property
    def saving(self) -> int:
        """Edges removed by concentrating: ``|X||Y| - (|X| + |Y|)``."""
        return self.num_edges - (len(self.tops) + len(self.bottoms))

    def __repr__(self) -> str:
        return (
            f"Biclique(X={sorted(self.tops)}, Y={sorted(self.bottoms)})"
        )


def _saving(num_tops: int, num_bottoms: int) -> int:
    return num_tops * num_bottoms - (num_tops + num_bottoms)


def mine_bicliques(
    bigraph: InducedBigraph,
    max_bicliques: int | None = None,
    max_set_size_for_seeding: int = 64,
) -> list[Biclique]:
    """Mine edge-disjoint, positive-saving bicliques from ``bigraph``.

    Parameters
    ----------
    bigraph:
        The induced bigraph of Definition 2.
    max_bicliques:
        Optional cap on how many bicliques to extract.
    max_set_size_for_seeding:
        Bottom nodes with more than this many in-neighbours are skipped
        during *seed counting* (quadratic in set size) but still join
        biclique extents; keeps mining near-linear on skewed graphs.

    Returns
    -------
    list[Biclique]
        In extraction order (non-increasing greedy value). Each has
        ``saving > 0``, ``|X| >= 2`` and ``|Y| >= 2``, and their edge
        sets are pairwise disjoint.
    """
    # Mutable working copies of the bigraph's two adjacency views.
    sets: dict[int, set[int]] = {
        y: set(tops) for y, tops in bigraph.in_sets.items()
    }
    cover: dict[int, set[int]] = {t: set() for t in bigraph.top}
    for y, tops in sets.items():
        for t in tops:
            cover[t].add(y)

    # Size-2 itemset support counting. `counted` remembers which bottom
    # nodes contributed, so later decrements stay consistent even if an
    # oversized set shrinks below the seeding cap.
    counts: Counter[tuple[int, int]] = Counter()
    counted: set[int] = set()
    for y, tops in sets.items():
        if len(tops) > max_set_size_for_seeding:
            continue
        counted.add(y)
        members = sorted(tops)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                counts[(a, b)] += 1

    heap: list[tuple[int, int, int]] = [
        (-cnt, a, b) for (a, b), cnt in counts.items() if cnt >= 2
    ]
    heapq.heapify(heap)

    result: list[Biclique] = []
    while heap:
        if max_bicliques is not None and len(result) >= max_bicliques:
            break
        neg_cnt, a, b = heapq.heappop(heap)
        current = counts.get((a, b), 0)
        if current < 2:
            continue
        if -neg_cnt != current:  # stale entry: requeue with true count
            heapq.heappush(heap, (-current, a, b))
            continue

        tops = {a, b}
        bottoms = set(cover[a] & cover[b])
        if len(bottoms) < 2:
            continue
        _grow(tops, bottoms, sets)
        if _saving(len(tops), len(bottoms)) <= 0:
            # Mark the seed as consumed so it is not retried forever.
            counts[(a, b)] = 0
            continue

        biclique = Biclique(frozenset(tops), frozenset(bottoms))
        result.append(biclique)
        _remove_edges_and_repair_counts(
            biclique, sets, cover, counts, heap, counted
        )
    return result


def _grow(
    tops: set[int], bottoms: set[int], sets: dict[int, set[int]]
) -> None:
    """Greedily extend ``tops`` while the saving strictly improves."""
    while True:
        occurrences: Counter[int] = Counter()
        for y in bottoms:
            for t in sets[y]:
                if t not in tops:
                    occurrences[t] += 1
        best_gain = _saving(len(tops), len(bottoms))
        best_top = None
        best_extent = 0
        for candidate in sorted(occurrences):
            extent = occurrences[candidate]
            if extent < 2:
                continue
            gain = _saving(len(tops) + 1, extent)
            if gain > best_gain:
                best_gain = gain
                best_top = candidate
                best_extent = extent
        if best_top is None:
            return
        tops.add(best_top)
        bottoms.intersection_update(
            {y for y in bottoms if best_top in sets[y]}
        )
        assert len(bottoms) == best_extent


def _remove_edges_and_repair_counts(
    biclique: Biclique,
    sets: dict[int, set[int]],
    cover: dict[int, set[int]],
    counts: Counter,
    heap: list[tuple[int, int, int]],
    counted: set[int],
) -> None:
    """Delete the biclique's edges and patch pair supports incrementally.

    Removing ``X`` from ``N(y)`` kills every counted pair with at least
    one endpoint in ``X`` inside the old ``N(y)``; pairs fully outside
    ``X`` are untouched. Only bottom nodes that contributed to seeding
    (``counted``) are decremented.
    """
    tops = biclique.tops
    for y in biclique.bottoms:
        old_members = sets[y]
        if y in counted:
            removed = sorted(tops)
            for i, x in enumerate(removed):
                for t in old_members:
                    if t == x:
                        continue
                    if t in tops and t < x:
                        continue  # in-X pairs counted once
                    pair = (x, t) if x < t else (t, x)
                    new_count = counts[pair] - 1
                    counts[pair] = new_count
                    if new_count >= 2:
                        heapq.heappush(heap, (-new_count, *pair))
        sets[y] -= tops
        for x in tops:
            cover[x].discard(y)
