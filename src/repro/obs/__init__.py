"""`repro.obs` — metrics, request tracing, and the slow-query log.

The observability layer of the serving stack (PR 8). Three pieces:

* :mod:`repro.obs.metrics` — a zero-dependency
  :class:`MetricsRegistry` of counters, gauges, and fixed-bucket
  histograms with a Prometheus text exposition (served at
  ``/metrics``), plus idempotent cross-process snapshot merging for
  the worker pool.
* :mod:`repro.obs.trace` — per-request :class:`Trace` span timelines
  (``coalesce -> dispatch -> compute -> render``) and the bounded,
  rotated JSON-lines :class:`SlowQueryLog`.
* :class:`Observability` — the facade a
  :class:`~repro.serve.ServingService` owns: it creates the hot-path
  instruments the broker/router/snapshot manager write into, registers
  pull-time callback series over the existing stats objects, and
  merges worker-side metric snapshots shipped back on ping.

Instrumentation is opt-out (``ServingService(telemetry=False)``): the
:class:`NullObservability` variant exposes the same attribute surface
as no-ops, so the hot path stays branch-free either way. The
``telemetry_overhead`` bench tier gates the enabled-vs-disabled p50
cost.

>>> from repro.graph import figure1_citation_graph
>>> from repro.serve import ServingService
>>> service = ServingService(figure1_citation_graph(), measure="gSR*")
>>> text = service.metrics_text()
>>> "# TYPE repro_requests_total counter" in text
True
"""

from __future__ import annotations

import time

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import SlowQueryLog, Span, Trace, Tracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullObservability",
    "Observability",
    "SlowQueryLog",
    "Span",
    "Trace",
    "Tracer",
]

#: Micro-batch width buckets (requests per dispatched batch).
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)


class _Noop:
    """Absorbs every instrument call on the disabled path."""

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def labels(self, **labels):
        return self


_NOOP = _Noop()


class NullObservability:
    """The disabled twin of :class:`Observability`.

    Same attribute surface, no-op instruments, ``enabled = False`` —
    so instrumented code never branches on configuration beyond the
    cheap ``if trace is not None`` guards.

    >>> from repro.obs import NullObservability
    >>> obs = NullObservability()
    >>> obs.enabled, obs.start_trace("top_k") is None
    (False, True)
    """

    enabled = False

    def __init__(self) -> None:
        self.registry = None
        self.tracer = None
        self.requests_top_k = _NOOP
        self.requests_score = _NOOP
        self.requests_shed = _NOOP
        self.deadline_exceeded = _NOOP
        self.request_errors = _NOOP
        self.request_duration = _NOOP
        self.coalesce_wait = _NOOP
        self.batch_compute = _NOOP
        self.batch_size = _NOOP
        self.render_seconds = _NOOP
        self.shard_dispatch = _NOOP
        self.transport_bytes = _NOOP
        self.swap_stage = _NOOP

    def start_trace(self, kind: str):
        return None

    def finish_trace(self, trace, status: str = "ok") -> None:
        pass

    def observe_swap(self, row: dict) -> None:
        pass

    def bind_service(self, service) -> None:
        pass

    def render(self) -> str:
        return (
            "# telemetry disabled (ServingService(telemetry=False))\n"
        )

    def describe(self) -> dict:
        return {"enabled": False}


class Observability:
    """The serving stack's metric + tracing facade.

    Owns one :class:`MetricsRegistry` and one :class:`Tracer`, creates
    the hot-path instruments the broker / router / snapshot manager
    write into, and (via :meth:`bind_service`) registers pull-time
    callback series over every layer's existing stats counters — so a
    ``/metrics`` scrape reflects broker coalescing, both caches,
    snapshot/delta maintenance, the cluster, and the engine without
    adding a single hot-path increment for them.

    Parameters
    ----------
    slow_query_ms:
        Threshold for the slow-query log; ``None`` disables the log
        (tracing still runs).
    slow_query_log_path:
        Optional JSON-lines file for slow traces (bounded + rotated,
        see :class:`SlowQueryLog`).
    trace_capacity:
        Recently finished traces kept for ``tracer.last()``.

    Examples
    --------
    >>> from repro.obs import Observability
    >>> obs = Observability(slow_query_ms=None)
    >>> obs.requests_top_k.inc()
    >>> "repro_requests_total" in obs.render()
    True
    """

    enabled = True

    def __init__(
        self,
        *,
        slow_query_ms: float | None = 250.0,
        slow_query_log_path=None,
        slow_query_log_bytes: int = 1_000_000,
        trace_capacity: int = 64,
    ) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer(
            slow_query_ms=slow_query_ms,
            slow_query_log=SlowQueryLog(
                slow_query_log_path, max_bytes=slow_query_log_bytes
            ),
            capacity=trace_capacity,
        )
        registry = self.registry
        requests = registry.counter(
            "repro_requests_total",
            "Queries accepted by the broker, by request kind.",
            labelnames=("kind",),
        )
        self.requests_top_k = requests.labels(kind="top_k")
        self.requests_score = requests.labels(kind="score")
        self.requests_shed = registry.counter(
            "repro_requests_shed_total",
            "Requests rejected at admission because the broker queue "
            "was at max_queue_depth (answered 429 + Retry-After).",
        )
        self.deadline_exceeded = registry.counter(
            "repro_deadline_exceeded_total",
            "Requests whose per-request deadline expired before the "
            "answer was rendered (answered 504).",
        )
        self.request_errors = registry.counter(
            "repro_request_errors_total",
            "Requests that resolved to an error.",
        )
        self.request_duration = registry.histogram(
            "repro_request_duration_seconds",
            "End-to-end broker latency per request "
            "(enqueue to future resolution).",
        )
        self.coalesce_wait = registry.histogram(
            "repro_coalesce_wait_seconds",
            "Time a request waited in the queue for its micro-batch "
            "to dispatch.",
        )
        self.batch_compute = registry.histogram(
            "repro_batch_compute_seconds",
            "Blocked column-walk time per dispatched micro-batch.",
        )
        self.batch_size = registry.histogram(
            "repro_batch_size",
            "Requests per dispatched micro-batch.",
            buckets=BATCH_SIZE_BUCKETS,
        )
        self.render_seconds = registry.histogram(
            "repro_render_seconds",
            "Result rendering time per request (ranking/score "
            "construction).",
        )
        self.shard_dispatch = registry.histogram(
            "repro_shard_dispatch_seconds",
            "Round-trip time per shard dispatched to a worker "
            "process.",
            labelnames=("worker",),
        )
        self.transport_bytes = registry.counter(
            "repro_transport_bytes_total",
            "Bytes that crossed the worker pipe per shard reply, by "
            "transport path (shm descriptor, pickle block, task "
            "results, in-process).",
            labelnames=("path",),
        )
        self.swap_stage = registry.histogram(
            "repro_swap_stage_seconds",
            "Snapshot hot-swap stage durations, by maintenance path.",
            labelnames=("kind", "stage"),
        )
        registry.counter_fn(
            "repro_slow_queries_total",
            "Finished traces at or above the slow-query threshold.",
            lambda: self.tracer.slow_queries,
        )

    # ------------------------------------------------------------------
    # tracing passthrough
    # ------------------------------------------------------------------
    def start_trace(self, kind: str) -> Trace:
        return self.tracer.start(kind)

    def finish_trace(self, trace, status: str = "ok") -> None:
        if trace is not None:
            self.tracer.finish(trace, status)

    # ------------------------------------------------------------------
    # swap instrumentation (SnapshotManager.swap_observer hook)
    # ------------------------------------------------------------------
    def observe_swap(self, row: dict) -> None:
        """Feed one recorded swap's stage timings into the histogram."""
        kind = row.get("kind", "full")
        for stage in ("build_s", "prepare_s", "commit_s", "total_s"):
            self.swap_stage.labels(
                kind=kind, stage=stage[:-2]
            ).observe(row.get(stage, 0.0))

    # ------------------------------------------------------------------
    # pull-time series over the existing stats objects
    # ------------------------------------------------------------------
    def bind_service(self, service) -> None:
        """Register callback series reading ``service``'s layers.

        Call once, after the service has built its broker, cache,
        snapshot manager, and (optionally) cluster router. Every
        series here is computed at scrape time — zero hot-path cost.
        """
        registry = self.registry
        broker = service.broker
        for field, help_text in (
            ("requests", "Requests the broker accepted."),
            ("dispatched", "Requests dispatched in micro-batches."),
            ("batches", "Micro-batches dispatched."),
            ("coalesced_requests",
             "Requests that shared a batch with at least one other."),
            ("cache_hits", "Requests served from the result cache."),
            ("errors", "Requests that failed inside the broker."),
        ):
            registry.counter_fn(
                f"repro_broker_{field}_total",
                help_text,
                (lambda f=field: getattr(broker.stats, f)),
            )
        registry.gauge_fn(
            "repro_broker_largest_batch",
            "Largest micro-batch dispatched so far.",
            lambda: broker.stats.largest_batch,
        )
        registry.gauge_fn(
            "repro_broker_mean_batch_size",
            "Mean requests per dispatched micro-batch.",
            lambda: broker.stats.mean_batch_size,
        )
        registry.gauge_fn(
            "repro_queue_depth",
            "Requests waiting in the broker's admission queue.",
            lambda: broker.queue_depth,
        )
        registry.gauge_fn(
            "repro_canary_active",
            "1 while a blue-green canary is receiving traffic.",
            lambda: 1.0 if broker.canary is not None else 0.0,
        )
        registry.gauge_fn(
            "repro_canary_error_delta",
            "Green error rate minus blue error rate for the most "
            "recent canary (0 before the first canary).",
            lambda: self._canary_error_delta(service),
        )
        registry.gauge_fn(
            "repro_canary_p95_ratio",
            "Green p95 latency over blue p95 for the most recent "
            "canary (0 before the first canary).",
            lambda: self._canary_p95_ratio(service),
        )
        if service.cache is not None:
            cache = service.cache
            for field, help_text in (
                ("hits", "Result-cache hits."),
                ("misses", "Result-cache misses."),
                ("evictions", "Result-cache LRU evictions."),
            ):
                registry.counter_fn(
                    f"repro_cache_{field}_total",
                    help_text,
                    (lambda f=field: getattr(cache.stats, f)),
                )
            registry.gauge_fn(
                "repro_cache_entries",
                "Rendered answers currently cached.",
                lambda: cache.stats.entries,
            )
        snapshots = service.snapshots
        snapshots.swap_observer = self.observe_swap
        for field, help_text in (
            ("builds", "Replacement snapshot builds."),
            ("swaps", "Completed snapshot hot-swaps."),
            ("delta_swaps",
             "Mutations that took the O(delta) surgery path."),
            ("full_swaps", "Mutations that took the full rebuild."),
            ("delta_fallbacks",
             "Delta-path failures degraded to a full rebuild."),
            ("index_loads", "Persistent-index adoptions at build."),
            ("index_saves", "Persistent-index writes."),
            ("index_load_errors",
             "Unreadable persistent-index files skipped."),
        ):
            registry.counter_fn(
                f"repro_snapshot_{field}_total",
                help_text,
                (lambda f=field: getattr(snapshots, f)),
            )
        registry.gauge_fn(
            "repro_snapshot_seq",
            "Sequence number of the serving snapshot.",
            lambda: snapshots.current.seq,
        )
        registry.gauge_fn(
            "repro_snapshot_chain_depth",
            "Delta generations stacked on the current base index.",
            lambda: snapshots._chain_depth,
        )
        registry.gauge_fn(
            "repro_graph_nodes",
            "Nodes in the serving snapshot's graph.",
            lambda: snapshots.current.graph.num_nodes,
        )
        registry.gauge_fn(
            "repro_graph_edges",
            "Edges in the serving snapshot's graph.",
            lambda: snapshots.current.graph.num_edges,
        )
        # engine series read the *current* snapshot's stats: they are
        # gauges, not counters, because a hot-swap replaces the engine
        # and resets them (documented in docs/observability.md)
        for field, help_text in (
            ("hits", "Column-memo hits (current engine)."),
            ("misses", "Column-memo misses (current engine)."),
            ("column_computes",
             "Fresh columns computed (current engine)."),
            ("column_evictions",
             "Column-memo evictions (current engine)."),
            ("transition_builds",
             "Transition-matrix builds (current engine)."),
            ("compression_builds",
             "Biclique compression builds (current engine)."),
            ("matrix_builds",
             "Dense similarity-matrix builds (current engine)."),
            ("walk_builds", "Walk-index builds (current engine)."),
            ("index_adoptions",
             "Persistent-index adoptions (current engine)."),
            ("invalidations",
             "Cache invalidations (current engine)."),
        ):
            registry.gauge_fn(
                f"repro_engine_{field}",
                help_text,
                (lambda f=field: getattr(
                    snapshots.current.engine.stats, f
                )),
            )
        registry.counter_fn(
            "repro_approx_samples_drawn_total",
            "Monte-Carlo source samples merged by the approx "
            "estimator (empty unless mode=approx).",
            lambda: self._approx_samples(snapshots),
        )
        registry.counter_fn(
            "repro_approx_early_stops_total",
            "Approx top-k confidence-bound early terminations "
            "(empty unless mode=approx).",
            lambda: self._approx_early_stops(snapshots),
        )
        if service.cluster is not None:
            router = service.cluster
            for field, help_text in (
                ("batches_routed", "Micro-batches routed to shards."),
                ("shards_dispatched", "Shards dispatched to workers."),
                ("shard_retries",
                 "Shards retried after a worker crash/hang."),
            ):
                registry.counter_fn(
                    f"repro_cluster_{field}_total",
                    help_text,
                    (lambda f=field: getattr(router, f)),
                )
            registry.gauge_fn(
                "repro_cluster_workers",
                "Configured worker processes.",
                lambda: router.pool.size,
            )
            registry.gauge_fn(
                "repro_cluster_workers_alive",
                "Worker processes currently alive.",
                lambda: sum(
                    1 for w in router.pool._workers if w.alive
                ),
            )
            registry.counter_fn(
                "repro_cluster_respawns_total",
                "Worker processes respawned after death.",
                lambda: sum(
                    w.respawns for w in router.pool._workers
                ),
            )
            registry.counter_fn(
                "repro_cluster_releases_total",
                "Generations released after draining.",
                lambda: router.pool.releases,
            )
            for field, help_text in (
                ("ring_replies",
                 "Shard replies returned through shared-memory "
                 "rings."),
                ("pickle_replies",
                 "Shard replies that fell back to pickled blocks."),
                ("task_replies",
                 "Shard replies carrying worker-side top-k/score "
                 "results."),
                ("transport_bytes",
                 "Bytes that crossed the worker pipe "
                 "(parent-side accounting)."),
            ):
                registry.counter_fn(
                    f"repro_cluster_{field}_total",
                    help_text,
                    (lambda f=field: sum(
                        getattr(w, f, 0) for w in router.pool._workers
                    )),
                )
            for field, help_text in (
                ("compute_seconds",
                 "Cumulative worker-reported shard compute time."),
                ("transport_seconds",
                 "Cumulative shard round-trip time minus compute — "
                 "the transport share."),
            ):
                registry.gauge_fn(
                    f"repro_cluster_{field}",
                    help_text,
                    (lambda f=field: sum(
                        getattr(w, f, 0.0)
                        for w in router.pool._workers
                    )),
                )
            registry.gauge_fn(
                "repro_cluster_ring_bytes",
                "Shared-memory ring bytes mapped per worker "
                "(0 for thread/pickle transports).",
                lambda: router.pool.transport_stats().get(
                    "ring_bytes_per_worker", 0
                ),
            )
            breakers = router.breakers
            for field, help_text in (
                ("trips",
                 "Circuit-breaker transitions to open (worker "
                 "quarantined, shards answered by the fallback "
                 "engine)."),
                ("restores",
                 "Circuit-breaker half-open probes that closed the "
                 "breaker again."),
                ("fallbacks",
                 "Shards answered by the in-process fallback engine "
                 "while a breaker was open."),
            ):
                registry.counter_fn(
                    f"repro_breaker_{field}_total",
                    help_text,
                    (lambda f=field: getattr(breakers, f)),
                )
            registry.gauge_fn(
                "repro_breaker_state",
                "Per-worker circuit-breaker state "
                "(0=closed, 1=half_open, 2=open).",
                lambda: [
                    ({"worker": str(i)}, value)
                    for i, value in breakers.values()
                ],
            )
        started = time.monotonic()
        registry.gauge_fn(
            "repro_uptime_seconds",
            "Seconds since this service registered its metrics.",
            lambda: time.monotonic() - started,
        )

    @staticmethod
    def _canary_error_delta(service) -> float:
        canary = getattr(service, "_last_canary", None)
        if canary is None:
            return 0.0
        return canary.error_rate("green") - canary.error_rate("blue")

    @staticmethod
    def _canary_p95_ratio(service) -> float:
        canary = getattr(service, "_last_canary", None)
        if canary is None:
            return 0.0
        blue = canary.p95("blue")
        return canary.p95("green") / blue if blue else 0.0

    @staticmethod
    def _approx_samples(snapshots):
        status = snapshots.current.engine.approx_status()
        if not status:
            return []
        return [({}, status["estimator"].get("samples_drawn", 0))]

    @staticmethod
    def _approx_early_stops(snapshots):
        status = snapshots.current.engine.approx_status()
        if not status:
            return []
        return [
            ({}, status["estimator"].get("early_terminations", 0))
        ]

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def render(self) -> str:
        """The Prometheus text document (the ``/metrics`` body)."""
        return self.registry.render()

    def describe(self) -> dict:
        """JSON-ready tracer/slow-log counters for ``/status``."""
        return {"enabled": True, "tracing": self.tracer.describe()}
