"""Zero-dependency metrics: counters, gauges, histograms, Prometheus text.

One :class:`MetricsRegistry` per process is the unit of exposition.
Three metric families cover the serving stack:

* :class:`Counter` — a monotonically increasing float, optionally
  labelled (``requests_total{kind="top_k"}``).
* :class:`Gauge` — a value that can go up and down (queue depth,
  chain depth, uptime).
* :class:`Histogram` — fixed-bucket latency/size distribution with
  cumulative ``_bucket{le=...}`` counts plus ``_sum`` / ``_count``.

Two design points matter at serving rates:

* **Allocation-light hot path.** ``inc()`` / ``observe()`` are a
  lock, a float add, and (for histograms) one ``bisect`` — no string
  formatting, no dict churn. Label children are created once and
  cached; the text rendering cost is paid only at scrape time.
* **Pull-time collection.** Most serving counters already live in
  stats objects (:class:`~repro.serve.broker.BrokerStats`,
  :class:`~repro.engine.engine.EngineStats`, ...). Registering a
  *callback* metric (:meth:`MetricsRegistry.counter_fn` /
  :meth:`~MetricsRegistry.gauge_fn`) reads those on scrape instead of
  double-counting on the hot path.

Cross-process aggregation uses **snapshot ingestion**: a worker ships
its registry's :meth:`~MetricsRegistry.snapshot` back on ping, the
parent :meth:`~MetricsRegistry.ingest`\\ s it under the worker's
source id, and :meth:`~MetricsRegistry.render` emits those series with
a ``worker`` label. Ingestion *replaces* the source's previous
contribution, so re-shipping the same cumulative snapshot is
idempotent — the merge can never double-count a retried ping.

>>> from repro.obs import MetricsRegistry
>>> registry = MetricsRegistry()
>>> requests = registry.counter(
...     "demo_requests_total", "Requests served.", labelnames=("kind",))
>>> requests.labels(kind="top_k").inc()
>>> requests.labels(kind="top_k").inc(2.0)
>>> print(registry.render(), end="")
# HELP demo_requests_total Requests served.
# TYPE demo_requests_total counter
demo_requests_total{kind="top_k"} 3.0
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Callable, Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default latency buckets in **seconds**, spanning sub-millisecond
#: kernel walks to multi-second swap builds (then ``+Inf``).
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

_NAME_OK = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or any(
        ch not in _NAME_OK for ch in name
    ):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


class _Child:
    """One labelled series of a :class:`Counter` or :class:`Gauge`."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def get(self) -> float:
        with self._lock:
            return self.value


class _Metric:
    """Shared plumbing: name, help text, cached label children."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
    ) -> None:
        self.name = _check_name(name)
        self.help = str(help_text)
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            _check_name(label)
        self._children: dict[tuple, object] = {}
        self._lock = threading.Lock()

    def _child_factory(self):
        return _Child()

    def labels(self, **labels: str):
        """The child series for one label combination (cached)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        try:
            return self._children[key]
        except KeyError:
            with self._lock:
                return self._children.setdefault(
                    key, self._child_factory()
                )

    def _default_child(self):
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labelled; use .labels(...)"
            )
        return self.labels()

    def _series(self) -> list[tuple[dict, object]]:
        with self._lock:
            items = list(self._children.items())
        return [
            (dict(zip(self.labelnames, key)), child)
            for key, child in items
        ]

    def samples(self) -> list[tuple[str, dict, float]]:
        """``(suffix, labels, value)`` rows for rendering/snapshots."""
        return [
            ("", labels, child.get())
            for labels, child in self._series()
        ]


class Counter(_Metric):
    """A monotonically increasing value.

    >>> from repro.obs.metrics import Counter
    >>> swaps = Counter("swaps_total", "Completed snapshot swaps.")
    >>> swaps.inc(); swaps.inc()
    >>> swaps.samples()
    [('', {}, 2.0)]
    """

    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._default_child().inc(amount)


class Gauge(_Metric):
    """A value that can go up and down.

    >>> from repro.obs.metrics import Gauge
    >>> depth = Gauge("queue_depth", "Requests waiting.")
    >>> depth.set(7); depth.samples()
    [('', {}, 7.0)]
    """

    kind = "gauge"

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)


class _HistogramChild:
    __slots__ = ("_lock", "buckets", "counts", "total", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last = +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.total += value
            self.count += 1

    def get(self):  # parity with _Child for _series()
        with self._lock:
            return list(self.counts), self.total, self.count


class Histogram(_Metric):
    """Fixed-bucket distribution with Prometheus cumulative buckets.

    Bucket bounds are upper edges in ascending order; an implicit
    ``+Inf`` bucket is always appended. ``observe`` costs one binary
    search plus three adds under a lock.

    >>> from repro.obs.metrics import Histogram
    >>> h = Histogram("wait_seconds", "Coalesce wait.",
    ...               buckets=(0.001, 0.01, 0.1))
    >>> h.observe(0.004); h.observe(0.05); h.observe(2.0)
    >>> [(s, v) for s, labels, v in h.samples() if s == "_count"]
    [('_count', 3.0)]
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                "buckets must be non-empty, ascending, distinct"
            )
        self.buckets = bounds

    def _child_factory(self):
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def samples(self) -> list[tuple[str, dict, float]]:
        rows: list[tuple[str, dict, float]] = []
        for labels, child in self._series():
            counts, total, count = child.get()
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, counts):
                cumulative += bucket_count
                rows.append(
                    ("_bucket",
                     dict(labels, le=_format_value(bound)),
                     float(cumulative))
                )
            rows.append(
                ("_bucket", dict(labels, le="+Inf"), float(count))
            )
            rows.append(("_sum", dict(labels), float(total)))
            rows.append(("_count", dict(labels), float(count)))
        return rows


class _CallbackMetric:
    """A metric whose samples are read from a callable at scrape time.

    The callable returns either a plain number (one unlabelled
    sample) or an iterable of ``(labels_dict, value)`` pairs. A
    callback that raises contributes no samples for that scrape —
    scraping must never take the server down.
    """

    def __init__(
        self, name: str, help_text: str, kind: str, fn: Callable
    ) -> None:
        self.name = _check_name(name)
        self.help = str(help_text)
        self.kind = kind
        self.fn = fn

    def samples(self) -> list[tuple[str, dict, float]]:
        try:
            value = self.fn()
        except Exception:  # pragma: no cover - defensive by contract
            return []
        if isinstance(value, (int, float)):
            return [("", {}, float(value))]
        return [
            ("", dict(labels), float(sample))
            for labels, sample in value
        ]


class MetricsRegistry:
    """The per-process metric namespace and its text exposition.

    Examples
    --------
    Callback metrics read existing stats objects at scrape time:

    >>> from repro.obs import MetricsRegistry
    >>> registry = MetricsRegistry()
    >>> stats = {"served": 5}
    >>> _ = registry.counter_fn(
    ...     "served_total", "Requests served.",
    ...     lambda: stats["served"])
    >>> "served_total 5.0" in registry.render()
    True
    """

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}
        self._external: dict[str, list] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _register(self, metric):
        with self._lock:
            if metric.name in self._metrics:
                raise ValueError(
                    f"metric {metric.name!r} already registered"
                )
            self._metrics[metric.name] = metric
        return metric

    def counter(
        self, name: str, help_text: str,
        labelnames: Sequence[str] = (),
    ) -> Counter:
        """Register and return a hot-path :class:`Counter`."""
        return self._register(Counter(name, help_text, labelnames))

    def gauge(
        self, name: str, help_text: str,
        labelnames: Sequence[str] = (),
    ) -> Gauge:
        """Register and return a :class:`Gauge`."""
        return self._register(Gauge(name, help_text, labelnames))

    def histogram(
        self, name: str, help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Register and return a fixed-bucket :class:`Histogram`."""
        return self._register(
            Histogram(name, help_text, labelnames, buckets)
        )

    def counter_fn(
        self, name: str, help_text: str, fn: Callable
    ) -> None:
        """A counter-typed series read from ``fn`` at scrape time."""
        self._register(_CallbackMetric(name, help_text, "counter", fn))

    def gauge_fn(
        self, name: str, help_text: str, fn: Callable
    ) -> None:
        """A gauge-typed series read from ``fn`` at scrape time."""
        self._register(_CallbackMetric(name, help_text, "gauge", fn))

    # ------------------------------------------------------------------
    # cross-process merge
    # ------------------------------------------------------------------
    def snapshot(self) -> list[dict]:
        """A picklable dump of every metric (for shipping to a parent).

        Values are cumulative, so a snapshot is safe to re-ship: the
        receiving :meth:`ingest` replaces, never adds.
        """
        out = []
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            out.append(
                {
                    "name": metric.name,
                    "kind": metric.kind,
                    "help": metric.help,
                    "samples": [
                        [suffix, labels, value]
                        for suffix, labels, value in metric.samples()
                    ],
                }
            )
        return out

    def ingest(self, source: str, snapshot: Iterable[Mapping]) -> None:
        """Merge another process's snapshot under ``source``.

        Replacement semantics: the source's previous contribution is
        dropped first, so ingesting the same cumulative snapshot twice
        leaves every rendered value unchanged (idempotent merge — the
        property the cross-process tests pin down).
        """
        rows = []
        for metric in snapshot:
            rows.append(
                {
                    "name": _check_name(str(metric["name"])),
                    "kind": str(metric.get("kind", "untyped")),
                    "help": str(metric.get("help", "")),
                    "samples": [
                        (str(suffix), dict(labels), float(value))
                        for suffix, labels, value in metric["samples"]
                    ],
                }
            )
        with self._lock:
            self._external[str(source)] = rows

    def sample_value(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> float | None:
        """One rendered sample's value (scrape-side test helper)."""
        want = dict(labels or {})
        for metric_name, kind, help_text, rows in self._collect():
            for suffix, sample_labels, value in rows:
                if metric_name + suffix == name and (
                    sample_labels == want
                ):
                    return value
        return None

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def _collect(self):
        """``(name, kind, help, samples)`` per metric, externals last."""
        with self._lock:
            metrics = list(self._metrics.values())
            external = {
                source: list(rows)
                for source, rows in self._external.items()
            }
        out = [
            (m.name, m.kind, m.help, m.samples()) for m in metrics
        ]
        merged: dict[str, tuple] = {}
        for source in sorted(external):
            for metric in external[source]:
                name = metric["name"]
                entry = merged.setdefault(
                    name, (metric["kind"], metric["help"], [])
                )
                entry[2].extend(
                    (suffix, dict(labels, worker=source), value)
                    for suffix, labels, value in metric["samples"]
                )
        out.extend(
            (name, kind, help_text, rows)
            for name, (kind, help_text, rows) in merged.items()
        )
        return out

    def render(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        for name, kind, help_text, rows in self._collect():
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for suffix, labels, value in rows:
                lines.append(
                    f"{name}{suffix}{_render_labels(labels)} "
                    f"{_format_value(value)}"
                )
        return "\n".join(lines) + "\n" if lines else ""
