"""Request tracing: per-request span timelines and the slow-query log.

A :class:`Trace` is one request's timeline: a short hex id plus a list
of :class:`Span` rows (``coalesce`` — time spent waiting for the
micro-batch to fill, ``dispatch``/``shard`` — router fan-out across
worker processes, ``compute`` — the blocked kernel walk, ``render`` —
ranking construction). Spans are plain ``__slots__`` rows; recording
one is an attribute store and a list append, cheap enough for every
request on the hot path.

The :class:`Tracer` owns the knobs: it hands out traces (or ``None``
when tracing is disabled — callers guard with ``if trace is not
None``), keeps a bounded in-memory ring of recently finished traces
(``last()``, for tests and debugging), and feeds every trace slower
than ``slow_query_ms`` to the :class:`SlowQueryLog` — a bounded,
size-rotated JSON-lines file (or memory-only ring when no path is
configured) whose entries are one self-contained JSON object per line.

>>> from repro.obs import Tracer
>>> tracer = Tracer(slow_query_ms=0.0)   # everything is "slow"
>>> trace = tracer.start("top_k")
>>> with trace.span("compute", batch=4):
...     pass
>>> tracer.finish(trace)
>>> entry = tracer.slow_log.entries()[-1]
>>> entry["kind"], entry["spans"][0]["name"]
('top_k', 'compute')
"""

from __future__ import annotations

import json
import os
import secrets
import threading
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path

__all__ = ["SlowQueryLog", "Span", "Trace", "Tracer"]


class Span:
    """One named stage of a trace, in milliseconds since trace start.

    >>> from repro.obs import Span
    >>> span = Span("compute", 1.5, 20.0, {"batch": 8})
    >>> span.to_dict()["name"]
    'compute'
    """

    __slots__ = ("name", "start_ms", "duration_ms", "meta")

    def __init__(
        self,
        name: str,
        start_ms: float,
        duration_ms: float,
        meta: dict | None = None,
    ) -> None:
        self.name = name
        self.start_ms = start_ms
        self.duration_ms = duration_ms
        self.meta = meta

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "start_ms": round(self.start_ms, 3),
            "duration_ms": round(self.duration_ms, 3),
        }
        if self.meta:
            out.update(self.meta)
        return out

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, +{self.start_ms:.2f}ms, "
            f"{self.duration_ms:.2f}ms)"
        )


class Trace:
    """One request's id + span timeline.

    >>> from repro.obs import Trace
    >>> trace = Trace("deadbeefcafef00d", "score")
    >>> trace.add_span("render", 0.002)
    >>> trace.span_names()
    ['render']
    """

    __slots__ = ("trace_id", "kind", "started", "spans", "status")

    def __init__(self, trace_id: str, kind: str) -> None:
        self.trace_id = trace_id
        self.kind = kind
        self.started = time.perf_counter()
        self.spans: list[Span] = []
        self.status = "ok"

    def elapsed_ms(self) -> float:
        return (time.perf_counter() - self.started) * 1e3

    def add_span(
        self,
        name: str,
        duration_s: float,
        start_s: float | None = None,
        **meta,
    ) -> None:
        """Record a stage measured elsewhere (``duration_s`` seconds).

        ``start_s`` is the stage's absolute ``perf_counter`` start;
        when omitted the stage is assumed to end *now*.
        """
        if start_s is None:
            start_s = time.perf_counter() - duration_s
        self.spans.append(
            Span(
                name,
                (start_s - self.started) * 1e3,
                duration_s * 1e3,
                meta or None,
            )
        )

    @contextmanager
    def span(self, name: str, **meta):
        """Context manager timing one stage inline."""
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            self.add_span(
                name, time.perf_counter() - t0, start_s=t0, **meta
            )

    def span_names(self) -> list[str]:
        return [span.name for span in self.spans]

    def to_dict(self) -> dict:
        """The JSON shape written to the slow-query log."""
        return {
            "trace_id": self.trace_id,
            "kind": self.kind,
            "status": self.status,
            "duration_ms": round(self.elapsed_ms(), 3),
            "spans": [span.to_dict() for span in self.spans],
        }

    def __repr__(self) -> str:
        return (
            f"Trace({self.trace_id!r}, kind={self.kind!r}, "
            f"spans={self.span_names()})"
        )


class SlowQueryLog:
    """Bounded JSON-lines log of slow-request traces.

    Always keeps the last ``max_entries`` entries in memory
    (:meth:`entries`). With a ``path`` configured, each entry is also
    appended as one JSON object per line; when the file grows past
    ``max_bytes`` it is rotated once to ``<path>.1`` (the previous
    ``.1`` is replaced), so on-disk usage is bounded by roughly
    ``2 * max_bytes`` no matter how long the server runs.

    >>> from repro.obs import SlowQueryLog
    >>> log = SlowQueryLog(max_entries=2)
    >>> for n in range(3):
    ...     log.write({"trace_id": f"t{n}", "duration_ms": 9.0})
    >>> [e["trace_id"] for e in log.entries()]   # bounded ring
    ['t1', 't2']
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        max_entries: int = 256,
        max_bytes: int = 1_000_000,
    ) -> None:
        if max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.path = Path(path) if path is not None else None
        self.max_bytes = int(max_bytes)
        self._ring: deque[dict] = deque(maxlen=int(max_entries))
        self._lock = threading.Lock()
        self.written = 0
        self.rotations = 0

    def write(self, entry: dict) -> None:
        """Append one entry (adds a wall-clock ``ts`` when absent)."""
        entry = dict(entry)
        entry.setdefault("ts", round(time.time(), 3))
        line = json.dumps(entry, separators=(",", ":"))
        with self._lock:
            self._ring.append(entry)
            self.written += 1
            if self.path is None:
                return
            try:
                if (
                    self.path.exists()
                    and self.path.stat().st_size + len(line) + 1
                    > self.max_bytes
                ):
                    os.replace(
                        self.path,
                        self.path.with_name(self.path.name + ".1"),
                    )
                    self.rotations += 1
                with self.path.open("a") as handle:
                    handle.write(line + "\n")
            except OSError:
                # logging must never fail a request; the in-memory
                # ring still has the entry
                pass

    def entries(self) -> list[dict]:
        """The in-memory ring, oldest first."""
        with self._lock:
            return list(self._ring)

    def describe(self) -> dict:
        """JSON-ready counters for ``/status``."""
        with self._lock:
            return {
                "path": str(self.path) if self.path else None,
                "entries": len(self._ring),
                "written": self.written,
                "rotations": self.rotations,
                "max_bytes": self.max_bytes,
            }


class Tracer:
    """Hands out traces and routes finished ones to the slow log.

    Parameters
    ----------
    slow_query_ms:
        Finished traces at or above this total duration are written
        to the slow-query log. ``None`` disables the log (traces are
        still recorded in the recent-trace ring).
    slow_query_log:
        Optional :class:`SlowQueryLog` (defaults to a memory-only
        one).
    capacity:
        Size of the recent-trace ring returned by :meth:`last`.

    >>> from repro.obs import Tracer
    >>> tracer = Tracer(slow_query_ms=None)
    >>> trace = tracer.start("top_k")
    >>> tracer.finish(trace)
    >>> tracer.last()[-1].trace_id == trace.trace_id
    True
    """

    def __init__(
        self,
        slow_query_ms: float | None = 250.0,
        slow_query_log: SlowQueryLog | None = None,
        capacity: int = 64,
    ) -> None:
        self.slow_query_ms = slow_query_ms
        self.slow_log = slow_query_log or SlowQueryLog()
        self._recent: deque[Trace] = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self.traces_started = 0
        self.slow_queries = 0

    def start(self, kind: str) -> Trace:
        """A fresh trace with a random 16-hex-digit id."""
        with self._lock:
            self.traces_started += 1
        return Trace(secrets.token_hex(8), kind)

    def finish(self, trace: Trace, status: str = "ok") -> None:
        """Close a trace: ring it, and log it when slow (or failed)."""
        trace.status = status
        duration_ms = trace.elapsed_ms()
        with self._lock:
            self._recent.append(trace)
        if self.slow_query_ms is not None and (
            duration_ms >= self.slow_query_ms or status != "ok"
        ):
            with self._lock:
                self.slow_queries += 1
            entry = trace.to_dict()
            entry["duration_ms"] = round(duration_ms, 3)
            entry["slow_query_ms"] = self.slow_query_ms
            self.slow_log.write(entry)

    def last(self) -> list[Trace]:
        """Recently finished traces, oldest first."""
        with self._lock:
            return list(self._recent)

    def describe(self) -> dict:
        """JSON-ready counters for ``/status``."""
        with self._lock:
            return {
                "traces_started": self.traces_started,
                "slow_queries": self.slow_queries,
                "slow_query_ms": self.slow_query_ms,
                "slow_log": self.slow_log.describe(),
            }
