"""Web graphs — the Web-Google stand-in.

R-MAT with the classic skew parameters produces the heavy-tailed
degree distributions and community blocks of real web crawls. Those
blocks are what edge concentration compresses, so this generator
drives the efficiency experiments (Figures 6(e)-(h)).
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph
from repro.graph.generators import rmat

__all__ = ["web_graph"]


def web_graph(
    num_nodes_log2: int, density: float = 5.6, seed: int = 0
) -> DiGraph:
    """An R-MAT web graph with ``2**num_nodes_log2`` nodes.

    ``density`` is the Figure 5 ratio ``|E| / |V|`` (Web-Google: 5.6).
    The requested edge count is approximate: duplicates collapse.
    """
    if num_nodes_log2 < 1:
        raise ValueError("num_nodes_log2 must be >= 1")
    n = 1 << num_nodes_log2
    return rmat(num_nodes_log2, int(density * n), seed=seed)
