"""Synthetic stand-ins for the paper's evaluation datasets.

The original corpora (CitHepTh, DBLP, Web-Google, CitPatent) are not
redistributable here, so each is replaced by a generator that matches
the *relevant* structure at laptop scale — DAG-ness and heavy-tailed
citations for the bibliographic graphs, symmetric edges and H-index
ground truth for the co-authorship graphs, R-MAT skew for the web
graph — with densities matched to the paper's Figure 5. DESIGN.md
documents each substitution and why it preserves the experiment.

Latent *topics* planted by the generators provide the relevance ground
truth that the paper obtained from human experts: nodes link mostly
within topics, and the "true" relevance of a pair is the cosine of
their topic mixtures (:mod:`repro.analysis.ground_truth`).
"""

from repro.datasets.citation import CitationNetwork, citation_network
from repro.datasets.coauthor import CoauthorNetwork, coauthor_network
from repro.datasets.registry import (
    Dataset,
    dataset_names,
    figure5_rows,
    load_dataset,
)
from repro.datasets.scale_free import scale_free_graph
from repro.datasets.web import web_graph

__all__ = [
    "CitationNetwork",
    "CoauthorNetwork",
    "Dataset",
    "citation_network",
    "coauthor_network",
    "dataset_names",
    "figure5_rows",
    "load_dataset",
    "scale_free_graph",
    "web_graph",
]
