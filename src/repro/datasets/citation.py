"""Citation networks with planted topics — the CitHepTh/CitPatent stand-in.

Papers arrive in timestamp order; paper ``i`` cites earlier papers
with probability proportional to
``(in_degree + 1)^pa_strength * (topic_similarity + base_rate)`` —
preferential attachment (heavy-tailed citation counts, like arXiv and
the patent corpus) modulated by topical affinity (papers cite their
own field). The result is a DAG, so symmetric in-link paths are rare
and the zero-SimRank phenomenon is as pervasive as the paper reports
for CitHepTh (95+% of pairs).

The planted topic mixtures double as relevance ground truth: the
paper's human experts judged "true" topical relatedness, which the
generator makes explicit and exactly recoverable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.digraph import DiGraph

__all__ = ["CitationNetwork", "citation_network"]


@dataclass(frozen=True)
class CitationNetwork:
    """A generated citation DAG plus its latent ground truth.

    Attributes
    ----------
    graph:
        The citation DAG (edge ``i -> j`` = paper i cites paper j;
        node ids double as timestamps: larger id = newer paper).
    topics:
        ``(n, num_topics)`` row-stochastic topic mixtures.
    """

    graph: DiGraph
    topics: np.ndarray = field(repr=False)

    @property
    def citation_counts(self) -> np.ndarray:
        """Per-paper citation counts (in-degrees) — the paper's
        "#-citation" role proxy for CitHepTh."""
        return self.graph.in_degrees()


def citation_network(
    num_papers: int,
    avg_out_degree: float = 5.0,
    num_topics: int = 8,
    topic_concentration: float = 0.2,
    pa_strength: float = 0.5,
    base_rate: float = 0.01,
    homophily: float = 2.0,
    seed: int = 0,
) -> CitationNetwork:
    """Generate a topical preferential-attachment citation DAG.

    Parameters
    ----------
    num_papers:
        Number of nodes.
    avg_out_degree:
        Mean references per paper (Poisson); controls density
        ``|E|/|V|`` (Figure 5's knob).
    num_topics:
        Latent topic count.
    topic_concentration:
        Dirichlet concentration; small values give focused papers.
    pa_strength:
        Exponent on ``in_degree + 1`` (0 = no rich-get-richer).
    base_rate:
        Additive floor on topical affinity so cross-topic citations
        stay possible.
    homophily:
        Exponent sharpening topical preference (> 1 concentrates
        citations within fields).
    """
    if num_papers < 1:
        raise ValueError("need at least one paper")
    if num_topics < 1:
        raise ValueError("need at least one topic")
    rng = np.random.default_rng(seed)
    topics = rng.dirichlet(
        np.full(num_topics, topic_concentration), size=num_papers
    )
    graph = DiGraph(num_papers)
    in_deg = np.zeros(num_papers)
    for i in range(1, num_papers):
        k = min(int(rng.poisson(avg_out_degree)), i)
        if k == 0:
            continue
        affinity = (topics[:i] @ topics[i]) ** homophily + base_rate
        popularity = (in_deg[:i] + 1.0) ** pa_strength
        weights = affinity * popularity
        weights /= weights.sum()
        targets = rng.choice(i, size=k, replace=False, p=weights)
        for j in targets:
            graph.add_edge(i, int(j))
            in_deg[j] += 1.0
    return CitationNetwork(graph=graph, topics=topics)
