"""Co-authorship networks with H-index ground truth — the DBLP stand-in.

An author-paper bipartite model: authors carry latent topic mixtures;
each paper is written by a lead author plus collaborators drawn with
probability proportional to topical affinity and past collaboration
(so communities form). The co-authorship graph is the one-mode
projection with every undirected edge stored as two opposing directed
edges — exactly how the paper treats the undirected DBLP graph, which
makes its Exp-1 observation testable (on symmetric graphs RWR matches
SimRank*, and P-Rank matches SimRank).

Per-paper citation counts (lognormal, scaled by author prominence)
yield each author's H-index — the role proxy used by Figures 6(b)/(c)
on DBLP.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.digraph import DiGraph

__all__ = ["CoauthorNetwork", "coauthor_network", "h_index"]


def h_index(citations: np.ndarray) -> int:
    """The H-index of a list of per-paper citation counts.

    The largest ``h`` such that at least ``h`` papers have at least
    ``h`` citations each.

    >>> h_index(np.array([10, 8, 5, 4, 3]))
    4
    """
    ranked = np.sort(np.asarray(citations))[::-1]
    h = 0
    for position, count in enumerate(ranked, start=1):
        if count >= position:
            h = position
        else:
            break
    return h


@dataclass(frozen=True)
class CoauthorNetwork:
    """A generated co-authorship graph plus its ground truth.

    Attributes
    ----------
    graph:
        Symmetric digraph (undirected collaboration edges doubled).
    topics:
        ``(num_authors, num_topics)`` topic mixtures.
    h_indices:
        Per-author H-index from the underlying paper model.
    papers:
        Author-id tuples, one per generated paper.
    paper_citations:
        Citation count per generated paper.
    """

    graph: DiGraph
    topics: np.ndarray = field(repr=False)
    h_indices: np.ndarray = field(repr=False)
    papers: tuple[tuple[int, ...], ...] = field(repr=False)
    paper_citations: np.ndarray = field(repr=False)

    @property
    def num_undirected_edges(self) -> int:
        """Collaboration pairs (each stored as two directed edges)."""
        return self.graph.num_edges // 2


def coauthor_network(
    num_authors: int,
    papers_per_author: float = 2.0,
    num_topics: int = 8,
    topic_concentration: float = 0.2,
    mean_team_size: float = 2.8,
    seed: int = 0,
) -> CoauthorNetwork:
    """Generate a co-authorship network through an author-paper model.

    ``papers_per_author * num_authors`` papers are generated; each
    paper's team is a lead author (drawn by productivity) plus
    collaborators drawn by topical affinity and repeated-collaboration
    preference. Density rises with either knob.
    """
    if num_authors < 2:
        raise ValueError("need at least two authors")
    rng = np.random.default_rng(seed)
    topics = rng.dirichlet(
        np.full(num_topics, topic_concentration), size=num_authors
    )
    # Heavy-tailed productivity, as in real DBLP; prominence tracks
    # productivity (prolific authors attract citations), which couples
    # co-authors' H-indices the way real collaboration does.
    productivity = rng.pareto(2.0, size=num_authors) + 1.0
    productivity /= productivity.sum()
    prominence = (productivity * num_authors) ** 0.7

    num_papers = max(1, int(round(papers_per_author * num_authors)))
    # collaboration[u] accumulates u's past collaborations; repeated
    # co-authorship is preferred, clustering the projection.
    collaboration = np.zeros(num_authors)
    graph = DiGraph(num_authors)
    papers: list[tuple[int, ...]] = []
    paper_citations = np.zeros(num_papers)

    for p in range(num_papers):
        lead = int(rng.choice(num_authors, p=productivity))
        team_size = max(1, int(rng.poisson(mean_team_size - 1)) + 1)
        team = {lead}
        affinity = topics @ topics[lead] + 0.02
        while len(team) < min(team_size, num_authors):
            weights = affinity * (1.0 + 0.5 * collaboration)
            for t in team:
                weights[t] = 0.0
            weights /= weights.sum()
            member = int(rng.choice(num_authors, p=weights))
            team.add(member)
        members = tuple(sorted(team))
        papers.append(members)
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                graph.add_edge(u, v)
                graph.add_edge(v, u)
            collaboration[u] += len(members) - 1
        team_prominence = float(np.mean([prominence[a] for a in members]))
        paper_citations[p] = np.floor(
            rng.lognormal(mean=1.0, sigma=0.6) * team_prominence
        )

    h_indices = np.zeros(num_authors, dtype=np.int64)
    citations_by_author: list[list[float]] = [[] for _ in range(num_authors)]
    for p, members in enumerate(papers):
        for a in members:
            citations_by_author[a].append(paper_citations[p])
    for a in range(num_authors):
        if citations_by_author[a]:
            h_indices[a] = h_index(np.array(citations_by_author[a]))
    return CoauthorNetwork(
        graph=graph,
        topics=topics,
        h_indices=h_indices,
        papers=tuple(papers),
        paper_citations=paper_citations,
    )
