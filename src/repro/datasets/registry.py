"""Named datasets mirroring the paper's Figure 5 roster.

Each entry builds a scaled-down synthetic stand-in whose *density*
matches the paper's (the structural knob its experiments vary) while
node counts shrink to laptop scale. Sizes are chosen so the all-pairs
experiments complete in seconds; the D05 < D08 < D11 growth pattern
and the relative dataset ordering are preserved.

``load_dataset`` caches instances per name so benches and tests reuse
the same graphs.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.citation import citation_network
from repro.datasets.coauthor import coauthor_network
from repro.datasets.web import web_graph
from repro.graph.digraph import DiGraph
from repro.graph.stats import graph_stats

__all__ = ["Dataset", "dataset_names", "figure5_rows", "load_dataset"]


@dataclass(frozen=True)
class Dataset:
    """A named graph with optional ground-truth attributes.

    Attributes
    ----------
    name:
        Registry key (e.g. ``"cit-hepth"``).
    graph:
        The graph itself (symmetric digraph for undirected datasets).
    directed:
        False for co-authorship datasets; affects edge accounting.
    topics:
        Planted topic mixtures (relevance ground truth), or ``None``.
    node_attribute:
        Per-node role proxy — citation counts on citation graphs,
        H-index on co-authorship graphs — or ``None``.
    attribute_name:
        Human name of ``node_attribute`` (``"#-citation"``/``"H-index"``).
    paper_size:
        The original corpus size ``(|V|, |E|)`` this stands in for.
    """

    name: str
    graph: DiGraph
    directed: bool = True
    topics: np.ndarray | None = field(default=None, repr=False)
    node_attribute: np.ndarray | None = field(default=None, repr=False)
    attribute_name: str = ""
    paper_size: tuple[int, int] | None = None

    @property
    def num_edges_reported(self) -> int:
        """Edge count in the paper's convention (undirected = pairs)."""
        m = self.graph.num_edges
        return m if self.directed else m // 2

    @property
    def density(self) -> float:
        """``|E| / |V|`` in the paper's convention."""
        n = self.graph.num_nodes
        return self.num_edges_reported / n if n else 0.0


def _cit_hepth() -> Dataset:
    net = citation_network(
        num_papers=1200, avg_out_degree=12.6, num_topics=10, seed=41
    )
    return Dataset(
        name="cit-hepth",
        graph=net.graph,
        directed=True,
        topics=net.topics,
        node_attribute=net.citation_counts,
        attribute_name="#-citation",
        paper_size=(33_000, 418_000),
    )


def _dblp() -> Dataset:
    net = coauthor_network(
        num_authors=800, papers_per_author=2.2, num_topics=10, seed=42
    )
    return Dataset(
        name="dblp",
        graph=net.graph,
        directed=False,
        topics=net.topics,
        node_attribute=net.h_indices,
        attribute_name="H-index",
        paper_size=(15_000, 87_000),
    )


def _dblp_snapshot(name: str, authors: int, ppa: float, seed: int,
                   paper_size: tuple[int, int]) -> Dataset:
    net = coauthor_network(
        num_authors=authors, papers_per_author=ppa, num_topics=10,
        seed=seed,
    )
    return Dataset(
        name=name,
        graph=net.graph,
        directed=False,
        topics=net.topics,
        node_attribute=net.h_indices,
        attribute_name="H-index",
        paper_size=paper_size,
    )


def _web_google() -> Dataset:
    return Dataset(
        name="web-google",
        graph=web_graph(11, density=5.6, seed=44),  # 2048 nodes
        directed=True,
        paper_size=(873_000, 4_900_000),
    )


def _cit_patent() -> Dataset:
    net = citation_network(
        num_papers=3000, avg_out_degree=4.5, num_topics=12, seed=45
    )
    return Dataset(
        name="cit-patent",
        graph=net.graph,
        directed=True,
        topics=net.topics,
        node_attribute=net.citation_counts,
        attribute_name="#-citation",
        paper_size=(3_600_000, 16_200_000),
    )


_BUILDERS = {
    "cit-hepth": _cit_hepth,
    "dblp": _dblp,
    # growing DBLP snapshots (paper densities 4.3 / 5.5 / 6.3)
    "d05": lambda: _dblp_snapshot("d05", 300, 1.5, 46, (4_000, 17_000)),
    "d08": lambda: _dblp_snapshot("d08", 550, 2.0, 47, (13_000, 72_000)),
    "d11": lambda: _dblp_snapshot("d11", 800, 2.4, 48, (14_000, 89_000)),
    "web-google": _web_google,
    "cit-patent": _cit_patent,
}


def dataset_names() -> list[str]:
    """All registry keys, in the paper's Figure 5 order."""
    return list(_BUILDERS)


@functools.lru_cache(maxsize=None)
def load_dataset(name: str) -> Dataset:
    """Build (or fetch the cached) dataset called ``name``."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {dataset_names()}"
        ) from None
    return builder()


def figure5_rows() -> list[dict]:
    """The Figure 5 table over the stand-in datasets.

    Adds the original corpus sizes for side-by-side comparison.
    """
    rows = []
    for name in dataset_names():
        ds = load_dataset(name)
        stats = graph_stats(ds.graph)
        rows.append(
            {
                "Dataset": name,
                "|V|": stats.num_nodes,
                "|E|": ds.num_edges_reported,
                "Density": round(ds.density, 1),
                "paper |V|": ds.paper_size[0],
                "paper |E|": ds.paper_size[1],
                "paper density": round(
                    ds.paper_size[1] / ds.paper_size[0], 1
                ),
            }
        )
    return rows
