"""Seeded scale-free digraphs for the large-graph benchmark tier.

The approx tier (:mod:`repro.approx`) is motivated by graphs whose
in-degree distribution is heavy-tailed — a few hub nodes collect a
large share of all links, as in web and citation corpora. This module
generates such graphs at the 10^4–10^6 node scale where the exact
blocked kernels become the bottleneck: a vectorised variant of
preferential attachment (the *copying model*) in which each new node
either copies the endpoint of an existing edge (probability
``pa_bias`` — proportional to current in-degree, the rich-get-richer
step) or links to a uniformly random earlier node.

Unlike :func:`repro.datasets.citation.citation_network` (which scores
topical affinity against *every* earlier paper and is quadratic), this
generator works in doubling batches of nodes with the attachment pool
frozen at each batch boundary, so a million-node graph builds in
seconds and the result is still a DAG with power-law in-degrees. The
same seed always yields bit-identical edges.

>>> from repro.datasets import scale_free_graph
>>> graph = scale_free_graph(300, avg_out_degree=4.0, seed=7)
>>> graph.num_nodes
300
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph

__all__ = ["scale_free_graph"]


def scale_free_graph(
    num_nodes: int,
    avg_out_degree: float = 8.0,
    pa_bias: float = 0.5,
    seed: int = 0,
) -> DiGraph:
    """Generate a seeded preferential-attachment (copying-model) DAG.

    Nodes arrive in id order; node ``i`` emits ``Poisson(avg)`` edges
    to earlier nodes, each target drawn from the existing edge-tail
    pool with probability ``pa_bias`` (i.e. proportional to in-degree)
    and uniformly from the predecessors otherwise. Duplicate picks
    collapse, so the realised edge count is *about*
    ``num_nodes * avg_out_degree``.

    Parameters
    ----------
    num_nodes:
        Node count (>= 1).
    avg_out_degree:
        Mean out-edges per node (Poisson); the density knob.
    pa_bias:
        Probability in ``[0, 1)`` of the rich-get-richer copy step.
        Higher values give heavier in-degree tails; the copying
        model's power-law exponent is ``(2 - p) / (1 - p)``, so the
        default 0.5 reproduces the Barabasi-Albert ``gamma = 3``
        regime of real citation and web corpora (hub in-degree on
        the order of ``sqrt(n)``).
    seed:
        Generator seed; the same seed gives bit-identical edges.

    Examples
    --------
    >>> a = scale_free_graph(200, avg_out_degree=4.0, seed=1)
    >>> b = scale_free_graph(200, avg_out_degree=4.0, seed=1)
    >>> sorted(a.edges()) == sorted(b.edges())
    True
    >>> bool(a.in_degrees().max() > 4 * a.in_degrees().mean())
    True
    >>> scale_free_graph(0)
    Traceback (most recent call last):
        ...
    ValueError: num_nodes must be >= 1, got 0
    """
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    if not avg_out_degree > 0:
        raise ValueError(
            f"avg_out_degree must be > 0, got {avg_out_degree}"
        )
    if not 0 <= pa_bias < 1:
        raise ValueError(f"pa_bias must lie in [0, 1), got {pa_bias}")
    graph = DiGraph(num_nodes)
    if num_nodes == 1:
        return graph
    rng = np.random.default_rng(seed)
    graph.add_edge(1, 0)
    # Pool of edge tails so far: drawing uniformly from it is exactly
    # drawing nodes proportionally to in-degree.
    tail_chunks: list[np.ndarray] = [np.array([0], dtype=np.int64)]
    start = 2
    while start < num_nodes:
        end = min(num_nodes, 2 * start)
        outs = rng.poisson(avg_out_degree, size=end - start)
        total = int(outs.sum())
        if total:
            heads = np.repeat(np.arange(start, end, dtype=np.int64), outs)
            pool = np.concatenate(tail_chunks)
            copied = pool[rng.integers(0, pool.size, size=total)]
            uniform = rng.integers(0, start, size=total)
            targets = np.where(
                rng.random(total) < pa_bias, copied, uniform
            )
            keys = np.unique(heads * num_nodes + targets)
            batch_heads = keys // num_nodes
            batch_tails = keys % num_nodes
            for u, v in zip(batch_heads.tolist(), batch_tails.tolist()):
                graph.add_edge(u, v)
            tail_chunks.append(batch_tails)
        start = end
    return graph
