"""Experiment harness: result containers, table rendering, timing.

Every experiment module in :mod:`repro.experiments` returns an
:class:`ExperimentResult` — named tables (lists of dict rows, printed
in the paper's layout) plus *shape checks*: boolean assertions of the
paper's qualitative claims ("memo-gSR* beats psum-SR", "compression
grows with density", ...). Benchmarks fail if any check fails, which
is what "reproduced the figure" means here — absolute numbers differ
by construction (scaled data, different hardware).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["ExperimentResult", "format_table", "timed"]


def format_table(rows: list[dict], title: str | None = None) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    columns = list(rows[0])
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)

    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    cells = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    rule = "-" * len(header)
    body = "\n".join(
        "  ".join(cell.ljust(w) for cell, w in zip(line, widths))
        for line in cells
    )
    lines = [title, rule, header, rule, body, rule] if title else [
        header, rule, body,
    ]
    return "\n".join(line for line in lines if line is not None)


@dataclass
class ExperimentResult:
    """Tables + shape checks produced by one experiment."""

    name: str
    tables: dict[str, list[dict]] = field(default_factory=dict)
    checks: list[tuple[str, bool]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_check(self, description: str, passed: bool) -> None:
        """Record one qualitative claim and whether we reproduced it."""
        self.checks.append((description, bool(passed)))

    def failed_checks(self) -> list[str]:
        return [desc for desc, ok in self.checks if not ok]

    def assert_all_checks(self) -> None:
        failed = self.failed_checks()
        if failed:
            raise AssertionError(
                f"{self.name}: shape checks failed: {failed}"
            )

    def render(self) -> str:
        """The full printable report."""
        parts = [f"=== {self.name} ==="]
        for title, rows in self.tables.items():
            parts.append(format_table(rows, title=title))
        if self.notes:
            parts.append(
                "\n".join(["Notes:"] + [f"  - {n}" for n in self.notes])
            )
        if self.checks:
            lines = ["Shape checks (paper claims):"] + [
                f"  [{'ok' if ok else 'FAIL'}] {desc}"
                for desc, ok in self.checks
            ]
            parts.append("\n".join(lines))
        return "\n\n".join(parts)


def timed(fn: Callable, *args, **kwargs) -> tuple[Any, float]:
    """``(result, elapsed_seconds)`` of one call."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
