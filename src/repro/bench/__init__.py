"""Benchmark support: timing, tables, memory accounting."""

from repro.bench.harness import (
    ExperimentResult,
    format_table,
    timed,
)
from repro.bench.memory import measure_peak_memory

__all__ = [
    "ExperimentResult",
    "format_table",
    "measure_peak_memory",
    "timed",
]
