"""Benchmark support: timing, tables, memory accounting, perf tracking.

Two layers live here:

* :mod:`repro.bench.harness` — the *experiment* harness
  (:class:`ExperimentResult`, shape checks) that reproduces the
  paper's figures;
* :mod:`repro.bench.runner` — the *regression* harness behind
  ``python -m repro.bench``: named cases, warmup/repeat timing,
  ``BENCH_<tag>.json`` output, and a compare gate for CI;
* :mod:`repro.bench.loadgen` — the *serving* load generator
  (``python -m repro.bench --serve``): concurrent client streams
  against a :class:`repro.serve.ServingService`, throughput and
  p50/p95/p99 latency histograms vs a sequential per-request
  baseline.
"""

from repro.bench.harness import (
    ExperimentResult,
    format_table,
    timed,
)
from repro.bench.loadgen import LatencyStats, run_serving_load
from repro.bench.memory import measure_peak_memory
from repro.bench.runner import (
    BenchCase,
    BenchRun,
    CaseResult,
    compare_runs,
    default_suite,
    run_suite,
)

__all__ = [
    "BenchCase",
    "BenchRun",
    "CaseResult",
    "ExperimentResult",
    "LatencyStats",
    "compare_runs",
    "default_suite",
    "format_table",
    "measure_peak_memory",
    "run_serving_load",
    "run_suite",
    "timed",
]
