"""Benchmark support: timing, tables, memory accounting, perf tracking.

Two layers live here:

* :mod:`repro.bench.harness` — the *experiment* harness
  (:class:`ExperimentResult`, shape checks) that reproduces the
  paper's figures;
* :mod:`repro.bench.runner` — the *regression* harness behind
  ``python -m repro.bench``: named cases, warmup/repeat timing,
  ``BENCH_<tag>.json`` output, and a compare gate for CI.
"""

from repro.bench.harness import (
    ExperimentResult,
    format_table,
    timed,
)
from repro.bench.memory import measure_peak_memory
from repro.bench.runner import (
    BenchCase,
    BenchRun,
    CaseResult,
    compare_runs,
    default_suite,
    run_suite,
)

__all__ = [
    "BenchCase",
    "BenchRun",
    "CaseResult",
    "ExperimentResult",
    "compare_runs",
    "default_suite",
    "format_table",
    "measure_peak_memory",
    "run_suite",
    "timed",
]
