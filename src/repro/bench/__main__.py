"""``python -m repro.bench`` — run, record, and compare benchmarks.

Typical uses::

    python -m repro.bench --quick                  # fast suite -> BENCH_quick.json
    python -m repro.bench --tag PR2                # full suite  -> BENCH_PR2.json
    python -m repro.bench --quick --compare BENCH_baseline.json
    python -m repro.bench --list                   # enumerate cases
    python -m repro.bench --serve --tag PR3        # + serving load test
    python -m repro.bench --cluster --tag PR5      # + worker scaling
    python -m repro.bench --approx --tag PR6       # + approx-vs-exact tier
    python -m repro.bench --mutate --tag PR7       # + delta-vs-rebuild tier
    python -m repro.bench --telemetry --tag PR8    # + observability cost tier
    python -m repro.bench --history                # trend over BENCH_*.json
    python -m repro.bench --history --detect       # + change-point gate

Compare mode exits non-zero when a case regresses beyond
``--threshold`` times its baseline or a gated batching speedup falls
below ``--speedup-floor`` — the CI regression gate. ``--serve`` runs
the serving load generator (:mod:`repro.bench.loadgen`) after the
kernel suite and embeds its throughput / latency-percentile document
under the ``"serving"`` key of ``BENCH_<tag>.json``; ``--cluster``
runs the worker-scaling case for every ``--cluster-backends`` entry
(process and thread by default, under ``"cluster.backends"``) plus
the shard-transport comparison (pickled blocks vs shared-memory
descriptors vs worker-side top-k, under ``"cluster.transport"``);
the best backend's ``speedup_workers_<b>_vs_<a>`` ratio joins the
gated derived speedups when the machine has enough CPUs to express
it, and the machine-independent bytes-per-request checks (shm and
top-k each under 1% of the pickled baseline) are exit gates
everywhere. ``--approx`` runs the exact-vs-approx large-graph comparison
(:mod:`repro.bench.approx`) on seeded scale-free graphs, embeds its
document under ``"approx"``, copies ``speedup_approx_vs_exact`` into
the gated derived speedups, and exits non-zero when precision@k falls
below its floor. ``--mutate`` runs the delta-vs-rebuild mutation
comparison (:mod:`repro.bench.mutate`): identical seeded 1%-of-edges
batch swaps pushed through a ``delta_mode="off"`` and a
``delta_mode="auto"`` :class:`~repro.serve.SnapshotManager`, with the
median-swap ratio recorded as ``speedup_delta_swap_vs_rebuild`` and
bit-parity between the two maintenance histories gated. ``--history``
renders the trend table over every committed ``BENCH_*.json`` in the
current directory (commit order) and exits without timing anything;
adding ``--detect`` runs E-Divisive change-point detection
(:mod:`repro.bench.signal`) over every metric series afterwards and
exits non-zero on regressions the committed
``BENCH_expected_changes.json`` allowlist does not explain.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.runner import (
    compare_runs,
    default_suite,
    run_suite,
)

QUICK = {
    "nodes": 800,
    "edges": 4800,
    "queries": 32,
    "num_terms": 8,
    "allpairs_nodes": 300,
    "allpairs_edges": 1800,
    "repeat": 2,
    "warmup": 1,
}
FULL = {
    "nodes": 2000,
    "edges": 12000,
    "queries": 64,
    "num_terms": 10,
    "allpairs_nodes": 600,
    "allpairs_edges": 3600,
    "repeat": 3,
    "warmup": 1,
}

#: Serving-load workloads paired with the kernel presets: the full
#: setting is the acceptance regime (32 concurrent clients on the
#: 2k-node benchmark graph), quick is the CI-sized version.
SERVE_QUICK = {"clients": 16, "requests_per_client": 2}
SERVE_FULL = {"clients": 32, "requests_per_client": 4}

#: Telemetry-overhead workloads (``--telemetry``): the full setting is
#: the acceptance regime (the 2k/12k serving workload, p50 overhead of
#: metrics + tracing gated below 5%); quick runs fewer rounds and only
#: reports the overhead — CI machines are too noisy to gate a 5%
#: latency delta at CI scale. The metrics-consistency check (every
#: request counted) is gated in both settings.
TELEMETRY_QUICK = {"rounds": 2, "overhead_limit": None}
TELEMETRY_FULL = {"rounds": 3, "overhead_limit": 0.05}

#: Worker-scaling workloads (``--cluster``): micro-batches of distinct
#: query columns pushed through the sharded column plane at the low
#: and high worker counts of the ``speedup_workers_4_vs_1`` gate.
CLUSTER_QUICK = {"batches": 4, "batch_size": 32}
CLUSTER_FULL = {"batches": 8, "batch_size": 64}

#: Approx-tier workloads (``--approx``): the full setting is the
#: acceptance regime (10^4 and 10^5-node scale-free graphs, 10x floor
#: at the largest), quick shrinks the graphs to CI size — too small
#: for the asymptotic speedup, so only precision is gated there.
APPROX_QUICK = {
    "node_counts": (2_000, 10_000), "queries": 8,
    "speedup_floor": None,
}
APPROX_FULL = {
    "node_counts": (10_000, 100_000), "queries": 12,
    "speedup_floor": 10.0,
}

#: Mutation-tier workloads (``--mutate``): the full setting is the
#: acceptance regime (1%-of-edges batch swaps on a 10^5-node
#: scale-free graph, 10x floor for the delta path over full rebuild);
#: quick shrinks the graph to CI size, where the rebuild is cheap
#: enough that the asymptotic ratio cannot be expressed — only the
#: path/parity checks are gated there.
MUTATE_QUICK = {"nodes": 10_000, "batches": 3, "speedup_floor": None}
MUTATE_FULL = {"nodes": 100_000, "batches": 3, "speedup_floor": 10.0}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the repo's performance suite and write "
        "machine-readable BENCH_<tag>.json results.",
    )
    parser.add_argument(
        "--tag",
        default=None,
        help="result tag; output goes to BENCH_<tag>.json "
        "(default: 'quick' with --quick, else 'local')",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller workload and fewer repeats (the CI setting)",
    )
    for name in ("nodes", "edges", "queries", "num-terms",
                 "allpairs-nodes", "allpairs-edges", "repeat",
                 "warmup"):
        parser.add_argument(
            f"--{name}", type=int, default=None,
            help=f"override the suite's {name.replace('-', '_')}",
        )
    parser.add_argument("--k", type=int, default=10,
                        help="top-k size for the ranking cases")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--dtype", choices=("float64", "float32"), default="float64",
        help="kernel precision for the suite",
    )
    parser.add_argument(
        "--output", default=None,
        help="explicit output path (default BENCH_<tag>.json in the "
        "current directory)",
    )
    parser.add_argument(
        "--no-write", action="store_true",
        help="print results without writing a JSON file",
    )
    parser.add_argument(
        "--compare", metavar="BASELINE", default=None,
        help="compare against a baseline BENCH_*.json and exit "
        "non-zero on regression",
    )
    parser.add_argument(
        "--threshold", type=float, default=3.0,
        help="absolute gate: max allowed seconds_min ratio vs the "
        "baseline (default 3.0 — generous, baselines travel "
        "between machines)",
    )
    parser.add_argument(
        "--speedup-floor", type=float, default=2.0,
        help="relative gate: min allowed batching speedup (machine-"
        "independent; default 2.0)",
    )
    parser.add_argument(
        "--min-gate-ms", type=float, default=1.0,
        help="cases with a baseline best time below this are "
        "reported but never fail the absolute gate (default 1.0 ms)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_cases",
        help="enumerate the registered bench cases and exit",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="also run the serving load generator and embed its "
        "throughput / latency-percentile document under the "
        "'serving' key",
    )
    parser.add_argument(
        "--clients", type=int, default=None,
        help="serving load: concurrent client streams "
        "(default 32 full / 16 quick)",
    )
    parser.add_argument(
        "--requests-per-client", type=int, default=None,
        help="serving load: queries per client (default 4 full / "
        "2 quick)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=32,
        help="serving load: broker micro-batch cap (default 32)",
    )
    parser.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="serving load: broker linger in ms (default 2.0)",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="also run the telemetry-overhead comparison (the serving "
        "workload with the observability stack enabled vs disabled) "
        "and embed its document under the 'telemetry' key; the "
        "relative p50 overhead is gated below --telemetry-limit in "
        "the full setting",
    )
    parser.add_argument(
        "--telemetry-rounds", type=int, default=None,
        help="telemetry tier: alternating enabled/disabled rounds "
        "whose per-side p50 medians are compared (default 3 full / "
        "2 quick)",
    )
    parser.add_argument(
        "--telemetry-limit", type=float, default=None,
        help="telemetry tier: max allowed relative p50 overhead "
        "(default 0.05 full / ungated quick)",
    )
    parser.add_argument(
        "--cluster", action="store_true",
        help="also run the multi-process worker-scaling case "
        "(repro.cluster) and embed its document under the 'cluster' "
        "key; its speedup joins the derived ratios as "
        "speedup_workers_<b>_vs_<a>",
    )
    parser.add_argument(
        "--worker-counts", default="1,4", metavar="A,B",
        help="worker-scaling: comma-separated worker counts, low to "
        "high (default 1,4 — the gated speedup_workers_4_vs_1 pair)",
    )
    parser.add_argument(
        "--cluster-backends", default="process,thread",
        metavar="B1,B2",
        help="worker-scaling: comma-separated backends to measure "
        "(default process,thread); the gated speedup is the best "
        "across backends",
    )
    parser.add_argument(
        "--transport-byte-limit", type=float, default=0.01,
        help="transport-compare gate: max allowed "
        "bytes-per-request ratio of the shm/top-k paths vs the "
        "pickled baseline (default 0.01 — under 1%%)",
    )
    parser.add_argument(
        "--approx", action="store_true",
        help="also run the exact-vs-approx comparison on scale-free "
        "graphs (repro.bench.approx) and embed its document under "
        "the 'approx' key; its speedup_approx_vs_exact joins the "
        "gated derived ratios and its precision@k floor is an exit "
        "gate",
    )
    parser.add_argument(
        "--approx-nodes", default=None, metavar="A,B",
        help="approx tier: comma-separated graph sizes, ascending "
        "(default 10000,100000 full / 2000,10000 quick); the speedup "
        "is taken at the largest",
    )
    parser.add_argument(
        "--approx-queries", type=int, default=None,
        help="approx tier: top-k queries per scale (default 12 full "
        "/ 8 quick)",
    )
    parser.add_argument(
        "--approx-epsilon", type=float, default=None,
        help="approx tier: estimator accuracy knob (default: the "
        "tier's 0.05)",
    )
    parser.add_argument(
        "--approx-speedup-floor", type=float, default=None,
        help="approx tier: required speedup at the largest scale "
        "(default 10.0 full / ungated quick — small graphs cannot "
        "express the asymptotic ratio)",
    )
    parser.add_argument(
        "--mutate", action="store_true",
        help="also run the delta-vs-rebuild mutation comparison "
        "(repro.bench.mutate) and embed its document under the "
        "'mutate' key; its speedup_delta_swap_vs_rebuild joins the "
        "gated derived ratios and its path/parity checks are exit "
        "gates",
    )
    parser.add_argument(
        "--mutate-nodes", type=int, default=None,
        help="mutation tier: scale-free graph size (default 100000 "
        "full / 10000 quick)",
    )
    parser.add_argument(
        "--mutate-batches", type=int, default=None,
        help="mutation tier: seeded 1%%-of-edges batch swaps pushed "
        "through both maintenance paths (default 3)",
    )
    parser.add_argument(
        "--mutate-speedup-floor", type=float, default=None,
        help="mutation tier: required (rebuild median) / (delta "
        "median) swap-time ratio (default 10.0 full / ungated quick "
        "— small graphs rebuild too fast to express the ratio)",
    )
    parser.add_argument(
        "--history", action="store_true",
        help="print the trend table over every BENCH_*.json in the "
        "current directory (commit order) and exit; nothing is timed",
    )
    parser.add_argument(
        "--detect", action="store_true",
        help="with --history: run E-Divisive change-point detection "
        "over every metric series (repro.bench.signal) and exit "
        "non-zero on regressions not explained by the "
        "--expected-changes allowlist",
    )
    parser.add_argument(
        "--expected-changes", default="BENCH_expected_changes.json",
        metavar="PATH",
        help="allowlist of intentional series shifts consulted by "
        "--detect (default BENCH_expected_changes.json)",
    )
    parser.add_argument(
        "--detect-alpha", type=float, default=0.05,
        help="permutation-test significance level for --detect "
        "(default 0.05)",
    )
    parser.add_argument(
        "--detect-min-shift", type=float, default=0.10,
        help="minimum relative mean shift a --detect finding must "
        "show (default 0.10 — smaller moves are machine noise)",
    )
    return parser


def list_cases(args, preset: dict) -> int:
    """Print every registered case name (tiny setup, nothing timed)."""
    cases = default_suite(
        nodes=64, edges=256, queries=4, num_terms=4,
        allpairs_nodes=24, allpairs_edges=96,
        k=args.k, dtype=args.dtype, seed=args.seed,
    )
    print("kernel cases (python -m repro.bench):")
    for case in cases:
        fresh = "  [fresh-state]" if case.fresh_state else ""
        print(f"  {case.name}{fresh}")
    print("serving load scenario (--serve):")
    print(
        "  serving_load  "
        f"[{preset['nodes']} nodes, {preset['edges']} edges, "
        "coalesced vs sequential single_source]"
    )
    print("telemetry-overhead scenario (--telemetry):")
    print(
        "  telemetry_overhead  "
        f"[{preset['nodes']} nodes, {preset['edges']} edges, "
        "serving load with metrics+tracing on vs off, p50 gated]"
    )
    print("worker-scaling scenario (--cluster):")
    print(
        "  cluster_scaling  "
        f"[{preset['nodes']} nodes, {preset['edges']} edges, "
        f"worker counts {args.worker_counts}, backends "
        f"{args.cluster_backends}, sharded column plane]"
    )
    print(
        "  transport_compare  "
        f"[{preset['nodes']} nodes, pickled blocks vs shm "
        "descriptors vs worker-side top-k, bytes/request gated "
        "under 1% of pickle]"
    )
    approx = APPROX_QUICK if args.quick else APPROX_FULL
    sizes = args.approx_nodes or ",".join(
        str(n) for n in approx["node_counts"]
    )
    print("approx-tier scenario (--approx):")
    print(
        "  approx_compare  "
        f"[scale-free graphs at {sizes} nodes, exact vs "
        "mode=approx top-k: latency, precision@k, walk-index "
        "build]"
    )
    mutate = MUTATE_QUICK if args.quick else MUTATE_FULL
    print("mutation-tier scenario (--mutate):")
    print(
        "  mutate_compare  "
        f"[scale-free graph at {args.mutate_nodes or mutate['nodes']} "
        "nodes, identical 1%-of-edges batch swaps: delta_mode=auto "
        "vs delta_mode=off SnapshotManager, bit-parity gated]"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.history:
        from repro.bench.history import collect_history, render_history

        entries = collect_history()
        print(render_history(entries))
        if args.detect:
            from repro.bench.signal import render_findings, run_detection

            ok, findings = run_detection(
                entries,
                expected_path=args.expected_changes,
                alpha=args.detect_alpha,
                min_shift=args.detect_min_shift,
            )
            print()
            print(render_findings(findings))
            if not ok:
                print(
                    "unexplained perf regression in the BENCH series "
                    f"(record intentional shifts in "
                    f"{args.expected_changes})",
                    file=sys.stderr,
                )
                return 1
        return 0
    preset = dict(QUICK if args.quick else FULL)
    for key in list(preset):
        override = getattr(args, key.replace("-", "_"), None)
        if override is not None:
            preset[key] = override
    repeat = preset.pop("repeat")
    warmup = preset.pop("warmup")
    if args.list_cases:
        return list_cases(args, preset)
    tag = args.tag or ("quick" if args.quick else "local")
    params = dict(
        preset,
        k=args.k,
        dtype=args.dtype,
        seed=args.seed,
        repeat=repeat,
        warmup=warmup,
        quick=args.quick,
    )
    cases = default_suite(
        k=args.k, dtype=args.dtype, seed=args.seed, **preset
    )
    run = run_suite(
        cases,
        tag=tag,
        params=params,
        warmup=warmup,
        repeat=repeat,
        progress=lambda name: print(f"  running {name} ...", flush=True),
    )
    document = run.to_dict()
    if args.serve:
        from repro.bench.loadgen import run_serving_load

        serve_defaults = SERVE_QUICK if args.quick else SERVE_FULL
        print("  running serving_load ...", flush=True)
        document["serving"] = run_serving_load(
            nodes=preset["nodes"],
            edges=preset["edges"],
            clients=args.clients or serve_defaults["clients"],
            requests_per_client=(
                args.requests_per_client
                or serve_defaults["requests_per_client"]
            ),
            k=args.k,
            num_terms=preset["num_terms"],
            dtype=args.dtype,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            seed=args.seed,
        )
    telemetry_ok = True
    if args.telemetry:
        from repro.bench.loadgen import run_telemetry_overhead

        telemetry_defaults = (
            TELEMETRY_QUICK if args.quick else TELEMETRY_FULL
        )
        limit = (
            args.telemetry_limit
            if args.telemetry_limit is not None
            else telemetry_defaults["overhead_limit"]
        )
        serve_defaults = SERVE_QUICK if args.quick else SERVE_FULL
        print("  running telemetry_overhead ...", flush=True)
        document["telemetry"] = run_telemetry_overhead(
            nodes=preset["nodes"],
            edges=preset["edges"],
            clients=args.clients or serve_defaults["clients"],
            requests_per_client=(
                args.requests_per_client
                or serve_defaults["requests_per_client"]
            ),
            k=args.k,
            num_terms=preset["num_terms"],
            dtype=args.dtype,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            seed=args.seed,
            rounds=(
                args.telemetry_rounds or telemetry_defaults["rounds"]
            ),
            overhead_limit=limit,
        )
        telemetry_ok = all(
            document["telemetry"]["checks"].values()
        )
    cluster_ok = True
    if args.cluster:
        from repro.bench.loadgen import (
            run_cluster_scaling,
            run_transport_compare,
        )

        cluster_defaults = (
            CLUSTER_QUICK if args.quick else CLUSTER_FULL
        )
        counts = tuple(
            int(w) for w in args.worker_counts.split(",")
        )
        backends = tuple(
            b.strip() for b in args.cluster_backends.split(",")
            if b.strip()
        )
        backend_docs: dict[str, dict] = {}
        for backend in backends:
            print(
                f"  running cluster_scaling[{backend}] ...",
                flush=True,
            )
            backend_docs[backend] = run_cluster_scaling(
                nodes=preset["nodes"],
                edges=preset["edges"],
                worker_counts=counts,
                num_terms=preset["num_terms"],
                dtype=args.dtype,
                seed=args.seed,
                backend=backend,
                **cluster_defaults,
            )
        print("  running transport_compare ...", flush=True)
        transport_doc = run_transport_compare(
            nodes=preset["nodes"],
            edges=preset["edges"],
            batches=cluster_defaults["batches"],
            batch_size=cluster_defaults["batch_size"],
            k=args.k,
            num_terms=preset["num_terms"],
            dtype=args.dtype,
            seed=args.seed,
            byte_ratio_limit=args.transport_byte_limit,
        )
        key = next(iter(backend_docs.values()))["speedup_key"]
        # the gate asks that *at least one* backend scales: take the
        # best ratio — a GIL-bound thread run must not mask a process
        # win, nor vice versa
        best = max(doc[key] for doc in backend_docs.values())
        document["cluster"] = {
            "backends": backend_docs,
            "transport": transport_doc,
            "speedup_key": key,
            key: best,
            "checks": dict(transport_doc["checks"]),
        }
        document["derived"][key] = best
        cluster_ok = all(document["cluster"]["checks"].values())
    approx_ok = True
    if args.approx:
        from repro.bench.approx import run_approx_compare

        approx_defaults = APPROX_QUICK if args.quick else APPROX_FULL
        node_counts = tuple(
            int(n) for n in args.approx_nodes.split(",")
        ) if args.approx_nodes else approx_defaults["node_counts"]
        floor = (
            args.approx_speedup_floor
            if args.approx_speedup_floor is not None
            else approx_defaults["speedup_floor"]
        )
        document["approx"] = run_approx_compare(
            node_counts=node_counts,
            queries=(
                args.approx_queries or approx_defaults["queries"]
            ),
            k=args.k,
            epsilon=args.approx_epsilon,
            num_terms=preset["num_terms"],
            dtype=args.dtype,
            seed=args.seed,
            speedup_floor=floor,
            progress=lambda name: print(
                f"  running {name} ...", flush=True
            ),
        )
        key = document["approx"]["speedup_key"]
        document["derived"][key] = document["approx"][key]
        approx_ok = all(document["approx"]["checks"].values())
    mutate_ok = True
    if args.mutate:
        # a fresh subprocess per comparison: the tiers above leave
        # allocator churn that measurably inflates sub-second delta
        # swaps timed in the same process
        from repro.bench.mutate import run_mutate_compare_isolated

        mutate_defaults = MUTATE_QUICK if args.quick else MUTATE_FULL
        floor = (
            args.mutate_speedup_floor
            if args.mutate_speedup_floor is not None
            else mutate_defaults["speedup_floor"]
        )
        document["mutate"] = run_mutate_compare_isolated(
            nodes=args.mutate_nodes or mutate_defaults["nodes"],
            batches=(
                args.mutate_batches or mutate_defaults["batches"]
            ),
            num_terms=preset["num_terms"],
            dtype=args.dtype,
            seed=args.seed,
            speedup_floor=floor,
            progress=lambda name: print(
                f"  running {name} ...", flush=True
            ),
        )
        key = document["mutate"]["speedup_key"]
        document["derived"][key] = document["mutate"][key]
        mutate_ok = all(document["mutate"]["checks"].values())
    print(f"\n== repro.bench [{tag}] ==")
    for name, result in document["results"].items():
        print(
            f"  {name:<28} {result['seconds_min'] * 1e3:9.2f} ms "
            f"(mean {result['seconds_mean'] * 1e3:9.2f} ms, "
            f"peak {result['peak_bytes'] / 1e6:8.2f} MB)"
        )
    for key, value in document["derived"].items():
        print(f"  {key:<28} {value:9.2f}x")
    if args.serve:
        serving = document["serving"]
        coalesced = serving["coalesced"]
        print(
            f"  serving_load                 "
            f"{coalesced['requests_per_second']:9.0f} rps "
            f"(sequential "
            f"{serving['sequential']['requests_per_second']:.0f} rps, "
            f"{serving['speedup_throughput']:.2f}x; p50 "
            f"{coalesced['latency']['p50_ms']:.1f} ms, p99 "
            f"{coalesced['latency']['p99_ms']:.1f} ms)"
        )
    if args.telemetry:
        telemetry = document["telemetry"]
        print(
            f"  telemetry_overhead           p50 "
            f"{telemetry['disabled']['p50_ms']:.2f} ms off vs "
            f"{telemetry['enabled']['p50_ms']:.2f} ms on -> "
            f"{telemetry['p50_overhead'] * 100:+.1f}%"
            + (
                f" (limit {telemetry['params']['overhead_limit']:.0%})"
                if telemetry["params"]["overhead_limit"] is not None
                else " (ungated)"
            )
        )
        for name, passed in telemetry["checks"].items():
            print(f"  {'ok' if passed else 'FAIL'} telemetry {name}")
    if args.cluster:
        cluster = document["cluster"]
        for backend, doc in cluster["backends"].items():
            sides = ", ".join(
                f"{count}w {data['columns_per_second']:.0f} col/s "
                f"(transport {data['transport_share']:.0%})"
                for count, data in doc["workers"].items()
            )
            print(
                f"  cluster_scaling[{backend:<7}]     {sides} "
                f"-> {doc[doc['speedup_key']]:.2f}x"
            )
        transport = cluster["transport"]
        print(
            f"  transport_compare            "
            f"pickle {transport['pickle_columns']['bytes_per_request']:,.0f} "
            f"B/req vs shm "
            f"{transport['shm_columns']['bytes_per_request']:,.0f} "
            f"({transport['shm_bytes_ratio']:.3%}) vs top-k "
            f"{transport['shm_topk']['bytes_per_request']:,.0f} "
            f"({transport['topk_bytes_ratio']:.3%})"
        )
        for name, passed in cluster["checks"].items():
            print(f"  {'ok' if passed else 'FAIL'} cluster {name}")
    if args.approx:
        approx = document["approx"]
        for size, scale in approx["scales"].items():
            print(
                f"  approx_compare@{size:<13} "
                f"exact "
                f"{scale['exact']['seconds_per_query'] * 1e3:8.2f} ms"
                f" vs approx "
                f"{scale['approx']['seconds_per_query'] * 1e3:7.2f} "
                f"ms -> {scale['speedup']:.1f}x, "
                f"precision@{approx['k']} "
                f"{scale['precision_at_k']:.3f}"
            )
        for name, passed in approx["checks"].items():
            print(f"  {'ok' if passed else 'FAIL'} approx {name}")
    if args.mutate:
        mutate = document["mutate"]
        medians = mutate["swap_seconds_median"]
        print(
            f"  mutate_compare@{mutate['nodes']:<13} "
            f"rebuild {medians['rebuild'] * 1e3:9.1f} ms vs delta "
            f"{medians['delta'] * 1e3:8.1f} ms per swap -> "
            f"{mutate[mutate['speedup_key']]:.1f}x "
            f"({mutate['batches']} batches, "
            f"{mutate['edits_per_batch']} edits each)"
        )
        for name, passed in mutate["checks"].items():
            print(f"  {'ok' if passed else 'FAIL'} mutate {name}")
    if not args.no_write:
        out_path = Path(args.output or f"BENCH_{tag}.json")
        out_path.write_text(json.dumps(document, indent=2) + "\n")
        print(f"\nwrote {out_path}")
    if args.compare is not None:
        baseline_path = Path(args.compare)
        if not baseline_path.exists():
            print(f"baseline {baseline_path} not found", file=sys.stderr)
            return 2
        baseline = json.loads(baseline_path.read_text())
        ok, lines = compare_runs(
            document,
            baseline,
            threshold=args.threshold,
            speedup_floor=args.speedup_floor,
            min_gate_seconds=args.min_gate_ms * 1e-3,
        )
        print(f"\n== compare vs {baseline_path} ==")
        for line in lines:
            print(f"  {line}")
        if not ok:
            print("regression detected", file=sys.stderr)
            return 1
        print("no regression")
    if not telemetry_ok:
        print("telemetry gates FAILED", file=sys.stderr)
        return 1
    if not approx_ok:
        print("approx gates FAILED", file=sys.stderr)
        return 1
    if not cluster_ok:
        print("cluster transport gates FAILED", file=sys.stderr)
        return 1
    if not mutate_ok:
        print("mutate gates FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
