"""The persistent performance harness behind ``python -m repro.bench``.

Where :mod:`repro.bench.harness` reproduces the *paper's* figures,
this module tracks the *repo's own* performance over time, in the
style of regression-driven benchmark suites: a fixed set of named
cases over a seeded workload, warmup/repeat wall-clock timing plus a
tracemalloc peak per case, machine-readable output written to
``BENCH_<tag>.json``, and a compare mode that fails when a case
regresses against a committed baseline.

Two kinds of gate are applied when comparing:

* **absolute** — a case's best wall time may not exceed
  ``threshold x`` its baseline time (generous by default, because
  baselines travel between machines);
* **relative** — derived speedup ratios (blocked batch kernel vs the
  pre-blocking per-query loop, engine ``batch_top_k`` vs the same
  loop) are machine-independent and must stay above a floor.
"""

from __future__ import annotations

import json
import os
import platform
import re
import sys
import time
import tracemalloc
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

SCHEMA_VERSION = 1

#: Derived ratios that the compare gate holds to ``speedup_floor``.
#: These are machine-independent ratios (batching speedups, the
#: index cold-start ratio), so a floor can gate CI without
#: cross-machine wall-clock noise. The per-query
#: ``speedup_single_source`` ratio is reported but not gated (B = 1
#: barely benefits from blocking).
GATED_SPEEDUPS = (
    "speedup_blocked_vs_loop",
    "speedup_engine_batch_vs_loop",
    "speedup_index_load_vs_rebuild",
    "speedup_workers_4_vs_1",
    "speedup_approx_vs_exact",
)

#: ``speedup_workers_<b>_vs_<a>`` ratios (``python -m repro.bench
#: --cluster``) are machine-independent only when the machine can
#: actually run the larger worker count in parallel, so their floor
#: applies only when the *current* run's ``machine.cpu_count`` is at
#: least ``b``; on smaller machines they are reported un-gated.
_WORKER_SPEEDUP = re.compile(r"^speedup_workers_(\d+)_vs_(\d+)$")

__all__ = [
    "BenchCase",
    "BenchRun",
    "CaseResult",
    "compare_runs",
    "default_suite",
    "machine_info",
    "run_suite",
]


@dataclass(frozen=True)
class BenchCase:
    """One named benchmark: ``fn(*setup())`` timed repeatedly.

    ``setup`` builds the case's inputs and is excluded from the
    timing. With ``fresh_state`` set, ``setup`` re-runs before *every*
    invocation — required for memoizing targets (a warm
    :class:`~repro.engine.SimilarityEngine` would otherwise serve
    repeat invocations from its column cache and time the memo, not
    the kernel).
    """

    name: str
    setup: Callable[[], tuple]
    fn: Callable[..., Any]
    fresh_state: bool = False


@dataclass
class CaseResult:
    """Timings (seconds per repeat) and peak allocation of one case."""

    name: str
    seconds: list[float]
    peak_bytes: int

    @property
    def seconds_min(self) -> float:
        return min(self.seconds)

    @property
    def seconds_mean(self) -> float:
        return sum(self.seconds) / len(self.seconds)

    def to_dict(self) -> dict:
        return {
            "seconds_min": self.seconds_min,
            "seconds_mean": self.seconds_mean,
            "seconds": list(self.seconds),
            "peak_bytes": self.peak_bytes,
        }


@dataclass
class BenchRun:
    """A full suite run, serialisable to ``BENCH_<tag>.json``."""

    tag: str
    params: dict
    machine: dict
    results: dict[str, CaseResult] = field(default_factory=dict)

    def derived(self) -> dict[str, float]:
        """Machine-independent ratios computed from the case timings."""
        out: dict[str, float] = {}

        def ratio(numerator: str, denominator: str, key: str) -> None:
            a = self.results.get(numerator)
            b = self.results.get(denominator)
            if a and b and b.seconds_min > 0:
                out[key] = a.seconds_min / b.seconds_min

        ratio(
            "batch_per_query_loop",
            "batch_blocked_kernel",
            "speedup_blocked_vs_loop",
        )
        ratio(
            "batch_per_query_loop",
            "engine_batch_top_k",
            "speedup_engine_batch_vs_loop",
        )
        ratio(
            "single_source_reference",
            "single_source_blocked",
            "speedup_single_source",
        )
        ratio(
            "index_cold_rebuild",
            "index_cold_load",
            "speedup_index_load_vs_rebuild",
        )
        return out

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "tag": self.tag,
            "created_at": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime()
            ),
            "machine": self.machine,
            "params": self.params,
            "results": {
                name: result.to_dict()
                for name, result in self.results.items()
            },
            "derived": self.derived(),
        }

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path


def machine_info() -> dict:
    import scipy

    info = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }
    try:
        import resource

        info["max_rss_kb"] = resource.getrusage(
            resource.RUSAGE_SELF
        ).ru_maxrss
    except ImportError:  # pragma: no cover - non-POSIX
        pass
    return info


def run_case(
    case: BenchCase, warmup: int = 1, repeat: int = 3
) -> CaseResult:
    """Time one case: ``warmup`` untimed calls, ``repeat`` timed ones.

    One extra call runs under :mod:`tracemalloc` for the peak-bytes
    column — separately, so the tracer's overhead never pollutes the
    wall-clock numbers.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    state = None if case.fresh_state else case.setup()

    def acquire_args() -> tuple:
        # fresh-state cases rebuild their inputs before every single
        # invocation (warmup, timed, and memory passes alike)
        return case.setup() if case.fresh_state else state

    for _ in range(warmup):
        case.fn(*acquire_args())
    seconds = []
    for _ in range(repeat):
        args = acquire_args()
        start = time.perf_counter()
        case.fn(*args)
        seconds.append(time.perf_counter() - start)
    args = acquire_args()
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        case.fn(*args)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not already_tracing:
            tracemalloc.stop()
    return CaseResult(name=case.name, seconds=seconds, peak_bytes=peak)


def default_suite(
    nodes: int = 2000,
    edges: int = 12000,
    queries: int = 64,
    num_terms: int = 10,
    k: int = 10,
    allpairs_nodes: int = 600,
    allpairs_edges: int = 3600,
    dtype: str = "float64",
    seed: int = 42,
) -> list[BenchCase]:
    """The repo's serving-hot-path cases over a seeded random digraph.

    The batch cases cover the acceptance regime: ``queries`` fresh
    query nodes on a ``nodes``/``edges`` graph, served by (a) the
    pre-blocking per-query series walk
    (:func:`repro.core.queries.single_source_reference` — the "before"
    side), (b) the blocked multi-source kernel, and (c) the full
    engine ``batch_top_k`` path including ranking. All-pairs kernels
    run on a smaller graph so a full suite stays interactive.

    The ``index_cold_*`` pair measures server cold start: loading a
    persisted ``memo-gSR*`` index (``Q``, ``Q^T``, compressed
    factors, coefficients) with ``mmap=True`` and serving a first
    query, versus rebuilding every artifact from the graph and
    serving the same query. The persisted file lives in a temp
    directory built lazily on first use and removed at exit; the
    ratio is gated as ``speedup_index_load_vs_rebuild``.
    """
    import atexit
    import shutil
    import tempfile
    from pathlib import Path

    from repro.core.multi_source import multi_source
    from repro.core.queries import single_source_reference
    from repro.core import (
        memo_simrank_star_factorized,
        simrank_star,
        simrank_star_exponential,
    )
    from repro.engine import (
        Ranking,
        SimilarityConfig,
        SimilarityEngine,
    )
    from repro.graph import random_digraph
    from repro.graph.matrices import backward_transition_matrix
    from repro.index import SimilarityIndex

    rng = np.random.default_rng(seed)
    graph = random_digraph(nodes, edges, seed=seed)
    small = random_digraph(allpairs_nodes, allpairs_edges, seed=seed + 1)
    query_ids = rng.choice(nodes, size=queries, replace=False)
    query_list = [int(q) for q in query_ids]
    transition = backward_transition_matrix(graph, dtype=dtype)
    transition_t = transition.T.tocsr()

    def loop_batch(g, qs, q_mat, qt_mat):
        rankings = []
        for node in qs:
            scores = single_source_reference(
                g, node, 0.6, num_terms,
                transition=q_mat, transition_t=qt_mat,
            )
            rankings.append(
                Ranking.from_scores(scores, query=node, k=k)
            )
        return rankings

    def blocked_batch(g, qs, q_mat, qt_mat):
        block = multi_source(
            g, qs, 0.6, num_terms,
            transition=q_mat, transition_t=qt_mat, dtype=dtype,
        )
        return [
            Ranking.from_scores(block[:, j], query=node, k=k)
            for j, node in enumerate(qs)
        ]

    def fresh_engine() -> tuple:
        engine = SimilarityEngine(
            graph, measure="gSR*", c=0.6,
            num_iterations=num_terms, dtype=dtype,
        )
        engine.transition_t  # warm Q/Q^T: both sides start warm
        return (engine,)

    # -- index cold-start pair ------------------------------------------
    cold_config = SimilarityConfig(
        measure="memo-gSR*", c=0.6,
        num_iterations=num_terms, dtype=dtype,
    )
    index_dir: list[Path] = []  # created lazily, removed at exit

    def index_path() -> Path:
        if not index_dir:
            index_dir.append(
                Path(tempfile.mkdtemp(prefix="repro-bench-index-"))
            )
            atexit.register(
                shutil.rmtree, index_dir[0], ignore_errors=True
            )
        path = index_dir[0] / "bench.simidx"
        if not path.exists():
            SimilarityIndex.build(graph, cold_config).save(path)
        return path

    def cold_load(path: Path, probe: int):
        index = SimilarityIndex.load(path, mmap=True)
        engine = SimilarityEngine.from_index(index, graph, cold_config)
        return engine.single_source(probe)

    def cold_rebuild(fresh_graph, probe: int):
        index = SimilarityIndex.build(fresh_graph, cold_config)
        engine = SimilarityEngine.from_index(
            index, fresh_graph, cold_config
        )
        return engine.single_source(probe)

    scores_vector = rng.random(nodes)

    return [
        BenchCase(
            "build_transition",
            lambda: (graph,),
            lambda g: backward_transition_matrix(g, dtype=dtype),
        ),
        BenchCase(
            "single_source_reference",
            lambda: (graph, query_list[0], transition, transition_t),
            lambda g, q, qm, qtm: single_source_reference(
                g, q, 0.6, num_terms, transition=qm, transition_t=qtm
            ),
        ),
        BenchCase(
            "single_source_blocked",
            lambda: (graph, query_list[0], transition, transition_t),
            lambda g, q, qm, qtm: multi_source(
                g, (q,), 0.6, num_terms,
                transition=qm, transition_t=qtm, dtype=dtype,
            ),
        ),
        BenchCase(
            "batch_per_query_loop",
            lambda: (graph, query_list, transition, transition_t),
            loop_batch,
        ),
        BenchCase(
            "batch_blocked_kernel",
            lambda: (graph, query_list, transition, transition_t),
            blocked_batch,
        ),
        BenchCase(
            "engine_batch_top_k",
            fresh_engine,
            lambda engine: engine.batch_top_k(query_list, k=k),
            fresh_state=True,
        ),
        BenchCase(
            "ranking_top_k",
            lambda: (scores_vector,),
            lambda scores: Ranking.from_scores(scores, query=0, k=k),
        ),
        BenchCase(
            "index_cold_load",
            lambda: (index_path(), query_list[0]),
            cold_load,
            fresh_state=True,
        ),
        BenchCase(
            "index_cold_rebuild",
            # graph.copy() leaves the edge-array cache cold, like a
            # process that just reloaded its graph
            lambda: (graph.copy(), query_list[0]),
            cold_rebuild,
            fresh_state=True,
        ),
        BenchCase(
            "allpairs_iter_gsr",
            lambda: (small,),
            lambda g: simrank_star(g, 0.6, num_terms, dtype=dtype),
        ),
        BenchCase(
            "allpairs_exp_esr",
            lambda: (small,),
            lambda g: simrank_star_exponential(
                g, 0.6, num_terms, dtype=dtype
            ),
        ),
        BenchCase(
            "allpairs_memo_gsr",
            lambda: (small,),
            lambda g: memo_simrank_star_factorized(
                g, 0.6, num_terms, dtype=dtype
            ),
        ),
    ]


def run_suite(
    cases: list[BenchCase],
    tag: str,
    params: dict,
    warmup: int = 1,
    repeat: int = 3,
    progress: Callable[[str], None] | None = None,
) -> BenchRun:
    """Run every case and assemble a :class:`BenchRun`."""
    run = BenchRun(tag=tag, params=params, machine=machine_info())
    for case in cases:
        if progress is not None:
            progress(case.name)
        run.results[case.name] = run_case(
            case, warmup=warmup, repeat=repeat
        )
    return run


def compare_runs(
    current: dict,
    baseline: dict,
    threshold: float = 3.0,
    speedup_floor: float = 2.0,
    min_gate_seconds: float = 1e-3,
) -> tuple[bool, list[str]]:
    """Gate ``current`` (dict form) against a ``baseline`` document.

    Returns ``(ok, report_lines)``. Failures: a baseline case missing
    from the current run, a case slower than ``threshold x`` its
    baseline best time, or a gated derived speedup below
    ``speedup_floor``. Cases whose baseline best time is under
    ``min_gate_seconds`` are reported but never fail the absolute
    gate — at microsecond scale, scheduler jitter alone dwarfs any
    real regression, and the relative speedup floors still cover the
    hot paths. Worker-scaling speedups
    (``speedup_workers_<b>_vs_<a>``) are additionally gated only when
    the current run's machine has at least ``b`` CPUs — a 1-core
    machine cannot exhibit 4-worker parallelism, and pretending its
    ratio is a regression would make the gate machine-*dependent*.
    """
    ok = True
    lines: list[str] = []
    base_results = baseline.get("results", {})
    cur_results = current.get("results", {})
    for name, base in sorted(base_results.items()):
        cur = cur_results.get(name)
        if cur is None:
            ok = False
            lines.append(f"FAIL {name}: missing from current run")
            continue
        base_t, cur_t = base["seconds_min"], cur["seconds_min"]
        ratio = cur_t / base_t if base_t > 0 else float("inf")
        gated = base_t >= min_gate_seconds
        status = "ok"
        if gated and ratio > threshold:
            ok = False
            status = "FAIL"
        note = "" if gated else ", not gated: sub-ms baseline"
        lines.append(
            f"{status} {name}: {cur_t * 1e3:.2f} ms vs baseline "
            f"{base_t * 1e3:.2f} ms ({ratio:.2f}x, limit "
            f"{threshold:.1f}x{note})"
        )
    cpu_count = current.get("machine", {}).get("cpu_count") or 0
    for key, value in sorted(current.get("derived", {}).items()):
        gated = key in GATED_SPEEDUPS
        floor_note = f" (floor {speedup_floor:.1f}x)" if gated else ""
        workers = _WORKER_SPEEDUP.match(key)
        if gated and workers and cpu_count < int(workers.group(1)):
            gated = False
            floor_note = (
                f" (not gated: needs >= {workers.group(1)} CPUs, "
                f"machine has {cpu_count})"
            )
        status = "ok"
        if gated and value < speedup_floor:
            ok = False
            status = "FAIL"
        lines.append(f"{status} {key}: {value:.2f}x{floor_note}")
    return ok, lines
