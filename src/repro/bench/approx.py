"""Exact-vs-approx comparison for the Monte-Carlo walk-index tier.

Where :mod:`repro.bench.runner` times the exact kernels against each
other, this module measures what the approx tier buys *at scale*: it
generates seeded scale-free graphs
(:func:`repro.datasets.scale_free_graph`) at each requested node
count, serves the same top-k queries through an exact engine and a
``mode="approx"`` engine, and records per-query latency, peak
allocation, walk-index build time and size, and precision@k of the
approximate ranking against the exact one.

``python -m repro.bench --approx`` embeds this document under the
``"approx"`` key of ``BENCH_<tag>.json`` and copies its
``speedup_approx_vs_exact`` ratio (measured at the largest scale)
into the gated derived speedups — the acceptance regime is a 10x+
per-query speedup at 10^5 nodes with precision@10 >= 0.9.
"""

from __future__ import annotations

import resource
import time

import numpy as np

from repro.bench.memory import measure_peak_memory

__all__ = ["run_approx_compare"]


def _time_topk(engine, queries, k: int) -> tuple[float, int]:
    """Mean seconds/query and peak bytes of ``top_k`` over ``queries``.

    Timing and peak-allocation are measured in separate passes (the
    first queries are fresh, the tracemalloc pass repeats one) so the
    tracing overhead never distorts the latency numbers.
    """
    start = time.perf_counter()
    for query in queries:
        engine.top_k(query, k=k)
    seconds = (time.perf_counter() - start) / len(queries)
    _, peak = measure_peak_memory(engine.top_k, queries[0], k=k)
    return seconds, int(peak)


def run_approx_compare(
    node_counts=(10_000, 100_000),
    avg_out_degree: float = 16.0,
    queries: int = 12,
    k: int = 10,
    epsilon: float | None = None,
    num_terms: int = 10,
    dtype: str = "float64",
    seed: int = 42,
    precision_floor: float = 0.9,
    speedup_floor: float | None = None,
    progress=None,
) -> dict:
    """Benchmark approx against exact top-k across graph scales.

    For each node count a scale-free graph is generated, an exact and
    an approx engine are warmed on it, and ``queries`` hub-skewed
    query nodes are answered by both. The returned document carries a
    per-scale table plus the derived ``speedup_approx_vs_exact``
    (largest scale) and the ``precision_at_k`` gate outcome;
    ``checks`` is the pass/fail map ``python -m repro.bench --approx``
    turns into its exit code.

    Parameters
    ----------
    node_counts:
        Graph sizes, ascending; the speedup is taken at the last one.
    avg_out_degree:
        Edge density of the generated graphs. Defaults to 16 — the
        density of real web/social corpora (LiveJournal averages ~17
        links per node) and the regime the approx tier targets: exact
        per-query cost grows with ``edges * num_terms`` while the
        sampled walk reads do not.
    epsilon:
        Approx accuracy knob (``None`` = the tier's default 0.05).
    precision_floor:
        Required mean precision@k at every scale.
    speedup_floor:
        Optional required speedup at the largest scale (``None``
        skips that check — small quick-mode graphs cannot express
        the asymptotic ratio).
    """
    from repro.datasets import scale_free_graph
    from repro.engine.config import SimilarityConfig
    from repro.engine.engine import SimilarityEngine

    exact_config = SimilarityConfig(
        measure="gSR*", num_iterations=num_terms, dtype=dtype
    )
    approx_config = exact_config.replace(
        mode="approx", epsilon=epsilon, seed=seed
    )
    rng = np.random.default_rng(seed)
    scales: dict[str, dict] = {}
    for nodes in node_counts:
        if progress is not None:
            progress(f"approx_compare n={nodes}")
        graph = scale_free_graph(
            int(nodes), avg_out_degree=avg_out_degree, seed=seed
        )
        # hub-skewed queries: half from the high in-degree head (the
        # traffic magnets), half uniform
        in_degrees = graph.in_degrees()
        head = np.argsort(in_degrees)[::-1][: max(2 * queries, 64)]
        count = min(queries, graph.num_nodes)
        picks = [
            int(q) for q in rng.choice(head, size=count // 2, replace=False)
        ] + [
            int(q)
            for q in rng.choice(
                graph.num_nodes, size=count - count // 2, replace=False
            )
        ]
        exact = SimilarityEngine(graph, exact_config)
        exact.transition_t  # warm shared artifacts off the clock
        exact_seconds, exact_peak = _time_topk(exact, picks, k)

        approx = SimilarityEngine(graph, approx_config)
        approx.transition_t
        walk_start = time.perf_counter()
        walks = approx.walk_index
        walk_build_seconds = time.perf_counter() - walk_start
        approx_seconds, approx_peak = _time_topk(approx, picks, k)

        hits = 0
        for query in picks:
            exact_top = set(exact.top_k(query, k=k).nodes)
            approx_top = set(approx.top_k(query, k=k).nodes)
            hits += len(exact_top & approx_top)
        precision = hits / (len(picks) * k)
        status = approx.approx_status() or {}
        scales[str(int(nodes))] = {
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "exact": {
                "seconds_per_query": exact_seconds,
                "peak_bytes": exact_peak,
            },
            "approx": {
                "seconds_per_query": approx_seconds,
                "peak_bytes": approx_peak,
                "walk_build_seconds": walk_build_seconds,
                "walk_index_bytes": int(walks.nbytes),
                "walk_length": walks.walk_length,
                "samples_per_node": walks.samples,
                "estimator": status.get("estimator"),
            },
            "precision_at_k": precision,
            "speedup": exact_seconds / approx_seconds,
        }
    largest = scales[str(int(max(node_counts)))]
    precisions = [s["precision_at_k"] for s in scales.values()]
    checks = {
        "precision_at_k": min(precisions) >= precision_floor,
    }
    if speedup_floor is not None:
        checks["speedup_at_largest_scale"] = (
            largest["speedup"] >= speedup_floor
        )
    return {
        "epsilon": epsilon,
        "k": k,
        "queries": queries,
        "num_terms": num_terms,
        "dtype": dtype,
        "seed": seed,
        "avg_out_degree": avg_out_degree,
        "scales": scales,
        "rss_bytes": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        * 1024,
        "precision_floor": precision_floor,
        "precision_at_k_min": min(precisions),
        "speedup_floor": speedup_floor,
        "speedup_key": "speedup_approx_vs_exact",
        "speedup_approx_vs_exact": largest["speedup"],
        "checks": checks,
    }
