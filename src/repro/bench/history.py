"""Trend table over the committed ``BENCH_*.json`` artifacts.

Every PR that moves performance commits its ``BENCH_<tag>.json``
document; this module lines those artifacts up **in commit order**
(the order their current content entered git history, falling back to
file mtime for uncommitted runs) and renders one row per metric —
case timings in milliseconds and derived speedup ratios — so a
regression that crept in over several PRs is visible as a trend, not
just as one compare-vs-baseline delta.

``python -m repro.bench --history`` prints the table and exits;
nothing is timed and nothing is written.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

__all__ = ["collect_history", "render_history"]


def _commit_timestamp(path: Path) -> float:
    """When ``path``'s current content entered history.

    Uses the author time of the newest commit touching the file, so a
    re-recorded baseline sorts by its re-record, not its first
    appearance. Uncommitted (or non-git) files fall back to mtime —
    which naturally sorts a fresh local run after the committed ones.
    """
    try:
        out = subprocess.run(
            ["git", "log", "-1", "--format=%at", "--", path.name],
            cwd=path.parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return path.stat().st_mtime
    stamp = out.stdout.strip()
    if out.returncode != 0 or not stamp:
        return path.stat().st_mtime
    return float(stamp)


def collect_history(
    directory: str | Path = ".", pattern: str = "BENCH_*.json"
) -> list[dict]:
    """Parsed bench documents under ``directory``, commit-ordered.

    Each entry is ``{"path", "tag", "timestamp", "document"}``;
    unreadable or non-bench JSON files are skipped silently (the
    directory may hold other reports).
    """
    entries = []
    for path in sorted(Path(directory).glob(pattern)):
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(document, dict) or "results" not in document:
            continue
        entries.append(
            {
                "path": path,
                "tag": str(document.get("tag", path.stem)),
                "timestamp": _commit_timestamp(path),
                "document": document,
            }
        )
    entries.sort(key=lambda e: (e["timestamp"], e["path"].name))
    return entries


def _metric_rows(entries: list[dict]) -> list[tuple[str, list[str]]]:
    """(metric label, one cell per run) rows for the table body."""
    case_names: list[str] = []
    derived_names: list[str] = []
    for entry in entries:
        document = entry["document"]
        for name in document.get("results", {}):
            if name not in case_names:
                case_names.append(name)
        for name in document.get("derived", {}):
            if name not in derived_names:
                derived_names.append(name)
    rows = []
    for name in case_names:
        cells = []
        for entry in entries:
            result = entry["document"]["results"].get(name)
            cells.append(
                f"{result['seconds_min'] * 1e3:.2f}"
                if result is not None else "-"
            )
        rows.append((f"{name} (ms)", cells))
    for name in derived_names:
        cells = []
        for entry in entries:
            value = entry["document"].get("derived", {}).get(name)
            cells.append(
                f"{value:.2f}" if value is not None else "-"
            )
        rows.append((f"{name} (x)", cells))
    return rows


def render_history(entries: list[dict]) -> str:
    """The trend table as a printable string.

    One column per run (headed by its tag), one row per metric.
    Timings are each case's ``seconds_min`` in milliseconds; derived
    speedups are plain ratios. ``-`` marks a metric a run did not
    record — suites grow over PRs, so early columns are sparse.
    """
    if not entries:
        return "no BENCH_*.json artifacts found"
    rows = _metric_rows(entries)
    label_width = max(
        [len(label) for label, _ in rows] + [len("metric")]
    )
    col_widths = [
        max(
            len(entry["tag"]),
            max((len(cells[i]) for _, cells in rows), default=0),
        )
        for i, entry in enumerate(entries)
    ]
    header = "metric".ljust(label_width) + "".join(
        f"  {entry['tag']:>{col_widths[i]}}"
        for i, entry in enumerate(entries)
    )
    lines = [
        f"== bench history ({len(entries)} runs, commit order) ==",
        header,
        "-" * len(header),
    ]
    for label, cells in rows:
        lines.append(
            label.ljust(label_width)
            + "".join(
                f"  {cell:>{col_widths[i]}}"
                for i, cell in enumerate(cells)
            )
        )
    return "\n".join(lines)
