"""Change-point detection over the committed ``BENCH_*.json`` series.

The trend table (:mod:`repro.bench.history`) shows the numbers; this
module decides which movements are *statistically real*. Every metric
the bench artifacts record — per-case ``seconds_min`` timings and the
derived speedup ratios — is treated as a short time series in commit
order and scanned with an E-Divisive-style detector:

* the candidate split of a segment is the one maximising the sample
  energy-divergence statistic ``Q(k) = mn/(m+n) * (2*A - B - C)``
  (``A`` the mean cross-segment distance, ``B``/``C`` the mean
  within-segment distances);
* significance comes from a seeded permutation test — shuffle the
  segment, re-find the best split, and count how often chance beats
  the observed statistic;
* significant splits recurse into both halves, so a series can carry
  several change-points.

A change-point is a *finding*; a finding whose direction is bad for
its metric (timings up, speedups down) is a **regression** unless the
committed allowlist ``BENCH_expected_changes.json`` explains it (an
optimisation PR legitimately moves the series — record it once, with
a reason, and the gate stays green). ``python -m repro.bench
--history --detect`` prints every finding and exits non-zero only on
unexplained regressions, which makes it a CI step.

The detector is deliberately conservative for CI: besides the
permutation p-value, a finding must move the segment means by at
least ``min_shift`` (default 10%) — bench numbers travel between
machines, and a statistically-detectable 3% wobble is not actionable.

>>> from repro.bench.signal import e_divisive
>>> points = e_divisive(
...     [10.0, 10.1, 9.9, 10.0, 20.2, 19.8, 20.1, 20.0], seed=7)
>>> [p["index"] for p in points]
[4]
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

__all__ = [
    "collect_series",
    "detect_changes",
    "e_divisive",
    "load_expected_changes",
    "render_findings",
    "run_detection",
]

#: Change-points this relative mean shift or smaller are suppressed:
#: statistically real but operationally noise when baselines travel
#: between machines.
DEFAULT_MIN_SHIFT = 0.10


def _divergence(dist: np.ndarray, start: int, split: int, end: int) -> float:
    """The energy-divergence statistic for splitting at ``split``.

    ``dist`` is the full pairwise |x_i - x_j| matrix; the segment is
    ``[start, end)`` and the candidate left half ``[start, split)``.
    """
    m = split - start
    n = end - split
    cross = dist[start:split, split:end].mean()
    within_x = (
        dist[start:split, start:split].sum() / (m * (m - 1))
        if m > 1 else 0.0
    )
    within_y = (
        dist[split:end, split:end].sum() / (n * (n - 1))
        if n > 1 else 0.0
    )
    return (m * n / (m + n)) * (2.0 * cross - within_x - within_y)


def _best_split(
    dist: np.ndarray, start: int, end: int, min_size: int
) -> tuple[int, float]:
    """(argmax split, max statistic) over admissible splits, or (-1, 0)."""
    best_k, best_q = -1, 0.0
    for k in range(start + min_size, end - min_size + 1):
        q = _divergence(dist, start, k, end)
        if q > best_q:
            best_k, best_q = k, q
    return best_k, best_q


def e_divisive(
    values,
    *,
    min_size: int = 2,
    permutations: int = 199,
    alpha: float = 0.05,
    seed: int = 0,
) -> list[dict]:
    """Significant change-points of a 1-D series, in index order.

    Hierarchical E-Divisive: find the best split of the whole series,
    test it with a seeded permutation test, and recurse into both
    halves while splits stay significant. Each returned entry is
    ``{"index", "statistic", "p_value"}`` where ``index`` is the first
    position of the *new* regime. Series shorter than ``2 * min_size``
    have nowhere to split and return ``[]``.
    """
    x = np.asarray(list(values), dtype=float)
    if x.size < 2 * min_size:
        return []
    dist = np.abs(x[:, None] - x[None, :])
    rng = np.random.default_rng(seed)
    found: list[dict] = []
    segments = [(0, int(x.size))]
    while segments:
        start, end = segments.pop()
        if end - start < 2 * min_size:
            continue
        split, observed = _best_split(dist, start, end, min_size)
        if split < 0 or observed <= 0.0:
            continue
        # permutation test: does chance order beat the observed split?
        exceed = 0
        segment = x[start:end]
        for _ in range(permutations):
            shuffled = rng.permutation(segment)
            d = np.abs(shuffled[:, None] - shuffled[None, :])
            _, q = _best_split(d, 0, int(shuffled.size), min_size)
            if q >= observed:
                exceed += 1
        p_value = (1 + exceed) / (1 + permutations)
        if p_value > alpha:
            continue
        found.append(
            {
                "index": split,
                "statistic": float(observed),
                "p_value": float(p_value),
            }
        )
        segments.append((start, split))
        segments.append((split, end))
    found.sort(key=lambda f: f["index"])
    return found


def collect_series(entries: list[dict]) -> list[dict]:
    """Metric series extracted from :func:`collect_history` entries.

    One series per bench metric: ``kind="case"`` timings (each case's
    ``seconds_min`` in ms, lower is better) and ``kind="derived"``
    speedup ratios (higher is better). Runs that did not record a
    metric are skipped for that series — suites grow over PRs — so
    ``tags`` and ``values`` stay aligned and gap-free.
    """
    case_names: list[str] = []
    derived_names: list[str] = []
    for entry in entries:
        document = entry["document"]
        for name in document.get("results", {}):
            if name not in case_names:
                case_names.append(name)
        for name in document.get("derived", {}):
            if name not in derived_names:
                derived_names.append(name)
    series = []
    for name in case_names:
        tags, values = [], []
        for entry in entries:
            result = entry["document"].get("results", {}).get(name)
            if result is None:
                continue
            tags.append(entry["tag"])
            values.append(float(result["seconds_min"]) * 1e3)
        series.append(
            {
                "metric": name,
                "kind": "case",
                "unit": "ms",
                "orientation": "lower_better",
                "tags": tags,
                "values": values,
            }
        )
    for name in derived_names:
        tags, values = [], []
        for entry in entries:
            value = entry["document"].get("derived", {}).get(name)
            if value is None:
                continue
            tags.append(entry["tag"])
            values.append(float(value))
        series.append(
            {
                "metric": name,
                "kind": "derived",
                "unit": "x",
                "orientation": "higher_better",
                "tags": tags,
                "values": values,
            }
        )
    return series


def detect_changes(
    entries: list[dict],
    *,
    min_size: int = 2,
    permutations: int = 199,
    alpha: float = 0.05,
    min_shift: float = DEFAULT_MIN_SHIFT,
    seed: int = 0,
) -> list[dict]:
    """Change-point findings across every metric series.

    Each finding carries the metric, the tag of the first run in the
    new regime, the segment means either side of the split, their
    ratio, and a ``direction`` — ``"regression"`` when the move is bad
    for the metric's orientation, ``"improvement"`` otherwise. Shifts
    smaller than ``min_shift`` (relative) are dropped as noise.
    """
    findings = []
    for series in collect_series(entries):
        values = series["values"]
        points = e_divisive(
            values,
            min_size=min_size,
            permutations=permutations,
            alpha=alpha,
            seed=seed,
        )
        bounds = [0] + [p["index"] for p in points] + [len(values)]
        for i, point in enumerate(points):
            k = point["index"]
            before = float(np.mean(values[bounds[i]:k]))
            after = float(np.mean(values[k:bounds[i + 2]]))
            if before <= 0.0:
                continue
            ratio = after / before
            if max(ratio, 1.0 / ratio) - 1.0 < min_shift:
                continue
            worse = (
                ratio > 1.0
                if series["orientation"] == "lower_better"
                else ratio < 1.0
            )
            findings.append(
                {
                    "metric": series["metric"],
                    "kind": series["kind"],
                    "unit": series["unit"],
                    "tag": series["tags"][k],
                    "index": k,
                    "before_mean": before,
                    "after_mean": after,
                    "ratio": ratio,
                    "direction": (
                        "regression" if worse else "improvement"
                    ),
                    "statistic": point["statistic"],
                    "p_value": point["p_value"],
                }
            )
    return findings


def load_expected_changes(path: str | Path) -> list[dict]:
    """The committed allowlist of intentional series shifts.

    The file is ``{"expected": [{"metric", "tag", "reason"}, ...]}``;
    a missing file is an empty allowlist (fresh repos have no history
    to explain). Malformed entries are ignored rather than crashing
    the gate.
    """
    path = Path(path)
    if not path.exists():
        return []
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return []
    expected = document.get("expected", [])
    return [
        entry
        for entry in expected
        if isinstance(entry, dict) and "metric" in entry and "tag" in entry
    ]


def _explained_by(finding: dict, expected: list[dict]) -> dict | None:
    for entry in expected:
        if (
            entry["metric"] == finding["metric"]
            and entry["tag"] == finding["tag"]
        ):
            return entry
    return None


def render_findings(findings: list[dict]) -> str:
    """A printable report of annotated findings (see run_detection)."""
    if not findings:
        return "no change-points detected"
    lines = [f"== change-points ({len(findings)}) =="]
    for f in findings:
        mark = {
            ("regression", True): "ok  expected regression",
            ("regression", False): "FAIL regression",
            ("improvement", True): "ok  expected improvement",
            ("improvement", False): "ok  improvement",
        }[(f["direction"], bool(f.get("expected")))]
        lines.append(
            f"  {mark:<24} {f['metric']} at {f['tag']}: "
            f"{f['before_mean']:.2f} -> {f['after_mean']:.2f} "
            f"{f['unit']} ({f['ratio']:.2f}x, p={f['p_value']:.3f})"
        )
        if f.get("reason"):
            lines.append(f"      reason: {f['reason']}")
    return "\n".join(lines)


def run_detection(
    entries: list[dict],
    *,
    expected_path: str | Path = "BENCH_expected_changes.json",
    min_size: int = 2,
    permutations: int = 199,
    alpha: float = 0.05,
    min_shift: float = DEFAULT_MIN_SHIFT,
    seed: int = 0,
) -> tuple[bool, list[dict]]:
    """Detect, annotate against the allowlist, and gate.

    Returns ``(ok, findings)`` where each finding gains ``expected``
    (bool) and, when explained, the allowlist ``reason``. ``ok`` is
    False exactly when an unexplained **regression** exists —
    improvements and allowlisted shifts never fail the gate.
    """
    findings = detect_changes(
        entries,
        min_size=min_size,
        permutations=permutations,
        alpha=alpha,
        min_shift=min_shift,
        seed=seed,
    )
    expected = load_expected_changes(expected_path)
    ok = True
    for finding in findings:
        entry = _explained_by(finding, expected)
        finding["expected"] = entry is not None
        if entry is not None and entry.get("reason"):
            finding["reason"] = entry["reason"]
        if finding["direction"] == "regression" and entry is None:
            ok = False
    return ok, findings
