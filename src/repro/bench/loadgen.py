"""Load generation for the serving subsystem, with latency histograms.

Where :mod:`repro.bench.runner` times *kernels*, this module measures
the *service*: it stands up an in-process
:class:`~repro.serve.ServingService`, fires ``clients`` concurrent
request streams at it, and records per-request latency percentiles
(p50/p95/p99), a log-bucketed latency histogram, throughput, and the
broker's coalescing evidence. A sequential baseline — the same request
sequence served one at a time by the per-request ``single_source``
path, sharing the same precomputed ``Q`` / ``Q^T`` — anchors the
derived ``speedup_throughput`` ratio, which is machine-independent in
the same way the runner's batching speedups are.

``python -m repro.bench --serve`` embeds this document under the
``"serving"`` key of ``BENCH_<tag>.json``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "LATENCY_BUCKETS_MS",
    "LatencyStats",
    "run_serving_load",
]

#: Upper edges (ms) of the latency histogram's log-spaced buckets; the
#: final implicit bucket is "slower than the last edge".
LATENCY_BUCKETS_MS = (
    0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
    128.0, 256.0, 512.0, 1024.0,
)


@dataclass(frozen=True)
class LatencyStats:
    """Percentiles and a log-bucketed histogram of request latencies."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float
    histogram: dict

    @classmethod
    def from_seconds(cls, seconds: Sequence[float]) -> "LatencyStats":
        if not len(seconds):
            raise ValueError("no latency samples")
        ms = np.asarray(seconds, dtype=np.float64) * 1e3
        edges = np.asarray(LATENCY_BUCKETS_MS)
        counts = np.histogram(
            ms, bins=np.concatenate(([0.0], edges, [np.inf]))
        )[0]
        # numpy bins are half-open [a, b): label them accordingly
        histogram = {
            f"<{edge:g}ms": int(counts[i])
            for i, edge in enumerate(edges)
        }
        histogram[f">={edges[-1]:g}ms"] = int(counts[-1])
        return cls(
            count=int(ms.size),
            mean_ms=float(ms.mean()),
            p50_ms=float(np.percentile(ms, 50)),
            p95_ms=float(np.percentile(ms, 95)),
            p99_ms=float(np.percentile(ms, 99)),
            max_ms=float(ms.max()),
            histogram=histogram,
        )

    def to_dict(self) -> dict:
        return dict(self.__dict__)


def _request_stream(
    num_nodes: int,
    clients: int,
    requests_per_client: int,
    seed: int,
) -> tuple[list[list[int]], list[int]]:
    """Distinct-leaning query assignments, one list per client.

    Queries are drawn without replacement while the pool lasts (the
    worst case for any cache, the pure test of coalescing), recycling
    only when the workload exceeds the node count.
    """
    rng = np.random.default_rng(seed)
    total = clients * requests_per_client
    pool = rng.permutation(num_nodes)
    picks = [int(pool[i % num_nodes]) for i in range(total)]
    streams = [
        picks[i * requests_per_client:(i + 1) * requests_per_client]
        for i in range(clients)
    ]
    # untimed warmup queries, disjoint from the timed workload when
    # the graph is big enough (so warmup never pre-fills its columns)
    warmup = [
        int(pool[(total + i) % num_nodes]) for i in range(clients)
    ]
    return streams, warmup


def run_serving_load(
    nodes: int = 2000,
    edges: int = 12000,
    *,
    clients: int = 32,
    requests_per_client: int = 4,
    k: int = 10,
    num_terms: int = 10,
    measure: str = "gSR*",
    c: float = 0.6,
    dtype: str = "float64",
    max_batch: int = 32,
    max_wait_ms: float = 2.0,
    cache_entries: int = 0,
    seed: int = 42,
) -> dict:
    """Measure coalesced serving against the sequential baseline.

    Builds a seeded random digraph, then times two servings of the
    identical request sequence (``clients x requests_per_client``
    top-k queries over distinct-leaning query nodes):

    * **sequential baseline** — one ``single_source`` walk plus
      ranking per request, back to back, with ``Q`` / ``Q^T`` prebuilt
      (the strongest per-request serving loop available before the
      broker existed);
    * **coalesced service** — ``clients`` concurrent async streams
      submitting to a :class:`~repro.serve.ServingService`, whose
      broker batches them into blocked multi-source calls.

    The result cache is disabled by default (``cache_entries=0``) so
    the measured speedup isolates coalescing rather than memoization.
    Returns a JSON-ready document with both sides' throughput and
    latency statistics, the broker stats, and the derived
    ``speedup_throughput``.
    """
    from repro.core.queries import single_source
    from repro.engine.results import Ranking
    from repro.graph.generators import random_digraph
    from repro.graph.matrices import backward_transition_matrix
    from repro.serve.service import ServingService

    graph = random_digraph(nodes, edges, seed=seed)
    streams, warm_queries = _request_stream(
        graph.num_nodes, clients, requests_per_client, seed
    )
    flat_requests = [q for stream in streams for q in stream]

    # --- sequential baseline: per-request single_source + ranking ---
    transition = backward_transition_matrix(graph, dtype=dtype)
    transition_t = transition.T.tocsr()
    for q in warm_queries[:4]:  # untimed: BLAS / cache warmup
        single_source(
            graph, q, c, num_terms,
            transition=transition, transition_t=transition_t,
            dtype=dtype,
        )
    base_latencies: list[float] = []
    base_start = time.perf_counter()
    for q in flat_requests:
        t0 = time.perf_counter()
        scores = single_source(
            graph, q, c, num_terms,
            transition=transition, transition_t=transition_t,
            dtype=dtype,
        )
        Ranking.from_scores(scores, query=q, k=k)
        base_latencies.append(time.perf_counter() - t0)
    base_wall = time.perf_counter() - base_start

    # --- coalesced service: concurrent clients through the broker ---
    service = ServingService(
        graph,
        measure=measure,
        c=c,
        num_iterations=num_terms,
        dtype=dtype,
        max_batch=max_batch,
        max_wait_ms=max_wait_ms,
        cache_entries=cache_entries,
    )
    service.warmup()  # both sides start with Q / Q^T prebuilt
    latencies: list[float] = []

    async def client(stream: list[int]) -> list[float]:
        lat = []
        for q in stream:
            t0 = time.perf_counter()
            await service.top_k(q, k=k)
            lat.append(time.perf_counter() - t0)
        return lat

    async def drive() -> float:
        async with service:
            # untimed warmup round over disjoint queries: spins the
            # executor threads and the broker path once, so the timed
            # window measures steady-state serving
            await asyncio.gather(
                *(service.top_k(q, k=k) for q in warm_queries)
            )
            t0 = time.perf_counter()
            per_client = await asyncio.gather(
                *(client(stream) for stream in streams)
            )
            wall = time.perf_counter() - t0
        for lat in per_client:
            latencies.extend(lat)
        return wall

    serve_wall = asyncio.run(drive())

    total = len(flat_requests)
    base_rps = total / base_wall if base_wall > 0 else float("inf")
    serve_rps = total / serve_wall if serve_wall > 0 else float("inf")
    return {
        "params": {
            "nodes": nodes,
            "edges": edges,
            "clients": clients,
            "requests_per_client": requests_per_client,
            "total_requests": total,
            "k": k,
            "num_terms": num_terms,
            "measure": measure,
            "c": c,
            "dtype": dtype,
            "max_batch": max_batch,
            "max_wait_ms": max_wait_ms,
            "cache_entries": cache_entries,
            "seed": seed,
        },
        "sequential": {
            "wall_seconds": base_wall,
            "requests_per_second": base_rps,
            "latency": LatencyStats.from_seconds(
                base_latencies
            ).to_dict(),
        },
        "coalesced": {
            "wall_seconds": serve_wall,
            "requests_per_second": serve_rps,
            "latency": LatencyStats.from_seconds(latencies).to_dict(),
        },
        "speedup_throughput": (
            serve_rps / base_rps if base_rps > 0 else float("inf")
        ),
        "broker": service.broker.stats.snapshot(),
    }
