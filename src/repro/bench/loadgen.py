"""Load generation for the serving subsystem, with latency histograms.

Where :mod:`repro.bench.runner` times *kernels*, this module measures
the *service*: it stands up an in-process
:class:`~repro.serve.ServingService`, fires ``clients`` concurrent
request streams at it, and records per-request latency percentiles
(p50/p95/p99), a log-bucketed latency histogram, throughput, and the
broker's coalescing evidence. A sequential baseline — the same request
sequence served one at a time by the per-request ``single_source``
path, sharing the same precomputed ``Q`` / ``Q^T`` — anchors the
derived ``speedup_throughput`` ratio, which is machine-independent in
the same way the runner's batching speedups are.

``python -m repro.bench --serve`` embeds this document under the
``"serving"`` key of ``BENCH_<tag>.json``; ``--telemetry`` runs
:func:`run_telemetry_overhead` — the same coalesced workload served
with the observability stack enabled and disabled — and gates the
relative p50 cost of metrics + tracing (under the ``"telemetry"``
key).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "LATENCY_BUCKETS_MS",
    "LatencyStats",
    "run_cluster_scaling",
    "run_serving_load",
    "run_telemetry_overhead",
    "run_transport_compare",
]

#: Upper edges (ms) of the latency histogram's log-spaced buckets; the
#: final implicit bucket is "slower than the last edge".
LATENCY_BUCKETS_MS = (
    0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
    128.0, 256.0, 512.0, 1024.0,
)


@dataclass(frozen=True)
class LatencyStats:
    """Percentiles and a log-bucketed histogram of request latencies."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float
    histogram: dict

    @classmethod
    def from_seconds(cls, seconds: Sequence[float]) -> "LatencyStats":
        if not len(seconds):
            raise ValueError("no latency samples")
        ms = np.asarray(seconds, dtype=np.float64) * 1e3
        edges = np.asarray(LATENCY_BUCKETS_MS)
        counts = np.histogram(
            ms, bins=np.concatenate(([0.0], edges, [np.inf]))
        )[0]
        # numpy bins are half-open [a, b): label them accordingly
        histogram = {
            f"<{edge:g}ms": int(counts[i])
            for i, edge in enumerate(edges)
        }
        histogram[f">={edges[-1]:g}ms"] = int(counts[-1])
        return cls(
            count=int(ms.size),
            mean_ms=float(ms.mean()),
            p50_ms=float(np.percentile(ms, 50)),
            p95_ms=float(np.percentile(ms, 95)),
            p99_ms=float(np.percentile(ms, 99)),
            max_ms=float(ms.max()),
            histogram=histogram,
        )

    def to_dict(self) -> dict:
        return dict(self.__dict__)


def _request_stream(
    num_nodes: int,
    clients: int,
    requests_per_client: int,
    seed: int,
) -> tuple[list[list[int]], list[int]]:
    """Distinct-leaning query assignments, one list per client.

    Queries are drawn without replacement while the pool lasts (the
    worst case for any cache, the pure test of coalescing), recycling
    only when the workload exceeds the node count.
    """
    rng = np.random.default_rng(seed)
    total = clients * requests_per_client
    pool = rng.permutation(num_nodes)
    picks = [int(pool[i % num_nodes]) for i in range(total)]
    streams = [
        picks[i * requests_per_client:(i + 1) * requests_per_client]
        for i in range(clients)
    ]
    # untimed warmup queries, disjoint from the timed workload when
    # the graph is big enough (so warmup never pre-fills its columns)
    warmup = [
        int(pool[(total + i) % num_nodes]) for i in range(clients)
    ]
    return streams, warmup


def _drive_coalesced(
    service, streams: list[list[int]], warm_queries: list[int], k: int
) -> tuple[float, list[float]]:
    """Fire the client streams at ``service``; (wall, latencies).

    Runs an untimed warmup round over the disjoint ``warm_queries``
    first — spinning the executor threads and the broker path once —
    so the timed window measures steady-state serving.
    """
    latencies: list[float] = []

    async def client(stream: list[int]) -> list[float]:
        lat = []
        for q in stream:
            t0 = time.perf_counter()
            await service.top_k(q, k=k)
            lat.append(time.perf_counter() - t0)
        return lat

    async def drive() -> float:
        async with service:
            await asyncio.gather(
                *(service.top_k(q, k=k) for q in warm_queries)
            )
            t0 = time.perf_counter()
            per_client = await asyncio.gather(
                *(client(stream) for stream in streams)
            )
            wall = time.perf_counter() - t0
        for lat in per_client:
            latencies.extend(lat)
        return wall

    wall = asyncio.run(drive())
    return wall, latencies


def run_serving_load(
    nodes: int = 2000,
    edges: int = 12000,
    *,
    clients: int = 32,
    requests_per_client: int = 4,
    k: int = 10,
    num_terms: int = 10,
    measure: str = "gSR*",
    c: float = 0.6,
    dtype: str = "float64",
    max_batch: int = 32,
    max_wait_ms: float = 2.0,
    cache_entries: int = 0,
    seed: int = 42,
) -> dict:
    """Measure coalesced serving against the sequential baseline.

    Builds a seeded random digraph, then times two servings of the
    identical request sequence (``clients x requests_per_client``
    top-k queries over distinct-leaning query nodes):

    * **sequential baseline** — one ``single_source`` walk plus
      ranking per request, back to back, with ``Q`` / ``Q^T`` prebuilt
      (the strongest per-request serving loop available before the
      broker existed);
    * **coalesced service** — ``clients`` concurrent async streams
      submitting to a :class:`~repro.serve.ServingService`, whose
      broker batches them into blocked multi-source calls.

    The result cache is disabled by default (``cache_entries=0``) so
    the measured speedup isolates coalescing rather than memoization.
    Returns a JSON-ready document with both sides' throughput and
    latency statistics, the broker stats, and the derived
    ``speedup_throughput``.
    """
    from repro.core.queries import single_source
    from repro.engine.results import Ranking
    from repro.graph.generators import random_digraph
    from repro.graph.matrices import backward_transition_matrix
    from repro.serve.service import ServingService

    graph = random_digraph(nodes, edges, seed=seed)
    streams, warm_queries = _request_stream(
        graph.num_nodes, clients, requests_per_client, seed
    )
    flat_requests = [q for stream in streams for q in stream]

    # --- sequential baseline: per-request single_source + ranking ---
    transition = backward_transition_matrix(graph, dtype=dtype)
    transition_t = transition.T.tocsr()
    for q in warm_queries[:4]:  # untimed: BLAS / cache warmup
        single_source(
            graph, q, c, num_terms,
            transition=transition, transition_t=transition_t,
            dtype=dtype,
        )
    base_latencies: list[float] = []
    base_start = time.perf_counter()
    for q in flat_requests:
        t0 = time.perf_counter()
        scores = single_source(
            graph, q, c, num_terms,
            transition=transition, transition_t=transition_t,
            dtype=dtype,
        )
        Ranking.from_scores(scores, query=q, k=k)
        base_latencies.append(time.perf_counter() - t0)
    base_wall = time.perf_counter() - base_start

    # --- coalesced service: concurrent clients through the broker ---
    service = ServingService(
        graph,
        measure=measure,
        c=c,
        num_iterations=num_terms,
        dtype=dtype,
        max_batch=max_batch,
        max_wait_ms=max_wait_ms,
        cache_entries=cache_entries,
    )
    service.warmup()  # both sides start with Q / Q^T prebuilt
    serve_wall, latencies = _drive_coalesced(
        service, streams, warm_queries, k
    )

    total = len(flat_requests)
    base_rps = total / base_wall if base_wall > 0 else float("inf")
    serve_rps = total / serve_wall if serve_wall > 0 else float("inf")
    return {
        "params": {
            "nodes": nodes,
            "edges": edges,
            "clients": clients,
            "requests_per_client": requests_per_client,
            "total_requests": total,
            "k": k,
            "num_terms": num_terms,
            "measure": measure,
            "c": c,
            "dtype": dtype,
            "max_batch": max_batch,
            "max_wait_ms": max_wait_ms,
            "cache_entries": cache_entries,
            "seed": seed,
        },
        "sequential": {
            "wall_seconds": base_wall,
            "requests_per_second": base_rps,
            "latency": LatencyStats.from_seconds(
                base_latencies
            ).to_dict(),
        },
        "coalesced": {
            "wall_seconds": serve_wall,
            "requests_per_second": serve_rps,
            "latency": LatencyStats.from_seconds(latencies).to_dict(),
        },
        "speedup_throughput": (
            serve_rps / base_rps if base_rps > 0 else float("inf")
        ),
        "broker": service.broker.stats.snapshot(),
    }


def run_telemetry_overhead(
    nodes: int = 2000,
    edges: int = 12000,
    *,
    clients: int = 32,
    requests_per_client: int = 4,
    k: int = 10,
    num_terms: int = 10,
    measure: str = "gSR*",
    c: float = 0.6,
    dtype: str = "float64",
    max_batch: int = 32,
    max_wait_ms: float = 2.0,
    seed: int = 42,
    rounds: int = 3,
    overhead_limit: float | None = 0.05,
) -> dict:
    """Price the observability layer: telemetry on vs off, same load.

    Serves the identical coalesced workload (the ``--serve`` scenario,
    minus its sequential baseline) through two otherwise-identical
    :class:`~repro.serve.ServingService` instances — one built with
    ``telemetry=False`` (the :class:`~repro.obs.NullObservability`
    fast path), one with the full metrics + tracing stack — and
    compares p50 latency. Each round runs both sides, alternating
    which goes first so thermal / allocator drift cancels; the
    per-side p50 is the **median across rounds** (single p50s at
    millisecond latencies are too noisy to gate on).

    ``overhead_limit`` gates the relative p50 overhead
    (``enabled/disabled - 1``); ``None`` reports without gating (the
    quick preset — CI machines are too noisy for a 5% latency gate at
    CI scale). A consistency check always runs: after the final
    enabled round, the scraped registry's ``repro_requests_total``
    must equal the number of requests served, proving the metrics
    pipeline did not drop under load while being priced.
    """
    from repro.graph.generators import random_digraph
    from repro.serve.service import ServingService

    graph = random_digraph(nodes, edges, seed=seed)
    streams, warm_queries = _request_stream(
        graph.num_nodes, clients, requests_per_client, seed
    )
    total = clients * requests_per_client

    def one_run(telemetry: bool) -> tuple[LatencyStats, str]:
        service = ServingService(
            graph,
            measure=measure,
            c=c,
            num_iterations=num_terms,
            dtype=dtype,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            cache_entries=0,
            telemetry=telemetry,
        )
        service.warmup()
        _, latencies = _drive_coalesced(
            service, streams, warm_queries, k
        )
        metrics_text = service.metrics_text()
        return LatencyStats.from_seconds(latencies), metrics_text

    p50s: dict[bool, list[float]] = {False: [], True: []}
    means: dict[bool, list[float]] = {False: [], True: []}
    enabled_metrics = ""
    for round_index in range(rounds):
        order = (
            (False, True) if round_index % 2 == 0 else (True, False)
        )
        for telemetry in order:
            stats, metrics_text = one_run(telemetry)
            p50s[telemetry].append(stats.p50_ms)
            means[telemetry].append(stats.mean_ms)
            if telemetry:
                enabled_metrics = metrics_text
    disabled_p50 = float(np.median(p50s[False]))
    enabled_p50 = float(np.median(p50s[True]))
    overhead = (
        enabled_p50 / disabled_p50 - 1.0
        if disabled_p50 > 0 else 0.0
    )
    requests_counted = 0.0
    for line in enabled_metrics.splitlines():
        if line.startswith("repro_requests_total"):
            requests_counted += float(line.rsplit(" ", 1)[1])
    checks = {
        # warmup round + timed workload, every one on the books
        "metrics_counted_every_request": (
            requests_counted == total + len(warm_queries)
        ),
    }
    if overhead_limit is not None:
        checks["telemetry_overhead_within_limit"] = (
            overhead <= overhead_limit
        )
    return {
        "params": {
            "nodes": nodes,
            "edges": edges,
            "clients": clients,
            "requests_per_client": requests_per_client,
            "total_requests": total,
            "k": k,
            "num_terms": num_terms,
            "dtype": dtype,
            "max_batch": max_batch,
            "max_wait_ms": max_wait_ms,
            "seed": seed,
            "rounds": rounds,
            "overhead_limit": overhead_limit,
        },
        "disabled": {
            "p50_ms": disabled_p50,
            "p50_ms_rounds": p50s[False],
            "mean_ms_rounds": means[False],
        },
        "enabled": {
            "p50_ms": enabled_p50,
            "p50_ms_rounds": p50s[True],
            "mean_ms_rounds": means[True],
        },
        "p50_overhead": overhead,
        "checks": checks,
    }


def run_cluster_scaling(
    nodes: int = 2000,
    edges: int = 12000,
    *,
    worker_counts: Sequence[int] = (1, 4),
    batches: int = 8,
    batch_size: int = 64,
    num_terms: int = 10,
    measure: str = "gSR*",
    c: float = 0.6,
    dtype: str = "float64",
    seed: int = 42,
    mp_context: str = "spawn",
    backend: str = "process",
    transport: str = "shm",
) -> dict:
    """Measure scale-out of the sharded column plane, per backend.

    For each entry of ``worker_counts``, stands up a
    :class:`~repro.cluster.WorkerPool` (``backend="process"``) or
    :class:`~repro.cluster.ThreadWorkerPool` (``backend="thread"``)
    behind a ``ShardRouter`` over the same seeded random digraph and
    pushes the identical workload through it: ``batches``
    micro-batches of ``batch_size`` *distinct* query columns each
    (distinct so no worker-side memo hit hides compute), dispatched
    back to back through ``router.compute``. Pool startup, index
    persistence, and the warmup batch are excluded from the timed
    window — this isolates steady-state shard-parallel serving, which
    is what ``--workers K`` buys over ``--workers 1``.

    The derived ``speedup_workers_<b>_vs_<a>`` ratio (last count vs
    first) is machine-independent *given enough cores*: compute
    happens in the workers, so K workers on >= K idle cores should
    approach ``Kx`` minus shard-transport overhead. The compare gate
    therefore only enforces its floor when the recording machine
    actually has at least ``b`` CPUs (``machine.cpu_count`` in the
    bench document); on smaller machines the ratio is reported but
    cannot be meaningful. Each per-count entry also splits the wall
    into worker-reported compute vs transport (dispatch) seconds —
    the share the zero-copy rings are meant to collapse. Returns a
    JSON-ready document with per-count throughput, per-batch latency
    statistics, the transport split, and the speedup.
    """
    from repro.cluster import (
        ShardRouter,
        ThreadWorkerPool,
        WorkerPool,
    )
    from repro.engine import SimilarityConfig
    from repro.graph.generators import random_digraph
    from repro.serve import SnapshotManager

    worker_counts = tuple(int(w) for w in worker_counts)
    if len(worker_counts) < 2:
        raise ValueError("worker_counts needs at least two entries")
    graph = random_digraph(nodes, edges, seed=seed)
    config = SimilarityConfig(
        measure=measure, c=c, num_iterations=num_terms, dtype=dtype
    )
    rng = np.random.default_rng(seed)
    pool_size = (batches + 1) * batch_size
    picks = [
        int(q) for q in (
            rng.permutation(nodes)[:pool_size]
            if pool_size <= nodes
            else rng.integers(0, nodes, size=pool_size)
        )
    ]
    warmup_batch = picks[:batch_size]
    workload = [
        picks[(i + 1) * batch_size:(i + 2) * batch_size]
        for i in range(batches)
    ]

    if backend not in ("process", "thread"):
        raise ValueError(
            f"backend must be 'process' or 'thread', got {backend!r}"
        )
    per_count: dict[str, dict] = {}
    for count in worker_counts:
        snapshots = SnapshotManager(graph, config)
        if backend == "thread":
            pool = ThreadWorkerPool(workers=count)
        else:
            pool = WorkerPool(
                workers=count,
                mp_context=mp_context,
                transport=transport,
                ring_max_batch=batch_size,
            )
        router = ShardRouter(pool, snapshots)
        start = time.perf_counter()
        router.start()
        startup = time.perf_counter() - start
        snapshot = router.pin()
        try:
            router.compute(snapshot.seq, warmup_batch)  # untimed
            batch_seconds: list[float] = []
            wall_start = time.perf_counter()
            for batch in workload:
                t0 = time.perf_counter()
                columns = router.compute(snapshot.seq, batch)
                batch_seconds.append(time.perf_counter() - t0)
                if len(columns) != len(set(batch)):
                    raise RuntimeError(
                        f"dropped columns at workers={count}"
                    )
            wall = time.perf_counter() - wall_start
            transport_stats = pool.transport_stats()
        finally:
            router.unpin(snapshot.seq)
            router.stop()
        total = batches * batch_size
        compute_s = transport_stats.get("compute_seconds", 0.0)
        shuttle_s = transport_stats.get("transport_seconds", 0.0)
        busy = compute_s + shuttle_s
        per_count[str(count)] = {
            "startup_seconds": startup,
            "wall_seconds": wall,
            "columns_per_second": total / wall if wall > 0 else 0.0,
            "batch_latency": LatencyStats.from_seconds(
                batch_seconds
            ).to_dict(),
            "shards_dispatched": router.shards_dispatched,
            "shard_retries": router.shard_retries,
            "compute_seconds": compute_s,
            "transport_seconds": shuttle_s,
            "transport_share": shuttle_s / busy if busy > 0 else 0.0,
            "transport_bytes": transport_stats.get(
                "transport_bytes", 0
            ),
            "ring_replies": transport_stats.get("ring_replies", 0),
            "pickle_replies": transport_stats.get(
                "pickle_replies", 0
            ),
        }

    low, high = worker_counts[0], worker_counts[-1]
    low_rps = per_count[str(low)]["columns_per_second"]
    high_rps = per_count[str(high)]["columns_per_second"]
    return {
        "params": {
            "nodes": nodes,
            "edges": edges,
            "worker_counts": list(worker_counts),
            "batches": batches,
            "batch_size": batch_size,
            "total_columns": batches * batch_size,
            "num_terms": num_terms,
            "measure": measure,
            "c": c,
            "dtype": dtype,
            "seed": seed,
            "mp_context": mp_context,
            "backend": backend,
            "transport": transport,
        },
        "workers": per_count,
        "speedup_key": f"speedup_workers_{high}_vs_{low}",
        f"speedup_workers_{high}_vs_{low}": (
            high_rps / low_rps if low_rps > 0 else float("inf")
        ),
    }


def run_transport_compare(
    nodes: int = 2000,
    edges: int = 12000,
    *,
    workers: int = 2,
    batches: int = 4,
    batch_size: int = 32,
    k: int = 10,
    num_terms: int = 10,
    measure: str = "gSR*",
    c: float = 0.6,
    dtype: str = "float64",
    seed: int = 42,
    mp_context: str = "spawn",
    byte_ratio_limit: float = 0.01,
) -> dict:
    """Price the shard transport: pickle vs shm vs worker-side top-k.

    Pushes the identical workload (``batches`` micro-batches of
    ``batch_size`` distinct queries) through three configurations of
    the same :class:`~repro.cluster.WorkerPool` + ``ShardRouter``:

    * ``pickle_columns`` — full ``(n, B)`` score blocks pickled over
      the pipe (``transport="pickle"``), the pre-ring baseline;
    * ``shm_columns`` — the same blocks written into the per-worker
      shared-memory rings; only a descriptor crosses the pipe;
    * ``shm_topk`` — worker-side top-k (``ShardRouter.compute_tasks``
      with ``op="top_k"``): only ``(k, B)`` ids+scores cross, and
      nothing touches the ring.

    ``bytes_per_request`` is exact and machine-independent: the
    parent's per-reply byte accounting divided by queries served, on
    a seeded graph. The ``checks`` gate asserts the descriptor and
    task paths each ship under ``byte_ratio_limit`` (default 1%) of
    the pickle baseline's bytes, and that shm columns are
    bit-identical to pickled ones. Returns a JSON-ready document.
    """
    from repro.cluster import ShardRouter, WorkerPool
    from repro.engine import SimilarityConfig
    from repro.graph.generators import random_digraph
    from repro.serve import SnapshotManager

    graph = random_digraph(nodes, edges, seed=seed)
    config = SimilarityConfig(
        measure=measure, c=c, num_iterations=num_terms, dtype=dtype
    )
    rng = np.random.default_rng(seed)
    pool_size = batches * batch_size
    picks = [
        int(q) for q in (
            rng.permutation(nodes)[:pool_size]
            if pool_size <= nodes
            else rng.integers(0, nodes, size=pool_size)
        )
    ]
    workload = [
        picks[i * batch_size:(i + 1) * batch_size]
        for i in range(batches)
    ]
    total = batches * batch_size

    def one_config(transport: str, op: str) -> tuple[dict, dict]:
        snapshots = SnapshotManager(graph, config)
        router = ShardRouter(
            WorkerPool(
                workers=workers,
                mp_context=mp_context,
                transport=transport,
                ring_max_batch=batch_size,
            ),
            snapshots,
        )
        router.start()
        snapshot = router.pin()
        sample: dict = {}
        try:
            wall_start = time.perf_counter()
            for batch in workload:
                if op == "tasks":
                    tasks = [
                        {"op": "top_k", "query": q, "k": k,
                         "include_query": False}
                        for q in batch
                    ]
                    router.compute_tasks(snapshot.seq, tasks)
                else:
                    columns = router.compute(snapshot.seq, batch)
                    if not sample:
                        sample = {
                            int(q): np.asarray(columns[q]).copy()
                            for q in workload[0]
                        }
            wall = time.perf_counter() - wall_start
            stats = router.pool.transport_stats()
        finally:
            router.unpin(snapshot.seq)
            router.stop()
        payload_bytes = int(stats.get("transport_bytes", 0))
        report = {
            "transport": transport,
            "op": op,
            "wall_seconds": wall,
            "requests": total,
            "transport_bytes": payload_bytes,
            "bytes_per_request": payload_bytes / total,
            "ring_replies": stats.get("ring_replies", 0),
            "pickle_replies": stats.get("pickle_replies", 0),
            "task_replies": stats.get("task_replies", 0),
            "ring_fallbacks": stats.get("ring_unavailable", False),
            "compute_seconds": stats.get("compute_seconds", 0.0),
            "transport_seconds": stats.get(
                "transport_seconds", 0.0
            ),
        }
        return report, sample

    pickle_side, pickle_sample = one_config("pickle", "columns")
    shm_side, shm_sample = one_config("shm", "columns")
    topk_side, _ = one_config("shm", "tasks")

    identical = all(
        np.array_equal(pickle_sample[q], shm_sample[q])
        for q in pickle_sample
    )
    base = pickle_side["bytes_per_request"]
    shm_ratio = (
        shm_side["bytes_per_request"] / base if base > 0 else 0.0
    )
    topk_ratio = (
        topk_side["bytes_per_request"] / base if base > 0 else 0.0
    )
    return {
        "params": {
            "nodes": nodes,
            "edges": edges,
            "workers": workers,
            "batches": batches,
            "batch_size": batch_size,
            "total_requests": total,
            "k": k,
            "num_terms": num_terms,
            "measure": measure,
            "c": c,
            "dtype": dtype,
            "seed": seed,
            "mp_context": mp_context,
            "byte_ratio_limit": byte_ratio_limit,
        },
        "pickle_columns": pickle_side,
        "shm_columns": shm_side,
        "shm_topk": topk_side,
        "shm_bytes_ratio": shm_ratio,
        "topk_bytes_ratio": topk_ratio,
        "checks": {
            "shm_columns_bit_identical": identical,
            "shm_descriptor_bytes_under_limit": (
                0 < shm_ratio < byte_ratio_limit
            ),
            "topk_bytes_under_limit": (
                0 < topk_ratio < byte_ratio_limit
            ),
        },
    }
