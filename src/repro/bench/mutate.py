"""Delta-vs-rebuild mutation benchmark for incremental maintenance.

The serving layer's tentpole claim is that a small edge batch should
cost ``O(delta)``, not ``O(graph)``: a mutation that touches 1% of the
edges must not pay a full ``Q`` / ``Q^T`` / factor rebuild. This
module measures exactly that trade on one seeded scale-free graph
(:func:`repro.datasets.scale_free_graph`): two
:class:`~repro.serve.SnapshotManager` instances serve the same graph —
one with ``delta_mode="off"`` (the classic rebuild-every-swap path),
one with ``delta_mode="auto"`` — and the *identical* seeded batch
sequence (1% of edges swapped out per mutation) is pushed through
both. Per-mutation wall time is the whole ``mutate()`` call: edit
application, artifact work, warmup, and the pointer swap.

The derived ``speedup_delta_swap_vs_rebuild`` is the ratio of the two
medians, and the document also records a bit-parity check: after the
final mutation, sampled score columns from the delta-maintained engine
must be **byte-identical** to the rebuild-maintained engine's — the
fast path is only admissible because it changes nothing about the
answers.

``python -m repro.bench --mutate`` embeds this document under the
``"mutate"`` key of ``BENCH_<tag>.json`` and copies the speedup into
the gated derived ratios — the acceptance regime is a 10x+ speedup at
10^5 nodes.
"""

from __future__ import annotations

import gc
import statistics
import time

import numpy as np

__all__ = ["run_mutate_compare", "run_mutate_compare_isolated"]


def _batch(rng, graph, fraction: float):
    """One seeded edge swap: remove/add ``fraction`` of the edges.

    Removals sample the existing edge set; additions draw fresh
    non-self-loop pairs absent from it. Returned as ``(add, remove)``
    id-pair lists suitable for :meth:`SnapshotManager.mutate`.
    """
    heads, tails = graph.edge_arrays()
    m = heads.size
    k = max(1, int(m * fraction))
    existing = set(zip(heads.tolist(), tails.tolist()))
    picks = rng.choice(m, size=k, replace=False)
    remove = [(int(heads[i]), int(tails[i])) for i in picks]
    add: list[tuple[int, int]] = []
    seen = set()
    n = graph.num_nodes
    while len(add) < k:
        u, v = (int(x) for x in rng.integers(0, n, 2))
        if u == v or (u, v) in existing or (u, v) in seen:
            continue
        seen.add((u, v))
        add.append((u, v))
    return add, remove


def run_mutate_compare(
    nodes: int = 100_000,
    avg_out_degree: float = 16.0,
    batches: int = 3,
    batch_fraction: float = 0.01,
    measure: str = "memo-gSR*",
    num_terms: int = 10,
    dtype: str = "float64",
    seed: int = 42,
    parity_queries: int = 8,
    speedup_floor: float | None = None,
    progress=None,
) -> dict:
    """Benchmark delta-path mutations against full-rebuild mutations.

    The default measure is ``memo-gSR*`` — the paper's memoized
    measure, whose index carries the biclique factor decomposition.
    That is the configuration the incremental path exists for: a full
    rebuild must recompress the factors from scratch (``O(graph)``,
    by far the dominant swap cost), while the delta path demotes only
    the touched rows (``O(delta)``).

    Each manager runs the identical seeded edit plan *sequentially*
    (not interleaved with the other manager), preceded by one untimed
    warm-up mutation that absorbs first-call allocator effects — the
    timed medians then reflect each path's steady state rather than
    cross-path heap churn.

    Returns a JSON-ready document with per-path swap timings (median
    and per-mutation), the derived ``speedup_delta_swap_vs_rebuild``,
    and the ``checks`` map (all mutations actually took their intended
    path; sampled columns bit-identical; optional speedup floor) that
    ``python -m repro.bench --mutate`` turns into its exit code.
    """
    from repro.datasets import scale_free_graph
    from repro.serve.snapshot import SnapshotManager

    if progress is not None:
        progress(f"mutate_compare@{nodes}")
    graph = scale_free_graph(
        nodes, avg_out_degree=avg_out_degree, seed=seed
    )
    config = dict(
        measure=measure, num_iterations=num_terms, dtype=dtype
    )

    # identical seeded batches for both sides: both managers start
    # from the same graph and receive the same edits, so their served
    # graphs stay equal after every swap. The first planned batch is
    # an untimed warm-up.
    batch_rng = np.random.default_rng(seed + 1)
    edit_plan = []
    plan_graph = graph.copy()
    for _ in range(batches + 1):
        add, remove = _batch(batch_rng, plan_graph, batch_fraction)
        edit_plan.append((add, remove))
        for u, v in add:
            plan_graph.add_edge(u, v)
        for u, v in remove:
            plan_graph.remove_edge(u, v)

    # parity sample, fixed up front: after its edit plan each manager
    # serves the same graph, so its sampled score columns must be
    # byte-identical across the two maintenance histories
    query_rng = np.random.default_rng(seed + 2)
    sample = [
        int(q) for q in query_rng.choice(
            nodes, size=min(parity_queries, nodes), replace=False
        )
    ]

    # one phase per maintenance path, each on a freshly collected heap
    # with ONLY its own manager alive: a full build constructs several
    # whole graphs and factor decompositions, and the allocator churn
    # of a concurrently-live second manager measurably inflates the
    # other phase's timings — a harness artifact, not a property of
    # either maintenance path. The manager is constructed, warmed,
    # driven through the plan, sampled for parity, and destroyed
    # before the next phase begins.
    timings: dict[str, list[float]] = {}
    columns: dict[str, dict] = {}
    delta_stats: dict = {}
    swap_latency: dict = {}
    for name in ("delta", "rebuild"):
        gc.collect()
        if name == "rebuild":
            manager = SnapshotManager(graph, delta_mode="off", **config)
        else:
            manager = SnapshotManager(
                graph, delta_mode="auto",
                # the sequence must never fold mid-run: the benchmark
                # times the delta path itself, not the chain policy
                # (batches + warm-up mutation, plus headroom)
                max_chain_depth=max(8, batches + 2),
                **config,
            )
        manager.warmup()
        timings[name] = []
        for step, (add, remove) in enumerate(edit_plan):
            start = time.perf_counter()
            manager.mutate(add=add, remove=remove)
            elapsed = time.perf_counter() - start
            if step == 0:
                continue  # untimed warm-up mutation
            timings[name].append(elapsed)
            if progress is not None:
                progress(
                    f"mutate_compare {name} batch {step}/{batches} "
                    f"({elapsed:.3f}s)"
                )
        columns[name] = manager.current.engine.columns(sample)
        if name == "delta":
            delta_stats = manager.describe()["delta"]
            swap_latency = manager.swap_latency_summary()
        del manager
        gc.collect()

    medians = {
        name: statistics.median(values)
        for name, values in timings.items()
    }
    speedup = medians["rebuild"] / medians["delta"]

    rebuilt = columns["rebuild"]
    incremental = columns["delta"]
    parity = all(
        np.array_equal(
            np.asarray(rebuilt[q]), np.asarray(incremental[q])
        )
        for q in rebuilt
    )
    checks = {
        "all_mutations_took_delta_path": (
            delta_stats["swaps"] == batches + 1  # incl. warm-up
            and delta_stats["fallbacks"] == 0
        ),
        "columns_bit_identical": parity,
    }
    if speedup_floor is not None:
        checks["speedup_floor_met"] = speedup >= speedup_floor
    graph_edges = graph.num_edges
    return {
        "nodes": nodes,
        "edges": graph_edges,
        "avg_out_degree": avg_out_degree,
        "batches": batches,
        "warmup_batches": 1,
        "batch_fraction": batch_fraction,
        "edits_per_batch": 2 * max(1, int(graph_edges * batch_fraction)),
        "measure": measure,
        "dtype": dtype,
        "num_terms": num_terms,
        "seed": seed,
        "swap_seconds": timings,
        "swap_seconds_median": medians,
        "parity_queries": len(sample),
        "delta": delta_stats,
        "swap_latency": swap_latency,
        "speedup_key": "speedup_delta_swap_vs_rebuild",
        "speedup_delta_swap_vs_rebuild": speedup,
        "speedup_floor": speedup_floor,
        "checks": checks,
    }


def run_mutate_compare_isolated(progress=None, **kwargs) -> dict:
    """:func:`run_mutate_compare` in a fresh subprocess.

    Mutation swaps are the only tier whose timings are sensitive to
    the *heap history* of the process: the other tiers build graphs,
    engines, and indexes whose allocator churn measurably inflates
    the sub-second delta swaps that run after them. A fresh
    interpreter per comparison (the same isolation discipline
    ``pyperf`` applies to every benchmark) removes that coupling —
    the recorded numbers then depend only on the two maintenance
    paths. Progress lines stream back via the child's stderr; the
    document comes back as JSON on its stdout.
    """
    import json
    import os
    import subprocess
    import sys
    from pathlib import Path

    import repro

    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root + os.pathsep + existing if existing
        else package_root
    )
    child = subprocess.Popen(
        [
            sys.executable, "-m", "repro.bench.mutate",
            "--kwargs", json.dumps(kwargs),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    assert child.stderr is not None
    for line in child.stderr:
        line = line.rstrip("\n")
        if line and progress is not None:
            progress(line)
    stdout, _ = child.communicate()
    if child.returncode != 0:
        raise RuntimeError(
            "isolated mutate comparison failed "
            f"(exit {child.returncode}): {stdout.strip()[-2000:]}"
        )
    return json.loads(stdout)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.bench.mutate`` — the isolation entry point.

    Internal plumbing for :func:`run_mutate_compare_isolated`, not an
    operator CLI (``python -m repro.bench --mutate`` is): takes the
    keyword arguments as one JSON object, streams progress to stderr,
    and prints the result document as JSON on stdout.
    """
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.mutate",
        description="run one delta-vs-rebuild mutation comparison "
        "in this (fresh) process and print its JSON document",
    )
    parser.add_argument(
        "--kwargs", default="{}",
        help="run_mutate_compare keyword arguments as a JSON object",
    )
    args = parser.parse_args(argv)
    document = run_mutate_compare(
        progress=lambda message: print(
            message, file=sys.stderr, flush=True
        ),
        **json.loads(args.kwargs),
    )
    json.dump(document, sys.stdout)
    print(flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
