"""Peak-memory measurement for the Figure 6(h) experiment.

Uses :mod:`tracemalloc`, which numpy's allocator reports into, so the
numbers cover the dense iterates, sparse operators, memoized partials
and (for ``mtx-SR``) the SVD workspace — the allocations the paper's
memory plot compares.
"""

from __future__ import annotations

import tracemalloc
from typing import Any, Callable

__all__ = ["measure_peak_memory"]


def measure_peak_memory(fn: Callable, *args, **kwargs) -> tuple[Any, int]:
    """Run ``fn`` and return ``(result, peak_bytes)``.

    Peak is relative to the start of the call, so pre-existing
    allocations (the input graph, cached datasets) are excluded.
    Nesting is not supported — tracemalloc is process-global.
    """
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        result = fn(*args, **kwargs)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not already_tracing:
            tracemalloc.stop()
    return result, peak
