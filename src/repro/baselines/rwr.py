"""Random Walk with Restart (Tong et al., ICDM 2006) and PPR.

The paper's Eq. (6) gives the series form used here::

    [S]_{ij} = (1 - C) * sum_k C^k [W^k]_{ij}

with ``W`` the row-normalised adjacency (forward transition). This is
the matrix whose row ``i`` is the Personalized PageRank vector of
``i`` — RWR is the all-sources stacking of PPR.

Section 3.1's critique, reproduced in our tests: RWR tallies only
*unidirectional* in-link paths (source at one end), so it has its own
zero-similarity issue (``[S]_{ij} = 0`` iff no directed path i -> j,
Lemma 1 applied to ``W^k``), and it is asymmetric — "Me and Father"
score zero in one direction of the family tree.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.matrices import forward_transition_matrix
from repro.validation import validate_damping, validate_iterations

__all__ = ["ppr", "rwr", "rwr_matrix"]


def rwr(
    graph: DiGraph, c: float = 0.6, num_iterations: int = 5
) -> np.ndarray:
    """All-pairs RWR via the truncated series Eq. (6).

    Iterates ``S_{k+1} = (1-C) I + C W S_k`` from ``S_0 = (1-C) I``,
    whose ``K``-th iterate is the ``K``-term partial sum of Eq. (6).
    Note the result is **asymmetric** in general.
    """
    validate_damping(c)
    validate_iterations(num_iterations)
    n = graph.num_nodes
    w = forward_transition_matrix(graph)
    base = (1.0 - c) * np.eye(n)
    s = base.copy()
    for _ in range(num_iterations):
        s = base + c * (w @ s)
    return s


def rwr_matrix(graph: DiGraph, c: float = 0.6) -> np.ndarray:
    """Exact RWR: the closed form ``(1-C) (I - C W)^{-1}`` [19]."""
    validate_damping(c)
    n = graph.num_nodes
    if n == 0:
        return np.zeros((0, 0))
    w = forward_transition_matrix(graph).toarray()
    return (1.0 - c) * np.linalg.inv(np.eye(n) - c * w)


def ppr(
    graph: DiGraph,
    source: int,
    c: float = 0.6,
    num_iterations: int = 50,
) -> np.ndarray:
    """Personalized PageRank vector of ``source`` (row of :func:`rwr`).

    Iterates the single-vector recursion
    ``p_{k+1} = (1-C) e_s + C W^T p_k`` so only ``O(K m)`` work is done
    — the "special vector form of RWR" the paper mentions.
    """
    validate_damping(c)
    if not 0 <= source < graph.num_nodes:
        raise IndexError(f"source {source} out of range")
    validate_iterations(num_iterations)
    n = graph.num_nodes
    w_t = forward_transition_matrix(graph).T.tocsr()
    restart = np.zeros(n)
    restart[source] = 1.0 - c
    p = restart.copy()
    for _ in range(num_iterations):
        p = restart + c * (w_t @ p)
    return p
