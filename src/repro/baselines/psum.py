"""``psum-SR``: SimRank with partial-sums memoization (Lizorkin et al.).

The state of the art the paper benchmarks against. Eq. (16) factors the
double summation of the SimRank recursion::

    s_{k+1}(a, b) = C / (|I(a)| |I(b)|)
                    * sum_{x in I(a)}  Partial_{I(b)}(x)

    Partial_{I(b)}(x) = sum_{y in I(b)} s_k(x, y)

Because ``Partial_{I(b)}(x)`` does not depend on ``a``, memoizing it
once per ``(b, x)`` lets every node ``a`` whose in-neighbourhood
contains ``x`` reuse it — this is what drops SimRank from
``O(K d^2 n^2)`` to ``O(K n m)``.

The implementation below follows that operation structure literally
(one memoized partial-sum table per target node, then an outer
aggregation), vectorised per node with numpy gathers so the tests can
run on thousands of nodes. :func:`psum_operation_count` returns the
machine-independent cost model used by the benchmark harness.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.validation import validate_damping, validate_iterations

__all__ = ["psum_simrank", "psum_simrank_fast", "psum_operation_count"]


def psum_simrank(
    graph: DiGraph, c: float = 0.6, num_iterations: int = 5
) -> np.ndarray:
    """All-pairs SimRank via partial-sums memoization, Eq. (16).

    Returns the same values as :func:`repro.baselines.simrank` (the
    exact Jeh–Widom recursion with the diagonal pinned to 1) but in
    ``O(K n m)`` time.
    """
    validate_damping(c)
    validate_iterations(num_iterations)
    n = graph.num_nodes
    in_sets = [np.array(graph.in_neighbors(v), dtype=np.intp) for v in range(n)]
    s = np.eye(n)
    for _ in range(num_iterations):
        nxt = np.zeros_like(s)
        for b in range(n):
            ib = in_sets[b]
            if ib.size == 0:
                continue
            # Memoized partial sums: Partial_{I(b)}(x) for every x at once.
            partial = s[:, ib].sum(axis=1)
            for a in range(n):
                ia = in_sets[a]
                if ia.size == 0:
                    continue
                nxt[a, b] = c * partial[ia].sum() / (ia.size * ib.size)
        np.fill_diagonal(nxt, 1.0)
        s = nxt
    return s


def psum_simrank_fast(
    graph: DiGraph, c: float = 0.6, num_iterations: int = 5
) -> np.ndarray:
    """Vectorised ``psum-SR``: the same values via two sparse products.

    Partial-sums memoization is precisely what turns SimRank's
    ``O(d^2 n^2)`` recursion into the two-stage product
    ``Q (Q S_k)^T`` — stage one *is* the memoized partial-sum table,
    stage two the outer aggregation. This evaluator performs those two
    stages as sparse-dense multiplications, so the timing benchmarks
    compare algorithms at the same abstraction level: ``psum-SR``
    costs **two** multiplications of ``m``-nnz operators per iteration
    where ``iter-gSR*`` costs one and ``memo-gSR*`` one of ``m~`` nnz.

    Returns exactly the :func:`psum_simrank` / Jeh-Widom values
    (diagonal pinned to 1).
    """
    validate_damping(c)
    validate_iterations(num_iterations)
    from repro.graph.matrices import backward_transition_matrix

    n = graph.num_nodes
    q = backward_transition_matrix(graph)
    s = np.eye(n)
    for _ in range(num_iterations):
        partial = q @ s  # memoized partial-sum tables, all b at once
        s = c * (q @ partial.T).T  # outer aggregation over I(a)
        np.fill_diagonal(s, 1.0)
    return s


def psum_operation_count(graph: DiGraph, num_iterations: int) -> int:
    """Additions + assignments per the paper's cost model, Eq. (16).

    Per iteration: building all partial-sum tables costs ``n * m``
    (for each target ``b``, one pass over ``I(b)`` per node ``x``), and
    the outer aggregation costs another ``n * m`` (for each pair
    ``(a, b)``, one pass over ``I(a)``) — SimRank's *double* summation.
    Compare :func:`repro.core.memo.memo_operation_count`.
    """
    n, m = graph.num_nodes, graph.num_edges
    return num_iterations * 2 * n * m
