"""SimRank (Jeh & Widom, KDD 2002) in its three textbook forms.

The paper (Section 2) recalls two representations, and its Lemma 2 adds
a third:

* the **iterative form** Eq. (1)–(2): the original node-pair recursion
  with the base case ``s(a, a) = 1`` enforced exactly;
* the **matrix form** Eq. (3):
  ``S = C * Q S Q^T + (1 - C) * I_n``, whose fixed point has diagonal
  entries *close to* but not exactly 1 (this is the form used by the
  optimisation literature [8, 14] and by the SimRank* derivation);
* the **power series** Eq. (4):
  ``S = (1 - C) * sum_l C^l Q^l (Q^T)^l``, which is the closed form of
  the matrix recursion and the representation that exposes the
  "symmetric in-link paths only" semantics (Theorem 1).

The iterative and matrix forms differ only in how the diagonal is
pinned; both appear in tests against each other and against networkx.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.digraph import DiGraph
from repro.graph.matrices import backward_transition_matrix
from repro.validation import validate_damping, validate_iterations

__all__ = ["simrank", "simrank_matrix", "simrank_series"]


def simrank(
    graph: DiGraph, c: float = 0.6, num_iterations: int = 5
) -> np.ndarray:
    """All-pairs SimRank via the original iterative form Eq. (2).

    ``s_0 = I``; then for every pair ``a != b`` with non-empty
    in-neighbourhoods::

        s_{k+1}(a, b) = C / (|I(a)| |I(b)|)
                        * sum_{x in I(a)} sum_{y in I(b)} s_k(x, y)

    and ``s_{k+1}(a, a) = 1``. Pairs where either side has no in-edges
    score 0. This is the exact Jeh–Widom recursion (diagonal pinned to
    1), matching ``networkx.simrank_similarity``.

    Runs in O(K d^2 n^2) time — use :func:`psum_simrank` or the matrix
    form for anything beyond toy graphs.
    """
    validate_damping(c)
    validate_iterations(num_iterations)
    n = graph.num_nodes
    in_sets = [graph.in_neighbors(v) for v in range(n)]
    s = np.eye(n)
    for _ in range(num_iterations):
        nxt = np.zeros_like(s)
        for a in range(n):
            nxt[a, a] = 1.0
            ia = in_sets[a]
            if not ia:
                continue
            for b in range(a + 1, n):
                ib = in_sets[b]
                if not ib:
                    continue
                total = s[np.ix_(ia, ib)].sum()
                val = c * total / (len(ia) * len(ib))
                nxt[a, b] = val
                nxt[b, a] = val
        s = nxt
    return s


def simrank_matrix(
    graph: DiGraph,
    c: float = 0.6,
    num_iterations: int = 5,
    transition: sp.csr_array | None = None,
) -> np.ndarray:
    """All-pairs SimRank via the matrix form Eq. (3).

    Iterates ``S_{k+1} = C * Q S_k Q^T + (1 - C) * I`` from
    ``S_0 = (1 - C) * I``. The fixed point solves Eq. (3) exactly; its
    power-series expansion is Eq. (4). Each iteration costs **two**
    sparse-dense multiplications — the constant-factor cost the paper
    contrasts with SimRank*'s single multiplication (Section 4.2).
    """
    validate_damping(c)
    validate_iterations(num_iterations)
    n = graph.num_nodes
    q = transition if transition is not None else (
        backward_transition_matrix(graph)
    )
    base = (1.0 - c) * np.eye(n)
    s = base.copy()
    for _ in range(num_iterations):
        s = c * (q @ (q @ s.T).T) + base
        # Symmetrise to wash out float round-off drift; the exact
        # iterate is symmetric because S_0 is.
        s = 0.5 * (s + s.T)
    return s


def simrank_series(
    graph: DiGraph, c: float = 0.6, num_terms: int = 5
) -> np.ndarray:
    """All-pairs SimRank via the power series Eq. (4), truncated.

    ``S_K = (1 - C) * sum_{l=0}^{K} C^l Q^l (Q^T)^l``.

    Term ``l`` weighs exactly the *symmetric* in-link paths of length
    ``2l`` (Lemma 2 / Corollary 2); this form exists to make the
    zero-SimRank semantics testable, not to be fast. Equals
    :func:`simrank_matrix` with ``num_iterations = num_terms``.
    """
    validate_damping(c)
    validate_iterations(num_terms, "num_terms")
    n = graph.num_nodes
    q = backward_transition_matrix(graph)
    total = np.eye(n)
    power = np.eye(n)  # Q^l applied to I from both sides
    for level in range(1, num_terms + 1):
        power = q @ (q @ power.T).T
        total += (c ** level) * power
    return (1.0 - c) * total
