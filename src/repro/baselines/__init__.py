"""Baseline similarity measures the paper compares SimRank* against.

Every baseline is implemented from scratch here:

* :mod:`repro.baselines.simrank` — SimRank (Jeh & Widom): naive
  iterative form Eq. (2), matrix form Eq. (3), power series Eq. (4).
* :mod:`repro.baselines.psum` — ``psum-SR``: SimRank with partial-sums
  memoization (Lizorkin et al.), Eq. (16).
* :mod:`repro.baselines.mtx` — ``mtx-SR``: SVD-based SimRank
  (Li et al., EDBT 2010).
* :mod:`repro.baselines.prank` — P-Rank (Zhao et al.): in- and
  out-link recursion.
* :mod:`repro.baselines.rwr` — Random Walk with Restart (Tong et al.)
  and Personalized PageRank, Eq. (6).
* :mod:`repro.baselines.cocitation` — co-citation (Small) and
  bibliographic coupling (Kessler), the rudimentary ancestors.
* :mod:`repro.baselines.evidence` — the SimRank++ evidence factor
  (Antonellis et al.), provided as an extension.
"""

from repro.baselines.cocitation import (
    cocitation,
    cocitation_jaccard,
    coupling,
    coupling_jaccard,
)
from repro.baselines.evidence import evidence_matrix, simrank_plus_plus
from repro.baselines.mtx import mtx_simrank
from repro.baselines.prank import prank, prank_matrix
from repro.baselines.psum import psum_simrank, psum_simrank_fast
from repro.baselines.rwr import ppr, rwr, rwr_matrix
from repro.baselines.simrank import (
    simrank,
    simrank_matrix,
    simrank_series,
)

__all__ = [
    "cocitation",
    "cocitation_jaccard",
    "coupling",
    "coupling_jaccard",
    "evidence_matrix",
    "mtx_simrank",
    "ppr",
    "prank",
    "prank_matrix",
    "psum_simrank",
    "psum_simrank_fast",
    "rwr",
    "rwr_matrix",
    "simrank",
    "simrank_matrix",
    "simrank_series",
    "simrank_plus_plus",
]
