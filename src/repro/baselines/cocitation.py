"""Co-citation (Small 1973) and bibliographic coupling (Kessler 1963).

The rudimentary one-hop ancestors of SimRank ("two nodes are similar if
they have the same neighbours in common"). Counting forms::

    cocitation(i, j) = |I(i) & I(j)| = [A^T A]_{ij}
    coupling(i, j)   = |O(i) & O(j)| = [A A^T]_{ij}

plus Jaccard-normalised variants mapping into [0, 1]. SimRank's first
power-series term is exactly a degree-weighted co-citation, which the
property tests exploit.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.matrices import adjacency_matrix

__all__ = [
    "cocitation",
    "cocitation_jaccard",
    "coupling",
    "coupling_jaccard",
]


def cocitation(graph: DiGraph) -> np.ndarray:
    """Common in-neighbour counts ``[A^T A]_{ij}``."""
    a = adjacency_matrix(graph)
    return np.asarray((a.T @ a).todense())


def coupling(graph: DiGraph) -> np.ndarray:
    """Common out-neighbour counts ``[A A^T]_{ij}``."""
    a = adjacency_matrix(graph)
    return np.asarray((a @ a.T).todense())


def _jaccard(counts: np.ndarray, degrees: np.ndarray) -> np.ndarray:
    union = degrees[:, None] + degrees[None, :] - counts
    return np.divide(
        counts,
        union,
        out=np.zeros_like(counts, dtype=np.float64),
        where=union != 0,
    )


def cocitation_jaccard(graph: DiGraph) -> np.ndarray:
    """``|I(i) & I(j)| / |I(i) | I(j)|`` with 0/0 -> 0."""
    return _jaccard(
        cocitation(graph).astype(np.float64),
        graph.in_degrees().astype(np.float64),
    )


def coupling_jaccard(graph: DiGraph) -> np.ndarray:
    """``|O(i) & O(j)| / |O(i) | O(j)|`` with 0/0 -> 0."""
    return _jaccard(
        coupling(graph).astype(np.float64),
        graph.out_degrees().astype(np.float64),
    )
