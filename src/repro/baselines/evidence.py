"""SimRank++ evidence weighting (Antonellis et al., PVLDB 2008).

SimRank++ compensates SimRank's unsatisfactory trait that similarity
*decreases* as common in-neighbour count grows (Related Work, "Link-
based Similarity"). The evidence factor::

    evidence(a, b) = sum_{i=1}^{|I(a) & I(b)|} 2^{-i} = 1 - 2^{-k}

grows towards 1 with the number ``k`` of common in-neighbours, and
scales the SimRank score of each off-diagonal pair.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.cocitation import cocitation
from repro.baselines.simrank import simrank
from repro.graph.digraph import DiGraph

__all__ = ["evidence_matrix", "simrank_plus_plus"]


def evidence_matrix(graph: DiGraph) -> np.ndarray:
    """``evidence(a, b) = 1 - 2^{-|I(a) & I(b)|}`` (0 when disjoint).

    The geometric sum ``sum_{i=1..k} 2^{-i}`` telescopes to
    ``1 - 2^{-k}``, which is 0 exactly when ``k = 0``.
    """
    common = cocitation(graph).astype(np.float64)
    return 1.0 - np.exp2(-common)


def simrank_plus_plus(
    graph: DiGraph, c: float = 0.6, num_iterations: int = 5
) -> np.ndarray:
    """Evidence-weighted SimRank; the diagonal stays pinned at 1."""
    scores = evidence_matrix(graph) * simrank(graph, c, num_iterations)
    np.fill_diagonal(scores, 1.0)
    return scores
