"""``mtx-SR``: SVD-based SimRank (Li et al., EDBT 2010).

Solves the matrix-form SimRank Eq. (3) in closed form through a
rank-``r`` singular value decomposition of the backward transition
matrix ``Q``. Writing ``Q = U S V^T`` and using the Kronecker
mixed-product and Woodbury identities::

    vec(Sim) = (1-C) (I - C Q (x) Q)^{-1} vec(I)
             = (1-C) [ vec(I) + C (U (x) U) Y_vec ]
    Y_vec    = ((S (x) S)^{-1} - C (V^T U) (x) (V^T U))^{-1} vec(V^T V)

so the only dense solve is an ``r^2 x r^2`` system — the ``O(r^4 n^2)``
cost the paper quotes. With full rank the result equals the Eq. (3)
fixed point exactly; with ``r << n`` it is a low-rank approximation.

The paper's evaluation notes two practical drawbacks reproduced here:
the cost ceases to be attractive when ``r`` is large, and the dense
``U`` factors destroy graph sparsity (the Figure 6(h) memory blow-up).

All ``vec`` operations use column-major (Fortran) order to match the
Kronecker identities.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.validation import validate_damping
from repro.graph.matrices import backward_transition_matrix

__all__ = ["mtx_simrank"]

_SINGULAR_VALUE_TOL = 1e-12


def mtx_simrank(
    graph: DiGraph, c: float = 0.6, rank: int | None = None
) -> np.ndarray:
    """All-pairs SimRank (matrix form Eq. (3)) via truncated SVD.

    Parameters
    ----------
    graph:
        Input digraph.
    c:
        Damping factor in (0, 1).
    rank:
        Target rank ``r``. Defaults to full rank (exact up to floating
        point). Values above the numerical rank of ``Q`` are clipped.
    """
    validate_damping(c)
    n = graph.num_nodes
    if n == 0:
        return np.zeros((0, 0))
    if rank is not None and rank < 1:
        raise ValueError("rank must be >= 1")
    q = backward_transition_matrix(graph).toarray()
    u, sigma, vt = np.linalg.svd(q)
    effective = int((sigma > _SINGULAR_VALUE_TOL).sum())
    r = effective if rank is None else min(rank, effective)
    identity = np.eye(n)
    if r == 0:  # edgeless graph: S = (1-C) I
        return (1.0 - c) * identity
    u = u[:, :r]
    sigma = sigma[:r]
    v = vt[:r].T
    t = v.T @ u  # r x r
    # Inner (r^2 x r^2) system from the Woodbury identity.
    inv_l = np.diag(1.0 / np.kron(sigma, sigma))
    inner = inv_l - c * np.kron(t, t)
    rhs = (v.T @ v).reshape(-1, order="F")
    y = np.linalg.solve(inner, rhs).reshape((r, r), order="F")
    return (1.0 - c) * (identity + c * (u @ y @ u.T))
