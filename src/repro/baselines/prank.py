"""P-Rank (Zhao et al., CIKM 2009): SimRank over in- *and* out-links.

P-Rank extends the SimRank recursion with an out-link term::

    s(a, b) = lambda  * C / (|I(a)||I(b)|) * sum_{I(a) x I(b)} s(x, y)
            + (1-lambda) * C / (|O(a)||O(b)|) * sum_{O(a) x O(b)} s(x, y)

with base case ``s(a, a) = 1`` and either term dropping out when the
corresponding neighbourhood is empty.

The paper's Section 1 argues P-Rank does **not** cure the
zero-similarity defect: it still only counts paths whose "source" sits
exactly in the centre — it merely adds *out-link* symmetric paths to
SimRank's in-link ones. Inserting one node into an out-path (the
``h -> l -> i`` example) re-breaks the symmetry and the score returns
to zero. The Figure 1 column `PR` and our tests exercise exactly this.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.validation import validate_damping, validate_iterations
from repro.graph.matrices import (
    backward_transition_matrix,
    forward_transition_matrix,
)

__all__ = ["prank", "prank_matrix"]


def _check_params(c: float, in_weight: float) -> None:
    validate_damping(c)
    if not 0.0 <= in_weight <= 1.0:
        raise ValueError(
            f"in_weight (lambda) must lie in [0, 1], got {in_weight}"
        )


def prank(
    graph: DiGraph,
    c: float = 0.6,
    in_weight: float = 0.5,
    num_iterations: int = 5,
) -> np.ndarray:
    """All-pairs P-Rank via the node-pair recursion (diagonal = 1).

    ``in_weight`` is the paper's lambda balancing in-link vs out-link
    evidence; ``in_weight = 1`` recovers plain SimRank.
    """
    _check_params(c, in_weight)
    validate_iterations(num_iterations)
    n = graph.num_nodes
    in_sets = [graph.in_neighbors(v) for v in range(n)]
    out_sets = [graph.out_neighbors(v) for v in range(n)]
    s = np.eye(n)
    for _ in range(num_iterations):
        nxt = np.zeros_like(s)
        for a in range(n):
            nxt[a, a] = 1.0
            for b in range(a + 1, n):
                ia, ib = in_sets[a], in_sets[b]
                oa, ob = out_sets[a], out_sets[b]
                val = 0.0
                if ia and ib:
                    val += (
                        in_weight
                        * c
                        * s[np.ix_(ia, ib)].sum()
                        / (len(ia) * len(ib))
                    )
                if oa and ob:
                    val += (
                        (1.0 - in_weight)
                        * c
                        * s[np.ix_(oa, ob)].sum()
                        / (len(oa) * len(ob))
                    )
                nxt[a, b] = val
                nxt[b, a] = val
        s = nxt
    return s


def prank_matrix(
    graph: DiGraph,
    c: float = 0.6,
    in_weight: float = 0.5,
    num_iterations: int = 5,
) -> np.ndarray:
    """All-pairs P-Rank via the matrix recursion (soft diagonal).

    ``S_{k+1} = lambda C Q S_k Q^T + (1-lambda) C W S_k W^T + (1-C) I``
    — the Eq. (3)-style analogue, consistent with how the paper treats
    SimRank's matrix form.
    """
    _check_params(c, in_weight)
    validate_iterations(num_iterations)
    n = graph.num_nodes
    q = backward_transition_matrix(graph)
    w = forward_transition_matrix(graph)
    base = (1.0 - c) * np.eye(n)
    s = base.copy()
    for _ in range(num_iterations):
        in_term = q @ (q @ s.T).T
        out_term = w @ (w @ s.T).T
        s = in_weight * c * in_term + (1 - in_weight) * c * out_term + base
        s = 0.5 * (s + s.T)
    return s
