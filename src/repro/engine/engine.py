"""The stateful query-serving engine.

A :class:`SimilarityEngine` is constructed once per (graph, config)
pair and then serves many queries. The expensive shared structure —
the backward transition matrix ``Q``, its transpose, the
biclique-compressed graph ``G^`` (``m -> m~``), the truncation length
implied by an accuracy target — is built lazily on first use and
reused by every subsequent query, which is exactly the regime the
paper's preprocessing (Algorithm 1 lines 1-2) is designed for. Results
are memoized per query; :meth:`SimilarityEngine.invalidate` (called
automatically by the engine's own mutation helpers, and triggered by a
cheap staleness check against the graph's mutation counter) drops
everything.

Measure dispatch goes through :mod:`repro.engine.registry`; each
:class:`MeasureSpec` declares which cached artifacts its callable can
consume and whether its columns can be served by the ``O(L^2 m)``
series walk instead of a full ``O(K n m)`` matrix build.

Artifact *construction* lives in :mod:`repro.index.artifacts` — the
lazy builders here are thin wrappers over it — and a prebuilt
:class:`~repro.index.SimilarityIndex` can be attached (``index=`` /
:meth:`SimilarityEngine.from_index`) so the engine adopts persisted,
possibly memory-mapped artifacts instead of rebuilding them. An index
whose graph or config fingerprint disagrees is rejected with
:exc:`~repro.index.IndexMismatchError` rather than served.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np
import scipy.sparse as sp

from repro.approx import ApproxEstimator, ApproxStats, approx_params
from repro.approx.walks import WalkIndex
from repro.bigraph.compressed import CompressedGraph
from repro.core.multi_source import multi_source as _series_block
from repro.core.multi_source import series_coefficients
from repro.core.overlay import CsrOverlay
from repro.core.weights import (
    ExponentialWeights,
    GeometricWeights,
    WeightScheme,
)
from repro.engine.config import SimilarityConfig
from repro.engine.registry import MeasureSpec, get_measure
from repro.engine.results import Ranking, ScoreMatrix
from repro.graph.digraph import DiGraph
from repro.index.artifacts import (
    SimilarityIndex,
    build_compressed,
    build_transition,
)

__all__ = ["ColumnMemo", "EngineStats", "SimilarityEngine"]

_WEIGHTS = {
    "geometric": GeometricWeights,
    "exponential": ExponentialWeights,
}


@dataclass
class EngineStats:
    """Counters exposing what the engine actually built vs. reused.

    The cache-reuse tests and the CI smoke benchmark assert on these:
    serving repeated queries must not increment the ``*_builds``
    counters.
    """

    transition_builds: int = 0
    compression_builds: int = 0
    walk_builds: int = 0
    index_adoptions: int = 0
    matrix_builds: int = 0
    column_computes: int = 0
    column_evictions: int = 0
    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    def snapshot(self) -> dict:
        """A plain-dict copy (handy for logging and assertions)."""
        return dict(self.__dict__)

    def count_column_eviction(self) -> None:
        """:class:`ColumnMemo` eviction hook.

        Bound to the stats object, *not* the engine: an
        engine-bound callback would close the
        ``engine -> caches -> memo -> engine`` reference cycle,
        leaving every replaced engine generation (graph, artifacts —
        hundreds of MB at serving scale) to the cyclic collector
        instead of dying by refcount the moment a snapshot swap
        drops it.
        """
        self.column_evictions += 1


class ColumnMemo:
    """The per-query column memo, optionally bounded.

    A mapping of resolved query id to its read-only score column. With
    ``max_entries`` set, insertion beyond the bound evicts per
    ``policy`` — ``"lru"`` drops the least recently *served* column
    (each :meth:`get` refreshes recency), ``"fifo"`` the least
    recently *computed* one. The eviction count is surfaced through
    :attr:`EngineStats.column_evictions`.
    """

    __slots__ = (
        "_data", "max_entries", "policy", "evictions", "on_evict"
    )

    def __init__(
        self,
        max_entries: int | None = None,
        policy: str = "lru",
        on_evict=None,
    ) -> None:
        self._data: OrderedDict[int, np.ndarray] = OrderedDict()
        self.max_entries = max_entries
        self.policy = policy
        self.evictions = 0
        self.on_evict = on_evict

    def get(self, query: int) -> np.ndarray | None:
        column = self._data.get(query)
        if column is not None and self.policy == "lru":
            self._data.move_to_end(query)
        return column

    def put(self, query: int, column: np.ndarray) -> None:
        self._data[query] = column
        if self.policy == "lru":
            self._data.move_to_end(query)
        if self.max_entries is not None:
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)
                self.evictions += 1
                if self.on_evict is not None:
                    self.on_evict()

    def __contains__(self, query: int) -> bool:
        return query in self._data

    def __len__(self) -> int:
        return len(self._data)


@dataclass
class _Caches:
    """Everything :meth:`SimilarityEngine.invalidate` must drop."""

    transition: sp.csr_array | None = None
    transition_t: sp.csr_array | None = None
    compressed: CompressedGraph | None = None
    walks: WalkIndex | None = None
    estimator: ApproxEstimator | None = None
    matrix: ScoreMatrix | None = None
    columns: ColumnMemo = field(default_factory=ColumnMemo)


class SimilarityEngine:
    """Serve similarity queries over one graph with reusable precomputation.

    Examples
    --------
    >>> from repro.graph import figure1_citation_graph
    >>> engine = SimilarityEngine(
    ...     figure1_citation_graph(), measure="gSR*", c=0.8,
    ...     num_iterations=30,
    ... )
    >>> engine.score("h", "d") > 0        # labels work directly
    True
    >>> [r.label for r in engine.top_k("i", k=2)]
    ['d', 'e']

    Parameters
    ----------
    graph:
        The graph to serve queries over. The engine holds a reference
        (not a copy); mutate it through :meth:`add_edge` /
        :meth:`remove_edge` or call :meth:`invalidate` after external
        mutation.
    config:
        A :class:`SimilarityConfig`. Keyword overrides may be passed
        instead of (or on top of) it: ``SimilarityEngine(g, c=0.8)``.
    index:
        An optional prebuilt :class:`~repro.index.SimilarityIndex`.
        Its artifacts (``Q``, ``Q^T``, compressed factors, series
        coefficients) are adopted lazily instead of rebuilt; the index
        must fingerprint-match ``graph`` and the configuration or
        :exc:`~repro.index.IndexMismatchError` is raised immediately —
        a mismatched index would silently serve wrong scores.
    """

    def __init__(
        self,
        graph: DiGraph,
        config: SimilarityConfig | None = None,
        *,
        index: SimilarityIndex | None = None,
        **overrides,
    ) -> None:
        if config is None:
            config = SimilarityConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self._graph = graph
        self._config = config
        self._spec = get_measure(config.measure)
        if (
            config.weights != "auto"
            and config.weights != self._spec.weight_scheme
        ):
            raise ValueError(
                f"measure {config.measure!r} uses "
                f"{self._spec.weight_scheme!r} length weights; "
                f"config requested {config.weights!r}"
            )
        if (
            config.mode == "approx"
            and not self._spec.supports_single_source
        ):
            raise ValueError(
                f"measure {config.measure!r} has no single-source "
                "series support; mode='approx' estimates the series "
                "and cannot serve it"
            )
        self.stats = EngineStats()
        # Reentrant: artifact builds nest (transition_t -> transition,
        # _compute_columns -> both) and the serving layer may issue
        # concurrent first queries from a thread pool.
        self._lock = threading.RLock()
        if index is not None:
            index.verify_compatible(graph, config)
        self._index = index
        self._caches = self._fresh_caches()
        self._fingerprint = self._graph_fingerprint()

    @classmethod
    def from_index(
        cls,
        index: SimilarityIndex,
        graph: DiGraph,
        config: SimilarityConfig | None = None,
        **overrides,
    ) -> "SimilarityEngine":
        """An engine serving ``graph`` from a prebuilt index.

        With no explicit ``config`` the index's own recorded
        configuration is used (serving-only overrides such as
        ``max_cached_columns`` may still be passed), so the common
        restart path is just::

            index = SimilarityIndex.load("graph.simidx")   # mmap'd
            engine = SimilarityEngine.from_index(index, graph)

        The first query then pays only its own walk — ``Q`` / ``Q^T``
        / the compressed factors come from the (memory-mapped) index
        instead of being rebuilt. Fingerprint mismatches raise
        :exc:`~repro.index.IndexMismatchError`.
        """
        if config is None:
            config = index.similarity_config(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        return cls(graph, config, index=index)

    # ------------------------------------------------------------------
    # configuration / introspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DiGraph:
        """The graph being served."""
        return self._graph

    @property
    def config(self) -> SimilarityConfig:
        """The (immutable) configuration."""
        return self._config

    @property
    def measure(self) -> MeasureSpec:
        """The registered spec of the configured measure."""
        return self._spec

    @property
    def truncation(self) -> int:
        """The concrete iteration / term count all answers use."""
        return self._config.resolved_iterations(
            self._spec.variant, self._spec.default_iterations
        )

    def with_config(self, **changes) -> "SimilarityEngine":
        """A sibling engine on the same graph with a tweaked config.

        Caches are per-engine, so the two engines are independent
        (useful for comparing measures or damping factors side by
        side without cross-talk).
        """
        return SimilarityEngine(
            self._graph, self._config.replace(**changes)
        )

    def __repr__(self) -> str:
        return (
            f"SimilarityEngine(measure={self._spec.name!r}, "
            f"c={self._config.c}, truncation={self.truncation}, "
            f"graph={self._graph!r})"
        )

    # ------------------------------------------------------------------
    # cached artifacts
    # ------------------------------------------------------------------
    @property
    def index(self) -> SimilarityIndex | None:
        """The attached prebuilt index, if any (dropped on
        invalidation — a mutated graph no longer matches it)."""
        return self._index

    @property
    def transition(self) -> sp.csr_array:
        """The backward transition matrix ``Q``, built once.

        Adopted from the attached index when one is present (no
        rebuild, counted in ``EngineStats.index_adoptions``), else
        built in the configured :attr:`SimilarityConfig.dtype` by
        :func:`repro.index.build_transition`. Thread-safe: concurrent
        first touches race to the lock and exactly one thread builds
        (double-checked locking — the fast path after the build never
        takes the lock).
        """
        cached = self._caches.transition
        if cached is None:
            with self._lock:
                if self._caches.transition is None:
                    if (
                        self._index is not None
                        and self._index.transition is not None
                    ):
                        self._caches.transition = (
                            self._index.transition
                        )
                        self.stats.index_adoptions += 1
                    else:
                        self._caches.transition = build_transition(
                            self._graph, dtype=self._config.np_dtype
                        )
                        self.stats.transition_builds += 1
                cached = self._caches.transition
        return cached

    @property
    def transition_t(self) -> sp.csr_array:
        """``Q^T`` in CSR form, adopted from the index or built once
        (thread-safe first touch)."""
        cached = self._caches.transition_t
        if cached is None:
            with self._lock:
                if self._caches.transition_t is None:
                    if (
                        self._index is not None
                        and self._index.transition_t is not None
                    ):
                        self._caches.transition_t = (
                            self._index.transition_t
                        )
                        self.stats.index_adoptions += 1
                    else:
                        self._caches.transition_t = (
                            self.transition.T.tocsr()
                        )
                cached = self._caches.transition_t
        return cached

    @property
    def compressed(self) -> CompressedGraph:
        """The biclique-compressed graph ``G^``, built once
        (thread-safe first touch).

        With an index attached, the stored factor triple is
        reassembled instead of re-running biclique mining — the
        dominant cost of a cold start on graphs with real overlap.
        """
        cached = self._caches.compressed
        if cached is None:
            with self._lock:
                if self._caches.compressed is None:
                    if (
                        self._index is not None
                        and self._index.factors is not None
                    ):
                        self._caches.compressed = (
                            self._index.compressed_graph(self._graph)
                        )
                        self.stats.index_adoptions += 1
                    else:
                        self._caches.compressed = build_compressed(
                            self._graph
                        )
                        self.stats.compression_builds += 1
                cached = self._caches.compressed
        return cached

    @property
    def walk_index(self) -> WalkIndex:
        """The reverse-walk sample store of the approx tier.

        Adopted from the attached index when it carries walk segments
        (the memory-mapped cluster path — counted in
        ``EngineStats.index_adoptions``), else drawn once from the
        engine's ``Q`` with the geometry
        :func:`repro.approx.approx_params` resolves from the
        configuration (counted in ``EngineStats.walk_builds``).
        Thread-safe first touch, like every other artifact.
        """
        cached = self._caches.walks
        if cached is None:
            with self._lock:
                if self._caches.walks is None:
                    if (
                        self._index is not None
                        and self._index.walks is not None
                    ):
                        self._caches.walks = self._index.walks
                        self.stats.index_adoptions += 1
                    else:
                        walk_length, samples = approx_params(
                            self.truncation, self._config.epsilon
                        )
                        q = self.transition
                        if isinstance(q, CsrOverlay):
                            q = q.tocsr()
                        self._caches.walks = WalkIndex.build(
                            q,
                            walk_length=walk_length,
                            samples=samples,
                            seed=self._config.seed,
                        )
                        self.stats.walk_builds += 1
                cached = self._caches.walks
        return cached

    @property
    def _approx_estimator(self) -> ApproxEstimator:
        cached = self._caches.estimator
        if cached is None:
            with self._lock:
                if self._caches.estimator is None:
                    coefficients = (
                        self._index.coefficients
                        if self._index is not None
                        and self._index.coefficients is not None
                        else series_coefficients(
                            self.truncation, self._weight_scheme()
                        )
                    )
                    q = self.transition
                    if isinstance(q, CsrOverlay):
                        # the estimator walks raw CSR buffers
                        q = q.tocsr()
                    self._caches.estimator = ApproxEstimator(
                        self.walk_index,
                        q,
                        self.transition_t,
                        coefficients,
                        self.truncation,
                        dtype=self._config.np_dtype,
                    )
                cached = self._caches.estimator
        return cached

    def approx_status(self) -> dict | None:
        """Approx-tier counters for ``/status`` (``None`` when exact).

        Reports the resolved walk geometry, the walk index's byte
        size (0 until built/adopted), and the estimator's counters —
        samples drawn, early terminations, support truncations.
        """
        if self._config.mode != "approx":
            return None
        walk_length, samples = approx_params(
            self.truncation, self._config.epsilon
        )
        walks = self._caches.walks
        estimator = self._caches.estimator
        return {
            "epsilon": self._config.epsilon,
            "seed": self._config.seed,
            "walk_length": walk_length,
            "samples_per_node": samples,
            "index_bytes": walks.nbytes if walks is not None else 0,
            "estimator": (
                estimator.stats.snapshot()
                if estimator is not None
                else ApproxStats().snapshot()
            ),
        }

    def export_index(self) -> SimilarityIndex:
        """The engine's precomputation as a persistable index.

        Reuses every artifact the engine has already built (building
        the missing ones now, warming the engine as a side effect), so
        ``engine.export_index().save(path)`` after warmup costs only
        serialisation. When the engine was itself constructed from an
        index, that index is returned as-is.
        """
        if self._index is not None:
            return self._index
        spec = self._spec
        needs_transition = (
            spec.supports_single_source or "transition" in spec.uses
        )
        return SimilarityIndex.build(
            self._graph,
            self._config,
            transition=self.transition if needs_transition else None,
            transition_t=(
                self.transition_t if needs_transition else None
            ),
            compressed=(
                self.compressed if "compressed" in spec.uses else None
            ),
            walks=(
                self.walk_index
                if self._config.mode == "approx"
                else None
            ),
        )

    # ------------------------------------------------------------------
    # invalidation / mutation
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop every cached artifact and memoized result.

        An attached index is dropped too: invalidation means the graph
        (may have) changed, so the index's fingerprint no longer
        vouches for it — subsequent artifact touches rebuild from the
        live graph.
        """
        with self._lock:
            self.stats.invalidations += 1
            self._index = None
            self._caches = self._fresh_caches()
            self._fingerprint = self._graph_fingerprint()

    def _fresh_caches(self) -> _Caches:
        # the eviction hook binds to the stats object, never to the
        # engine — see EngineStats.count_column_eviction for why
        return _Caches(
            columns=ColumnMemo(
                self._config.max_cached_columns,
                self._config.column_policy,
                on_evict=self.stats.count_column_eviction,
            )
        )

    def add_edge(self, u, v) -> None:
        """Insert an edge (ids or labels) and invalidate the caches."""
        self._graph.add_edge(self._resolve(u), self._resolve(v))
        self.invalidate()

    def remove_edge(self, u, v) -> None:
        """Delete an edge (ids or labels) and invalidate the caches."""
        self._graph.remove_edge(self._resolve(u), self._resolve(v))
        self.invalidate()

    def _graph_fingerprint(self) -> tuple[int, int]:
        return (self._graph.num_nodes, self._graph.version)

    def _check_stale(self) -> None:
        # Cheap guard against callers mutating the graph directly: the
        # DiGraph mutation counter moves on every add_edge/remove_edge,
        # so a changed fingerprint means the caches describe an older
        # graph (this catches edge swaps that preserve the edge count).
        if self._graph_fingerprint() != self._fingerprint:
            self.invalidate()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def single_source(self, query) -> np.ndarray:
        """Scores of every node against ``query`` (column ``query``).

        Matches :func:`repro.core.queries.single_source`: entry ``i``
        is ``S[i, query]``. For asymmetric measures (``RWR``) this is
        the *column*, not the row — take
        ``np.asarray(engine.matrix())[query]`` for the other
        direction.

        The answer is memoized (subject to
        :attr:`SimilarityConfig.max_cached_columns`); the backing
        array is marked read-only because later calls may return the
        same object. Its dtype follows :attr:`SimilarityConfig.dtype`.
        """
        q = self._resolve(query)
        return self.columns((q,))[q]

    def columns(self, queries: Sequence) -> Mapping[int, np.ndarray]:
        """Memoized score columns for many queries, resolved-id keyed.

        The serving primitive: all fresh (un-memoized) query columns
        are evaluated together through one blocked multi-source walk,
        memoized ones come from the column memo, and the returned
        dict holds every requested column even when the memo's bound
        forces same-batch evictions. Duplicate queries collapse.
        Thread-safe — this is what the request broker in
        :mod:`repro.serve` dispatches each coalesced micro-batch
        through.
        """
        self._check_stale()
        ids = [self._resolve(q) for q in queries]
        out: dict[int, np.ndarray] = {}
        with self._lock:
            fresh: list[int] = []
            for q in dict.fromkeys(ids):  # ordered de-dup
                cached = self._caches.columns.get(q)
                if cached is not None:
                    self.stats.hits += 1
                    out[q] = cached
                else:
                    fresh.append(q)
            if fresh:
                self.stats.misses += len(fresh)
                if self._config.mode == "approx":
                    for q in fresh:
                        out[q] = self._approx_column(q)
                elif (
                    self._spec.supports_single_source
                    and self._caches.matrix is None
                ):
                    out.update(self._compute_columns(tuple(fresh)))
                else:
                    for q in fresh:
                        out[q] = self._column_from_matrix(q)
        return out

    def _approx_column(self, q: int) -> np.ndarray:
        """One fresh Monte-Carlo column (memoized like exact ones)."""
        scores = self._approx_estimator.column(q)
        scores.flags.writeable = False
        self._caches.columns.put(q, scores)
        self.stats.column_computes += 1
        return scores

    def _compute_columns(
        self, queries: Sequence[int]
    ) -> dict[int, np.ndarray]:
        """Series-walk the given fresh query columns in one blocked call.

        ``queries`` must be distinct resolved ids that are not yet
        cached; each lands in the column memo as a read-only array and
        counts as one ``column_computes``. The computed columns are
        also returned directly, so callers stay correct when a bounded
        memo evicts part of a batch wider than its limit.
        """
        block = _series_block(
            self._graph,
            queries,
            c=self._config.c,
            num_terms=self.truncation,
            weights=self._weight_scheme(),
            transition=self.transition,
            transition_t=self.transition_t,
            dtype=self._config.np_dtype,
            coefficients=(
                self._index.coefficients
                if self._index is not None
                else None
            ),
        )
        computed: dict[int, np.ndarray] = {}
        for j, q in enumerate(queries):
            scores = np.ascontiguousarray(block[:, j])
            scores.flags.writeable = False
            self._caches.columns.put(q, scores)
            self.stats.column_computes += 1
            computed[q] = scores
        return computed

    def _column_from_matrix(self, q: int) -> np.ndarray:
        # bypass matrix()'s hit/miss accounting: this is one logical
        # query, already counted as a column miss by the caller. A
        # view, not a copy — the matrix cache already owns the data
        # and is frozen read-only. Kept in the matrix's own dtype:
        # measures that do not declare dtype support serve float64
        # even under a float32 config, and columns must agree with
        # matrix().
        if self._caches.matrix is None:
            self._build_matrix()
        scores = np.asarray(self._caches.matrix)[:, q]
        scores.flags.writeable = False
        self._caches.columns.put(q, scores)
        return scores

    def score(self, u, v) -> float:
        """The similarity of one node pair (ids or labels).

        Reuses whichever query column is already cached before
        computing a new one.
        """
        self._check_stale()
        ui, vi = self._resolve(u), self._resolve(v)
        with self._lock:
            columns = self._caches.columns
            cached = columns.get(vi)
            if cached is not None:
                self.stats.hits += 1
                return float(cached[ui])
            if self._spec.symmetric:
                cached = columns.get(ui)
                if cached is not None:
                    self.stats.hits += 1
                    return float(cached[vi])
        return float(self.single_source(vi)[ui])

    def top_k(
        self,
        query,
        k: int = 10,
        include_query: bool = False,
        exclude: Iterable = (),
    ) -> Ranking:
        """The ``k`` nodes most similar to ``query``, label-aware.

        ``exclude`` drops specific nodes (ids or labels) from the
        ranking — e.g. a recommender excluding already-linked nodes.

        In approx mode an uncached query is answered by the
        estimator's early-terminating top-k sweep
        (:meth:`~repro.approx.ApproxEstimator.topk_scores`) — cost
        bounded by the sample budget, never ``O(n)`` — and the
        partial score column is *not* memoized; a column already
        memoized by :meth:`columns` / :meth:`score` is reused as-is.
        """
        self._check_stale()
        q = self._resolve(query)
        if self._config.mode == "approx":
            with self._lock:
                cached = self._caches.columns.get(q)
                if cached is not None:
                    self.stats.hits += 1
                    scores = cached
                else:
                    self.stats.misses += 1
                    scores = self._approx_estimator.topk_scores(q, k)
        else:
            scores = self.single_source(q)
        return Ranking.from_scores(
            scores,
            query=q,
            k=k,
            labels=self._graph.labels,
            include_query=include_query,
            exclude={self._resolve(x) for x in exclude},
            measure=self._spec.name,
        )

    def batch_top_k(
        self,
        queries: Sequence,
        k: int = 10,
        include_query: bool = False,
    ) -> list[Ranking]:
        """One :class:`Ranking` per query, sharing all precomputation.

        Fresh query columns are evaluated together by the blocked
        multi-source kernel (:func:`repro.core.multi_source.multi_source`)
        — one grid walk of sparse x ``(n, B)`` products instead of
        ``B`` independent ``O(L^2)`` mat-vec walks — so serving a
        batch costs barely more than serving its slowest member.
        Already-memoized queries are served from the column cache as
        usual; duplicates collapse before the walk (one hit or miss
        per distinct query).
        """
        self._check_stale()
        ids = [self._resolve(q) for q in queries]
        cols = self.columns(ids)
        labels = self._graph.labels
        return [
            Ranking.from_scores(
                cols[q],
                query=q,
                k=k,
                labels=labels,
                include_query=include_query,
                measure=self._spec.name,
            )
            for q in ids
        ]

    def matrix(self) -> ScoreMatrix:
        """The full ``n x n`` score matrix, computed once and memoized.

        Cached artifacts the measure can consume (``Q``, the
        compressed graph) are passed through, so a later ``matrix()``
        after some queries does not redo their work — and vice versa.
        """
        self._check_stale()
        with self._lock:
            if self._caches.matrix is None:
                self.stats.misses += 1
                self._build_matrix()
            else:
                self.stats.hits += 1
            return self._caches.matrix

    def _build_matrix(self) -> None:
        kwargs = {}
        if "transition" in self._spec.uses:
            q = self.transition
            if isinstance(q, CsrOverlay):
                # measure callables expect a real scipy CSR; the
                # overlay only serves the spmm-based column kernels
                q = q.tocsr()
            kwargs["transition"] = q
        if "compressed" in self._spec.uses:
            kwargs["compressed"] = self.compressed
        if "dtype" in self._spec.uses:
            kwargs["dtype"] = self._config.np_dtype
        values = self._spec.compute(
            self._graph, self._config.c, self.truncation, **kwargs
        )
        matrix = ScoreMatrix(
            values,
            labels=self._graph.labels,
            measure=self._spec.name,
        )
        # freeze the memoized buffer: np.asarray(engine.matrix())
        # shares it, and a caller writing through a view would
        # corrupt every subsequent answer
        matrix.values.flags.writeable = False
        self._caches.matrix = matrix
        self.stats.matrix_builds += 1

    # ------------------------------------------------------------------
    # internal
    # ------------------------------------------------------------------
    def _weight_scheme(self) -> WeightScheme:
        # only reached on the series path, and the registry rejects
        # supports_single_source without a weight_scheme — so the
        # resolved name is never None here
        name = self._config.resolved_weights(self._spec.weight_scheme)
        return _WEIGHTS[name](self._config.c)

    def resolve_node(self, node) -> int:
        """Map an id or label to this graph's dense node id.

        The public face of the engine's internal resolution rule,
        used by the serving layer to pin label resolution to one
        snapshot before batching.
        """
        return self._resolve(node)

    def _resolve(self, node) -> int:
        """Map an id or label to a dense node id.

        Integers are always interpreted as node ids (matching
        :class:`ScoreMatrix`); anything else is looked up as a label.
        """
        if isinstance(node, (int, np.integer)):
            v = int(node)
            if not 0 <= v < self._graph.num_nodes:
                raise IndexError(
                    f"node {v} out of range for graph with "
                    f"{self._graph.num_nodes} nodes"
                )
            return v
        return self._graph.node_of(node)
