"""The stateful query-serving engine.

A :class:`SimilarityEngine` is constructed once per (graph, config)
pair and then serves many queries. The expensive shared structure —
the backward transition matrix ``Q``, its transpose, the
biclique-compressed graph ``G^`` (``m -> m~``), the truncation length
implied by an accuracy target — is built lazily on first use and
reused by every subsequent query, which is exactly the regime the
paper's preprocessing (Algorithm 1 lines 1-2) is designed for. Results
are memoized per query; :meth:`SimilarityEngine.invalidate` (called
automatically by the engine's own mutation helpers, and triggered by a
cheap staleness check against the graph's mutation counter) drops
everything.

Measure dispatch goes through :mod:`repro.engine.registry`; each
:class:`MeasureSpec` declares which cached artifacts its callable can
consume and whether its columns can be served by the ``O(L^2 m)``
series walk instead of a full ``O(K n m)`` matrix build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.bigraph.compressed import CompressedGraph
from repro.bigraph.concentration import compress_graph
from repro.core.multi_source import multi_source as _series_block
from repro.core.weights import (
    ExponentialWeights,
    GeometricWeights,
    WeightScheme,
)
from repro.engine.config import SimilarityConfig
from repro.engine.registry import MeasureSpec, get_measure
from repro.engine.results import Ranking, ScoreMatrix
from repro.graph.digraph import DiGraph
from repro.graph.matrices import backward_transition_matrix

__all__ = ["EngineStats", "SimilarityEngine"]

_WEIGHTS = {
    "geometric": GeometricWeights,
    "exponential": ExponentialWeights,
}


@dataclass
class EngineStats:
    """Counters exposing what the engine actually built vs. reused.

    The cache-reuse tests and the CI smoke benchmark assert on these:
    serving repeated queries must not increment the ``*_builds``
    counters.
    """

    transition_builds: int = 0
    compression_builds: int = 0
    matrix_builds: int = 0
    column_computes: int = 0
    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    def snapshot(self) -> dict:
        """A plain-dict copy (handy for logging and assertions)."""
        return dict(self.__dict__)


@dataclass
class _Caches:
    """Everything :meth:`SimilarityEngine.invalidate` must drop."""

    transition: sp.csr_array | None = None
    transition_t: sp.csr_array | None = None
    compressed: CompressedGraph | None = None
    matrix: ScoreMatrix | None = None
    columns: dict[int, np.ndarray] = field(default_factory=dict)


class SimilarityEngine:
    """Serve similarity queries over one graph with reusable precomputation.

    Examples
    --------
    >>> from repro.graph import figure1_citation_graph
    >>> engine = SimilarityEngine(
    ...     figure1_citation_graph(), measure="gSR*", c=0.8,
    ...     num_iterations=30,
    ... )
    >>> engine.score("h", "d") > 0        # labels work directly
    True
    >>> [r.label for r in engine.top_k("i", k=2)]
    ['d', 'e']

    Parameters
    ----------
    graph:
        The graph to serve queries over. The engine holds a reference
        (not a copy); mutate it through :meth:`add_edge` /
        :meth:`remove_edge` or call :meth:`invalidate` after external
        mutation.
    config:
        A :class:`SimilarityConfig`. Keyword overrides may be passed
        instead of (or on top of) it: ``SimilarityEngine(g, c=0.8)``.
    """

    def __init__(
        self,
        graph: DiGraph,
        config: SimilarityConfig | None = None,
        **overrides,
    ) -> None:
        if config is None:
            config = SimilarityConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self._graph = graph
        self._config = config
        self._spec = get_measure(config.measure)
        if (
            config.weights != "auto"
            and config.weights != self._spec.weight_scheme
        ):
            raise ValueError(
                f"measure {config.measure!r} uses "
                f"{self._spec.weight_scheme!r} length weights; "
                f"config requested {config.weights!r}"
            )
        self.stats = EngineStats()
        self._caches = _Caches()
        self._fingerprint = self._graph_fingerprint()

    # ------------------------------------------------------------------
    # configuration / introspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DiGraph:
        """The graph being served."""
        return self._graph

    @property
    def config(self) -> SimilarityConfig:
        """The (immutable) configuration."""
        return self._config

    @property
    def measure(self) -> MeasureSpec:
        """The registered spec of the configured measure."""
        return self._spec

    @property
    def truncation(self) -> int:
        """The concrete iteration / term count all answers use."""
        return self._config.resolved_iterations(
            self._spec.variant, self._spec.default_iterations
        )

    def with_config(self, **changes) -> "SimilarityEngine":
        """A sibling engine on the same graph with a tweaked config.

        Caches are per-engine, so the two engines are independent
        (useful for comparing measures or damping factors side by
        side without cross-talk).
        """
        return SimilarityEngine(
            self._graph, self._config.replace(**changes)
        )

    def __repr__(self) -> str:
        return (
            f"SimilarityEngine(measure={self._spec.name!r}, "
            f"c={self._config.c}, truncation={self.truncation}, "
            f"graph={self._graph!r})"
        )

    # ------------------------------------------------------------------
    # cached artifacts
    # ------------------------------------------------------------------
    @property
    def transition(self) -> sp.csr_array:
        """The backward transition matrix ``Q``, built once.

        Built in the configured :attr:`SimilarityConfig.dtype`.
        """
        if self._caches.transition is None:
            self._caches.transition = backward_transition_matrix(
                self._graph, dtype=self._config.np_dtype
            )
            self.stats.transition_builds += 1
        return self._caches.transition

    @property
    def transition_t(self) -> sp.csr_array:
        """``Q^T`` in CSR form, built once."""
        if self._caches.transition_t is None:
            self._caches.transition_t = self.transition.T.tocsr()
        return self._caches.transition_t

    @property
    def compressed(self) -> CompressedGraph:
        """The biclique-compressed graph ``G^``, built once."""
        if self._caches.compressed is None:
            self._caches.compressed = compress_graph(self._graph)
            self.stats.compression_builds += 1
        return self._caches.compressed

    # ------------------------------------------------------------------
    # invalidation / mutation
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop every cached artifact and memoized result."""
        self.stats.invalidations += 1
        self._caches = _Caches()
        self._fingerprint = self._graph_fingerprint()

    def add_edge(self, u, v) -> None:
        """Insert an edge (ids or labels) and invalidate the caches."""
        self._graph.add_edge(self._resolve(u), self._resolve(v))
        self.invalidate()

    def remove_edge(self, u, v) -> None:
        """Delete an edge (ids or labels) and invalidate the caches."""
        self._graph.remove_edge(self._resolve(u), self._resolve(v))
        self.invalidate()

    def _graph_fingerprint(self) -> tuple[int, int]:
        return (self._graph.num_nodes, self._graph.version)

    def _check_stale(self) -> None:
        # Cheap guard against callers mutating the graph directly: the
        # DiGraph mutation counter moves on every add_edge/remove_edge,
        # so a changed fingerprint means the caches describe an older
        # graph (this catches edge swaps that preserve the edge count).
        if self._graph_fingerprint() != self._fingerprint:
            self.invalidate()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def single_source(self, query) -> np.ndarray:
        """Scores of every node against ``query`` (column ``query``).

        Matches :func:`repro.core.queries.single_source`: entry ``i``
        is ``S[i, query]``. For asymmetric measures (``RWR``) this is
        the *column*, not the row — take
        ``np.asarray(engine.matrix())[query]`` for the other
        direction.

        The answer is memoized; the backing array is marked read-only
        because later calls return the same object. Its dtype follows
        :attr:`SimilarityConfig.dtype`.
        """
        self._check_stale()
        q = self._resolve(query)
        cached = self._caches.columns.get(q)
        if cached is not None:
            self.stats.hits += 1
            return cached
        self.stats.misses += 1
        if (
            self._spec.supports_single_source
            and self._caches.matrix is None
        ):
            self._compute_columns((q,))
        else:
            # bypass matrix()'s hit/miss accounting: this is one
            # logical query, already counted as a column miss above.
            # A view, not a copy — the matrix cache already owns the
            # data and is frozen read-only.
            if self._caches.matrix is None:
                self._build_matrix()
            # kept in the matrix's own dtype: measures that do not
            # declare dtype support serve float64 even under a
            # float32 config, and columns must agree with matrix()
            scores = np.asarray(self._caches.matrix)[:, q]
            scores.flags.writeable = False
            self._caches.columns[q] = scores
        return self._caches.columns[q]

    def _compute_columns(self, queries: Sequence[int]) -> None:
        """Series-walk the given fresh query columns in one blocked call.

        ``queries`` must be distinct resolved ids that are not yet
        cached; each lands in the column memo as a read-only array and
        counts as one ``column_computes``.
        """
        block = _series_block(
            self._graph,
            queries,
            c=self._config.c,
            num_terms=self.truncation,
            weights=self._weight_scheme(),
            transition=self.transition,
            transition_t=self.transition_t,
            dtype=self._config.np_dtype,
        )
        for j, q in enumerate(queries):
            scores = np.ascontiguousarray(block[:, j])
            scores.flags.writeable = False
            self._caches.columns[q] = scores
            self.stats.column_computes += 1

    def score(self, u, v) -> float:
        """The similarity of one node pair (ids or labels).

        Reuses whichever query column is already cached before
        computing a new one.
        """
        self._check_stale()
        ui, vi = self._resolve(u), self._resolve(v)
        columns = self._caches.columns
        if vi in columns:
            self.stats.hits += 1
            return float(columns[vi][ui])
        if ui in columns and self._spec.symmetric:
            self.stats.hits += 1
            return float(columns[ui][vi])
        return float(self.single_source(v)[ui])

    def top_k(
        self,
        query,
        k: int = 10,
        include_query: bool = False,
        exclude: Iterable = (),
    ) -> Ranking:
        """The ``k`` nodes most similar to ``query``, label-aware.

        ``exclude`` drops specific nodes (ids or labels) from the
        ranking — e.g. a recommender excluding already-linked nodes.
        """
        self._check_stale()
        q = self._resolve(query)
        scores = self.single_source(q)
        return Ranking.from_scores(
            scores,
            query=q,
            k=k,
            labels=self._graph.labels,
            include_query=include_query,
            exclude={self._resolve(x) for x in exclude},
            measure=self._spec.name,
        )

    def batch_top_k(
        self,
        queries: Sequence,
        k: int = 10,
        include_query: bool = False,
    ) -> list[Ranking]:
        """One :class:`Ranking` per query, sharing all precomputation.

        Fresh query columns are evaluated together by the blocked
        multi-source kernel (:func:`repro.core.multi_source.multi_source`)
        — one grid walk of sparse x ``(n, B)`` products instead of
        ``B`` independent ``O(L^2)`` mat-vec walks — so serving a
        batch costs barely more than serving its slowest member.
        Already-memoized and duplicate queries are served from the
        column cache as usual.
        """
        self._check_stale()
        ids = [self._resolve(q) for q in queries]
        newly: set[int] = set()
        if (
            self._spec.supports_single_source
            and self._caches.matrix is None
        ):
            fresh = [
                q
                for q in dict.fromkeys(ids)  # ordered de-dup
                if q not in self._caches.columns
            ]
            if fresh:
                self.stats.misses += len(fresh)
                self._compute_columns(fresh)
                newly.update(fresh)
        rankings = []
        for q in ids:
            cached = self._caches.columns.get(q)
            if cached is not None:
                # a column computed by this very call is a miss that
                # was already counted, not a memo hit
                if q in newly:
                    newly.discard(q)
                else:
                    self.stats.hits += 1
                scores = cached
            else:
                scores = self.single_source(q)
            rankings.append(
                Ranking.from_scores(
                    scores,
                    query=q,
                    k=k,
                    labels=self._graph.labels,
                    include_query=include_query,
                    measure=self._spec.name,
                )
            )
        return rankings

    def matrix(self) -> ScoreMatrix:
        """The full ``n x n`` score matrix, computed once and memoized.

        Cached artifacts the measure can consume (``Q``, the
        compressed graph) are passed through, so a later ``matrix()``
        after some queries does not redo their work — and vice versa.
        """
        self._check_stale()
        if self._caches.matrix is None:
            self.stats.misses += 1
            self._build_matrix()
        else:
            self.stats.hits += 1
        return self._caches.matrix

    def _build_matrix(self) -> None:
        kwargs = {}
        if "transition" in self._spec.uses:
            kwargs["transition"] = self.transition
        if "compressed" in self._spec.uses:
            kwargs["compressed"] = self.compressed
        if "dtype" in self._spec.uses:
            kwargs["dtype"] = self._config.np_dtype
        values = self._spec.compute(
            self._graph, self._config.c, self.truncation, **kwargs
        )
        matrix = ScoreMatrix(
            values,
            labels=self._graph.labels,
            measure=self._spec.name,
        )
        # freeze the memoized buffer: np.asarray(engine.matrix())
        # shares it, and a caller writing through a view would
        # corrupt every subsequent answer
        matrix.values.flags.writeable = False
        self._caches.matrix = matrix
        self.stats.matrix_builds += 1

    # ------------------------------------------------------------------
    # internal
    # ------------------------------------------------------------------
    def _weight_scheme(self) -> WeightScheme:
        # only reached on the series path, and the registry rejects
        # supports_single_source without a weight_scheme — so name
        # is never None here
        name = self._spec.weight_scheme
        if self._config.weights != "auto":
            name = self._config.weights
        return _WEIGHTS[name](self._config.c)

    def _resolve(self, node) -> int:
        """Map an id or label to a dense node id.

        Integers are always interpreted as node ids (matching
        :class:`ScoreMatrix`); anything else is looked up as a label.
        """
        if isinstance(node, (int, np.integer)):
            v = int(node)
            if not 0 <= v < self._graph.num_nodes:
                raise IndexError(
                    f"node {v} out of range for graph with "
                    f"{self._graph.num_nodes} nodes"
                )
            return v
        return self._graph.node_of(node)
