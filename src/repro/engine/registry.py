"""The pluggable measure registry behind :mod:`repro.measures`.

Every similarity measure is registered once, with metadata, via the
:func:`register_measure` decorator::

    @register_measure(
        "gSR*",
        label="SimRank* (geometric)",
        family="SimRank*",
        semantic=True,
        supports_single_source=True,
        uses=("transition",),
    )
    def _gsr(graph, c, num_iterations, **artifacts):
        ...

The registry replaces the former ad-hoc lambda dicts: the old
``MEASURES`` / ``SEMANTIC_MEASURES`` / ``TIMED_ALGORITHMS`` mappings in
:mod:`repro.measures` are now *views* over it, and
:class:`~repro.engine.engine.SimilarityEngine` dispatches through it,
using each spec's capability flags to decide how a measure may be
served (single-source series column vs. full matrix; which cached
artifacts its callable accepts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

__all__ = [
    "MeasureSpec",
    "MeasureView",
    "available_measures",
    "get_measure",
    "measure_names",
    "register_measure",
]

#: Artifact names a measure's callable may accept as keyword arguments.
#: ``"transition"`` — the cached backward transition matrix ``Q``;
#: ``"compressed"`` — the biclique-compressed :class:`CompressedGraph`;
#: ``"dtype"`` — the engine's configured arithmetic precision (a numpy
#: dtype; declared by measures whose kernels take a ``dtype=`` option).
KNOWN_ARTIFACTS = ("transition", "compressed", "dtype")


@dataclass(frozen=True)
class MeasureSpec:
    """One registered similarity measure plus its serving metadata.

    Attributes
    ----------
    name:
        Registry key — the paper's algorithm label (``"gSR*"``, ...).
    compute:
        ``compute(graph, c, num_iterations, **artifacts) -> ndarray``.
        The artifact keywords it accepts are listed in ``uses``.
    label:
        Human-readable display name.
    family:
        Measure family (``"SimRank*"``, ``"SimRank"``, ``"P-Rank"``,
        ``"RWR"``).
    semantic:
        Part of the Figure 6(a)-(c) semantic comparison.
    timed:
        Part of the Figure 6(e)-(h) efficiency comparison.
    supports_single_source:
        One column can be served by the ``O(L^2 m)`` series walk of
        :func:`repro.core.queries.single_source` and agrees with this
        measure's full matrix. When false, the engine serves columns
        by slicing the (memoized) full matrix instead.
    symmetric:
        ``S = S^T`` holds for this measure.
    weight_scheme:
        Length-weight scheme underlying the measure (``"geometric"``,
        ``"exponential"``) or ``None`` for non-SimRank* measures.
    variant:
        How an ``epsilon`` accuracy target converts to an iteration
        count (:func:`repro.core.convergence.iterations_for_accuracy`).
    default_iterations:
        Iteration count used when the caller fixes neither
        ``num_iterations`` nor ``epsilon``.
    uses:
        Cached-artifact keywords ``compute`` accepts (subset of
        :data:`KNOWN_ARTIFACTS`).
    description:
        One-line summary for docs and CLIs.

    Examples
    --------
    >>> from repro import get_measure
    >>> spec = get_measure("gSR*")
    >>> spec.name, spec.family, spec.supports_single_source
    ('gSR*', 'SimRank*', True)
    """

    name: str
    compute: Callable
    label: str
    family: str
    semantic: bool = False
    timed: bool = False
    supports_single_source: bool = False
    symmetric: bool = True
    weight_scheme: str | None = None
    variant: str = "geometric"
    default_iterations: int = 5
    uses: tuple[str, ...] = ()
    description: str = ""


_REGISTRY: dict[str, MeasureSpec] = {}
_builtins_loaded = False


def register_measure(
    name: str,
    *,
    label: str,
    family: str,
    semantic: bool = False,
    timed: bool = False,
    supports_single_source: bool = False,
    symmetric: bool = True,
    weight_scheme: str | None = None,
    variant: str = "geometric",
    default_iterations: int = 5,
    uses: tuple[str, ...] = (),
    description: str = "",
) -> Callable:
    """Decorator registering ``fn`` as the measure called ``name``.

    Returns ``fn`` unchanged, so plain calls keep working. Registering
    a name twice is an error (measures are global, like entry
    points) — except for the *same* function re-registered by a module
    re-import, which is treated as idempotent.

    Examples
    --------
    A toy measure becomes engine-servable the moment it registers:

    >>> import numpy as np
    >>> from repro import DiGraph, SimilarityEngine, register_measure
    >>> @register_measure("doc-identity", label="Identity",
    ...                   family="demo", default_iterations=1)
    ... def identity_measure(graph, c, num_iterations):
    ...     return np.eye(graph.num_nodes)
    >>> engine = SimilarityEngine(
    ...     DiGraph(2, edges=[(0, 1)]), measure="doc-identity")
    >>> engine.score(0, 0)
    1.0
    """
    unknown = set(uses) - set(KNOWN_ARTIFACTS)
    if unknown:
        raise ValueError(
            f"unknown artifact(s) {sorted(unknown)}; "
            f"choose from {KNOWN_ARTIFACTS}"
        )
    if supports_single_source and weight_scheme is None:
        # the single-source fast path IS the weighted series walk;
        # without a scheme the engine would serve columns that
        # contradict the measure's own matrix
        raise ValueError(
            "supports_single_source=True requires a weight_scheme"
        )

    def decorator(fn: Callable) -> Callable:
        existing = _REGISTRY.get(name)
        if existing is not None:
            # Re-executing the defining module (a retried import after
            # a transient failure, importlib.reload in a REPL) hits
            # this guard with a fresh function object for the same
            # source definition; treat that as idempotent replacement
            # and only reject genuinely conflicting registrations.
            same_origin = (
                getattr(existing.compute, "__module__", None)
                == getattr(fn, "__module__", None)
                and getattr(existing.compute, "__qualname__", None)
                == getattr(fn, "__qualname__", None)
            )
            if not same_origin:
                raise ValueError(
                    f"measure {name!r} is already registered"
                )
        _REGISTRY[name] = MeasureSpec(
            name=name,
            compute=fn,
            label=label,
            family=family,
            semantic=semantic,
            timed=timed,
            supports_single_source=supports_single_source,
            symmetric=symmetric,
            weight_scheme=weight_scheme,
            variant=variant,
            default_iterations=default_iterations,
            uses=tuple(uses),
            description=description,
        )
        return fn

    return decorator


def _ensure_builtins() -> None:
    """Load :mod:`repro.measures`, whose import registers the built-ins."""
    global _builtins_loaded
    if not _builtins_loaded:
        import repro.measures  # noqa: F401

        # only after a successful import: a failed one should re-raise
        # on the next call, not leave a silently empty registry
        _builtins_loaded = True


def get_measure(name: str) -> MeasureSpec:
    """The spec registered under ``name`` (KeyError with choices if absent).

    >>> from repro import get_measure
    >>> get_measure("eSR*").weight_scheme
    'exponential'
    """
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown measure {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None


def measure_names() -> list[str]:
    """All registered measure names, in registration order."""
    _ensure_builtins()
    return list(_REGISTRY)


class MeasureView(Mapping):
    """A live ``name -> compute`` mapping over the registry.

    Backs the historical ``MEASURES`` / ``SEMANTIC_MEASURES`` /
    ``TIMED_ALGORITHMS`` dicts in :mod:`repro.measures`. Being a view
    rather than a snapshot, measures registered at runtime through
    :func:`register_measure` appear here too (and therefore in the
    experiment sweeps that iterate these mappings).
    """

    __slots__ = ("_semantic", "_timed")

    def __init__(
        self,
        semantic: bool | None = None,
        timed: bool | None = None,
    ) -> None:
        self._semantic = semantic
        self._timed = timed

    def _specs(self) -> dict[str, MeasureSpec]:
        return available_measures(
            semantic=self._semantic, timed=self._timed
        )

    def __getitem__(self, name: str) -> Callable:
        spec = self._specs().get(name)
        if spec is None:
            raise KeyError(name)
        return spec.compute

    def __iter__(self) -> Iterator[str]:
        return iter(self._specs())

    def __len__(self) -> int:
        return len(self._specs())

    def __repr__(self) -> str:
        return f"MeasureView({list(self._specs())})"


def available_measures(
    *,
    semantic: bool | None = None,
    timed: bool | None = None,
    family: str | None = None,
) -> dict[str, MeasureSpec]:
    """Registered specs, optionally filtered by metadata.

    Returned in registration order, which the experiment tables rely on
    for stable row ordering.

    >>> from repro import available_measures
    >>> measures = available_measures()
    >>> "gSR*" in measures and "SR" in measures
    True
    >>> all(s.family == "RWR"
    ...     for s in available_measures(family="RWR").values())
    True
    """
    _ensure_builtins()
    out = {}
    for name, spec in _REGISTRY.items():
        if semantic is not None and spec.semantic != semantic:
            continue
        if timed is not None and spec.timed != timed:
            continue
        if family is not None and spec.family != family:
            continue
        out[name] = spec
    return out
