"""Typed configuration for :class:`~repro.engine.engine.SimilarityEngine`.

A :class:`SimilarityConfig` pins everything about *how* similarity is
computed — measure, damping factor, truncation (explicit iteration
count or an accuracy target), weight scheme — so an engine's cached
artifacts and memoized results are unambiguous. All fields validate on
construction through :mod:`repro.validation`, giving every entry point
the same errors for the same mistakes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.convergence import iterations_for_accuracy
from repro.validation import (
    validate_damping,
    validate_epsilon,
    validate_iterations,
)

__all__ = [
    "COLUMN_POLICIES",
    "DTYPES",
    "MODES",
    "SimilarityConfig",
    "WEIGHT_SCHEMES",
]

#: Recognised values of :attr:`SimilarityConfig.weights`. ``"auto"``
#: defers to the measure's own scheme (geometric for ``gSR*``-family,
#: exponential for ``eSR*``-family, none for the baselines).
WEIGHT_SCHEMES = ("auto", "geometric", "exponential")

#: Recognised values of :attr:`SimilarityConfig.dtype`. ``float64`` is
#: the default; ``float32`` halves kernel memory traffic at ~1e-4
#: relative accuracy (well inside the paper's eps = 1e-3 regime).
DTYPES = ("float64", "float32")

#: Recognised values of :attr:`SimilarityConfig.column_policy` — the
#: eviction order of the per-query column memo once
#: :attr:`SimilarityConfig.max_cached_columns` is set. ``"lru"`` evicts
#: the least recently *served* column, ``"fifo"`` the least recently
#: *computed* one (cheaper bookkeeping, better for scan-like traffic
#: that never repeats).
COLUMN_POLICIES = ("lru", "fifo")

#: Recognised values of :attr:`SimilarityConfig.mode`. ``"exact"``
#: (default) serves every column through the deterministic kernels;
#: ``"approx"`` routes single-source/top-k answers through the
#: Monte-Carlo walk-index tier (:mod:`repro.approx`), trading a small
#: bounded estimation error for per-query cost that no longer scales
#: with the full series walk.
MODES = ("exact", "approx")


@dataclass(frozen=True)
class SimilarityConfig:
    """How a :class:`SimilarityEngine` computes similarity.

    Parameters
    ----------
    measure:
        Registry name of the measure to serve (``"gSR*"``, ``"eSR*"``,
        ``"SR"``, ... — see :func:`repro.engine.available_measures`).
    c:
        Damping factor in ``(0, 1)``; the paper's default is 0.6.
    num_iterations:
        Truncation length ``K``. In ``mode="exact"`` this is mutually
        exclusive with ``epsilon``; when both are omitted the
        measure's default is used.
    epsilon:
        Accuracy target in ``(0, 1)``. In ``mode="exact"`` it is
        converted to an iteration count via the measure's error bound
        (Lemma 3 / Eq. (12)) and may not be combined with
        ``num_iterations``. In ``mode="approx"`` it is the estimator's
        accuracy knob — it sizes the walk sample budget
        (:func:`repro.approx.samples_for_epsilon`) and, when
        ``num_iterations`` is omitted, still resolves the truncation —
        so the two may be given together there (truncation from
        ``num_iterations``, sampling budget from ``epsilon``).
    weights:
        Length-weight scheme for the single-source series path.
        ``"auto"`` (default) uses the measure's own scheme; naming a
        scheme that disagrees with the measure is rejected when the
        engine is built, because mixed schemes would break the
        engine's matrix/column consistency guarantee.
    dtype:
        Arithmetic precision of the serving kernels — ``"float64"``
        (default) or ``"float32"`` (numpy dtype objects are accepted
        and normalised). Threaded through the transition-matrix
        builders and every kernel that supports it; measures without
        dtype support silently serve ``float64``.
    max_cached_columns:
        Upper bound on the engine's per-query column memo. ``None``
        (default) keeps every column ever computed — fine for batch
        analytics, unbounded growth under sustained distinct-query
        serving traffic. With a bound set, the memo evicts per
        :attr:`column_policy` and counts evictions in
        ``EngineStats.column_evictions``.
    column_policy:
        Eviction order of the bounded column memo: ``"lru"`` (default)
        or ``"fifo"``. Ignored while ``max_cached_columns`` is
        ``None``.
    mode:
        ``"exact"`` (default) or ``"approx"``. Approx mode serves
        single-source columns and top-k rankings from the
        precomputed reverse-random-walk index (:mod:`repro.approx`)
        instead of the exact series kernels; it requires a measure
        with single-source (series) support.
    seed:
        Random seed of the approx tier's walk sampling. Part of the
        index fingerprint in approx mode — two engines with the same
        seed (and epsilon) produce bit-identical estimates. Ignored
        in exact mode.

    Examples
    --------
    >>> from repro import SimilarityConfig
    >>> config = SimilarityConfig(measure="gSR*", c=0.8)
    >>> config.replace(dtype="float32").dtype
    'float32'
    >>> config.np_dtype
    dtype('float64')
    >>> SimilarityConfig(c=1.5)
    Traceback (most recent call last):
        ...
    ValueError: damping factor C must lie in (0, 1), got 1.5
    >>> SimilarityConfig(mode="approx", epsilon=0.05, seed=7).mode
    'approx'
    """

    measure: str = "gSR*"
    c: float = 0.6
    num_iterations: int | None = None
    epsilon: float | None = None
    weights: str = "auto"
    dtype: str = "float64"
    max_cached_columns: int | None = None
    column_policy: str = "lru"
    mode: str = "exact"
    seed: int = 0

    def __post_init__(self) -> None:
        validate_damping(self.c)
        try:
            canonical = np.dtype(self.dtype).name
        except TypeError:
            canonical = str(self.dtype)
        if canonical not in DTYPES:
            raise ValueError(
                f"dtype must be one of {DTYPES}, got {self.dtype!r}"
            )
        object.__setattr__(self, "dtype", canonical)
        if self.mode not in MODES:
            raise ValueError(
                f"mode must be one of {MODES}, got {self.mode!r}"
            )
        if (
            not isinstance(self.seed, int)
            or isinstance(self.seed, bool)
            or self.seed < 0
        ):
            raise ValueError(
                f"seed must be a non-negative int, got {self.seed!r}"
            )
        if (
            self.mode == "exact"
            and self.num_iterations is not None
            and self.epsilon is not None
        ):
            # in approx mode the two coexist: num_iterations pins the
            # truncation, epsilon sizes the Monte-Carlo sample budget
            raise ValueError("pass either num_iterations or epsilon")
        if self.num_iterations is not None:
            validate_iterations(self.num_iterations)
        if self.epsilon is not None:
            validate_epsilon(self.epsilon)
        if self.weights not in WEIGHT_SCHEMES:
            raise ValueError(
                f"weights must be one of {WEIGHT_SCHEMES}, "
                f"got {self.weights!r}"
            )
        if not isinstance(self.measure, str) or not self.measure:
            raise ValueError(
                f"measure must be a non-empty name, got {self.measure!r}"
            )
        if self.max_cached_columns is not None:
            if (
                not isinstance(self.max_cached_columns, int)
                or isinstance(self.max_cached_columns, bool)
                or self.max_cached_columns < 1
            ):
                raise ValueError(
                    "max_cached_columns must be a positive int or "
                    f"None, got {self.max_cached_columns!r}"
                )
        if self.column_policy not in COLUMN_POLICIES:
            raise ValueError(
                f"column_policy must be one of {COLUMN_POLICIES}, "
                f"got {self.column_policy!r}"
            )

    @property
    def np_dtype(self) -> np.dtype:
        """The configured precision as a numpy dtype object."""
        return np.dtype(self.dtype)

    def replace(self, **changes) -> "SimilarityConfig":
        """A copy with ``changes`` applied (re-validates)."""
        return replace(self, **changes)

    def resolved_weights(
        self, measure_scheme: str | None
    ) -> str | None:
        """The concrete weight-scheme name this config implies.

        ``"auto"`` defers to ``measure_scheme`` (the measure's own
        scheme, possibly ``None`` for non-SimRank* measures). Both the
        engine's series walk and the :mod:`repro.index` fingerprints
        resolve through here, so an explicit-but-agreeing ``weights``
        setting and ``"auto"`` produce matching artifacts.
        """
        if self.weights == "auto":
            return measure_scheme
        return self.weights

    def resolved_iterations(self, variant: str, default: int) -> int:
        """The concrete truncation length this configuration implies.

        ``variant`` (``"geometric"`` / ``"exponential"``) selects the
        error bound used to convert an ``epsilon`` target; ``default``
        is the measure's fallback when nothing was specified. An
        explicit ``num_iterations`` wins — relevant only in approx
        mode, where it may coexist with an ``epsilon`` whose job is
        the sampling budget.
        """
        if self.num_iterations is not None:
            return self.num_iterations
        if self.epsilon is not None:
            return iterations_for_accuracy(self.c, self.epsilon, variant)
        return default
