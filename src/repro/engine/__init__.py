"""Stateful query serving: build the expensive structure once, answer many.

Public surface:

* :class:`SimilarityEngine` — constructed from a
  :class:`~repro.graph.DiGraph` plus a :class:`SimilarityConfig`;
  lazily builds and caches the shared artifacts (backward transition
  matrix, biclique-compressed graph, truncation length) and serves
  ``score`` / ``single_source`` / ``top_k`` / ``batch_top_k`` /
  ``matrix`` with memoized results and explicit invalidation.
  ``batch_top_k`` walks all fresh query columns together through the
  blocked multi-source kernel — prefer it over looping ``top_k``
  when serving query volume (see the package-level performance
  guide). Artifact construction itself lives in :mod:`repro.index`;
  ``SimilarityEngine.from_index`` (or ``index=``) adopts a persisted,
  memory-mapped :class:`~repro.index.SimilarityIndex` instead of
  rebuilding, and ``export_index()`` goes the other way.
* :class:`SimilarityConfig` — the typed, validated configuration,
  including the ``dtype`` knob (``"float64"`` default, ``"float32"``
  for halved memory traffic at ~1e-4 accuracy).
* :func:`register_measure` / :class:`MeasureSpec` /
  :func:`get_measure` / :func:`available_measures` — the pluggable
  measure registry (the built-ins live in :mod:`repro.measures`).
* :class:`Ranking` / :class:`RankedNode` / :class:`ScoreMatrix` —
  label-aware result objects.
"""

from repro.engine.registry import (
    MeasureSpec,
    available_measures,
    get_measure,
    measure_names,
    register_measure,
)
from repro.engine.results import RankedNode, Ranking, ScoreMatrix
from repro.engine.config import (
    COLUMN_POLICIES,
    DTYPES,
    WEIGHT_SCHEMES,
    SimilarityConfig,
)
from repro.engine.engine import ColumnMemo, EngineStats, SimilarityEngine

__all__ = [
    "COLUMN_POLICIES",
    "ColumnMemo",
    "DTYPES",
    "EngineStats",
    "MeasureSpec",
    "RankedNode",
    "Ranking",
    "ScoreMatrix",
    "SimilarityConfig",
    "SimilarityEngine",
    "WEIGHT_SCHEMES",
    "available_measures",
    "get_measure",
    "measure_names",
    "register_measure",
]
