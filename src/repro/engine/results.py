"""Label-aware result objects returned by queries.

* :class:`RankedNode` — a ``(node, score)`` pair (a real 2-tuple, so
  existing ``for node, score in ...`` call sites keep working) that
  additionally carries the node's display label.
* :class:`Ranking` — an ordered top-k answer for one query node.
  Compares equal to a plain list of ``(node, score)`` pairs, which is
  what :func:`repro.core.queries.top_k` used to return.
* :class:`ScoreMatrix` — an ``(n, n)`` score array that can be indexed
  by node labels and sliced into rankings. ``np.asarray`` passes
  through, so numerical code treats it as the underlying array.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["RankedNode", "Ranking", "ScoreMatrix"]


class RankedNode(tuple):
    """A ``(node, score)`` pair that also knows its display label.

    >>> item = RankedNode(3, 0.25, label="c")
    >>> node, score = item          # tuple protocol intact
    >>> item.label
    'c'
    """

    def __new__(cls, node: int, score: float, label=None):
        self = super().__new__(cls, (int(node), float(score)))
        self._label = int(node) if label is None else label
        return self

    @property
    def node(self) -> int:
        """Dense integer node id."""
        return self[0]

    @property
    def score(self) -> float:
        """Similarity score against the query."""
        return self[1]

    @property
    def label(self):
        """The node's label (the id itself on unlabelled graphs)."""
        return self._label

    def __reduce__(self):
        # tuple subclass with a custom __new__: spell out how to
        # rebuild (label included) so pickling / copying work
        return (RankedNode, (self[0], self[1], self._label))

    def __repr__(self) -> str:
        if self._label == self.node:
            return f"RankedNode({self.node}, {self.score:.6g})"
        return (
            f"RankedNode({self.node}, {self.score:.6g}, "
            f"label={self._label!r})"
        )


class Ranking(Sequence):
    """The top-k answer to one similarity query, in rank order.

    Behaves as a sequence of :class:`RankedNode` (and therefore of
    ``(node, score)`` pairs) and compares equal to the equivalent plain
    list, preserving the old ``top_k`` contract.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import Ranking
    >>> ranking = Ranking.from_scores(
    ...     np.array([0.1, 0.9, 0.5]), query=0, k=2,
    ...     labels=["a", "b", "c"])
    >>> [(entry.label, entry.score) for entry in ranking]
    [('b', 0.9), ('c', 0.5)]
    >>> ranking == [(1, 0.9), (2, 0.5)]   # old top_k contract
    True
    """

    __slots__ = ("_entries", "query", "query_label", "measure")

    def __init__(
        self,
        entries: Iterable[RankedNode],
        query: int | None = None,
        query_label=None,
        measure: str | None = None,
    ) -> None:
        self._entries = list(entries)
        self.query = query
        self.query_label = query if query_label is None else query_label
        self.measure = measure

    @classmethod
    def from_scores(
        cls,
        scores: np.ndarray,
        query: int,
        k: int,
        labels: Sequence | None = None,
        include_query: bool = False,
        exclude: Iterable[int] = (),
        measure: str | None = None,
    ) -> "Ranking":
        """Rank a score vector: select top k, drop excluded ids.

        Uses an ``O(n + t log t)`` partition-then-sort (``t`` = the
        top-k candidate pool) instead of sorting the whole length-``n``
        vector — for the serving regime ``k << n`` this is the
        difference between ranking cost and walk cost per query. Ties
        at the cut-off are resolved exactly as the full sort would
        (descending score, then ascending node id).
        """
        if k < 0:
            raise ValueError("k must be >= 0")
        scores = np.asarray(scores, dtype=np.float64)
        n = scores.shape[0]
        skip = {int(x) for x in exclude}
        if not include_query:
            skip.add(int(query))
        candidates = np.arange(n)
        in_range_skip = [s for s in skip if 0 <= s < n]
        if in_range_skip:
            mask = np.ones(n, dtype=bool)
            mask[in_range_skip] = False
            candidates = candidates[mask]
        vals = scores[candidates]
        count = min(k, candidates.size)
        if count == 0:
            chosen = candidates[:0]
        elif count < candidates.size:
            # O(n) select of the k-th largest value, widen to every
            # node tied with it, then sort only that pool. A NaN
            # cut-off (possible with user-registered measures) would
            # make the tie mask all-False, so fall back to the full
            # sort, which ranks NaN scores last.
            part = np.argpartition(-vals, count - 1)
            cutoff = vals[part[count - 1]]
            if np.isnan(cutoff):
                order = np.lexsort((candidates, -vals))
                chosen = candidates[order[:count]]
            else:
                tied = vals >= cutoff
                pool, pool_vals = candidates[tied], vals[tied]
                order = np.lexsort((pool, -pool_vals))
                chosen = pool[order[:count]]
        else:
            order = np.lexsort((candidates, -vals))
            chosen = candidates[order]
        entries = [
            RankedNode(
                int(node),
                scores[node],
                label=labels[node] if labels is not None else None,
            )
            for node in chosen
        ]
        return cls(
            entries,
            query=query,
            query_label=labels[query] if labels is not None else None,
            measure=measure,
        )

    # -- sequence protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[RankedNode]:
        return iter(self._entries)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Ranking(
                self._entries[index],
                query=self.query,
                query_label=self.query_label,
                measure=self.measure,
            )
        return self._entries[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Ranking):
            return (
                self._entries == other._entries
                and self.query == other.query
            )
        if isinstance(other, (list, tuple)):
            return list(self._entries) == list(other)
        return NotImplemented

    __hash__ = None  # mutable-ish container

    # -- views -------------------------------------------------------------
    @property
    def nodes(self) -> list[int]:
        """Ranked node ids."""
        return [e.node for e in self._entries]

    @property
    def labels(self) -> list:
        """Ranked node labels (ids on unlabelled graphs)."""
        return [e.label for e in self._entries]

    @property
    def scores(self) -> np.ndarray:
        """Ranked scores as a float vector."""
        return np.array([e.score for e in self._entries])

    def to_pairs(self) -> list[tuple[int, float]]:
        """Plain ``[(node, score), ...]`` — the historical return type."""
        return [(e.node, e.score) for e in self._entries]

    def __repr__(self) -> str:
        head = ", ".join(
            f"{e.label!r}: {e.score:.4g}" for e in self._entries[:5]
        )
        tail = ", ..." if len(self._entries) > 5 else ""
        return (
            f"Ranking(query={self.query_label!r}, "
            f"k={len(self._entries)}, [{head}{tail}])"
        )


class ScoreMatrix:
    """An ``(n, n)`` similarity matrix that understands node labels.

    ``matrix[u, v]`` accepts integer ids, labels, or a mix; any other
    key (slices, masks, single rows) passes straight through to the
    underlying array. ``np.asarray(matrix)`` yields the raw values, so
    the wrapper is transparent to numerical code and tests.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import ScoreMatrix
    >>> matrix = ScoreMatrix(
    ...     np.array([[1.0, 0.25], [0.25, 1.0]]), labels=["a", "b"])
    >>> float(matrix["a", "b"]), float(matrix[0, 1])
    (0.25, 0.25)
    >>> np.asarray(matrix).shape
    (2, 2)
    """

    __slots__ = ("values", "_labels", "_label_to_node", "measure")

    def __init__(
        self,
        values: np.ndarray,
        labels: Sequence | None = None,
        measure: str | None = None,
    ) -> None:
        values = np.asarray(values)
        if not np.issubdtype(values.dtype, np.floating):
            values = values.astype(np.float64)
        self.values = values
        if self.values.ndim != 2 or (
            self.values.shape[0] != self.values.shape[1]
        ):
            raise ValueError(
                f"expected a square score matrix, got {self.values.shape}"
            )
        if labels is not None and len(labels) != self.values.shape[0]:
            raise ValueError(
                f"expected {self.values.shape[0]} labels, got {len(labels)}"
            )
        self._labels = list(labels) if labels is not None else None
        self._label_to_node = (
            {lab: i for i, lab in enumerate(self._labels)}
            if self._labels is not None
            else {}
        )
        self.measure = measure

    # -- array protocol ----------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.values.shape

    @property
    def labels(self) -> list | None:
        return list(self._labels) if self._labels is not None else None

    def __array__(self, dtype=None, copy=None):
        needs_cast = (
            dtype is not None and np.dtype(dtype) != self.values.dtype
        )
        if copy is False and needs_cast:
            raise ValueError(
                "a copy is required to convert dtype; "
                "pass copy=None or copy=True"
            )
        if needs_cast:
            return self.values.astype(dtype)  # astype always copies
        if copy:
            return self.values.copy()
        return self.values

    def __len__(self) -> int:
        return self.values.shape[0]

    def _resolve(self, key):
        """Translate one label to a node id; leave everything else alone."""
        if isinstance(key, (int, np.integer)):
            return key
        try:
            if key in self._label_to_node:
                return self._label_to_node[key]
        except TypeError:
            # unhashable key (slice, ndarray mask, list) — raw indexing
            return key
        if isinstance(key, str):
            # a string is always meant as a label; don't let a typo
            # fall through to (certain-to-fail) raw numpy indexing
            if self._labels is None:
                raise KeyError(
                    f"matrix has no labels; cannot index by {key!r}"
                )
            raise KeyError(f"no node labelled {key!r}")
        return key

    def __getitem__(self, key):
        if isinstance(key, tuple):
            key = tuple(self._resolve(part) for part in key)
        else:
            key = self._resolve(key)
        return self.values[key]

    def score(self, u, v) -> float:
        """The similarity of one node pair, by id or label."""
        return float(self[u, v])

    def top_k(
        self, query, k: int = 10, include_query: bool = False
    ) -> Ranking:
        """Rank column ``query`` — the scores of every node against it."""
        q = self._resolve(query)
        if not isinstance(q, (int, np.integer)):
            raise KeyError(f"unknown node {query!r}")
        return Ranking.from_scores(
            self.values[:, q],
            query=int(q),
            k=k,
            labels=self._labels,
            include_query=include_query,
            measure=self.measure,
        )

    def __repr__(self) -> str:
        tag = f", measure={self.measure!r}" if self.measure else ""
        lab = ", labelled" if self._labels is not None else ""
        return f"ScoreMatrix(shape={self.values.shape}{tag}{lab})"
