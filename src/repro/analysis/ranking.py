"""Ranking-quality metrics, as defined in the paper's Section 5.

* Kendall's tau (the paper's form): the *fraction of concordant
  pairs* ``2/(N(N-1)) * sum K_ij`` with ``K_ij = 1`` when elements i
  and j appear in the same order in both rankings, else 0 — so it
  lives in [0, 1], unlike the classic [-1, 1] statistic.
* Spearman's rho: ``1 - 6 sum d_i^2 / (N (N^2 - 1))`` over rank
  differences (average ranks on ties).
* NDCG at ``p``: ``1/IDCG_p * sum_{i<=p} (2^{rel_i} - 1)/log2(1+i)``
  with relevance taken from the ground truth in predicted order.
"""

from __future__ import annotations

import numpy as np
import scipy.stats

__all__ = [
    "evaluate_ranking",
    "kendall_concordance",
    "ndcg",
    "ndcg_for_scores",
    "spearman_rho",
]


def _as_vector(values) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D score vector, got {arr.shape}")
    return arr


def kendall_concordance(
    predicted, truth
) -> float:
    """The paper's Kendall metric: fraction of concordant pairs in [0, 1].

    Tied pairs (in either list) count as concordant only when tied in
    both; a random ranking scores ~0.5 against a total order.
    """
    a = _as_vector(predicted)
    b = _as_vector(truth)
    if a.shape != b.shape:
        raise ValueError("score vectors must have equal length")
    n = len(a)
    if n < 2:
        return 1.0
    sign_a = np.sign(a[:, None] - a[None, :])
    sign_b = np.sign(b[:, None] - b[None, :])
    upper = np.triu_indices(n, k=1)
    concordant = (sign_a[upper] == sign_b[upper]).sum()
    return float(concordant) / (n * (n - 1) / 2)


def spearman_rho(predicted, truth) -> float:
    """Spearman's rho with average ranks on ties."""
    a = _as_vector(predicted)
    b = _as_vector(truth)
    if a.shape != b.shape:
        raise ValueError("score vectors must have equal length")
    n = len(a)
    if n < 2:
        return 1.0
    rank_a = scipy.stats.rankdata(a)
    rank_b = scipy.stats.rankdata(b)
    d2 = float(((rank_a - rank_b) ** 2).sum())
    return 1.0 - 6.0 * d2 / (n * (n * n - 1))


def ndcg(relevance_in_rank_order, p: int | None = None) -> float:
    """NDCG of a ranking given relevances in *predicted* order.

    ``rel`` values should be bounded (the experiments use relevances
    in [0, 1]); the ideal ordering normalises the score to [0, 1].
    Returns 1.0 when all relevances are zero (nothing to get wrong).
    """
    rel = _as_vector(relevance_in_rank_order)
    if p is not None:
        if p < 1:
            raise ValueError("p must be >= 1")
        rel = rel[:p]
    if len(rel) == 0:
        return 1.0
    discounts = 1.0 / np.log2(np.arange(2, len(rel) + 2))
    dcg = float(((2.0 ** rel - 1.0) * discounts).sum())
    ideal = np.sort(rel)[::-1]
    # The ideal ranking re-sorts the SAME retrieved prefix; with p
    # covering the full list this is the standard IDCG.
    idcg = float(((2.0 ** ideal - 1.0) * discounts).sum())
    return dcg / idcg if idcg > 0 else 1.0


def ndcg_for_scores(predicted, truth, p: int | None = None) -> float:
    """NDCG of ranking items by ``predicted`` against ``truth`` relevance.

    Ideal normalisation uses the best ordering of the *whole* truth
    vector, so retrieving low-relevance items into the top-``p`` is
    penalised (the paper's IDCG "ensures the true NDCG ordering is 1").
    """
    a = _as_vector(predicted)
    b = _as_vector(truth)
    if a.shape != b.shape:
        raise ValueError("score vectors must have equal length")
    n = len(a)
    if n == 0:
        return 1.0
    cutoff = n if p is None else min(p, n)
    # stable by index for deterministic tie handling
    order = np.lexsort((np.arange(n), -a))[:cutoff]
    discounts = 1.0 / np.log2(np.arange(2, cutoff + 2))
    dcg = float(((2.0 ** b[order] - 1.0) * discounts).sum())
    ideal = np.sort(b)[::-1][:cutoff]
    idcg = float(((2.0 ** ideal - 1.0) * discounts).sum())
    return dcg / idcg if idcg > 0 else 1.0


def evaluate_ranking(predicted, truth, p: int | None = None) -> dict:
    """All three Section-5 metrics for one query."""
    return {
        "kendall": kendall_concordance(predicted, truth),
        "spearman": spearman_rho(predicted, truth),
        "ndcg": ndcg_for_scores(predicted, truth, p),
    }
