"""Relevance ground truth and query sampling (Section 5's protocol).

The paper's ground truth came from panels of human experts judging
topical relatedness. Our generators plant explicit topic mixtures, so
"true" relevance of a pair is the cosine of their mixtures — the
latent quantity the experts were proxying (DESIGN.md, Substitutions).

Query selection follows the paper exactly: sort nodes by in-degree
into five groups, sample uniformly within each, so queries cover the
popularity spectrum.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph

__all__ = [
    "query_ground_truth",
    "stratified_queries",
    "topic_cosine_matrix",
]


def topic_cosine_matrix(topics: np.ndarray) -> np.ndarray:
    """All-pairs cosine similarity of topic mixtures, in [0, 1]."""
    topics = np.asarray(topics, dtype=np.float64)
    if topics.ndim != 2:
        raise ValueError("topics must be a 2-D (nodes x topics) array")
    norms = np.linalg.norm(topics, axis=1)
    safe = np.where(norms > 0, norms, 1.0)
    unit = topics / safe[:, None]
    return unit @ unit.T


def query_ground_truth(topics: np.ndarray, query: int) -> np.ndarray:
    """True relevance of every node to ``query`` (cosine vector)."""
    topics = np.asarray(topics, dtype=np.float64)
    if not 0 <= query < len(topics):
        raise IndexError(f"query {query} out of range")
    norms = np.linalg.norm(topics, axis=1)
    safe = np.where(norms > 0, norms, 1.0)
    unit = topics / safe[:, None]
    return unit @ unit[query]


def stratified_queries(
    graph: DiGraph,
    num_queries: int,
    num_groups: int = 5,
    seed: int = 0,
) -> list[int]:
    """The paper's test-query protocol: in-degree-stratified sampling.

    Nodes are sorted by in-degree and split into ``num_groups`` equal
    groups; ``num_queries / num_groups`` nodes are drawn uniformly
    from each, "to guarantee that the selected nodes can
    systematically cover a broad range of all possible queries".
    """
    if num_queries < 1:
        raise ValueError("num_queries must be >= 1")
    if num_groups < 1:
        raise ValueError("num_groups must be >= 1")
    n = graph.num_nodes
    if n == 0:
        raise ValueError("graph has no nodes")
    rng = np.random.default_rng(seed)
    by_degree = np.argsort(graph.in_degrees(), kind="stable")
    groups = np.array_split(by_degree, num_groups)
    per_group = max(1, num_queries // num_groups)
    queries: list[int] = []
    for group in groups:
        if len(group) == 0:
            continue
        take = min(per_group, len(group))
        picks = rng.choice(group, size=take, replace=False)
        queries.extend(int(p) for p in picks)
    return queries[:num_queries]
