"""The Figure 6(d) census: how widespread are zero-similarity issues?

A node-pair has a **zero-SimRank issue** when at least one of its
in-link paths contributes nothing to SimRank — i.e. when it has a
dissymmetric in-link path (Theorem 1). The issue splits:

* *completely dissimilar*: no symmetric path either, so SimRank = 0
  although relatedness evidence (the dissymmetric path) exists;
* *partially missing*: SimRank != 0 but dissymmetric contributions
  are still dropped.

Analogously, a pair ``(i, j)`` has a **zero-RWR issue** when it has an
in-link path that is not a one-directional walk from ``i`` to ``j``
(RWR only tallies those): *completely dissimilar* when additionally no
directed path ``i -> j`` exists (RWR = 0), *partially missing*
otherwise.

All classifications use the exact (unbounded-length) existence
primitives of :mod:`repro.core.paths`; fractions are over ordered
pairs ``i != j``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.paths import (
    dissymmetric_inlink_path_exists,
    reachability,
    symmetric_inlink_path_exists,
)
from repro.graph.digraph import DiGraph

__all__ = ["ZeroSimilarityCensus", "zero_similarity_census"]


@dataclass(frozen=True)
class ZeroSimilarityCensus:
    """Fractions of ordered node-pairs (i != j) in each class."""

    # SimRank (the left panel of Figure 6(d))
    simrank_issue: float
    simrank_completely_dissimilar: float
    simrank_partially_missing: float
    # RWR (the right panel)
    rwr_issue: float
    rwr_completely_dissimilar: float
    rwr_partially_missing: float

    def as_percentages(self) -> dict:
        """Figure 6(d)-style rows, in percent."""
        return {
            "zero-SR issue %": 100 * self.simrank_issue,
            "SR completely dissimilar %": 100
            * self.simrank_completely_dissimilar,
            "SR partially missing %": 100 * self.simrank_partially_missing,
            "zero-RWR issue %": 100 * self.rwr_issue,
            "RWR completely dissimilar %": 100
            * self.rwr_completely_dissimilar,
            "RWR partially missing %": 100 * self.rwr_partially_missing,
        }


def zero_similarity_census(graph: DiGraph) -> ZeroSimilarityCensus:
    """Classify every ordered node-pair of ``graph`` (Figure 6(d))."""
    n = graph.num_nodes
    total = n * (n - 1)
    if total == 0:
        return ZeroSimilarityCensus(0, 0, 0, 0, 0, 0)
    off_diag = ~np.eye(n, dtype=bool)

    sym = symmetric_inlink_path_exists(graph)
    dissym = dissymmetric_inlink_path_exists(graph)
    # --- SimRank classes -------------------------------------------
    sr_issue = dissym & off_diag
    sr_complete = sr_issue & ~sym
    sr_partial = sr_issue & sym

    # --- RWR classes ------------------------------------------------
    reach_star = reachability(graph, include_self=True)
    reach_plus = reachability(graph, include_self=False)
    # an in-link path with l1 >= 1 exists: some w reaches i in >= 1
    # steps and j in >= 0 steps.
    non_unidirectional = (
        reach_plus.astype(np.float64).T @ reach_star.astype(np.float64)
    ) > 0
    rwr_issue = non_unidirectional & off_diag
    rwr_complete = rwr_issue & ~reach_plus
    rwr_partial = rwr_issue & reach_plus

    def frac(mask: np.ndarray) -> float:
        return float(mask.sum()) / total

    return ZeroSimilarityCensus(
        simrank_issue=frac(sr_issue),
        simrank_completely_dissimilar=frac(sr_complete),
        simrank_partially_missing=frac(sr_partial),
        rwr_issue=frac(rwr_issue),
        rwr_completely_dissimilar=frac(rwr_complete),
        rwr_partially_missing=frac(rwr_partial),
    )
