"""Evaluation analytics: the machinery behind Figures 6(a)-(d).

* :mod:`repro.analysis.ranking` — Kendall, Spearman, NDCG exactly as
  the paper defines them (Effectiveness Metrics, Section 5).
* :mod:`repro.analysis.ground_truth` — planted-topic relevance and the
  paper's in-degree-stratified query sampling.
* :mod:`repro.analysis.zero_similarity` — the Figure 6(d) census of
  "completely dissimilar" and "partially missing" node-pairs.
* :mod:`repro.analysis.roles` — the Figure 6(b)/(c) role analyses.
"""

from repro.analysis.ground_truth import (
    query_ground_truth,
    stratified_queries,
    topic_cosine_matrix,
)
from repro.analysis.ranking import (
    evaluate_ranking,
    kendall_concordance,
    ndcg,
    ndcg_for_scores,
    spearman_rho,
)
from repro.analysis.roles import (
    grouped_similarity,
    top_pair_attribute_difference,
)
from repro.analysis.zero_similarity import (
    ZeroSimilarityCensus,
    zero_similarity_census,
)

__all__ = [
    "ZeroSimilarityCensus",
    "evaluate_ranking",
    "grouped_similarity",
    "kendall_concordance",
    "ndcg",
    "ndcg_for_scores",
    "query_ground_truth",
    "spearman_rho",
    "stratified_queries",
    "top_pair_attribute_difference",
    "topic_cosine_matrix",
    "zero_similarity_census",
]
