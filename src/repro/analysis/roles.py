"""Role-based validations — Figures 6(b) and 6(c).

Figure 6(b): if a measure is meaningful, its top-ranked node-pairs
should have similar *roles* — small differences in citation count (or
H-index). Sweeping the "top x% most similar pairs" threshold shows
SimRank* stays well below the random-pair baseline while SimRank
degrades towards it.

Figure 6(c): group nodes into attribute deciles; a good measure gives
stable within-decile averages and cross-decile averages that decay as
the decile gap grows.
"""

from __future__ import annotations

import numpy as np

__all__ = ["grouped_similarity", "top_pair_attribute_difference"]


def _validate(scores: np.ndarray, attribute: np.ndarray) -> int:
    scores = np.asarray(scores)
    if scores.ndim != 2 or scores.shape[0] != scores.shape[1]:
        raise ValueError("scores must be a square matrix")
    if len(attribute) != scores.shape[0]:
        raise ValueError("attribute length must match matrix size")
    return scores.shape[0]


def top_pair_attribute_difference(
    scores: np.ndarray,
    attribute: np.ndarray,
    fractions: tuple[float, ...] = (0.0002, 0.002, 0.02, 0.2),
    seed: int = 0,
) -> dict:
    """Average attribute gap of the top-x% most similar pairs (Fig 6(b)).

    Returns ``{fraction: mean |attr_i - attr_j|}`` plus a ``"random"``
    entry — the all-pairs mean gap, the paper's RAN baseline. Pairs
    are unordered ``i < j``; ties in score break by pair index for
    determinism. Fractions yielding zero pairs take the single top
    pair.
    """
    attribute = np.asarray(attribute, dtype=np.float64)
    n = _validate(scores, attribute)
    if n < 2:
        raise ValueError("need at least two nodes")
    iu, ju = np.triu_indices(n, k=1)
    pair_scores = np.asarray(scores)[iu, ju]
    pair_gaps = np.abs(attribute[iu] - attribute[ju])
    order = np.lexsort((np.arange(len(pair_scores)), -pair_scores))
    sorted_gaps = pair_gaps[order]
    result: dict = {}
    for fraction in fractions:
        if not 0 < fraction <= 1:
            raise ValueError(f"fractions must lie in (0, 1], got {fraction}")
        take = max(1, int(round(fraction * len(sorted_gaps))))
        result[fraction] = float(sorted_gaps[:take].mean())
    result["random"] = float(pair_gaps.mean())
    return result


def grouped_similarity(
    scores: np.ndarray,
    attribute: np.ndarray,
    num_groups: int = 10,
    min_score: float = 0.0,
) -> tuple[dict, dict]:
    """Within- and cross-decile average similarity (Figure 6(c)).

    Nodes are ranked by ``attribute`` and cut into ``num_groups``
    roles (group 1 = top fraction ... group ``num_groups`` = bottom).

    Returns ``(within, cross)``:

    * ``within[g]`` — mean score over distinct pairs inside group g;
    * ``cross[d]`` — mean score over pairs whose group indices differ
      by exactly d (d >= 1).

    ``min_score`` restricts the averages to pairs scoring at least
    that much — the paper clips similarities below 1e-4 from storage,
    so its per-group averages run over *stored* pairs. Groups or gaps
    with no qualifying pairs are omitted.
    """
    attribute = np.asarray(attribute, dtype=np.float64)
    n = _validate(scores, attribute)
    if num_groups < 1:
        raise ValueError("num_groups must be >= 1")
    scores = np.asarray(scores)
    # rank 0 = highest attribute; stable for determinism
    order = np.argsort(-attribute, kind="stable")
    group_of = np.empty(n, dtype=np.int64)
    for g, chunk in enumerate(np.array_split(order, num_groups), start=1):
        group_of[chunk] = g
    iu, ju = np.triu_indices(n, k=1)
    pair_scores = scores[iu, ju]
    stored = pair_scores >= min_score
    gi, gj = group_of[iu], group_of[ju]
    gaps = np.abs(gi - gj)
    within: dict = {}
    for g in range(1, num_groups + 1):
        mask = (gi == g) & (gj == g) & stored
        if mask.any():
            within[g] = float(pair_scores[mask].mean())
    cross: dict = {}
    for d in range(1, num_groups):
        mask = (gaps == d) & stored
        if mask.any():
            cross[d] = float(pair_scores[mask].mean())
    return within, cross
