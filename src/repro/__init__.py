"""SimRank* — a reproduction of "More is Simpler: Effectively and
Efficiently Assessing Node-Pair Similarities Based on Hyperlinks"
(Yu, Lin, Zhang, Chang, Pei; VLDB 2013).

Quickstart
----------
>>> from repro import DiGraph, simrank_star
>>> g = DiGraph(3, edges=[(0, 1), (0, 2)])
>>> s = simrank_star(g, c=0.8, num_iterations=10)
>>> s[1, 2] > 0          # siblings are similar
True

Packages
--------
* :mod:`repro.graph` — the graph substrate (structure, matrices,
  generators, IO, stats).
* :mod:`repro.core` — SimRank* itself: geometric / exponential forms,
  fine-grained memoization, path semantics, queries.
* :mod:`repro.bigraph` — induced bigraph, biclique mining, edge
  concentration.
* :mod:`repro.baselines` — SimRank (3 forms + psum + SVD), P-Rank,
  RWR/PPR, co-citation, SimRank++.
* :mod:`repro.datasets` — synthetic stand-ins for the evaluation
  corpora, with planted ground truth.
* :mod:`repro.analysis` — ranking metrics, zero-similarity census,
  role analyses.
* :mod:`repro.experiments` — regenerate every table and figure.
"""

from repro.core import (
    memo_simrank_star,
    memo_simrank_star_exponential,
    memo_simrank_star_factorized,
    simrank_star,
    simrank_star_exponential,
    single_source,
    top_k,
)
from repro.graph import DiGraph
from repro.measures import MEASURES, compute_measure

__version__ = "1.0.0"

__all__ = [
    "DiGraph",
    "MEASURES",
    "compute_measure",
    "memo_simrank_star",
    "memo_simrank_star_exponential",
    "memo_simrank_star_factorized",
    "simrank_star",
    "simrank_star_exponential",
    "single_source",
    "top_k",
    "__version__",
]
