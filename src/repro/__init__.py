"""SimRank* — a reproduction of "More is Simpler: Effectively and
Efficiently Assessing Node-Pair Similarities Based on Hyperlinks"
(Yu, Lin, Zhang, Chang, Pei; VLDB 2013).

Quickstart
----------
Build a :class:`SimilarityEngine` once, then serve queries — the
expensive structure (transition matrices, biclique compression,
truncation length) is built lazily on first use and reused by every
subsequent query:

>>> from repro import DiGraph, SimilarityEngine
>>> g = DiGraph(3, edges=[(0, 1), (0, 2)], labels=["a", "b", "c"])
>>> engine = SimilarityEngine(g, measure="gSR*", c=0.8,
...                           num_iterations=10)
>>> engine.score("b", "c") > 0       # siblings are similar
True
>>> engine.top_k("b", k=2).labels    # rankings carry labels
['a', 'c']
>>> engine.matrix().score("b", "c") > 0   # same cached artifacts
True

The precomputation itself is a first-class, persistable artifact
(:mod:`repro.index`): build it once, save it, and later engines —
including ones in other processes, after a restart — adopt it via
``from_index`` instead of rebuilding::

    from repro import SimilarityEngine, SimilarityIndex

    SimilarityIndex.build(g, engine.config).save("graph.simidx")
    # ... later / elsewhere: memory-mapped, shared page cache,
    # no artifact rebuild — raises IndexMismatchError if the graph
    # or config on this side differs from what the index was built for
    index = SimilarityIndex.load("graph.simidx", mmap=True)
    engine = SimilarityEngine.from_index(index, g)

Measures are pluggable: every algorithm under comparison is registered
in :mod:`repro.engine.registry` with metadata, so
``SimilarityEngine(g, measure="SR")`` (or ``"RWR"``, ``"memo-gSR*"``,
...) serves any of them behind the same five methods — ``score``,
``single_source``, ``top_k``, ``batch_top_k``, ``matrix``.

Migration from the functional API
---------------------------------
The one-shot functions below still work (they are thin wrappers and
remain the easiest way to compute a single matrix), but repeated
queries should move to the engine, which amortises precomputation:

====================================  =================================
old functional call                   engine equivalent
====================================  =================================
``simrank_star(g, c, k)``             ``SimilarityEngine(g, measure="gSR*", c=c, num_iterations=k).matrix()``
``compute_measure(name, g, c, k)``    ``SimilarityEngine(g, measure=name, c=c, num_iterations=k).matrix()``
``single_source(g, q, c, L)``         ``engine.single_source(q)``
``single_pair(g, u, v, c, L)``        ``engine.score(u, v)``
``top_k(g, q, k=K)``                  ``engine.top_k(q, k=K)``
``[top_k(g, q) for q in qs]``         ``engine.batch_top_k(qs)``
====================================  =================================

Mind the defaults when migrating: with neither ``num_iterations`` nor
``epsilon`` configured, the engine uses the *measure's* default
truncation (5 for ``gSR*``, matching ``simrank_star``), while the
functional query helpers (``single_source`` / ``single_pair`` /
``top_k``) default to ``num_terms=10`` — pass ``num_iterations=10``
explicitly to reproduce query results that relied on their default.

After mutating the graph, call ``engine.invalidate()`` (or mutate
through ``engine.add_edge`` / ``engine.remove_edge``, which invalidate
automatically).

Performance guide
-----------------
The serving hot paths are tuned for query volume; four knobs matter:

* **Batching.** Serve many fresh queries through
  ``engine.batch_top_k(queries)`` (or, functionally,
  :func:`repro.core.multi_source.multi_source`) rather than looping
  ``top_k``. Fresh columns are evaluated together by the blocked
  multi-source kernel — ``2 L`` sparse x dense-``(n, B)`` products for
  the whole batch instead of ``O(L^2)`` sparse mat-vecs *per query* —
  which is several times faster even at moderate batch sizes (the
  ``BENCH_*.json`` files record the measured ratio as
  ``speedup_engine_batch_vs_loop``). Memoized and duplicate queries
  are deduplicated before the walk, so batching never recomputes.
* **dtype.** ``SimilarityEngine(g, dtype="float32")`` (or the
  ``dtype=`` keyword on the kernels and matrix builders) halves
  memory traffic for transition matrices, iterates and query blocks
  at ~1e-4 relative accuracy — well inside the paper's ``eps = 1e-3``
  regime. The default stays ``float64``; results and the column memo
  follow the configured dtype.
* **Preallocated iteration cores.** The all-pairs kernels
  (``simrank_star``, ``simrank_star_exponential``, the factorised
  memo variants) run allocation-free: each iteration writes into
  buffers allocated once, through the in-place sparse product in
  :mod:`repro.core.kernels`. Nothing to configure — but pass
  ``transition=`` / ``compressed=`` to amortise precomputation when
  calling them directly in a loop.
* **Ranking.** ``top_k`` selection is ``O(n + k log k)``
  (``np.argpartition``), so large graphs pay for the walk, not the
  sort.

Benchmarks: ``python -m repro.bench`` runs the perf suite and writes
``BENCH_<tag>.json`` (per-case wall times, tracemalloc peaks, machine
and workload metadata, derived speedups); ``--quick`` is the CI
setting, ``--compare BENCH_baseline.json`` gates on regressions,
``--list`` enumerates the registered cases, and ``--serve`` appends a
serving load-generation run (throughput + p50/p95/p99 latency
histograms) — see :mod:`repro.bench.runner` and
:mod:`repro.bench.loadgen` for the schema and gate semantics.

Serving
-------
Batching only pays if traffic actually arrives in batches, which real
traffic never does — so :mod:`repro.serve` runs the engine as a
long-lived service. An asyncio broker coalesces independently
arriving ``top_k`` / ``score`` requests into micro-batches (knobs:
``max_batch``, ``max_wait_ms``) and answers each batch with one
blocked multi-source walk; a versioned LRU caches rendered answers;
graph mutations build a fresh engine in the background and atomically
hot-swap it, so in-flight queries finish on the snapshot they
started on. In-process::

    from repro.serve import ServingService

    async with ServingService(g, measure="gSR*", max_batch=32) as svc:
        rankings = await asyncio.gather(
            *(svc.top_k(q, k=10) for q in queries)
        )

Over HTTP (stdlib only)::

    python -m repro.serve serve --nodes 2000 --edges 12000 --port 8321
    curl -s -X POST localhost:8321/top_k -d '{"query": 7, "k": 5}'

``python -m repro.serve smoke`` is the self-contained serving health
check (concurrent clients, coalescing assertions, latency histogram);
``examples/serving_demo.py`` walks all three mechanisms. For
sustained distinct-query traffic, bound the engine's column memo with
``SimilarityConfig.max_cached_columns`` (LRU or FIFO via
``column_policy``) — the serving CLI defaults to 4096.

Scale-out
---------
One process coalesces well but still computes alone. The measure
family here is embarrassingly parallel across query *columns*, so
:mod:`repro.cluster` shards each coalesced micro-batch across K
worker processes that all memory-map the same persisted index (one
page cache, zero-copy)::

    ServingService(graph, workers=4)                  # in code
    python -m repro.serve serve --workers 4 --index graph.simidx

Mutations propagate with a two-phase swap (every worker prepares the
new generation before the pointer flips; old generations are released
only when their in-flight batches drain) and a killed worker is
respawned with its shard retried — the zero-failed-requests guarantee
survives both. ``python -m repro.bench --cluster`` measures the
scaling (``speedup_workers_4_vs_1``).

Fast restarts
-------------
Engine construction is cheap; what costs is the precomputation it
rebuilds lazily. :mod:`repro.index` persists exactly that: ``Q`` /
``Q^T``, the biclique-compressed factor triple, the series
coefficient table, and the fingerprints (graph content digest +
resolved config) that make reuse safe. ``SimilarityIndex.load``
memory-maps every buffer read-only, so load time is independent of
index size and N worker processes share one page cache. The serving
layer uses it automatically: ``python -m repro.serve serve --index
graph.simidx`` persists freshly built precomputation after warmup and
every hot-swap, and a restarted server (or a new replica) adopts the
file instead of rebuilding — the ``index_cold_*`` benchmark cases
and ``python -m repro.index smoke`` quantify the win. ``python -m
repro.index build | inspect | verify`` manage index files directly.

Packages
--------
* :mod:`repro.engine` — the stateful query-serving engine, measure
  registry, and label-aware result types.
* :mod:`repro.index` — the persistent precomputation artifact layer:
  build / save / mmap-load indexes, fingerprint checks, the
  ``python -m repro.index`` CLI.
* :mod:`repro.serve` — the async serving layer: micro-batch
  coalescing broker, versioned result cache, snapshot hot-swap,
  stdlib HTTP front end (``python -m repro.serve``).
* :mod:`repro.cluster` — multi-process sharded serving: a worker
  pool over one shared memory-mapped index, a shard router with
  atomic snapshot pinning, two-phase hot-swap propagation.
* :mod:`repro.graph` — the graph substrate (structure, matrices,
  generators, IO, stats).
* :mod:`repro.core` — SimRank* itself: geometric / exponential forms,
  fine-grained memoization, path semantics, queries.
* :mod:`repro.bigraph` — induced bigraph, biclique mining, edge
  concentration.
* :mod:`repro.baselines` — SimRank (3 forms + psum + SVD), P-Rank,
  RWR/PPR, co-citation, SimRank++.
* :mod:`repro.datasets` — synthetic stand-ins for the evaluation
  corpora, with planted ground truth.
* :mod:`repro.analysis` — ranking metrics, zero-similarity census,
  role analyses.
* :mod:`repro.experiments` — regenerate every table and figure.
"""

from repro.core import (
    memo_simrank_star,
    memo_simrank_star_exponential,
    memo_simrank_star_factorized,
    multi_source,
    simrank_star,
    simrank_star_exponential,
    single_source,
    top_k,
)
from repro.graph import DiGraph
from repro.measures import MEASURES, compute_measure
from repro.engine import (
    MeasureSpec,
    RankedNode,
    Ranking,
    ScoreMatrix,
    SimilarityConfig,
    SimilarityEngine,
    available_measures,
    get_measure,
    register_measure,
)
from repro.index import IndexMismatchError, SimilarityIndex

__version__ = "1.6.0"

__all__ = [
    "DiGraph",
    "IndexMismatchError",
    "MEASURES",
    "MeasureSpec",
    "RankedNode",
    "Ranking",
    "ScoreMatrix",
    "SimilarityConfig",
    "SimilarityEngine",
    "SimilarityIndex",
    "available_measures",
    "compute_measure",
    "get_measure",
    "memo_simrank_star",
    "memo_simrank_star_exponential",
    "memo_simrank_star_factorized",
    "multi_source",
    "register_measure",
    "simrank_star",
    "simrank_star_exponential",
    "single_source",
    "top_k",
    "__version__",
]
