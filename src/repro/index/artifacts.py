"""The :class:`SimilarityIndex` artifact bundle and its builders.

A similarity index owns everything the engine's per-instance caches
used to rebuild lazily: the backward transition CSR ``Q`` and its
transpose, the biclique-compressed factor triple
``(E_direct, H_out, H_in)`` with ``A^T = E_direct + H_out H_in``, and
the series coefficient table of the blocked multi-source kernel —
plus the *fingerprints* that make reuse safe: a content digest of the
graph's edge set and the resolved artifact-relevant configuration
(measure, damping, truncation, weight scheme, dtype).

The module-level ``build_*`` functions are the single home of artifact
construction; :class:`~repro.engine.SimilarityEngine`'s private lazy
builders are thin wrappers over them, so the engine and the index can
never drift apart on *how* an artifact is built.

This module deliberately imports nothing from :mod:`repro.engine` at
module scope (the engine imports it), so all configuration/registry
lookups happen lazily inside the functions that need them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np
import scipy.sparse as sp

from repro.bigraph.compressed import CompressedGraph
from repro.bigraph.concentration import compress_graph
from repro.core.weights import ExponentialWeights, GeometricWeights
from repro.graph.digraph import DiGraph
from repro.graph.matrices import (
    backward_transition_matrix,
    transition_pair,
)

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.approx.walks import WalkIndex
    from repro.engine.config import SimilarityConfig

__all__ = [
    "ARTIFACT_NAMES",
    "IndexMeta",
    "IndexMismatchError",
    "SimilarityIndex",
    "build_compressed",
    "build_transition",
    "build_transition_pair",
    "graph_fingerprint",
    "planned_artifacts",
]

#: Every artifact an index may carry, in canonical order.
ARTIFACT_NAMES = (
    "transition", "transition_t", "factors", "coefficients", "walks"
)

_SCHEMES = {
    "geometric": GeometricWeights,
    "exponential": ExponentialWeights,
}


class IndexMismatchError(ValueError):
    """An index does not describe the graph/config it was handed.

    Raised by :meth:`SimilarityIndex.verify_compatible` (and therefore
    by ``SimilarityEngine(graph, config, index=...)``) instead of
    silently serving scores computed for a different graph or a
    different similarity configuration.

    Every divergence is reported *field by field*: the exception
    carries a ``mismatches`` list of ``{"kind", "field", "expected",
    "found"}`` dicts (``kind`` is ``"graph"`` for content divergence,
    ``"config"`` for resolved-configuration divergence, ``"chain"``
    for a delta segment applied onto the wrong base generation), and
    the message spells each one out — so a stale-delta-chain
    rejection is diagnosable straight from a log line.

    Examples
    --------
    >>> from repro import DiGraph, SimilarityIndex, IndexMismatchError
    >>> index = SimilarityIndex.build(
    ...     DiGraph(3, edges=[(0, 1)]), measure="gSR*")
    >>> index.matches(DiGraph(3, edges=[(0, 2)]),
    ...               index.similarity_config())
    False
    >>> try:
    ...     index.verify_compatible(
    ...         DiGraph(3, edges=[(0, 2)]), index.similarity_config())
    ... except IndexMismatchError as exc:
    ...     exc.mismatches[0]["kind"], exc.mismatches[0]["field"]
    ('graph', 'graph_digest')
    """

    def __init__(
        self, message: str, mismatches: list[dict] | None = None
    ) -> None:
        super().__init__(message)
        #: Structured ``{"kind", "field", "expected", "found"}`` records,
        #: one per diverging field.
        self.mismatches: list[dict] = list(mismatches or [])


def _mismatch(kind: str, field: str, expected, found) -> dict:
    return {
        "kind": kind,
        "field": field,
        "expected": expected,
        "found": found,
    }


def _mismatch_error(
    mismatches: list[dict], preamble: str
) -> IndexMismatchError:
    details = "; ".join(
        f"{m['kind']} mismatch: {m['field']} expected "
        f"{m['expected']!r}, found {m['found']!r}"
        for m in mismatches
    )
    return IndexMismatchError(f"{preamble}: {details}", mismatches)


# ---------------------------------------------------------------------------
# artifact builders (the engine's lazy builders delegate here)
# ---------------------------------------------------------------------------
def build_transition(
    graph: DiGraph, dtype: np.dtype | str = np.float64
) -> sp.csr_array:
    """The backward transition matrix ``Q`` in ``dtype``.

    >>> from repro import DiGraph
    >>> from repro.index import build_transition
    >>> q = build_transition(DiGraph(3, edges=[(0, 1), (0, 2)]))
    >>> q.shape, str(q.dtype)
    ((3, 3), 'float64')
    """
    return backward_transition_matrix(graph, dtype=dtype)


def build_transition_pair(
    graph: DiGraph,
    dtype: np.dtype | str = np.float64,
    transition: sp.csr_array | None = None,
    transition_t: sp.csr_array | None = None,
) -> tuple[sp.csr_array, sp.csr_array]:
    """``(Q, Q^T)`` both in CSR form, reusing any prebuilt side.

    >>> import numpy as np
    >>> from repro import DiGraph
    >>> from repro.index import build_transition_pair
    >>> q, qt = build_transition_pair(DiGraph(3, edges=[(0, 1)]))
    >>> bool(np.array_equal(qt.toarray(), q.toarray().T))
    True
    """
    if transition is None:
        return transition_pair(graph, dtype=dtype)
    if transition_t is None:
        transition_t = transition.T.tocsr()
    return transition, transition_t


def build_compressed(graph: DiGraph) -> CompressedGraph:
    """The biclique-compressed graph ``G^`` (Algorithm 1 lines 1-2).

    >>> from repro import DiGraph
    >>> from repro.index import build_compressed
    >>> g = DiGraph(4, edges=[(0, 2), (1, 2), (0, 3), (1, 3)])
    >>> e_direct, h_out, h_in = (
    ...     build_compressed(g).factorized_in_adjacency())
    >>> e_direct.shape
    (4, 4)
    """
    return compress_graph(graph)


def graph_fingerprint(graph: DiGraph) -> dict:
    """A content fingerprint of ``graph``'s edge structure.

    ``{"num_nodes", "num_edges", "digest"}`` where ``digest`` is a
    sha256 over the node count and the sorted edge arrays (normalised
    to little-endian int64, so the digest is stable across platforms
    and across processes — unlike :attr:`DiGraph.version`, which is an
    in-process mutation counter). Labels are excluded: they affect
    query *resolution*, not the numeric artifacts.

    >>> from repro import DiGraph
    >>> from repro.index import graph_fingerprint
    >>> fp = graph_fingerprint(DiGraph(3, edges=[(0, 1), (0, 2)]))
    >>> fp["num_nodes"], fp["num_edges"], len(fp["digest"])
    (3, 2, 64)
    >>> fp == graph_fingerprint(DiGraph(3, edges=[(0, 2), (0, 1)]))
    True
    """
    heads, tails = graph.edge_arrays()
    digest = hashlib.sha256()
    digest.update(np.int64(graph.num_nodes).tobytes())
    digest.update(np.ascontiguousarray(heads, dtype="<i8").tobytes())
    digest.update(np.ascontiguousarray(tails, dtype="<i8").tobytes())
    return {
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "digest": digest.hexdigest(),
    }


def _resolve_config(config: "SimilarityConfig"):
    """``(spec, truncation, weight_scheme_name)`` for ``config``."""
    from repro.engine.registry import get_measure

    spec = get_measure(config.measure)
    truncation = config.resolved_iterations(
        spec.variant, spec.default_iterations
    )
    return spec, truncation, config.resolved_weights(
        spec.weight_scheme
    )


def planned_artifacts(spec, mode: str = "exact") -> tuple[str, ...]:
    """Which artifacts an index for ``spec`` carries.

    ``Q``/``Q^T`` whenever the measure consumes a transition matrix or
    serves columns through the series walk (which always needs them);
    the compressed factors when the measure's callable accepts
    ``compressed=``; the coefficient table whenever the series walk
    applies; the reverse-walk sample store when ``mode="approx"``
    (which requires a series-capable measure — the walk estimator is
    built on the series decomposition).
    """
    out: list[str] = []
    if spec.supports_single_source or "transition" in spec.uses:
        out += ["transition", "transition_t"]
    if "compressed" in spec.uses:
        out.append("factors")
    if spec.supports_single_source:
        out.append("coefficients")
    if mode == "approx":
        if not spec.supports_single_source:
            raise ValueError(
                f"measure {spec.name!r} has no single-source series "
                "support; mode='approx' estimates the series and "
                "cannot serve it"
            )
        out.append("walks")
    return tuple(out)


# ---------------------------------------------------------------------------
# metadata
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class IndexMeta:
    """Fingerprints pinning what a :class:`SimilarityIndex` answers for.

    ``truncation`` and ``weight_scheme`` are stored *resolved* (an
    ``epsilon`` accuracy target converts to its concrete iteration
    count, ``weights="auto"`` to the measure's own scheme), so two
    configurations that imply the same artifacts match the same index.
    Approx-mode indexes additionally pin the walk geometry —
    ``walk_length`` / ``walk_samples`` (resolved from ``epsilon``) and
    the sampling ``seed`` — because walks drawn with different
    parameters estimate from different evidence. The approx fields
    default to their exact-mode values, so headers written before the
    approx tier existed still load.

    Examples
    --------
    >>> from repro import DiGraph, SimilarityIndex
    >>> from repro.index import IndexMeta
    >>> meta = SimilarityIndex.build(
    ...     DiGraph(3, edges=[(0, 1)]), measure="gSR*", c=0.6).meta
    >>> meta.measure, meta.num_nodes, meta.weight_scheme
    ('gSR*', 3, 'geometric')
    >>> meta.mode, meta.walk_samples
    ('exact', 0)
    >>> IndexMeta.from_dict(meta.to_dict()) == meta
    True
    """

    measure: str
    c: float
    truncation: int
    weight_scheme: str | None
    dtype: str
    num_nodes: int
    num_edges: int
    graph_digest: str
    artifacts: tuple[str, ...]
    mode: str = "exact"
    epsilon: float | None = None
    seed: int = 0
    walk_length: int = 0
    walk_samples: int = 0

    def to_dict(self) -> dict:
        return dict(self.__dict__, artifacts=list(self.artifacts))

    @classmethod
    def from_dict(cls, data: dict) -> "IndexMeta":
        fields = dict(data)
        fields["artifacts"] = tuple(fields.get("artifacts", ()))
        return cls(**fields)


# ---------------------------------------------------------------------------
# the index itself
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SimilarityIndex:
    """One immutable, serialisable precomputation bundle.

    Attributes
    ----------
    meta:
        The :class:`IndexMeta` fingerprint block.
    transition / transition_t:
        ``Q`` and ``Q^T`` as CSR (or ``None`` when the measure never
        touches them).
    factors:
        ``(E_direct, H_out, H_in)`` of the biclique compression, or
        ``None``. :meth:`compressed_graph` reassembles the full
        :class:`~repro.bigraph.compressed.CompressedGraph` view.
    coefficients:
        The ``(L+1) x (L+1)`` series coefficient table of the blocked
        multi-source kernel, or ``None``.
    walks:
        The :class:`~repro.approx.WalkIndex` sample store for
        ``mode="approx"`` serving, or ``None`` for exact indexes.

    Examples
    --------
    Build once, persist, reload memory-mapped, serve without rebuild:

    >>> import tempfile, os
    >>> from repro import DiGraph, SimilarityEngine, SimilarityIndex
    >>> g = DiGraph(3, edges=[(0, 1), (0, 2)], labels=["a", "b", "c"])
    >>> index = SimilarityIndex.build(
    ...     g, measure="gSR*", c=0.8, num_iterations=10)
    >>> path = os.path.join(tempfile.mkdtemp(), "g.simidx")
    >>> _ = index.save(path)
    >>> loaded = SimilarityIndex.load(path, mmap=True)
    >>> engine = SimilarityEngine.from_index(loaded, g)
    >>> engine.score("b", "c") > 0
    True
    >>> engine.stats.transition_builds       # adopted, not rebuilt
    0
    """

    meta: IndexMeta
    transition: sp.csr_array | None = field(repr=False, default=None)
    transition_t: sp.csr_array | None = field(repr=False, default=None)
    factors: tuple[sp.csr_array, sp.csr_array, sp.csr_array] | None = (
        field(repr=False, default=None)
    )
    coefficients: np.ndarray | None = field(repr=False, default=None)
    walks: "WalkIndex | None" = field(repr=False, default=None)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: DiGraph,
        config: "SimilarityConfig | None" = None,
        *,
        transition: sp.csr_array | None = None,
        transition_t: sp.csr_array | None = None,
        compressed: CompressedGraph | None = None,
        walks: "WalkIndex | None" = None,
        **overrides,
    ) -> "SimilarityIndex":
        """Build every artifact ``config``'s measure can consume.

        ``transition`` / ``transition_t`` / ``compressed`` / ``walks``
        reuse already-built artifacts (this is how
        :meth:`SimilarityEngine.export_index` avoids rebuilding what
        the engine has already warmed); anything not supplied is built
        here.
        """
        from repro.engine.config import SimilarityConfig

        if config is None:
            config = SimilarityConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        spec, truncation, scheme = _resolve_config(config)
        wanted = planned_artifacts(spec, config.mode)
        q = qt = factors = coefficients = None
        if "transition" in wanted:
            q, qt = build_transition_pair(
                graph,
                dtype=config.np_dtype,
                transition=transition,
                transition_t=transition_t,
            )
        if "factors" in wanted:
            if compressed is None:
                compressed = build_compressed(graph)
            factors = compressed.factorized_in_adjacency()
        if "coefficients" in wanted:
            from repro.core.multi_source import series_coefficients

            coefficients = series_coefficients(
                truncation, _SCHEMES[scheme](config.c)
            )
        walk_length = walk_samples = 0
        if "walks" in wanted:
            from repro.approx import approx_params
            from repro.approx.walks import WalkIndex

            walk_length, walk_samples = approx_params(
                truncation, config.epsilon
            )
            if walks is None:
                walks = WalkIndex.build(
                    q,
                    walk_length=walk_length,
                    samples=walk_samples,
                    seed=config.seed,
                )
            elif (
                walks.walk_length != walk_length
                or walks.samples != walk_samples
                or walks.seed != config.seed
            ):
                raise ValueError(
                    "supplied walk index geometry "
                    f"(length={walks.walk_length}, "
                    f"samples={walks.samples}, seed={walks.seed}) "
                    "disagrees with the configuration's "
                    f"(length={walk_length}, samples={walk_samples}, "
                    f"seed={config.seed})"
                )
        else:
            walks = None
        fingerprint = graph_fingerprint(graph)
        meta = IndexMeta(
            measure=config.measure,
            c=config.c,
            truncation=truncation,
            weight_scheme=scheme,
            dtype=config.dtype,
            num_nodes=fingerprint["num_nodes"],
            num_edges=fingerprint["num_edges"],
            graph_digest=fingerprint["digest"],
            artifacts=wanted,
            mode=config.mode,
            epsilon=config.epsilon,
            seed=config.seed if config.mode == "approx" else 0,
            walk_length=walk_length,
            walk_samples=walk_samples,
        )
        return cls(
            meta=meta,
            transition=q,
            transition_t=qt,
            factors=factors,
            coefficients=coefficients,
            walks=walks,
        )

    def save(self, path: str | Path) -> Path:
        """Persist to ``path`` (atomic write + rename). Returns it."""
        from repro.index.store import save_index

        return save_index(self, path)

    @classmethod
    def load(
        cls, path: str | Path, mmap: bool = True
    ) -> "SimilarityIndex":
        """Load a saved index.

        With ``mmap=True`` (the default) every array buffer is a
        read-only :class:`numpy.memmap` over the file — nothing is
        copied onto the heap until touched, pages are shared across
        every process mapping the same file, and load time is
        independent of index size. ``mmap=False`` reads private
        in-memory copies instead.
        """
        from repro.index.store import load_index

        return load_index(path, mmap=mmap)

    # ------------------------------------------------------------------
    # consumption
    # ------------------------------------------------------------------
    def compressed_graph(self, graph: DiGraph) -> CompressedGraph:
        """Reassemble the full ``G^`` view over ``graph``.

        The factor triple is authoritative — the biclique/set views
        are reconstructed from it exactly, and the returned object's
        factorised cache is pre-seeded with the (possibly mmap'd)
        loaded matrices, so matrix-path measures never rebuild them.
        """
        if self.factors is None:
            raise ValueError(
                "index carries no compressed factors "
                f"(artifacts: {self.meta.artifacts})"
            )
        return CompressedGraph.from_factors(graph, *self.factors)

    def similarity_config(self, **overrides) -> "SimilarityConfig":
        """A :class:`SimilarityConfig` this index is compatible with.

        Serving-only knobs (``max_cached_columns``, ``column_policy``)
        may be supplied as ``overrides`` without breaking
        compatibility; overriding an artifact-relevant field simply
        produces a config :meth:`verify_compatible` will reject.
        """
        from repro.engine.config import SimilarityConfig

        config = SimilarityConfig(
            measure=self.meta.measure,
            c=self.meta.c,
            num_iterations=self.meta.truncation,
            dtype=self.meta.dtype,
            mode=self.meta.mode,
            # approx mode carries both: truncation came from
            # num_iterations above, epsilon re-sizes the sample budget
            epsilon=(
                self.meta.epsilon
                if self.meta.mode == "approx"
                else None
            ),
            seed=self.meta.seed,
        )
        return config.replace(**overrides) if overrides else config

    def verify_compatible(
        self, graph: DiGraph, config: "SimilarityConfig"
    ) -> None:
        """Raise :exc:`IndexMismatchError` unless this index serves
        exactly ``(graph, config)``.

        The graph check is content-based (edge-set digest), so it
        catches mutations that preserve node and edge counts; the
        config check compares the *resolved* artifact-relevant fields.
        The raised error carries structured
        :attr:`IndexMismatchError.mismatches` — one
        ``{"kind", "field", "expected", "found"}`` record per
        diverging field, ``expected`` being what this index was built
        for and ``found`` what it was handed.
        """
        mismatches: list[dict] = []
        if graph.num_nodes != self.meta.num_nodes:
            mismatches.append(_mismatch(
                "graph", "num_nodes",
                self.meta.num_nodes, graph.num_nodes,
            ))
        if graph.num_edges != self.meta.num_edges:
            mismatches.append(_mismatch(
                "graph", "num_edges",
                self.meta.num_edges, graph.num_edges,
            ))
        if not mismatches:
            # counts agree: only now pay the O(m) content digest
            fingerprint = graph_fingerprint(graph)
            if fingerprint["digest"] != self.meta.graph_digest:
                mismatches.append(_mismatch(
                    "graph", "graph_digest",
                    self.meta.graph_digest, fingerprint["digest"],
                ))
        spec, truncation, scheme = _resolve_config(config)
        pairs = [
            ("measure", self.meta.measure, config.measure),
            ("c", self.meta.c, config.c),
            ("truncation", self.meta.truncation, truncation),
            ("weight_scheme", self.meta.weight_scheme, scheme),
            ("dtype", self.meta.dtype, config.dtype),
            ("mode", self.meta.mode, config.mode),
        ]
        if self.meta.mode == "approx" and config.mode == "approx":
            from repro.approx import approx_params

            walk_length, walk_samples = approx_params(
                truncation, config.epsilon
            )
            pairs += [
                ("walk_length", self.meta.walk_length, walk_length),
                ("walk_samples", self.meta.walk_samples, walk_samples),
                ("seed", self.meta.seed, config.seed),
            ]
        for name, ours, theirs in pairs:
            if ours != theirs:
                mismatches.append(
                    _mismatch("config", name, ours, theirs)
                )
        if mismatches:
            raise _mismatch_error(
                mismatches,
                "refusing to serve from a stale/mismatched index "
                "(scores would be wrong)",
            )

    def matches(
        self, graph: DiGraph, config: "SimilarityConfig"
    ) -> bool:
        """True iff :meth:`verify_compatible` would pass."""
        try:
            self.verify_compatible(graph, config)
        except IndexMismatchError:
            return False
        return True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def compacted(self) -> "SimilarityIndex":
        """This index with any CSR overlay folded to a clean CSR.

        Delta application (:func:`repro.index.delta.apply_delta`) may
        leave ``transition`` as a
        :class:`~repro.core.overlay.CsrOverlay`; serialisation and
        factor reconstruction want plain CSR. Returns ``self`` when
        nothing is an overlay.
        """
        from dataclasses import replace

        from repro.core.overlay import CsrOverlay

        if not isinstance(self.transition, CsrOverlay):
            return self
        return replace(self, transition=self.transition.tocsr())

    @property
    def nbytes(self) -> int:
        """Total bytes across every array buffer."""
        total = 0
        parts = []
        for matrix in self._csr_items().values():
            if hasattr(matrix, "data"):
                parts.append(matrix)
            else:  # CsrOverlay: base plus the patch rows
                parts.extend((matrix.base, matrix.patch))
        for matrix in parts:
            total += (
                matrix.data.nbytes
                + matrix.indices.nbytes
                + matrix.indptr.nbytes
            )
        if self.coefficients is not None:
            total += self.coefficients.nbytes
        if self.walks is not None:
            total += self.walks.nbytes
        return total

    def _csr_items(self) -> dict[str, sp.csr_array]:
        out: dict[str, sp.csr_array] = {}
        if self.transition is not None:
            out["transition"] = self.transition
        if self.transition_t is not None:
            out["transition_t"] = self.transition_t
        if self.factors is not None:
            e_direct, h_out, h_in = self.factors
            out["e_direct"] = e_direct
            out["h_out"] = h_out
            out["h_in"] = h_in
        return out

    def describe(self) -> dict:
        """A JSON-ready summary (the ``inspect`` CLI's output)."""
        arrays = {
            name: {
                "shape": list(matrix.shape),
                "nnz": int(matrix.nnz),
                "dtype": str(matrix.dtype),
            }
            for name, matrix in self._csr_items().items()
        }
        if self.coefficients is not None:
            arrays["coefficients"] = {
                "shape": list(self.coefficients.shape),
                "dtype": str(self.coefficients.dtype),
            }
        if self.walks is not None:
            arrays["walks"] = self.walks.describe()
        return {
            "meta": self.meta.to_dict(),
            "arrays": arrays,
            "nbytes": self.nbytes,
        }

    def __repr__(self) -> str:
        return (
            f"SimilarityIndex(measure={self.meta.measure!r}, "
            f"nodes={self.meta.num_nodes}, "
            f"edges={self.meta.num_edges}, "
            f"artifacts={list(self.meta.artifacts)}, "
            f"digest={self.meta.graph_digest[:12]})"
        )
