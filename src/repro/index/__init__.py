"""`repro.index` — the persistent precomputation artifact layer.

The paper's whole economic argument is that one cheap precomputation
(the backward transition matrix ``Q``, the biclique-compressed factors
of ``A^T``, the series length-weight coefficient tables) amortises
across every node-pair query. This package makes that precomputation a
first-class *index* with its own build / store / load lifecycle,
instead of something every :class:`~repro.engine.SimilarityEngine`
rebuilds in-process:

* :class:`SimilarityIndex` — an immutable bundle of the shared
  artifacts plus the fingerprints (graph content digest, resolved
  similarity configuration, format version) that pin exactly which
  ``(graph, config)`` pair it answers for.
* :func:`SimilarityIndex.build` / :meth:`SimilarityIndex.save` /
  :func:`SimilarityIndex.load` — build from a graph, persist to a
  single aligned binary container, and reload with ``mmap=True`` so
  the dense/CSR buffers map zero-copy via :class:`numpy.memmap`: N
  server workers loading the same file share one page cache instead
  of N heap copies, and a restart pays file-open cost instead of
  rebuild cost.
* :exc:`IndexMismatchError` — raised (instead of silently serving
  wrong scores) when an index is attached to a graph or configuration
  it was not built for; carries the structured per-field
  ``mismatches`` list describing exactly what diverged.
* :mod:`repro.index.delta` — ``O(delta)`` incremental maintenance:
  :func:`apply_delta` splices an edge batch into every artifact
  (bit-identical to a from-scratch rebuild), :func:`save_delta` /
  :func:`load_delta` persist the batch as a tiny checksummed,
  fingerprint-chained segment, and :func:`apply_delta_file` replays
  one onto its exact base generation.
* ``python -m repro.index build|inspect|verify|smoke|compact`` — the
  operational CLI (``compact`` folds a base + its delta chain into a
  fresh base offline).

Consumers: :class:`~repro.engine.SimilarityEngine` accepts ``index=``
(or ``SimilarityEngine.from_index``) and adopts the artifacts instead
of rebuilding them; :class:`~repro.serve.SnapshotManager` warms
replacement engines from a matching on-disk index and persists freshly
built ones, making server restart warmup near-zero.
"""

from repro.index.artifacts import (
    IndexMeta,
    IndexMismatchError,
    SimilarityIndex,
    build_compressed,
    build_transition,
    build_transition_pair,
    graph_fingerprint,
)
from repro.index.delta import (
    IndexDelta,
    apply_delta,
    apply_delta_file,
    delta_sibling_path,
    find_delta_siblings,
    load_delta,
    save_delta,
)
from repro.index.store import (
    FORMAT_VERSION,
    IndexFormatError,
    load_index,
    read_header,
    save_index,
    verify_index,
)

__all__ = [
    "FORMAT_VERSION",
    "IndexDelta",
    "IndexFormatError",
    "IndexMeta",
    "IndexMismatchError",
    "SimilarityIndex",
    "apply_delta",
    "apply_delta_file",
    "build_compressed",
    "build_transition",
    "build_transition_pair",
    "delta_sibling_path",
    "find_delta_siblings",
    "graph_fingerprint",
    "load_delta",
    "load_index",
    "read_header",
    "save_delta",
    "save_index",
    "verify_index",
]
