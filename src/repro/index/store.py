"""On-disk container for :class:`~repro.index.SimilarityIndex`.

One ``.simidx`` file holds every artifact of one index::

    bytes 0..7    magic  b"SIMIDX01"
    bytes 8..15   header length (little-endian uint64)
    ...           JSON header (utf-8)
    ...           zero padding to a 64-byte boundary
    ...           array segments, each 64-byte aligned

The header records the index metadata plus an array table — for every
buffer its dtype (with byte order), shape, payload-relative offset,
byte length, and sha256. Array offsets are relative to the payload
start (itself derived from the header length), so the header can be
serialised in one pass.

Why not ``.npz``? :func:`numpy.load` cannot memory-map members of a
zip container — it inflates them onto the heap. This layout keeps
every buffer page-aligned inside one flat file, so ``mmap=True`` loads
are zero-copy: the CSR ``data`` / ``indices`` / ``indptr`` buffers and
the coefficient table are read-only :class:`numpy.memmap` views, N
worker processes mapping the same index share one page cache, and
bytes are only faulted in when a query actually touches them.

Corruption is rejected loudly: bad magic, an unsupported format
version, a header that does not parse, or a file too short for its
declared payload all raise :exc:`IndexFormatError` at load time;
:func:`verify_index` additionally recomputes every checksum and
checks CSR structural invariants (the ``verify`` CLI).
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from pathlib import Path

import numpy as np
import scipy.sparse as sp

__all__ = [
    "DEFAULT_SUFFIX",
    "FORMAT_VERSION",
    "IndexFormatError",
    "container_kind",
    "load_index",
    "read_header",
    "save_index",
    "verify_index",
    "write_container",
]

MAGIC = b"SIMIDX01"
FORMAT_VERSION = 1
ALIGNMENT = 64

#: Conventional file extension for saved indexes.
DEFAULT_SUFFIX = ".simidx"


class IndexFormatError(ValueError):
    """The file is not a readable similarity index of this version.

    >>> import tempfile, os
    >>> from repro.index import IndexFormatError, load_index
    >>> path = os.path.join(tempfile.mkdtemp(), "junk.simidx")
    >>> with open(path, "wb") as f:
    ...     _ = f.write(b"not an index")
    >>> try:
    ...     load_index(path)
    ... except IndexFormatError as exc:
    ...     "bad magic" in str(exc)
    True
    """


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


# ---------------------------------------------------------------------------
# save
# ---------------------------------------------------------------------------
def _flat_arrays(index) -> tuple[dict[str, np.ndarray], dict]:
    """``(name -> buffer, csr name -> shape)`` for every stored array."""
    arrays: dict[str, np.ndarray] = {}
    csr_shapes: dict[str, list[int]] = {}
    for name, matrix in index._csr_items().items():
        csr_shapes[name] = list(matrix.shape)
        arrays[f"{name}/data"] = np.ascontiguousarray(matrix.data)
        arrays[f"{name}/indices"] = np.ascontiguousarray(
            matrix.indices
        )
        arrays[f"{name}/indptr"] = np.ascontiguousarray(matrix.indptr)
    if index.coefficients is not None:
        arrays["coefficients"] = np.ascontiguousarray(
            index.coefficients
        )
    if index.walks is not None:
        walks = index.walks
        arrays["walks/endpoints"] = np.ascontiguousarray(
            walks.endpoints
        )
        arrays["walks/sources"] = np.ascontiguousarray(walks.sources)
        arrays["walks/counts"] = np.ascontiguousarray(walks.counts)
        arrays["walks/indptr"] = np.ascontiguousarray(walks.indptr)
        arrays["walks/level_offsets"] = np.ascontiguousarray(
            walks.level_offsets
        )
    return arrays, csr_shapes


def write_container(
    path: str | Path, header_fields: dict, arrays: dict[str, np.ndarray]
) -> Path:
    """Write a generic ``.simidx`` container atomically.

    Shared by full-index saves and ``delta-<seq>.simidx`` segments:
    the caller supplies the header sections specific to its payload
    kind (``meta``, ``csr_shapes``, ``kind``, ``delta`` ...); this
    function adds ``format_version`` and the checksummed array table,
    lays the segments out 64-byte aligned, and renames a temp file
    into place so concurrent readers never see a torn write.
    """
    path = Path(path)
    table: dict[str, dict] = {}
    offset = 0
    contiguous = {
        name: np.ascontiguousarray(array)
        for name, array in arrays.items()
    }
    for name, array in contiguous.items():
        offset = _align(offset)
        table[name] = {
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": offset,
            "nbytes": int(array.nbytes),
            "sha256": hashlib.sha256(memoryview(array)).hexdigest(),
        }
        offset += array.nbytes
    header = dict(header_fields)
    header["format_version"] = FORMAT_VERSION
    header["arrays"] = table
    header_bytes = json.dumps(header, sort_keys=True).encode()
    payload_start = _align(16 + len(header_bytes))
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(MAGIC)
            handle.write(struct.pack("<Q", len(header_bytes)))
            handle.write(header_bytes)
            handle.write(
                b"\0" * (payload_start - 16 - len(header_bytes))
            )
            position = 0
            for name, array in contiguous.items():
                padded = _align(position)
                handle.write(b"\0" * (padded - position))
                handle.write(memoryview(array))  # no bytes copy
                position = padded + array.nbytes
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed write
            tmp.unlink()
    return path


def container_kind(header: dict) -> str:
    """The payload kind a container header declares.

    Headers written before delta segments existed carry no ``kind``
    field; they are full indexes.
    """
    return header.get("kind", "index")


def save_index(index, path: str | Path) -> Path:
    """Write ``index`` to ``path`` atomically (temp file + rename).

    The rename makes a concurrently loading process see either the old
    complete file or the new complete file, never a torn write — the
    property :class:`~repro.serve.SnapshotManager` relies on when it
    persists a freshly built index while older workers may still be
    mapping the previous one.

    Examples
    --------
    >>> import tempfile, os
    >>> from repro import DiGraph, SimilarityIndex
    >>> from repro.index import load_index, save_index, verify_index
    >>> index = SimilarityIndex.build(
    ...     DiGraph(3, edges=[(0, 1), (0, 2)]), measure="gSR*")
    >>> path = save_index(
    ...     index, os.path.join(tempfile.mkdtemp(), "g.simidx"))
    >>> verify_index(path)            # no problems
    []
    >>> load_index(path).meta == index.meta
    True
    """
    if hasattr(index, "compacted"):
        # delta-applied indexes may hold a CsrOverlay transition; the
        # on-disk form is always a clean CSR
        index = index.compacted()
    arrays, csr_shapes = _flat_arrays(index)
    return write_container(
        path,
        {"meta": index.meta.to_dict(), "csr_shapes": csr_shapes},
        arrays,
    )


# ---------------------------------------------------------------------------
# load
# ---------------------------------------------------------------------------
def read_header(path: str | Path) -> tuple[dict, int]:
    """``(header, payload_start)`` after full format validation.

    Cheap — reads only the fixed prefix and the JSON header, never an
    array segment. The ``inspect`` CLI and
    :class:`~repro.serve.SnapshotManager`'s is-it-worth-loading check
    both go through here.

    Examples
    --------
    >>> import tempfile, os
    >>> from repro import DiGraph, SimilarityIndex
    >>> from repro.index import FORMAT_VERSION, read_header
    >>> path = SimilarityIndex.build(
    ...     DiGraph(2, edges=[(0, 1)]), measure="gSR*"
    ... ).save(os.path.join(tempfile.mkdtemp(), "g.simidx"))
    >>> header, payload_start = read_header(path)
    >>> header["format_version"] == FORMAT_VERSION
    True
    >>> payload_start > 0
    True
    """
    path = Path(path)
    try:
        size = path.stat().st_size
    except OSError as exc:
        raise IndexFormatError(f"cannot read {path}: {exc}") from exc
    with open(path, "rb") as handle:
        prefix = handle.read(16)
        if len(prefix) < 16 or prefix[:8] != MAGIC:
            raise IndexFormatError(
                f"{path} is not a similarity index (bad magic)"
            )
        (header_len,) = struct.unpack("<Q", prefix[8:16])
        if 16 + header_len > size:
            raise IndexFormatError(
                f"{path} is truncated: header declares "
                f"{header_len} bytes, file has {size}"
            )
        try:
            header = json.loads(handle.read(header_len))
        except (ValueError, UnicodeDecodeError) as exc:
            raise IndexFormatError(
                f"{path} has a corrupt header: {exc}"
            ) from exc
    version = header.get("format_version")
    if version != FORMAT_VERSION:
        raise IndexFormatError(
            f"{path} uses index format version {version!r}; this "
            f"build reads version {FORMAT_VERSION} — rebuild the "
            "index with `python -m repro.index build`"
        )
    if not isinstance(header.get("arrays"), dict) or not isinstance(
        header.get("meta"), dict
    ):
        raise IndexFormatError(f"{path} header is missing sections")
    payload_start = _align(16 + header_len)
    end = payload_start
    for name, entry in header["arrays"].items():
        try:
            end = max(
                end,
                payload_start + int(entry["offset"])
                + int(entry["nbytes"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise IndexFormatError(
                f"{path} array table entry {name!r} is malformed"
            ) from exc
    if end > size:
        raise IndexFormatError(
            f"{path} is truncated: payload needs {end} bytes, "
            f"file has {size}"
        )
    return header, payload_start


def _load_array(
    path: Path,
    payload_start: int,
    entry: dict,
    mmap: bool,
) -> np.ndarray:
    try:
        dtype = np.dtype(entry["dtype"])
        shape = tuple(entry["shape"])
    except (TypeError, ValueError) as exc:
        raise IndexFormatError(
            f"{path} has a corrupt array entry: {exc}"
        ) from exc
    try:
        if entry["nbytes"] == 0:
            return np.zeros(shape, dtype=dtype)
        if mmap:
            return np.memmap(
                path,
                dtype=dtype,
                mode="r",
                offset=payload_start + entry["offset"],
                shape=shape,
            )
        with open(path, "rb") as handle:
            handle.seek(payload_start + entry["offset"])
            raw = handle.read(entry["nbytes"])
        if len(raw) != entry["nbytes"]:
            raise IndexFormatError(
                f"{path}: short read (truncated file)"
            )
        return np.frombuffer(raw, dtype=dtype).reshape(shape)
    except IndexFormatError:
        raise
    except (TypeError, ValueError) as exc:
        # dtype/shape/nbytes that disagree with each other
        raise IndexFormatError(
            f"{path} has a corrupt array entry: {exc}"
        ) from exc


def load_index(path: str | Path, mmap: bool = True):
    """Reassemble a :class:`SimilarityIndex` from ``path``.

    ``mmap=True`` maps every buffer read-only and zero-copy;
    ``mmap=False`` reads private (still read-only) heap copies.

    Examples
    --------
    >>> import tempfile, os
    >>> from repro import DiGraph, SimilarityIndex
    >>> from repro.index import load_index
    >>> path = SimilarityIndex.build(
    ...     DiGraph(2, edges=[(0, 1)]), measure="gSR*"
    ... ).save(os.path.join(tempfile.mkdtemp(), "g.simidx"))
    >>> index = load_index(path, mmap=True)
    >>> type(index.coefficients).__name__    # mapped, not copied
    'memmap'
    >>> index.transition.data.flags.writeable
    False
    """
    from repro.index.artifacts import IndexMeta, SimilarityIndex

    path = Path(path)
    header, payload_start = read_header(path)
    if container_kind(header) != "index":
        raise IndexFormatError(
            f"{path} is a {container_kind(header)!r} segment, not a "
            "full index — apply it onto its base generation "
            "(repro.index.delta) or fold the chain with "
            "`python -m repro.index compact`"
        )
    arrays = header["arrays"]

    def array(name: str) -> np.ndarray:
        return _load_array(path, payload_start, arrays[name], mmap)

    def csr(name: str) -> sp.csr_array | None:
        if name not in header.get("csr_shapes", {}):
            return None
        try:
            parts = (
                array(f"{name}/data"),
                array(f"{name}/indices"),
                array(f"{name}/indptr"),
            )
            return sp.csr_array(
                parts, shape=tuple(header["csr_shapes"][name])
            )
        except IndexFormatError:
            raise
        except (KeyError, TypeError, ValueError, OverflowError) as exc:
            # a header that parses as JSON but describes impossible
            # buffers (wrong dtype string, inconsistent shapes) is
            # corruption, not a caller error — keep the contract that
            # every unreadable file raises IndexFormatError
            raise IndexFormatError(
                f"{path}: csr {name!r} is unreadable: {exc}"
            ) from exc

    try:
        meta = IndexMeta.from_dict(header["meta"])
    except TypeError as exc:
        raise IndexFormatError(
            f"{path} has an incomplete meta block: {exc}"
        ) from exc
    e_direct = csr("e_direct")
    h_out = csr("h_out")
    h_in = csr("h_in")
    factors = (
        (e_direct, h_out, h_in)
        if e_direct is not None
        and h_out is not None
        and h_in is not None
        else None
    )
    walks = None
    if "walks/endpoints" in arrays:
        from repro.approx.walks import WalkIndex

        try:
            walks = WalkIndex.from_arrays(
                array("walks/endpoints"),
                array("walks/sources"),
                array("walks/counts"),
                array("walks/indptr"),
                array("walks/level_offsets"),
                seed=meta.seed,
            )
        except IndexFormatError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            # same contract as the csr loader: a header describing
            # inconsistent walk buffers is corruption, not a caller
            # error
            raise IndexFormatError(
                f"{path}: walk segments are unreadable: {exc}"
            ) from exc
    return SimilarityIndex(
        meta=meta,
        transition=csr("transition"),
        transition_t=csr("transition_t"),
        factors=factors,
        coefficients=(
            array("coefficients")
            if "coefficients" in arrays
            else None
        ),
        walks=walks,
    )


# ---------------------------------------------------------------------------
# verify
# ---------------------------------------------------------------------------
def verify_index(path: str | Path) -> list[str]:
    """Deep-check ``path``; returns problems (empty = healthy).

    Recomputes every array checksum against the header (so a flipped
    byte anywhere in the payload is caught) and validates the CSR
    structural invariants — monotone ``indptr`` starting at 0 and
    ending at ``nnz``, column indices inside the declared shape.
    Format-level corruption (bad magic / version / truncation) is
    reported the same way instead of raising.

    Examples
    --------
    >>> import tempfile, os
    >>> from repro import DiGraph, SimilarityIndex
    >>> from repro.index import verify_index
    >>> path = SimilarityIndex.build(
    ...     DiGraph(2, edges=[(0, 1)]), measure="gSR*"
    ... ).save(os.path.join(tempfile.mkdtemp(), "g.simidx"))
    >>> verify_index(path)
    []
    >>> with open(path, "r+b") as f:       # flip one payload byte
    ...     _ = f.seek(-1, os.SEEK_END)
    ...     byte = f.read(1)
    ...     _ = f.seek(-1, os.SEEK_END)
    ...     _ = f.write(bytes([byte[0] ^ 0xFF]))
    >>> problems = verify_index(path)
    >>> len(problems) >= 1
    True
    """
    path = Path(path)
    try:
        header, payload_start = read_header(path)
    except IndexFormatError as exc:
        return [str(exc)]
    problems: list[str] = []
    with open(path, "rb") as handle:
        for name, entry in sorted(header["arrays"].items()):
            handle.seek(payload_start + entry["offset"])
            raw = handle.read(entry["nbytes"])
            if len(raw) != entry["nbytes"]:
                problems.append(f"{name}: short read (truncated)")
                continue
            digest = hashlib.sha256(raw).hexdigest()
            if digest != entry["sha256"]:
                problems.append(
                    f"{name}: checksum mismatch (stored "
                    f"{entry['sha256'][:12]}..., actual "
                    f"{digest[:12]}...)"
                )
    if problems:
        return problems
    for name, shape in header.get("csr_shapes", {}).items():
        rows, cols = shape
        indptr = _load_array(
            path, payload_start,
            header["arrays"][f"{name}/indptr"], mmap=False,
        )
        indices = _load_array(
            path, payload_start,
            header["arrays"][f"{name}/indices"], mmap=False,
        )
        if len(indptr) != rows + 1 or (rows >= 0 and indptr[0] != 0):
            problems.append(f"{name}: malformed indptr")
            continue
        if np.any(np.diff(indptr) < 0):
            problems.append(f"{name}: indptr not monotone")
        if indptr[-1] != indices.size:
            problems.append(
                f"{name}: indptr end {int(indptr[-1])} != "
                f"nnz {indices.size}"
            )
        if indices.size and (
            indices.min() < 0 or indices.max() >= cols
        ):
            problems.append(f"{name}: column index out of range")
    problems.extend(_verify_walks(path, payload_start, header))
    return problems


def _verify_walks(
    path: Path, payload_start: int, header: dict
) -> list[str]:
    """Structural invariants of the optional walk segments.

    Checksums (already verified by the caller) catch flipped bytes;
    these checks catch a header/payload combination that is internally
    consistent but describes impossible walks — endpoints outside the
    node range, non-monotone bucket boundaries, a sources array that
    disagrees with its level offsets.
    """
    arrays = header["arrays"]
    if "walks/endpoints" not in arrays:
        return []
    from repro.approx.walks import DEAD

    problems: list[str] = []

    def load(name: str) -> np.ndarray:
        return _load_array(
            path, payload_start, arrays[name], mmap=False
        )

    try:
        endpoints = load("walks/endpoints")
        sources = load("walks/sources")
        counts = load("walks/counts")
        indptr = load("walks/indptr")
        level_offsets = load("walks/level_offsets")
    except (KeyError, IndexFormatError) as exc:
        return [f"walks: segment set incomplete or unreadable: {exc}"]
    if endpoints.ndim != 3:
        return [f"walks: endpoints has rank {endpoints.ndim}, not 3"]
    walk_length, num_nodes, samples = endpoints.shape
    if indptr.shape != (walk_length, num_nodes + 1):
        problems.append(
            f"walks: indptr shape {indptr.shape} disagrees with "
            f"endpoints {endpoints.shape}"
        )
        return problems
    if level_offsets.shape != (walk_length + 1,):
        problems.append(
            f"walks: level_offsets shape {level_offsets.shape} "
            f"disagrees with walk_length {walk_length}"
        )
        return problems
    live = endpoints[endpoints != DEAD]
    if live.size and live.max() >= num_nodes:
        problems.append(
            f"walks: endpoint {int(live.max())} out of range for "
            f"{num_nodes} nodes"
        )
    if np.any(np.diff(indptr, axis=-1) < 0) or np.any(
        indptr[:, 0] != 0
    ):
        problems.append("walks: bucket indptr not monotone from 0")
    if np.any(np.diff(level_offsets) < 0) or (
        walk_length and int(level_offsets[-1]) != sources.size
    ):
        problems.append(
            "walks: level offsets disagree with sources length"
        )
    if sources.size and int(sources.max()) >= num_nodes:
        problems.append(
            f"walks: source {int(sources.max())} out of range for "
            f"{num_nodes} nodes"
        )
    if counts.shape != sources.shape:
        problems.append(
            f"walks: counts length {counts.size} disagrees with "
            f"sources length {sources.size}"
        )
    elif counts.size and (
        int(counts.min()) < 1 or int(counts.max()) > samples
    ):
        problems.append(
            "walks: bucket count outside [1, samples] "
            f"(samples={samples})"
        )
    return problems
