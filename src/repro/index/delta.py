"""Delta-aware incremental maintenance of :class:`SimilarityIndex`.

A graph mutation touches ``O(delta)`` rows of every artifact, yet the
serving stack used to rebuild all of them from scratch. This module
applies an edge batch *to the artifacts themselves*:

* ``Q`` (backward transition): only the rows of edit **targets**
  change (row ``v`` of ``Q`` is the normalised in-adjacency of ``v``),
  so the new matrix is the untouched base plus a per-row patch —
  a :class:`~repro.core.overlay.CsrOverlay` consulted directly by the
  kernels, lazily compacted once the patch outgrows
  ``max_overlay_fraction`` of the base.
* ``Q^T``: structure changes only in edit **source** rows (row ``u``
  lists ``O(u)``), and every value is a pure gather of the per-column
  scale table ``1/|I(i)|`` — one vectorised row splice plus one gather
  rebuilds it exactly.
* biclique factors: touched rows are *demoted* out of their bicliques
  (``E_direct`` row := the full new in-adjacency, ``H_out`` row :=
  empty), preserving ``A^T = E_direct + H_out H_in`` while keeping
  every untouched factor row bit-identical; a later
  ``python -m repro.index compact`` / full rebuild re-compresses.
* walks (approx mode): redrawn from the updated ``Q`` with the same
  seed — the sampler's draw sequence is position-determined, so this
  reproduces exactly what a from-scratch rebuild would draw.

Values are computed with the same operations (``np.divide`` of the
same operands, the same CSR kernels) as a fresh build, so delta-path
scores are **bit-identical** to a from-scratch rebuild — the property
the parity suite asserts and the bench ``--mutate`` tier gates.

Mutations persist as ``delta-<seq>.simidx`` segments: the shared
container format (checksummed array table) carrying only the edge
edits plus chain fingerprints — the digest of the base generation they
apply to and of the generation they produce. Cluster workers mmap the
base once and apply deltas on top, so a two-phase swap ships only the
delta.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.core.overlay import CsrOverlay
from repro.index.artifacts import (
    IndexMeta,
    IndexMismatchError,
    SimilarityIndex,
    _mismatch,
    _mismatch_error,
)
from repro.index.store import (
    IndexFormatError,
    container_kind,
    read_header,
    write_container,
)

__all__ = [
    "IndexDelta",
    "apply_delta",
    "apply_delta_file",
    "delta_sibling_path",
    "find_delta_siblings",
    "load_delta",
    "save_delta",
]


# ---------------------------------------------------------------------------
# the delta record
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class IndexDelta:
    """One edge batch plus the fingerprints chaining it to its base.

    ``added`` / ``removed`` are ``(k, 2)`` int64 arrays of ``(u, v)``
    edges, each sorted by ``(u, v)`` with no duplicates and no overlap
    between the two. The delta applies **only** onto the generation
    whose content digest is ``base_digest`` and deterministically
    produces the generation fingerprinted by ``result_digest`` /
    ``result_meta`` — patches are recomputed from the edits at apply
    time, so the segment stays tiny no matter how large the graph.

    Examples
    --------
    >>> from repro import DiGraph, SimilarityIndex
    >>> from repro.index import apply_delta
    >>> base = SimilarityIndex.build(
    ...     DiGraph(3, edges=[(0, 1), (2, 1)]), measure="gSR*")
    >>> _, delta = apply_delta(base, added=[(0, 2)])
    >>> delta.num_edits, delta.chain_depth
    (1, 1)
    >>> delta.describe()["added"]
    1
    """

    added: np.ndarray
    removed: np.ndarray
    num_nodes: int
    base_digest: str
    base_num_edges: int
    result_digest: str
    result_num_edges: int
    result_meta: IndexMeta
    chain_depth: int = 1

    @property
    def num_edits(self) -> int:
        return int(self.added.shape[0] + self.removed.shape[0])

    def describe(self) -> dict:
        return {
            "added": int(self.added.shape[0]),
            "removed": int(self.removed.shape[0]),
            "num_nodes": self.num_nodes,
            "base_digest": self.base_digest,
            "base_num_edges": self.base_num_edges,
            "result_digest": self.result_digest,
            "result_num_edges": self.result_num_edges,
            "chain_depth": self.chain_depth,
        }


# ---------------------------------------------------------------------------
# edit normalisation and key splicing
# ---------------------------------------------------------------------------
def _as_edge_array(pairs, num_nodes: int, what: str) -> np.ndarray:
    """``(k, 2)`` int64, deduped, sorted by ``(u, v)``, range-checked."""
    arr = np.asarray(list(pairs) if not isinstance(
        pairs, np.ndarray) else pairs, dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(
            f"{what} edges must be (u, v) pairs, got shape {arr.shape}"
        )
    if arr.min() < 0 or arr.max() >= num_nodes:
        raise IndexError(
            f"{what} edge endpoint out of range for {num_nodes} nodes"
        )
    keys = np.unique(arr[:, 0] * num_nodes + arr[:, 1])
    out = np.empty((keys.size, 2), dtype=np.int64)
    out[:, 0], out[:, 1] = np.divmod(keys, num_nodes)
    return out


def _splice_keys(
    keys: np.ndarray,
    rem_keys: np.ndarray,
    add_keys: np.ndarray,
    what: str,
) -> np.ndarray:
    """Delete ``rem_keys`` from and insert ``add_keys`` into sorted
    ``keys``, validating presence/absence."""
    if rem_keys.size:
        pos = np.searchsorted(keys, rem_keys)
        ok = (pos < keys.size) if keys.size else np.zeros(
            rem_keys.size, dtype=bool
        )
        if keys.size:
            ok &= keys[np.minimum(pos, keys.size - 1)] == rem_keys
        if not ok.all():
            raise ValueError(
                f"delta removes an edge absent from the base {what}"
            )
        keep = np.ones(keys.size, dtype=bool)
        keep[pos] = False
        keys = keys[keep]
    if add_keys.size:
        pos = np.searchsorted(keys, add_keys)
        if keys.size:
            clash = (pos < keys.size) & (
                keys[np.minimum(pos, keys.size - 1)] == add_keys
            )
            if clash.any():
                raise ValueError(
                    f"delta adds an edge already in the base {what}"
                )
        keys = np.insert(keys, pos, add_keys)
    return keys


def _gather_rows(
    matrix, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(row_per_entry, cols)`` of ``rows``, overlay-aware."""
    if isinstance(matrix, CsrOverlay):
        return matrix.row_arrays(rows)
    indptr = np.asarray(matrix.indptr)
    counts = np.diff(indptr)[rows]
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    starts = indptr[rows]
    shift = np.cumsum(counts) - counts
    offsets = (
        np.arange(total, dtype=np.int64) - np.repeat(shift, counts)
    )
    pos = np.repeat(starts, counts) + offsets
    return (
        np.repeat(np.asarray(rows, dtype=np.intp), counts),
        np.asarray(matrix.indices)[pos].astype(np.intp),
    )


def _row_counts(matrix) -> np.ndarray:
    """Per-row nnz as int64, overlay-aware."""
    if isinstance(matrix, CsrOverlay):
        counts = np.diff(matrix.base.indptr).astype(np.int64)
        counts[matrix.patch_rows] = np.diff(matrix.patch.indptr)
        return counts
    return np.diff(np.asarray(matrix.indptr)).astype(np.int64)


def _row_scales(matrix) -> np.ndarray:
    """``scale[v]`` (= the constant value of row ``v``) for every row.

    ``Q`` stores ``1/|I(v)|`` in every entry of row ``v``, so the
    table is recovered exactly — same bits as the ``np.divide`` that
    produced it — by reading each non-empty row's first value.
    """
    if isinstance(matrix, CsrOverlay):
        scales = _row_scales(matrix.base)
        patch = matrix.patch
        pcounts = np.diff(patch.indptr)
        pvals = np.zeros(matrix.patch_rows.size, dtype=patch.dtype)
        nz = pcounts > 0
        pvals[nz] = np.asarray(patch.data)[
            np.asarray(patch.indptr[:-1])[nz]
        ]
        scales[matrix.patch_rows] = pvals
        return scales
    indptr = np.asarray(matrix.indptr)
    counts = np.diff(indptr)
    scales = np.zeros(matrix.shape[0], dtype=matrix.dtype)
    nz = counts > 0
    scales[nz] = np.asarray(matrix.data)[indptr[:-1][nz]]
    return scales


def _fingerprint_from_qt(qt: sp.csr_array) -> str:
    """The graph content digest, recomputed from ``Q^T`` structure.

    Row ``u`` of ``Q^T`` holds ``O(u)`` in sorted order, so walking
    rows enumerates edges exactly in :meth:`DiGraph.edge_arrays`
    order — the digest matches
    :func:`repro.index.graph_fingerprint` byte for byte.
    """
    n = qt.shape[0]
    counts = np.diff(np.asarray(qt.indptr))
    heads = np.repeat(np.arange(n, dtype=np.int64), counts)
    digest = hashlib.sha256()
    digest.update(np.int64(n).tobytes())
    digest.update(np.ascontiguousarray(heads, dtype="<i8").tobytes())
    digest.update(
        np.ascontiguousarray(qt.indices, dtype="<i8").tobytes()
    )
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# application
# ---------------------------------------------------------------------------
def apply_delta(
    base_index: SimilarityIndex,
    added: Iterable[Sequence[int]] | np.ndarray,
    removed: Iterable[Sequence[int]] | np.ndarray = (),
    *,
    max_overlay_fraction: float = 0.25,
    chain_depth: int = 1,
) -> tuple[SimilarityIndex, IndexDelta]:
    """Apply an edge batch to every artifact of ``base_index``.

    Returns ``(new_index, delta)``: the post-mutation index (its meta
    is bit-for-bit what a fresh build over the mutated graph would
    record) and the :class:`IndexDelta` chaining record ready for
    :func:`save_delta`. The base index is never modified; untouched
    CSR rows of the result share (or byte-copy) the base's buffers.

    ``added`` edges must be absent from and ``removed`` edges present
    in the base edge set (``ValueError`` otherwise — a failed apply
    leaves nothing half-mutated). ``max_overlay_fraction`` bounds how
    much of ``Q`` may live in the overlay patch before it is compacted
    to a clean CSR (``0`` forces eager row surgery every time).

    Examples
    --------
    >>> import numpy as np
    >>> from repro import DiGraph, SimilarityIndex
    >>> from repro.index.delta import apply_delta
    >>> base = SimilarityIndex.build(
    ...     DiGraph(4, edges=[(0, 1), (2, 1), (2, 3)]), measure="gSR*")
    >>> applied, delta = apply_delta(base, added=[(0, 3)])
    >>> fresh = SimilarityIndex.build(
    ...     DiGraph(4, edges=[(0, 1), (2, 1), (2, 3), (0, 3)]),
    ...     measure="gSR*")
    >>> applied.meta == fresh.meta
    True
    >>> bool(np.array_equal(
    ...     applied.compacted().transition.toarray(),
    ...     fresh.transition.toarray()))
    True
    """
    meta = base_index.meta
    q = base_index.transition
    qt = base_index.transition_t
    if q is None or qt is None:
        raise ValueError(
            "delta application needs transition artifacts; index "
            f"carries {list(meta.artifacts)}"
        )
    n = meta.num_nodes
    added = _as_edge_array(added, n, "added")
    removed = _as_edge_array(removed, n, "removed")
    if added.shape[0] == 0 and removed.shape[0] == 0:
        raise ValueError("empty delta: nothing to apply")
    both = np.intersect1d(
        added[:, 0] * n + added[:, 1], removed[:, 0] * n + removed[:, 1]
    )
    if both.size:
        u, v = divmod(int(both[0]), n)
        raise ValueError(
            f"edge {u} -> {v} appears in both added and removed"
        )
    dtype = q.dtype

    # -- per-row scale table 1/|I(v)| after the edits ------------------
    counts = _row_counts(q)
    delta_counts = np.zeros(n, dtype=np.int64)
    if added.shape[0]:
        np.add.at(delta_counts, added[:, 1], 1)
    if removed.shape[0]:
        np.subtract.at(delta_counts, removed[:, 1], 1)
    new_counts = counts + delta_counts
    inv_new = _row_scales(q)
    changed = np.flatnonzero(delta_counts != 0)
    if changed.size:
        # identical operation (and therefore identical bits) to
        # row_normalize's scale = divide(1, row_sums, where=nonzero)
        cc = new_counts[changed].astype(dtype)
        inv_new[changed] = np.divide(
            1.0, cc, out=np.zeros_like(cc), where=cc != 0
        )

    # -- Q: per-row patch of the edit-target rows ----------------------
    q_rows = np.unique(
        np.concatenate((added[:, 1], removed[:, 1]))
    ).astype(np.intp)
    rows_e, cols_e = _gather_rows(q, q_rows)
    q_keys = rows_e.astype(np.int64) * n + cols_e
    q_keys = _splice_keys(
        q_keys,
        np.sort(removed[:, 1] * n + removed[:, 0]),
        np.sort(added[:, 1] * n + added[:, 0]),
        "transition",
    )
    prow, pcol = np.divmod(q_keys, n)
    left = np.searchsorted(prow, q_rows, side="left")
    right = np.searchsorted(prow, q_rows, side="right")
    patch_indptr = np.zeros(q_rows.size + 1, dtype=np.int64)
    np.cumsum(right - left, out=patch_indptr[1:])
    idx_dtype = np.asarray(
        q.base.indices if isinstance(q, CsrOverlay) else q.indices
    ).dtype
    q_patch = sp.csr_array(
        (
            inv_new[prow],
            pcol.astype(idx_dtype),
            patch_indptr.astype(idx_dtype),
        ),
        shape=(q_rows.size, n),
    )
    if isinstance(q, CsrOverlay):
        new_q: CsrOverlay | sp.csr_array = q.with_rows(q_rows, q_patch)
    else:
        new_q = CsrOverlay(q, q_rows, q_patch)

    # -- Q^T: row surgery on the edit-source rows + value gather -------
    qt_rows = np.unique(
        np.concatenate((added[:, 0], removed[:, 0]))
    ).astype(np.intp)
    rows_e, cols_e = _gather_rows(qt, qt_rows)
    qt_keys = rows_e.astype(np.int64) * n + cols_e
    qt_keys = _splice_keys(
        qt_keys,
        np.sort(removed[:, 0] * n + removed[:, 1]),
        np.sort(added[:, 0] * n + added[:, 1]),
        "transposed transition",
    )
    trow, tcol = np.divmod(qt_keys, n)
    left = np.searchsorted(trow, qt_rows, side="left")
    right = np.searchsorted(trow, qt_rows, side="right")
    t_indptr = np.zeros(qt_rows.size + 1, dtype=np.int64)
    np.cumsum(right - left, out=t_indptr[1:])
    qt_idx_dtype = np.asarray(qt.indices).dtype
    qt_patch = sp.csr_array(
        (
            inv_new[tcol],
            tcol.astype(qt_idx_dtype),
            t_indptr.astype(qt_idx_dtype),
        ),
        shape=(qt_rows.size, n),
    )
    qt_struct = CsrOverlay(qt, qt_rows, qt_patch).tocsr()
    # every Q^T value is 1/|I(column)| — one gather refreshes rows the
    # surgery never touched but whose referenced in-degrees changed
    qt_indices = np.asarray(qt_struct.indices)
    new_qt = sp.csr_array(
        (inv_new[qt_indices], qt_indices, np.asarray(qt_struct.indptr)),
        shape=(n, n),
    )

    # -- fingerprints: derived from artifacts alone (no DiGraph) ------
    new_edges = int(new_qt.nnz)
    expected = meta.num_edges + added.shape[0] - removed.shape[0]
    if new_edges != expected:  # pragma: no cover - internal invariant
        raise AssertionError(
            f"delta bookkeeping drifted: {new_edges} edges in Q^T, "
            f"expected {expected}"
        )
    result_digest = _fingerprint_from_qt(new_qt)
    new_meta = dataclasses.replace(
        meta, num_edges=new_edges, graph_digest=result_digest
    )

    # -- factors: demote touched rows out of their bicliques -----------
    factors = None
    if base_index.factors is not None:
        e_direct, h_out, h_in = base_index.factors
        ed_patch = sp.csr_array(
            (
                np.ones(pcol.size, dtype=e_direct.dtype),
                pcol.astype(np.asarray(e_direct.indices).dtype),
                patch_indptr.astype(np.asarray(e_direct.indices).dtype),
            ),
            shape=(q_rows.size, n),
        )
        new_ed = CsrOverlay(e_direct, q_rows, ed_patch).tocsr()
        empty = sp.csr_array(
            (q_rows.size, h_out.shape[1]), dtype=h_out.dtype
        )
        new_ho = CsrOverlay(h_out, q_rows, empty).tocsr()
        factors = (new_ed, new_ho, h_in)

    # -- lazy compaction / walk redraw ---------------------------------
    walks = None
    needs_plain = (
        base_index.walks is not None
        or new_q.patch_fraction > max_overlay_fraction
    )
    if isinstance(new_q, CsrOverlay) and needs_plain:
        new_q = new_q.tocsr()
    if base_index.walks is not None:
        from repro.approx.walks import WalkIndex

        walks = WalkIndex.build(
            new_q,
            walk_length=meta.walk_length,
            samples=meta.walk_samples,
            seed=meta.seed,
        )

    new_index = SimilarityIndex(
        meta=new_meta,
        transition=new_q,
        transition_t=new_qt,
        factors=factors,
        coefficients=base_index.coefficients,
        walks=walks,
    )
    delta = IndexDelta(
        added=added,
        removed=removed,
        num_nodes=n,
        base_digest=meta.graph_digest,
        base_num_edges=meta.num_edges,
        result_digest=result_digest,
        result_num_edges=new_edges,
        result_meta=new_meta,
        chain_depth=chain_depth,
    )
    return new_index, delta


# ---------------------------------------------------------------------------
# persistence: delta-<seq>.simidx segments
# ---------------------------------------------------------------------------
def save_delta(delta: IndexDelta, path: str | Path) -> Path:
    """Write ``delta`` as a checksummed ``.simidx`` delta segment.

    The segment reuses the index container format (same magic, same
    checksummed array table, same atomic rename) with
    ``kind="delta"``: it stores only the edge-edit arrays plus the
    chain fingerprints — :func:`load_index` refuses it, and
    :func:`load_delta` refuses full indexes, so the two can never be
    confused.

    Examples
    --------
    >>> import tempfile
    >>> from pathlib import Path
    >>> from repro import DiGraph, SimilarityIndex
    >>> from repro.index import apply_delta, load_delta, save_delta
    >>> base = SimilarityIndex.build(
    ...     DiGraph(3, edges=[(0, 1), (2, 1)]), measure="gSR*")
    >>> _, delta = apply_delta(base, added=[(0, 2)])
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     path = save_delta(delta, Path(tmp) / "g.delta-000001.simidx")
    ...     load_delta(path).describe() == delta.describe()
    True
    """
    header = {
        "kind": "delta",
        "meta": delta.result_meta.to_dict(),
        "csr_shapes": {},
        "delta": delta.describe(),
    }
    return write_container(
        path,
        header,
        {
            "delta/added": delta.added,
            "delta/removed": delta.removed,
        },
    )


def load_delta(path: str | Path) -> IndexDelta:
    """Read a delta segment back, verifying every checksum.

    Delta segments are tiny (the edits, not the patches), so unlike
    :func:`load_index` this always pays the sha256 pass — a corrupt
    or truncated segment raises :exc:`IndexFormatError` here rather
    than poisoning a generation chain at apply time.

    Examples
    --------
    See :func:`save_delta` for the save/load round trip;
    :func:`load_delta` refuses non-delta containers:

    >>> import tempfile
    >>> from pathlib import Path
    >>> from repro import DiGraph, SimilarityIndex
    >>> from repro.index import IndexFormatError, load_delta
    >>> index = SimilarityIndex.build(
    ...     DiGraph(2, edges=[(0, 1)]), measure="gSR*")
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     try:
    ...         load_delta(index.save(Path(tmp) / "full.simidx"))
    ...     except IndexFormatError as exc:
    ...         print("refused:", "not a delta segment" in str(exc))
    refused: True
    """
    path = Path(path)
    header, payload_start = read_header(path)
    if container_kind(header) != "delta":
        raise IndexFormatError(
            f"{path} is a {container_kind(header)!r} container, not a "
            "delta segment"
        )
    info = header.get("delta")
    if not isinstance(info, dict):
        raise IndexFormatError(f"{path} is missing its delta section")
    arrays = {}
    with open(path, "rb") as handle:
        for name in ("delta/added", "delta/removed"):
            entry = header["arrays"].get(name)
            if entry is None:
                raise IndexFormatError(
                    f"{path} is missing array {name!r}"
                )
            handle.seek(payload_start + entry["offset"])
            raw = handle.read(entry["nbytes"])
            if len(raw) != entry["nbytes"]:
                raise IndexFormatError(
                    f"{path}: short read (truncated delta segment)"
                )
            if hashlib.sha256(raw).hexdigest() != entry["sha256"]:
                raise IndexFormatError(
                    f"{path}: checksum mismatch on {name}"
                )
            try:
                arrays[name] = np.frombuffer(
                    raw, dtype=np.dtype(entry["dtype"])
                ).reshape(tuple(entry["shape"]))
            except (TypeError, ValueError) as exc:
                raise IndexFormatError(
                    f"{path}: corrupt array entry {name!r}: {exc}"
                ) from exc
    try:
        meta = IndexMeta.from_dict(header["meta"])
        delta = IndexDelta(
            added=arrays["delta/added"],
            removed=arrays["delta/removed"],
            num_nodes=int(info["num_nodes"]),
            base_digest=str(info["base_digest"]),
            base_num_edges=int(info["base_num_edges"]),
            result_digest=str(info["result_digest"]),
            result_num_edges=int(info["result_num_edges"]),
            result_meta=meta,
            chain_depth=int(info["chain_depth"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise IndexFormatError(
            f"{path} has a malformed delta section: {exc}"
        ) from exc
    for name, arr in arrays.items():
        if arr.ndim != 2 or arr.shape[1] != 2 or arr.dtype != np.int64:
            raise IndexFormatError(
                f"{path}: {name} is not a (k, 2) int64 edge array"
            )
    return delta


def apply_delta_file(
    base_index: SimilarityIndex,
    path: str | Path,
    *,
    max_overlay_fraction: float = 0.25,
) -> tuple[SimilarityIndex, IndexDelta]:
    """Load ``path`` and apply it onto ``base_index``, verifying the chain.

    Raises :exc:`IndexMismatchError` (with structured ``mismatches``)
    when the segment was recorded against a different base generation
    or configuration, and :exc:`IndexFormatError` when applying does
    not reproduce the recorded result digest.

    Examples
    --------
    >>> import tempfile
    >>> from pathlib import Path
    >>> from repro import DiGraph, SimilarityIndex
    >>> from repro.index import (
    ...     apply_delta, apply_delta_file, save_delta)
    >>> base = SimilarityIndex.build(
    ...     DiGraph(3, edges=[(0, 1), (2, 1)]), measure="gSR*")
    >>> applied, delta = apply_delta(base, added=[(0, 2)])
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     path = save_delta(delta, Path(tmp) / "g.delta-000001.simidx")
    ...     replayed, _ = apply_delta_file(base, path)
    >>> replayed.meta == applied.meta
    True
    """
    delta = load_delta(path)
    expected_base = dataclasses.replace(
        delta.result_meta,
        num_edges=delta.base_num_edges,
        graph_digest=delta.base_digest,
    )
    if expected_base != base_index.meta:
        mismatches = [
            _mismatch(
                "chain", name,
                getattr(expected_base, name),
                getattr(base_index.meta, name),
            )
            for name in (
                f.name for f in dataclasses.fields(IndexMeta)
            )
            if getattr(expected_base, name)
            != getattr(base_index.meta, name)
        ]
        raise _mismatch_error(
            mismatches,
            f"delta segment {Path(path).name} does not chain to this "
            "base generation",
        )
    new_index, applied = apply_delta(
        base_index,
        delta.added,
        delta.removed,
        max_overlay_fraction=max_overlay_fraction,
        chain_depth=delta.chain_depth,
    )
    if new_index.meta.graph_digest != delta.result_digest:
        raise IndexFormatError(
            f"{path}: applying the delta did not reproduce its "
            f"recorded result digest ({delta.result_digest[:12]}...)"
        )
    return new_index, applied


# ---------------------------------------------------------------------------
# naming conventions
# ---------------------------------------------------------------------------
def delta_sibling_path(index_path: str | Path, seq: int) -> Path:
    """Where :class:`~repro.serve.SnapshotManager` persists the delta
    for generation ``seq`` beside its base index file.

    Examples
    --------
    >>> from repro.index import delta_sibling_path
    >>> delta_sibling_path("graphs/g.simidx", 3).as_posix()
    'graphs/g.delta-000003.simidx'
    """
    index_path = Path(index_path)
    return index_path.with_name(
        f"{index_path.stem}.delta-{seq:06d}{index_path.suffix}"
    )


def find_delta_siblings(
    index_path: str | Path,
) -> list[tuple[int, Path]]:
    """``(seq, path)`` of every delta segment beside ``index_path``,
    sorted by sequence number.

    Examples
    --------
    >>> import tempfile
    >>> from pathlib import Path
    >>> from repro.index import delta_sibling_path, find_delta_siblings
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     base = Path(tmp) / "g.simidx"
    ...     for seq in (2, 1):
    ...         _ = delta_sibling_path(base, seq).write_bytes(b"")
    ...     [seq for seq, _ in find_delta_siblings(base)]
    [1, 2]
    """
    index_path = Path(index_path)
    out: list[tuple[int, Path]] = []
    pattern = f"{index_path.stem}.delta-*{index_path.suffix}"
    for candidate in index_path.parent.glob(pattern):
        tag = candidate.name[
            len(index_path.stem) + len(".delta-"):
            len(candidate.name) - len(index_path.suffix)
        ]
        try:
            out.append((int(tag), candidate))
        except ValueError:
            continue
    return sorted(out)
