"""``python -m repro.index`` — build, inspect, and verify indexes.

Subcommands::

    build    build a SimilarityIndex for a graph + config and save it
    inspect  print a saved index's metadata and array table (header
             only — no array payload is read)
    verify   deep-check a saved index: checksums + CSR structure
    smoke    the CI cold-start check: load the index in THIS (fresh)
             process, assert score parity against a freshly built
             engine, and assert that load + first query beats full
             artifact rebuild + first query
    compact  fold a base index and the ``.delta-<n>`` segments the
             serving layer persisted beside it into one fresh base
             file (offline chain maintenance)

Examples::

    python -m repro.index build --nodes 2000 --edges 12000 \
        --measure memo-gSR* --output bench.simidx
    python -m repro.index inspect bench.simidx
    python -m repro.index verify bench.simidx
    python -m repro.index smoke --index bench.simidx \
        --nodes 2000 --edges 12000 --measure memo-gSR*
    python -m repro.index compact bench.simidx

``smoke`` regenerates the (seeded) graph itself, so running ``build``
and ``smoke`` as two separate processes exercises the real restart
path: nothing is shared but the file.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.cliopts import (
    add_config_options,
    add_graph_options,
    build_graph,
    config_from_args,
)
from repro.engine.engine import SimilarityEngine
from repro.index.artifacts import SimilarityIndex
from repro.index.store import (
    DEFAULT_SUFFIX,
    IndexFormatError,
    verify_index,
)

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.index",
        description="Build, inspect, and verify persistent "
        "similarity-precomputation indexes.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser(
        "build", help="build an index and save it to --output"
    )
    add_graph_options(build)
    add_config_options(build)
    build.add_argument(
        "--output", default=f"index{DEFAULT_SUFFIX}",
        help=f"output path (default index{DEFAULT_SUFFIX})",
    )

    inspect = sub.add_parser(
        "inspect", help="print a saved index's metadata (header only)"
    )
    inspect.add_argument("path")

    verify = sub.add_parser(
        "verify",
        help="deep-check checksums and CSR structure; exit 1 on any "
        "problem",
    )
    verify.add_argument("path")

    smoke = sub.add_parser(
        "smoke",
        help="cold-start check (the CI job): load --index fresh, "
        "assert parity with a rebuilt engine and that load beats "
        "rebuild",
    )
    add_graph_options(smoke)
    add_config_options(smoke)
    smoke.add_argument(
        "--index", required=True,
        help="index file produced by `build` (ideally in another "
        "process)",
    )
    smoke.add_argument(
        "--queries", type=int, default=8,
        help="query columns compared for parity (default 8)",
    )
    smoke.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="required (rebuild time) / (load time) ratio for the "
        "cold-start gate (default 2.0)",
    )
    smoke.add_argument(
        "--repeat", type=int, default=3,
        help="timing repetitions; the best of each side is compared "
        "(default 3)",
    )
    smoke.add_argument(
        "--output", default="INDEX_smoke.json",
        help="machine-readable report path (default INDEX_smoke.json)",
    )

    compact = sub.add_parser(
        "compact",
        help="apply every .delta-<n> segment found beside the base "
        "index onto it and write the folded result back (atomic); "
        "applied segments are removed unless --keep-deltas",
    )
    compact.add_argument("path")
    compact.add_argument(
        "--output", default=None,
        help="write the folded index here instead of replacing the "
        "base file in place (segments are then kept)",
    )
    compact.add_argument(
        "--keep-deltas", action="store_true",
        help="do not delete the segments that were folded in",
    )
    return parser


def _cmd_build(args) -> int:
    graph = build_graph(args)
    config = config_from_args(args)
    start = time.perf_counter()
    index = SimilarityIndex.build(graph, config)
    built = time.perf_counter() - start
    path = index.save(args.output)
    size = path.stat().st_size
    print(f"built {index}")
    print(
        f"  build {built * 1e3:.1f} ms, wrote {size / 1e6:.2f} MB "
        f"to {path}"
    )
    return 0


def _cmd_inspect(args) -> int:
    try:
        index = SimilarityIndex.load(args.path, mmap=True)
    except IndexFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(index.describe(), indent=2))
    return 0


def _cmd_verify(args) -> int:
    problems = verify_index(args.path)
    if problems:
        for problem in problems:
            print(f"FAIL {problem}", file=sys.stderr)
        print(f"{args.path}: {len(problems)} problem(s)",
              file=sys.stderr)
        return 1
    print(f"{args.path}: ok (checksums + structure verified)")
    return 0


def _timed_first_query(make_engine, query: int) -> tuple[float, np.ndarray]:
    start = time.perf_counter()
    engine = make_engine()
    column = engine.single_source(query)
    return time.perf_counter() - start, column


def _cmd_smoke(args) -> int:
    graph = build_graph(args)
    config = config_from_args(args)
    path = Path(args.index)
    rng = np.random.default_rng(args.seed)
    queries = [
        int(q)
        for q in rng.choice(
            graph.num_nodes,
            size=min(args.queries, graph.num_nodes),
            replace=False,
        )
    ]
    probe = queries[0]

    # parity: a fresh build in this process is the oracle
    reference = SimilarityEngine(graph, config)
    loaded_index = SimilarityIndex.load(path, mmap=True)
    served = SimilarityEngine.from_index(loaded_index, graph, config)
    worst = 0.0
    for query in queries:
        expected = reference.single_source(query)
        actual = served.single_source(query)
        worst = max(
            worst, float(np.max(np.abs(expected - actual)))
        )
    stats = served.stats.snapshot()
    tolerance = 1e-6 if config.dtype == "float32" else 1e-10

    # cold start: load+query vs full rebuild+query, best of --repeat
    load_times, rebuild_times = [], []
    for _ in range(max(1, args.repeat)):
        seconds, _ = _timed_first_query(
            lambda: SimilarityEngine.from_index(
                SimilarityIndex.load(path, mmap=True), graph, config
            ),
            probe,
        )
        load_times.append(seconds)
        fresh_graph = graph.copy()  # cold edge-array cache, like a restart
        seconds, _ = _timed_first_query(
            lambda: SimilarityEngine.from_index(
                SimilarityIndex.build(fresh_graph, config),
                fresh_graph,
                config,
            ),
            probe,
        )
        rebuild_times.append(seconds)
    speedup = min(rebuild_times) / min(load_times)

    checks = {
        "score_parity": worst <= tolerance,
        "no_artifact_rebuild": (
            stats["transition_builds"] == 0
            and stats["compression_builds"] == 0
        ),
        "cold_start_load_beats_rebuild": speedup >= args.min_speedup,
    }
    report = {
        "index": str(path),
        "index_bytes": path.stat().st_size,
        "graph": {
            "nodes": graph.num_nodes, "edges": graph.num_edges,
        },
        "config": {
            "measure": config.measure, "c": config.c,
            "num_iterations": config.num_iterations,
            "dtype": config.dtype,
        },
        "parity": {
            "queries": len(queries),
            "max_abs_difference": worst,
            "tolerance": tolerance,
        },
        "cold_start": {
            "load_seconds_min": min(load_times),
            "rebuild_seconds_min": min(rebuild_times),
            "speedup": speedup,
            "min_speedup": args.min_speedup,
        },
        "engine_stats": stats,
        "checks": checks,
    }
    Path(args.output).write_text(
        json.dumps(report, indent=2) + "\n"
    )
    print(
        f"  load {min(load_times) * 1e3:.2f} ms vs rebuild "
        f"{min(rebuild_times) * 1e3:.2f} ms -> {speedup:.1f}x "
        f"(floor {args.min_speedup:.1f}x)"
    )
    print(
        f"  parity over {len(queries)} queries: max diff "
        f"{worst:.2e} (tolerance {tolerance:.0e})"
    )
    print(f"wrote {args.output}")
    for name, passed in checks.items():
        print(f"  {'ok' if passed else 'FAIL'} {name}")
    if not all(checks.values()):
        print("index smoke test FAILED", file=sys.stderr)
        return 1
    print("index smoke test passed")
    return 0


def _cmd_compact(args) -> int:
    from repro.index.artifacts import IndexMismatchError
    from repro.index.delta import apply_delta_file, find_delta_siblings

    path = Path(args.path)
    try:
        index = SimilarityIndex.load(path, mmap=True)
    except IndexFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    siblings = find_delta_siblings(path)
    if not siblings:
        print(f"{path}: no delta segments to fold")
        return 0
    start = time.perf_counter()
    applied_paths = []
    for seq, segment in siblings:
        try:
            index, delta = apply_delta_file(index, segment)
        except (IndexFormatError, IndexMismatchError) as exc:
            # a broken link ends the chain — fold what applied
            # cleanly, keep the rest on disk for inspection
            print(
                f"warning: stopping at {segment.name}: {exc}",
                file=sys.stderr,
            )
            break
        applied_paths.append(segment)
        print(
            f"  applied {segment.name}: +{delta.added.shape[0]} "
            f"-{delta.removed.shape[0]} edges "
            f"(chain depth {delta.chain_depth})"
        )
    if not applied_paths:
        print("error: no segment applied cleanly", file=sys.stderr)
        return 1
    out = Path(args.output) if args.output else path
    index.save(out)  # compacts any overlay, writes atomically
    elapsed = time.perf_counter() - start
    if out == path and not args.keep_deltas:
        for segment in applied_paths:
            segment.unlink(missing_ok=True)
        removed = f", removed {len(applied_paths)} segment(s)"
    else:
        removed = ""
    print(
        f"folded {len(applied_paths)} of {len(siblings)} segment(s) "
        f"into {out} in {elapsed * 1e3:.1f} ms "
        f"({out.stat().st_size / 1e6:.2f} MB){removed}"
    )
    return 0 if len(applied_paths) == len(siblings) else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "build":
        return _cmd_build(args)
    if args.command == "inspect":
        return _cmd_inspect(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "smoke":
        return _cmd_smoke(args)
    if args.command == "compact":
        return _cmd_compact(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
