"""`repro.cluster` — multi-process sharded serving over one mmap index.

Single-process serving (:mod:`repro.serve`) coalesces traffic into
blocked batches, but one GIL-bound process still caps throughput. The
similarity family served here is embarrassingly parallel across query
*columns* — each single-source evaluation is an independent solve — so
this package scales it horizontally the only way that preserves the
paper's preprocess-once economics: **K worker processes that
memory-map one persisted** :class:`~repro.index.SimilarityIndex`
**and therefore share one page cache**, instead of K heap copies of
``Q`` / ``Q^T`` / the compressed factors.

Four parts:

* :class:`WorkerPool` — forks the workers (``spawn`` context), writes
  one ``gen-<seq>.simidx`` per served snapshot generation, replays
  live generations into respawned workers, and runs the two-phase
  hot-swap (``prepare`` everywhere first, then ``commit``). Shard
  results return through per-worker shared-memory rings
  (:mod:`repro.cluster.shm`) — only a tiny descriptor crosses the
  pipe; pickle remains as a counted fallback.
* :class:`ThreadWorkerPool` — the ``backend="thread"`` twin: K
  per-thread engines adopting one in-process index (shared artifact
  arrays, private memos), no transport at all; the kernels release
  the GIL inside scipy/BLAS, so threads can scale compute too.
* :class:`ShardRouter` — splits each coalesced micro-batch into
  per-worker column shards, dispatches them concurrently, merges the
  results in arrival order, and owns the atomic snapshot *pinning*
  that lets mutations hot-swap mid-traffic with zero failed requests.
  With ``worker_topk`` (default) top-k selection itself runs
  worker-side (:meth:`ShardRouter.compute_tasks`), so only ``(k, B)``
  ids+scores survive the hop instead of ``(n, B)`` score blocks.
* :mod:`repro.cluster.worker` — the worker process itself: one engine
  per live generation, built from the mmap'd index (or rebuilt from
  the shipped graph when the file is corrupt — a swap never fails on
  a bad file).

Wired into the serving layer as ``ServingService(graph, workers=K,
backend=...)`` and ``python -m repro.serve serve --workers K
--backend thread|process``; scaling is measured by ``python -m
repro.bench --cluster`` (the ``speedup_workers_4_vs_1`` gate) and the
transport itself by ``python -m repro.bench --cluster``'s
transport-bytes comparison.

End to end, one worker, eleven nodes (the paper's Figure 1 graph):

>>> from repro.cluster import ShardRouter, WorkerPool
>>> from repro.graph import figure1_citation_graph
>>> from repro.serve import SnapshotManager
>>> snapshots = SnapshotManager(
...     figure1_citation_graph(), measure="gSR*", c=0.8,
...     num_iterations=10)
>>> router = ShardRouter(WorkerPool(workers=1), snapshots)
>>> router.start()
>>> snapshot = router.pin()
>>> columns = router.compute(snapshot.seq, [0, 1])
>>> router.unpin(snapshot.seq)
>>> sorted(columns) == [0, 1] and len(columns[0]) == 11
True
>>> float(columns[0][0]) > 0  # self-similarity is positive
True
>>> router.stop()
"""

from repro.cluster.pool import ClusterError, WorkerCrash, WorkerPool
from repro.cluster.router import ShardRouter
from repro.cluster.thread_pool import ThreadWorkerPool
from repro.cluster.worker import (
    graph_from_payload,
    graph_to_payload,
    run_tasks,
    worker_main,
)

__all__ = [
    "ClusterError",
    "ShardRouter",
    "ThreadWorkerPool",
    "WorkerCrash",
    "WorkerPool",
    "graph_from_payload",
    "graph_to_payload",
    "run_tasks",
    "worker_main",
]
