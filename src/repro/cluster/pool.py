"""`WorkerPool` — the parent-side owner of K worker processes.

The pool does process lifecycle and *generation* lifecycle, nothing
else (query routing lives in :class:`~repro.cluster.ShardRouter`):

* **spawn / respawn** — workers start via the ``spawn``
  multiprocessing context by default (never ``fork`` under a threaded,
  asyncio-running parent) and are replayed every live generation on
  respawn, so a crashed worker comes back able to serve any batch
  still pinned to an older snapshot.
* **generations** — :meth:`prepare` persists one snapshot's engine as
  a ``.simidx`` file in the pool's index directory and has every
  worker memory-map it (phase one of the two-phase hot-swap);
  :meth:`commit` marks it current (phase two); :meth:`release` lets
  workers drop an old generation once the router has drained every
  batch pinned to it. Release messages are sent by a maintenance
  thread so a busy worker never blocks the swap path.
* **chaos** — :meth:`kill_worker` SIGKILLs one worker,
  :meth:`hang_worker` wedges one for a few seconds, and
  :meth:`corrupt_next_reply` poisons one shard reply — the scripted
  failure drills (``python -m repro.serve chaos``) exercise all
  three; the next shard routed at a broken worker respawns it and
  retries.

Construction is cheap and safe everywhere (the doctest below builds a
pool without starting it); only :meth:`start` forks processes.

>>> from repro.cluster import WorkerPool
>>> pool = WorkerPool(workers=4)
>>> pool.size, pool.started
(4, False)
"""

from __future__ import annotations

import pickle
import queue
import shutil
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.cluster.shm import (
    HEADER_BYTES,
    ResultRing,
    RingError,
    ring_available,
)

__all__ = ["ClusterError", "WorkerCrash", "WorkerPool"]


class ClusterError(RuntimeError):
    """A cluster-level operation failed (prepare, dispatch, ...).

    >>> from repro.cluster import ClusterError, WorkerCrash
    >>> issubclass(WorkerCrash, ClusterError)
    True
    """


class WorkerCrash(ClusterError):
    """One worker died or hung while holding a shard.

    Raised by :meth:`WorkerPool.shard` so the router can respawn the
    worker and retry — callers of the serving API never see it unless
    the retry budget is exhausted.

    >>> from repro.cluster import WorkerCrash
    >>> raise WorkerCrash("worker 2 died mid-shard")
    Traceback (most recent call last):
        ...
    repro.cluster.pool.WorkerCrash: worker 2 died mid-shard
    """


class _Worker:
    """Parent-side handle of one worker process.

    Two locks with distinct scopes: ``lock`` serialises whole
    request/reply transactions (a shard, a prepare, a status ping) so
    replies pair positionally with requests; ``send_lock`` guards only
    the atomicity of a single ``conn.send``. Fire-and-forget messages
    (``commit``, ``release``, ``stop``) take just ``send_lock``, so
    they interleave safely into the pipe *between* a transaction's
    request and its reply and never wait behind a computing shard.
    """

    __slots__ = (
        "index", "process", "conn", "lock", "send_lock",
        "shards_served", "respawns", "job_counter",
        "ring", "rings", "ring_replies", "pickle_replies",
        "task_replies", "transport_bytes", "compute_seconds",
        "transport_seconds",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.process = None
        self.conn = None
        self.lock = threading.Lock()
        self.send_lock = threading.Lock()
        self.shards_served = 0
        self.respawns = 0
        self.job_counter = 0
        # shared-memory transport state: `ring` is the slot block the
        # worker currently writes into; `rings` maps segment name ->
        # handle for every ring this worker was ever given (a reply
        # descriptor names its ring, so a resize can never race a
        # result written into the superseded block)
        self.ring: ResultRing | None = None
        self.rings: dict[str, ResultRing] = {}
        self.ring_replies = 0
        self.pickle_replies = 0
        self.task_replies = 0
        self.transport_bytes = 0
        self.compute_seconds = 0.0
        self.transport_seconds = 0.0

    def send(self, message) -> None:
        with self.send_lock:
            self.conn.send(message)

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class WorkerPool:
    """Fork and supervise K engine workers sharing one mmap'd index.

    Parameters
    ----------
    workers:
        Number of worker processes. Must be positive.
    index_dir:
        Directory for the per-generation ``gen-<seq>.simidx`` files.
        Defaults to a private temporary directory removed on
        :meth:`stop`.
    mp_context:
        :mod:`multiprocessing` start-method name. ``"spawn"``
        (default) is the only method that is safe under a parent
        already running threads and an event loop; ``"fork"`` is
        faster to start but inherits the parent's locks.
    shard_timeout:
        Seconds a dispatched shard may take before the worker is
        declared hung, killed, and the shard retried elsewhere.
    prepare_timeout:
        Seconds one worker may take to load/build a generation.
    transport:
        ``"shm"`` (default) ships shard results through per-worker
        :class:`~repro.cluster.shm.ResultRing` blocks — only a tiny
        descriptor crosses the pipe. ``"pickle"`` forces the classic
        pickled-dict transport. ``"shm"`` silently degrades to pickle
        (counted in :meth:`describe`) when shared memory is
        unavailable or a block does not fit its slot.
    ring_slots:
        Slots per worker ring (double buffering by default, so a
        retry can still read slot *N* while the worker fills *N+1*).
    ring_mb:
        Upper bound, in MiB, on one ring *slot*. Blocks larger than
        this fall back to pickle.
    ring_max_batch:
        Widest shard (query columns) a slot is sized for; together
        with the generation's node count and dtype this fixes the
        slot size at ``16 + ring_max_batch * n * itemsize`` bytes,
        capped by ``ring_mb``.

    Examples
    --------
    Construction is inert; only :meth:`start` forks processes:

    >>> from repro.cluster import WorkerPool
    >>> pool = WorkerPool(workers=4, shard_timeout=30.0)
    >>> pool.size, pool.started, pool.current_seq
    (4, False, -1)
    >>> pool.transport, pool.ring_slots
    ('shm', 2)
    """

    #: what :meth:`describe` reports as ``backend``; the thread-based
    #: twin (:class:`~repro.cluster.ThreadWorkerPool`) reports
    #: ``"thread"``
    backend = "process"
    #: process workers mirror each generation to an on-disk index the
    #: router may persist (the thread pool shares the parent's engine
    #: and has nothing to mirror)
    persists_index = True

    def __init__(
        self,
        *,
        workers: int = 2,
        index_dir: str | Path | None = None,
        mp_context: str = "spawn",
        shard_timeout: float = 120.0,
        prepare_timeout: float = 600.0,
        transport: str = "shm",
        ring_slots: int = 2,
        ring_mb: float = 64.0,
        ring_max_batch: int = 64,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if transport not in ("shm", "pickle"):
            raise ValueError(
                f"transport must be 'shm' or 'pickle', got {transport!r}"
            )
        if ring_slots < 1:
            raise ValueError(f"ring_slots must be >= 1, got {ring_slots}")
        self.size = int(workers)
        self.shard_timeout = float(shard_timeout)
        self.prepare_timeout = float(prepare_timeout)
        self.transport = transport
        self.ring_slots = int(ring_slots)
        self.ring_mb = float(ring_mb)
        self.ring_max_batch = int(ring_max_batch)
        self._ring_slot_bytes = 0  # grows; never shrinks while live
        self.ring_allocations = 0
        self.ring_unavailable = False
        self._mp_context_name = mp_context
        self._index_dir = (
            Path(index_dir) if index_dir is not None else None
        )
        self._owns_index_dir = index_dir is None
        self._workers: list[_Worker] = []
        self._generations: dict[int, dict] = {}  # seq -> payload
        # released generations still referenced as the base of a live
        # delta chain: their payloads and files must survive (respawn
        # replays the whole chain) until the chain itself is released
        self._parked: dict[int, dict] = {}
        self.current_seq = -1
        self.started = False
        self._lock = threading.Lock()  # guards workers + generations
        self._release_queue: queue.Queue = queue.Queue()
        self._maintenance: threading.Thread | None = None
        self.index_saves = 0
        self.releases = 0
        self.delta_generations = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, snapshot) -> None:
        """Spawn every worker, primed with ``snapshot`` as gen 0.

        Persists the snapshot engine's precomputation to the pool's
        index directory first, so the K workers memory-map one file
        (one page cache) instead of holding K heap copies.
        """
        if self.started:
            raise ClusterError("pool already started")
        if self._index_dir is None:
            self._index_dir = Path(
                tempfile.mkdtemp(prefix="repro-cluster-")
            )
        self._index_dir.mkdir(parents=True, exist_ok=True)
        self._register_generation(snapshot)
        self.current_seq = snapshot.seq
        self._workers = [_Worker(i) for i in range(self.size)]
        self._size_rings(snapshot)
        for worker in self._workers:
            self._spawn(worker)
        self.started = True
        self._maintenance = threading.Thread(
            target=self._maintenance_loop,
            name="repro-cluster-maintenance",
            daemon=True,
        )
        self._maintenance.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Stop every worker and remove the pool-owned index files."""
        if not self.started:
            return
        self.started = False
        self._release_queue.put(None)  # wake + end maintenance
        for worker in self._workers:
            try:
                worker.send(("stop",))
            except (OSError, ValueError, AttributeError):
                pass  # already dead: join/kill below still applies
        deadline = time.monotonic() + timeout
        for worker in self._workers:
            if worker.process is None:
                continue
            worker.process.join(
                max(0.1, deadline - time.monotonic())
            )
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(1.0)
            if worker.conn is not None:
                worker.conn.close()
        if self._maintenance is not None:
            self._maintenance.join(timeout=2.0)
            self._maintenance = None
        if self._owns_index_dir and self._index_dir is not None:
            shutil.rmtree(self._index_dir, ignore_errors=True)
            self._index_dir = None
        for worker in self._workers:
            for ring in worker.rings.values():
                ring.destroy()
            worker.ring = None
            worker.rings = {}
        self._ring_slot_bytes = 0
        with self._lock:
            self._generations.clear()
            self._parked.clear()
        self.current_seq = -1

    # ------------------------------------------------------------------
    # generations (two-phase swap, parent side)
    # ------------------------------------------------------------------
    def generation_path(self, seq: int) -> Path:
        """Where generation ``seq``'s index file lives."""
        if self._index_dir is None:
            raise ClusterError("pool has no index directory yet")
        return self._index_dir / f"gen-{seq}.simidx"

    def delta_path(self, seq: int) -> Path:
        """Where generation ``seq``'s delta segment lives."""
        if self._index_dir is None:
            raise ClusterError("pool has no index directory yet")
        return self._index_dir / f"delta-{seq}.simidx"

    def _register_generation(self, snapshot) -> dict:
        """Persist ``snapshot``'s artifacts and record its payload.

        A snapshot produced by the manager's delta path — and whose
        base generation is still registered — ships as a *delta
        payload*: only the tiny chained segment is written and sent;
        workers splice it onto the base engine they already hold
        (``O(delta)`` per worker, no graph arrays on the pipe). Every
        other snapshot ships the classic full ``gen-<seq>.simidx``.
        """
        from repro.cluster.worker import graph_to_payload

        delta = getattr(snapshot, "delta", None)
        base_seq = getattr(snapshot, "base_seq", None)
        with self._lock:
            base_live = base_seq in self._generations
        if delta is not None and base_live:
            from repro.index.delta import save_delta

            path = self.delta_path(snapshot.seq)
            save_delta(delta, path)
            self.index_saves += 1
            self.delta_generations += 1
            payload = dict(
                kind="delta",
                base_seq=base_seq,
                delta_path=str(path),
                config=snapshot.engine.config,
                measure_module=(
                    snapshot.engine.measure.compute.__module__
                ),
            )
        else:
            path = self.generation_path(snapshot.seq)
            snapshot.engine.export_index().save(path)
            self.index_saves += 1
            payload = dict(
                graph_to_payload(snapshot.graph),
                config=snapshot.engine.config,
                index_path=str(path),
                # spawned workers re-import only the built-in
                # measures; shipping the measure's defining module
                # lets them re-run a custom @register_measure
                # registration before building (measures defined in
                # unimportable places — a REPL, a notebook — cannot
                # be served by workers and fail prepare with the
                # registry's unknown-measure error)
                measure_module=(
                    snapshot.engine.measure.compute.__module__
                ),
            )
        with self._lock:
            self._generations[snapshot.seq] = payload
        return payload

    def prepare(self, snapshot) -> list[dict]:
        """Phase one of the hot-swap: every worker loads ``snapshot``.

        Persists the new generation's index, then has each worker
        build its engine for it *off to the side* — the workers keep
        serving the current generation throughout. Returns one info
        dict per worker. A worker that dies during prepare is
        respawned (the respawn replays all live generations, including
        this one); a worker that *reports* a failed prepare raises
        :exc:`ClusterError` and the caller must abort the swap, which
        leaves the old generation serving untouched.
        """
        if not self.started:
            return []
        payload = self._register_generation(snapshot)
        # a bigger graph (or wider dtype) needs bigger slots: grow the
        # rings before any shard of the new generation is dispatched
        self._size_rings(snapshot)

        def prepare_one(worker: _Worker) -> dict:
            try:
                return self._prepare_worker(worker, snapshot.seq)
            except WorkerCrash:
                self.respawn(worker.index)  # replays every live gen
                return {"respawned": True}

        try:
            # overlap the per-worker loads/builds: each worker
            # prepares on its own pipe, so phase one costs
            # max(worker) not sum(worker)
            with ThreadPoolExecutor(
                max_workers=len(self._workers),
                thread_name_prefix="repro-cluster-prepare",
            ) as executor:
                return list(executor.map(prepare_one, self._workers))
        except Exception:
            # the swap is aborting: unregister the failed generation
            # everywhere, or every later respawn would replay it and
            # fail again — poisoning crash recovery itself
            with self._lock:
                self._generations.pop(snapshot.seq, None)
            for worker in self._workers:
                try:
                    worker.send(("release", snapshot.seq))
                except (OSError, ValueError, AttributeError):
                    continue
            Path(
                payload.get("delta_path") or payload["index_path"]
            ).unlink(missing_ok=True)
            raise

    def _prepare_worker(self, worker: _Worker, seq: int) -> dict:
        with self._lock:
            payload = self._generations[seq]
        with worker.lock:
            try:
                worker.send(("prepare", seq, payload))
                reply = self._recv(worker, self.prepare_timeout)
            except (OSError, EOFError, ValueError) as exc:
                raise WorkerCrash(
                    f"worker {worker.index} died during prepare: {exc}"
                ) from exc
        kind, got_seq, info = reply
        if kind == "prepare_failed" or got_seq != seq:
            raise ClusterError(
                f"worker {worker.index} failed to prepare generation "
                f"{seq}: {info}"
            )
        return info

    def commit(self, seq: int) -> None:
        """Phase two: mark ``seq`` current on every worker.

        Workers select their engine per shard by sequence number, so
        this is bookkeeping (status/convergence reporting), not the
        correctness mechanism — a batch pinned to the old snapshot
        keeps hitting the old engines until the router releases them.
        """
        if not self.started:
            return
        self.current_seq = max(self.current_seq, seq)
        for worker in self._workers:
            try:
                # send-lock only: commits interleave into the pipe
                # without waiting behind an in-flight shard's compute
                worker.send(("commit", seq))
            except (OSError, ValueError):
                self.respawn(worker.index)

    def release(self, seq: int) -> None:
        """Let workers drop generation ``seq`` (asynchronously).

        Queued for the maintenance thread: the caller may hold the
        router's pin lock, and a worker busy computing a shard would
        otherwise block the release behind its reply.

        A generation that is still the base of a live delta chain is
        *parked* instead of dropped — workers keep its engine and its
        file stays on disk (a respawn must replay the whole chain) —
        and is freed automatically once nothing chains onto it.
        """
        with self._lock:
            payload = self._generations.pop(seq, None)
            if payload is not None:
                self._parked[seq] = payload
        self._release_queue.put(seq)

    def _referenced_bases(self) -> set[int]:
        """Seqs some live (or still-parked) delta generation chains to.

        Caller holds ``self._lock``.
        """
        refs: set[int] = set()
        frontier = [
            p for p in self._generations.values()
            if p.get("kind") == "delta"
        ]
        while frontier:
            base_seq = frontier.pop()["base_seq"]
            if base_seq in refs:
                continue
            refs.add(base_seq)
            base = (
                self._generations.get(base_seq)
                or self._parked.get(base_seq)
            )
            if base is not None and base.get("kind") == "delta":
                frontier.append(base)
        return refs

    def _maintenance_loop(self) -> None:
        while True:
            seq = self._release_queue.get()
            if seq is None or not self.started:
                return
            with self._lock:
                refs = self._referenced_bases()
                freeable = [
                    (s, p) for s, p in sorted(self._parked.items())
                    if s not in refs
                ]
                for s, _payload in freeable:
                    self._parked.pop(s, None)
                parked = sorted(self._parked)
            # workers drop a released generation's engine right away,
            # parked or not: a parked base survives only as its
            # on-disk payload, which a respawn replays in order before
            # the delta chained onto it
            for s in parked:
                for worker in self._workers:
                    try:
                        worker.send(("release", s))
                    except (OSError, ValueError):
                        continue
            for s, payload in freeable:
                for worker in self._workers:
                    try:
                        worker.send(("release", s))
                    except (OSError, ValueError):
                        continue  # dead: respawn replays live gens
                Path(
                    payload.get("delta_path")
                    or payload.get("index_path")
                    or str(self.generation_path(s))
                ).unlink(missing_ok=True)
                self.releases += 1

    # ------------------------------------------------------------------
    # shared-memory transport (parent side)
    # ------------------------------------------------------------------
    def _slot_bytes_for(self, snapshot) -> int:
        """Slot size for ``snapshot``: a full-width result block."""
        num_nodes = snapshot.graph.num_nodes
        itemsize = np.dtype(snapshot.engine.config.dtype).itemsize
        cap = max(int(self.ring_mb * 1024 * 1024), itemsize)
        return HEADER_BYTES + min(
            self.ring_max_batch * num_nodes * itemsize, cap
        )

    def _size_rings(self, snapshot) -> None:
        """Grow every worker's ring to fit ``snapshot``'s blocks.

        Grow-only: an old generation's smaller blocks always fit the
        new slots, so mid-swap batches pinned to the previous snapshot
        keep their zero-copy path. Superseded rings are unlinked
        immediately (the parent and worker mappings keep in-flight
        descriptors readable) and closed on :meth:`stop`.
        """
        if self.transport != "shm" or self.ring_unavailable:
            return
        needed = self._slot_bytes_for(snapshot)
        if needed <= self._ring_slot_bytes:
            return
        if self._ring_slot_bytes == 0 and not ring_available():
            self.ring_unavailable = True
            return
        self._ring_slot_bytes = needed
        for worker in self._workers:
            self._allocate_ring(worker)

    def _allocate_ring(self, worker: _Worker) -> None:
        """Give ``worker`` a fresh ring of the current slot size."""
        if (
            self.transport != "shm"
            or self.ring_unavailable
            or self._ring_slot_bytes <= 0
        ):
            return
        try:
            ring = ResultRing.create(
                slots=self.ring_slots,
                slot_bytes=self._ring_slot_bytes,
            )
        except (RingError, OSError, ValueError):
            self.ring_unavailable = True
            return
        old = worker.ring
        worker.ring = ring
        worker.rings[ring.name] = ring
        self.ring_allocations += 1
        if old is not None:
            old.unlink()
        if worker.conn is not None:
            try:
                worker.send(("ring", ring.spec()))
            except (OSError, ValueError, AttributeError):
                pass  # dead: _spawn re-sends the current spec

    def _read_ring(self, worker: _Worker, descriptor: dict) -> dict:
        """Zero-copy ``{id: column}`` views for a ring descriptor.

        Any mismatch — unknown ring, stale tag, torn write — raises
        :exc:`WorkerCrash`, so the router's existing respawn-and-retry
        path covers a worker killed mid-write exactly like one killed
        mid-pickle.
        """
        ring = worker.rings.get(descriptor.get("name"))
        if ring is None:
            raise WorkerCrash(
                f"worker {worker.index} answered via unknown ring "
                f"{descriptor.get('name')!r}"
            )
        try:
            block = ring.read(descriptor)
        except RingError as exc:
            raise WorkerCrash(
                f"worker {worker.index} shard unreadable from its "
                f"ring: {exc}"
            ) from exc
        return {
            int(q): block[i]
            for i, q in enumerate(descriptor["ids"])
        }

    def _read_ring_bytes(
        self, worker: _Worker, descriptor: dict
    ) -> bytes:
        """Opaque ring payload (worker-side task results) by
        descriptor; same :exc:`WorkerCrash` semantics as
        :meth:`_read_ring`."""
        ring = worker.rings.get(descriptor.get("name"))
        if ring is None:
            raise WorkerCrash(
                f"worker {worker.index} answered via unknown ring "
                f"{descriptor.get('name')!r}"
            )
        try:
            return ring.read_bytes(descriptor)
        except RingError as exc:
            raise WorkerCrash(
                f"worker {worker.index} shard unreadable from its "
                f"ring: {exc}"
            ) from exc

    def _account(
        self, worker: _Worker, reply_meta: dict, wall_s: float
    ) -> None:
        """Fold one reply's transport telemetry into the worker."""
        path = reply_meta.get("path", "pickle")
        worker.transport_bytes += int(
            reply_meta.get("payload_bytes", 0)
        )
        compute_s = float(reply_meta.get("compute_seconds", 0.0))
        worker.compute_seconds += compute_s
        worker.transport_seconds += max(0.0, wall_s - compute_s)
        if path in ("shm", "tasks_shm"):
            worker.ring_replies += 1
        if path in ("tasks", "tasks_shm"):
            worker.task_replies += 1
        if path == "pickle":
            worker.pickle_replies += 1

    # ------------------------------------------------------------------
    # dispatch + supervision
    # ------------------------------------------------------------------
    def shard(
        self,
        worker_index: int,
        seq: int,
        ids: list[int],
        *,
        trace_ids: list[str] | None = None,
        meta: dict | None = None,
    ) -> dict:
        """Run one column shard on one worker (blocking, thread-safe).

        Returns ``{resolved id: score column}`` — zero-copy views into
        the worker's shared-memory ring on the ``shm`` transport,
        owned arrays on the pickle path; both bit-identical. Raises
        :exc:`WorkerCrash` when the worker is dead, dies mid-shard, or
        exceeds ``shard_timeout`` (it is then killed) — the router
        catches that, respawns, and retries.

        ``trace_ids`` (the batch's request trace ids) ride along on
        the wire and are echoed back by the worker; when ``meta`` is
        a dict it is updated with the worker's reply telemetry (its
        pid, worker-side ``compute_seconds``, ``payload_bytes`` and
        transport ``path``, and the echoed ``trace_ids``).
        """
        return self._exchange(
            worker_index, "columns", seq, ids,
            trace_ids=trace_ids, meta=meta,
        )

    def shard_tasks(
        self,
        worker_index: int,
        seq: int,
        tasks: list[dict],
        *,
        trace_ids: list[str] | None = None,
        meta: dict | None = None,
    ) -> list:
        """Run selection tasks on one worker (worker-side top-k).

        ``tasks`` follow :func:`repro.cluster.worker.run_tasks`; the
        reply is one compact ``("top_k", nodes, scores)`` /
        ``("score", value)`` tuple per task — full score columns never
        cross the pipe. Crash/timeout semantics match :meth:`shard`.
        """
        return self._exchange(
            worker_index, "tasks", seq, tasks,
            trace_ids=trace_ids, meta=meta,
        )

    def _exchange(
        self,
        worker_index: int,
        op: str,
        seq: int,
        items: list,
        *,
        trace_ids: list[str] | None,
        meta: dict | None,
    ):
        worker = self._workers[worker_index]
        with worker.lock:
            worker.job_counter += 1
            job = worker.job_counter
            t0 = perf_counter()
            try:
                if trace_ids is None:
                    worker.send((op, job, seq, list(items)))
                else:
                    worker.send(
                        (op, job, seq, list(items),
                         {"trace_ids": list(trace_ids)})
                    )
                reply = self._recv(worker, self.shard_timeout)
            except (OSError, EOFError, ValueError) as exc:
                raise WorkerCrash(
                    f"worker {worker_index} died mid-shard: {exc}"
                ) from exc
            kind, got_job, payload, *rest = reply
            if got_job != job:
                raise WorkerCrash(
                    f"worker {worker_index} answered job {got_job}, "
                    f"expected {job} (desynchronised connection)"
                )
            if kind == "error":
                raise WorkerCrash(
                    f"worker {worker_index} failed shard: {payload}"
                )
            reply_meta = dict(rest[0]) if rest else {}
            if kind == "columns_shm":
                payload = self._read_ring(worker, payload)
            elif kind == "tasks_shm":
                payload = pickle.loads(
                    self._read_ring_bytes(worker, payload)
                )
            self._account(worker, reply_meta, perf_counter() - t0)
            if meta is not None and reply_meta:
                meta.update(reply_meta)
            worker.shards_served += 1
            return payload

    def _recv(self, worker: _Worker, timeout: float):
        """One reply off ``worker``'s pipe, or kill + crash on timeout."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                if worker.process is not None:
                    worker.process.kill()
                raise WorkerCrash(
                    f"worker {worker.index} timed out after "
                    f"{timeout:.0f}s (killed)"
                )
            if worker.conn.poll(min(0.2, remaining)):
                return worker.conn.recv()
            if not worker.alive:
                raise EOFError(
                    f"worker {worker.index} exited while awaited"
                )

    def respawn(self, worker_index: int) -> None:
        """Replace one (dead) worker with a fresh process.

        The replacement is replayed every live generation and the
        current commit, so shards pinned to an older snapshot retry
        cleanly on it. Refuses (raises :exc:`ClusterError`) once the
        pool is stopped — a crash-retry racing shutdown must fail its
        shard, not resurrect orphan worker processes that nothing
        will ever stop.
        """
        if not self.started:
            raise ClusterError(
                "pool is stopped; refusing to respawn a worker"
            )
        worker = self._workers[worker_index]
        with worker.lock:
            # hold the send lock only while the connection is being
            # torn down, so a concurrent fire-and-forget send can
            # never write into a half-closed pipe
            with worker.send_lock:
                if worker.process is not None:
                    if worker.process.is_alive():
                        worker.process.kill()
                    worker.process.join(2.0)
                if worker.conn is not None:
                    worker.conn.close()
                worker.respawns += 1
            self._spawn(worker)

    def kill_worker(self, worker_index: int) -> int:
        """SIGKILL one worker (chaos hook for failure drills).

        Returns the killed pid. The worker is *not* respawned here —
        the next shard routed at it (or :meth:`respawn`) does that —
        so tests and operators can observe the recovery path itself.
        """
        process = self._workers[worker_index].process
        pid = process.pid
        process.kill()
        process.join(2.0)
        return pid

    def hang_worker(self, worker_index: int, seconds: float) -> None:
        """Wedge one worker for ``seconds`` (chaos hook).

        The worker stops reading its pipe — to the parent it looks
        exactly like a process stuck in a long GC pause or deadlock:
        the next shard dispatched at it waits out ``shard_timeout``,
        the worker is killed and declared crashed, and the shard
        retries. Fire-and-forget; returns immediately.
        """
        self._workers[worker_index].send(("hang", float(seconds)))

    def corrupt_next_reply(self, worker_index: int) -> None:
        """Poison one worker's next shard reply (chaos hook).

        The next ``columns`` / ``tasks`` reply from that worker
        carries a mismatched job id; the parent detects the
        desynchronised connection and treats the worker as crashed
        (the shard retries after a respawn). Fire-and-forget.
        """
        self._workers[worker_index].send(("corrupt_next",))

    def _spawn(self, worker: _Worker) -> None:
        """(Re)start one worker and replay the live generations."""
        import multiprocessing

        from repro.cluster.worker import worker_main

        ctx = multiprocessing.get_context(self._mp_context_name)
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=worker_main,
            args=(child_conn,),
            name=f"repro-cluster-worker-{worker.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker.process = process
        worker.conn = parent_conn
        if worker.ring is not None:
            # hand the fresh process its result ring before any shard
            # can be dispatched at it (pipe order guarantees this)
            worker.send(("ring", worker.ring.spec()))
        with self._lock:
            # parked bases must replay before the deltas chained onto
            # them; sorting by seq gives exactly that order (a delta's
            # base always has a lower sequence number)
            replay = sorted(
                {**self._parked, **self._generations}.items()
            )
        for seq, payload in replay:
            worker.send(("prepare", seq, payload))
            kind, got_seq, info = self._recv(
                worker, self.prepare_timeout
            )
            if kind != "prepared" or got_seq != seq:
                raise ClusterError(
                    f"respawned worker {worker.index} could not "
                    f"prepare generation {seq}: {info}"
                )
        with self._lock:
            parked = sorted(set(self._parked) - set(self._generations))
        for seq in parked:
            # a parked base was only replayed so the deltas chained
            # onto it could build; drop its engine again to converge
            # with the rest of the fleet
            worker.send(("release", seq))
        if self.current_seq >= 0:
            worker.send(("commit", self.current_seq))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def worker_status(
        self,
        timeout: float = 5.0,
        busy_wait: float = 0.5,
        *,
        strip_metrics: bool = True,
    ) -> list[dict]:
        """Ping every worker; dead/hung ones report ``alive: False``.

        A worker whose transaction lock is held by an in-flight shard
        is reported as ``busy`` after ``busy_wait`` seconds instead of
        being waited on — the monitoring path must answer *during* the
        long batches and hangs it exists to expose, not after them.

        Every ping reply carries the worker's cumulative metric
        snapshot under ``"metrics"``; by default it is stripped (the
        ``/status`` document stays readable) — the observability
        layer's :meth:`ShardRouter.collect_worker_metrics
        <repro.cluster.ShardRouter.collect_worker_metrics>` passes
        ``strip_metrics=False`` to merge them into the parent
        registry.
        """
        out = []
        for worker in self._workers:
            entry = {
                "index": worker.index,
                "pid": (
                    worker.process.pid
                    if worker.process is not None else None
                ),
                "alive": worker.alive,
                "busy": False,
                "shards_served": worker.shards_served,
                "respawns": worker.respawns,
            }
            if worker.alive:
                if not worker.lock.acquire(timeout=busy_wait):
                    entry["busy"] = True
                    out.append(entry)
                    continue
                try:
                    worker.job_counter += 1
                    job = worker.job_counter
                    worker.send(("status", job))
                    kind, got_job, info = self._recv(worker, timeout)
                    if kind == "status" and got_job == job:
                        if strip_metrics:
                            info = {
                                k: v for k, v in info.items()
                                if k != "metrics"
                            }
                        entry.update(info)
                except (ClusterError, OSError, EOFError, ValueError):
                    entry["alive"] = worker.alive
                finally:
                    worker.lock.release()
            out.append(entry)
        return out

    def describe(self) -> dict:
        """JSON-ready pool state (embedded under ``/status``)."""
        with self._lock:
            generations = sorted(self._generations)
            parked = sorted(self._parked)
            delta_gens = sorted(
                s for s, p in self._generations.items()
                if p.get("kind") == "delta"
            )
        return {
            "workers": self.size,
            "backend": self.backend,
            "started": self.started,
            "current_seq": self.current_seq,
            "generations": generations,
            "delta_generations": delta_gens,
            "parked": parked,
            "delta_registered": self.delta_generations,
            "index_dir": (
                str(self._index_dir)
                if self._index_dir is not None else None
            ),
            "index_saves": self.index_saves,
            "releases": self.releases,
            "respawns": sum(w.respawns for w in self._workers),
            "transport": self.transport_stats(),
        }

    def transport_stats(self) -> dict:
        """JSON-ready transport accounting (part of :meth:`describe`).

        ``mode`` is what was *asked for*; ``ring_unavailable`` plus
        the per-path reply counters show what actually happened —
        the counted silent-fallback story.
        """
        per_worker = [
            {
                "index": w.index,
                "ring_replies": w.ring_replies,
                "pickle_replies": w.pickle_replies,
                "task_replies": w.task_replies,
                "transport_bytes": w.transport_bytes,
                "compute_seconds": w.compute_seconds,
                "transport_seconds": w.transport_seconds,
            }
            for w in self._workers
        ]
        return {
            "mode": self.transport,
            "ring_slots": self.ring_slots,
            "ring_slot_bytes": self._ring_slot_bytes,
            "ring_bytes_per_worker": (
                self.ring_slots * self._ring_slot_bytes
            ),
            "ring_allocations": self.ring_allocations,
            "ring_unavailable": self.ring_unavailable,
            "ring_replies": sum(w.ring_replies for w in self._workers),
            "pickle_replies": sum(
                w.pickle_replies for w in self._workers
            ),
            "task_replies": sum(w.task_replies for w in self._workers),
            "transport_bytes": sum(
                w.transport_bytes for w in self._workers
            ),
            "compute_seconds": sum(
                w.compute_seconds for w in self._workers
            ),
            "transport_seconds": sum(
                w.transport_seconds for w in self._workers
            ),
            "per_worker": per_worker,
        }

    def __repr__(self) -> str:
        return (
            f"WorkerPool(workers={self.size}, "
            f"started={self.started}, "
            f"current_seq={self.current_seq})"
        )
