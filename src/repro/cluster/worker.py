"""The worker-process side of :mod:`repro.cluster`.

One worker is one OS process holding one
:class:`~repro.engine.SimilarityEngine` per live *generation* (snapshot
sequence number). The parent talks to it over a single
:class:`multiprocessing.connection.Connection`; requests and replies
are plain tuples, processed strictly in arrival order, so a worker is
single-threaded by construction and never mixes generations inside one
shard.

Engines are built from a *graph payload* (the edge arrays and the
pickled :class:`~repro.engine.SimilarityConfig`) plus the path of the
generation's persisted :class:`~repro.index.SimilarityIndex`.  The
worker loads the index with ``mmap=True``, so K workers pointed at the
same ``.simidx`` file share one page cache — the whole point of the
PR 4 container format.  A missing, corrupt, or mismatched index file is
*never* fatal: the worker falls back to building the artifacts from the
payload graph (counted in its status as ``prepare_rebuilds``) so a
two-phase swap always completes.

A *delta* payload (``kind="delta"``) carries no graph arrays at all:
just the path of a chained :mod:`repro.index.delta` segment and the
sequence number of the base generation the worker already holds. The
worker splices the segment onto the base engine's index and edits the
base graph with :meth:`~repro.graph.DiGraph.copy_with_edits` — the
whole prepare is ``O(delta)``, which is what keeps a small mutation's
two-phase swap cheap across K processes.

Protocol (parent -> worker, worker -> parent):

====================================  ===================================
request                               reply
====================================  ===================================
``("prepare", seq, payload)``         ``("prepared", seq, info)`` or
                                      ``("prepare_failed", seq, error)``
``("columns", job, seq, ids)``        ``("columns", job, {id: column},``
                                      ``reply_meta)`` or
                                      ``("columns_shm", job, descriptor,``
                                      ``reply_meta)`` or
                                      ``("error", job, message)``
``("columns", job, seq, ids, meta)``  same, with ``meta["trace_ids"]``
                                      echoed in ``reply_meta``
``("tasks", job, seq, tasks)``        ``("tasks", job, results,``
``("tasks", job, seq, tasks, meta)``  ``reply_meta)`` or
                                      ``("tasks_shm", job,``
                                      ``descriptor, reply_meta)`` or
                                      ``("error", job, message)``
``("ring", spec_or_None)``            *(no reply; attach/drop the ring)*
``("status", job)``                   ``("status", job, info_dict)``
``("commit", seq)``                   *(no reply)*
``("release", seq)``                  *(no reply)*
``("hang", seconds)``                 *(no reply; chaos hook — the
                                      worker sleeps, simulating a
                                      wedged process)*
``("corrupt_next",)``                 *(no reply; chaos hook — the next
                                      shard reply carries a mismatched
                                      job id)*
``("stop",)``                         *(no reply; the worker exits)*
====================================  ===================================

The request/reply pairing is positional — the parent serialises use of
each connection — which is why the fire-and-forget messages must never
answer.

``columns_shm`` is the zero-copy transport: the worker wrote the score
block into its :class:`~repro.cluster.shm.ResultRing` slot and the
reply carries only a tiny descriptor (ring name, slot, tag, ids,
shape).  The worker falls back to the pickled ``columns`` form — never
an error — when no ring is attached or the block does not fit a slot;
fallbacks are counted in its status.  ``tasks`` is the worker-side
top-k form: each task is ``{"op": "top_k", "query": q, "k": k,
"include_query": bool}`` or ``{"op": "score", "query": q, "u": u}``
and the reply ships only ``("top_k", nodes, scores)`` /
``("score", value)`` tuples per task (see :func:`run_tasks`), so full
column blocks never cross the hop at all.  When a ring is attached
the pickled results themselves travel through a ring slot
(``tasks_shm``) and only the descriptor crosses the pipe.

``reply_meta`` always carries the worker's ``pid``, its measured
``compute_seconds``, the transport ``path`` (``"shm"``, ``"pickle"``,
``"tasks"`` or ``"tasks_shm"``) and the ``payload_bytes`` that crossed the
pipe — how the parent proves where the transport cost went.  With the
five-element traced request form it also echoes the batch's
``trace_ids``, proving a request span crossed the process boundary.
The ``status`` reply's ``info_dict`` additionally carries a cumulative
``metrics`` snapshot of the worker's own
:class:`~repro.obs.MetricsRegistry`, which the parent merges into its
registry with replacement semantics (idempotent, never
double-counted).
"""

from __future__ import annotations

import os
import pickle
import signal
import threading
import time
from typing import Any

import numpy as np

from repro.cluster.shm import ResultRing

__all__ = [
    "graph_from_payload",
    "graph_to_payload",
    "run_tasks",
    "worker_main",
]


def _pickled_columns_bytes(columns) -> int:
    """Estimated pipe bytes for a pickled ``{id: column}`` payload.

    ``array.nbytes`` dominates; the per-entry constant covers pickle
    framing and the numpy array headers without paying an actual
    serialization just to measure one.
    """

    return 128 + sum(int(np.asarray(c).nbytes) + 64 for c in columns)


def run_tasks(engine, tasks) -> tuple[list, int]:
    """Run selection *tasks* against *engine*, returning compact results.

    This is the worker-side half of the worker-side top-k transport:
    the expensive ``(n,)`` score columns stay in the worker, and each
    task collapses to either ``("top_k", nodes, scores)`` — the ranked
    node ids and their scores, selected with the *exact* parent
    algorithm (:meth:`~repro.engine.results.Ranking.from_scores`, so
    tie-breaks match bit for bit) — or ``("score", value)`` for a
    node-pair probe.  Labels never ship: the parent holds the same
    graph and re-attaches them at render time.

    A task that fails on its own terms (e.g. a negative ``k``) yields
    ``("error", repr(exc))`` in its slot instead of poisoning the
    whole shard — mirroring the parent render loop, where one bad
    request never fails its batch.

    Duplicate queries across tasks share one column computation.
    Returns ``(results, distinct_columns)``.

    >>> from repro.engine import SimilarityConfig, SimilarityEngine
    >>> from repro.graph import figure1_citation_graph
    >>> engine = SimilarityEngine(
    ...     figure1_citation_graph(), SimilarityConfig(measure="gSR*"))
    >>> results, ncols = run_tasks(engine, [
    ...     {"op": "top_k", "query": 0, "k": 2},
    ...     {"op": "score", "query": 0, "u": 1},
    ... ])
    >>> ncols, results[0][0], results[1][0]
    (1, 'top_k', 'score')
    >>> expected = engine.top_k(0, k=2)
    >>> list(results[0][1]) == expected.nodes
    True
    """

    from repro.engine.results import Ranking

    distinct = list(dict.fromkeys(int(t["query"]) for t in tasks))
    columns = engine.columns(distinct)
    results: list = []
    for task in tasks:
        try:
            column = np.asarray(columns[int(task["query"])])
            if task["op"] == "score":
                results.append(
                    ("score", float(column[int(task["u"])]))
                )
                continue
            ranking = Ranking.from_scores(
                column,
                query=int(task["query"]),
                k=int(task["k"]),
                include_query=bool(task.get("include_query", False)),
            )
            nodes = np.fromiter(
                (e.node for e in ranking),
                dtype=np.int64,
                count=len(ranking),
            )
            scores = np.fromiter(
                (e.score for e in ranking),
                dtype=np.float64,
                count=len(ranking),
            )
            results.append(("top_k", nodes, scores))
        except Exception as exc:  # noqa: BLE001 - per-task isolation
            results.append(("error", repr(exc)))
    return results, len(distinct)


def graph_to_payload(graph) -> dict:
    """A picklable description of ``graph`` for shipping to a worker.

    Carries the dense edge arrays (shared, read-only — cheap to pickle)
    plus node count and labels; :func:`graph_from_payload` reconstructs
    a structurally identical :class:`~repro.graph.DiGraph` whose
    content digest matches the original, so a persisted index built
    against the parent's graph fingerprints cleanly against the
    worker's reconstruction.

    >>> from repro.graph import figure1_citation_graph
    >>> from repro.cluster.worker import (
    ...     graph_from_payload, graph_to_payload)
    >>> g = figure1_citation_graph()
    >>> h = graph_from_payload(graph_to_payload(g))
    >>> h == g
    True
    """
    heads, tails = graph.edge_arrays()
    return {
        "num_nodes": graph.num_nodes,
        "heads": np.asarray(heads, dtype=np.int64),
        "tails": np.asarray(tails, dtype=np.int64),
        "labels": graph.labels,
    }


def graph_from_payload(payload: dict):
    """Rebuild the :class:`~repro.graph.DiGraph` a payload describes.

    >>> from repro.cluster import graph_from_payload, graph_to_payload
    >>> from repro.graph.digraph import DiGraph
    >>> g = DiGraph(3, edges=[(0, 1), (1, 2)])
    >>> graph_from_payload(graph_to_payload(g)).num_edges
    2
    """
    from repro.graph.digraph import DiGraph

    graph = DiGraph(
        int(payload["num_nodes"]),
        edges=zip(
            (int(u) for u in payload["heads"]),
            (int(v) for v in payload["tails"]),
        ),
        labels=payload.get("labels"),
    )
    return graph


def _warm_engine(engine) -> None:
    # warm the shared artifacts now, off the query path, so the first
    # sharded batch after a commit pays only its own walk
    if (
        engine.measure.supports_single_source
        or "transition" in engine.measure.uses
    ):
        engine.transition_t
    if "compressed" in engine.measure.uses:
        engine.compressed
    if engine.config.mode == "approx":
        # adopt (mmap) or build the walk index before serving shards
        engine.walk_index


def _build_engine_delta(payload: dict, engines: dict) -> tuple[Any, dict]:
    """An engine for a *delta* generation payload.

    The payload carries no graph arrays — only the path of the chained
    delta segment and the base generation's sequence number. The graph
    is rebuilt ``O(delta)`` from the base engine's graph
    (:meth:`~repro.graph.DiGraph.copy_with_edits`) and the artifacts by
    splicing the segment onto the base engine's index. A segment that
    loads but fails to apply falls back to a full artifact build over
    the edited graph (counted as a rebuild); a missing base engine or
    unreadable segment raises, failing the prepare — the parent then
    aborts the delta swap and retries with a full payload.
    """
    from repro.engine.engine import SimilarityEngine
    from repro.index.artifacts import IndexMismatchError
    from repro.index.delta import apply_delta_file, load_delta
    from repro.index.store import IndexFormatError

    base_engine = engines.get(payload["base_seq"])
    if base_engine is None:
        raise RuntimeError(
            f"delta payload chains to generation "
            f"{payload['base_seq']}, which this worker does not hold"
        )
    delta_path = payload["delta_path"]
    delta = load_delta(delta_path)  # raises on corrupt/missing
    graph = base_engine.graph.copy_with_edits(
        [tuple(e) for e in delta.added],
        [tuple(e) for e in delta.removed],
    )
    config = payload["config"]
    info = {"adopted": False, "rebuilt": False, "delta": True}
    try:
        new_index, _ = apply_delta_file(
            base_engine.export_index(), delta_path
        )
        engine = SimilarityEngine.from_index(new_index, graph, config)
        info["adopted"] = True
    except (IndexFormatError, IndexMismatchError, OSError, ValueError):
        engine = SimilarityEngine(graph, config)
        info["rebuilt"] = True
    _warm_engine(engine)
    return engine, info


def _build_engine(payload: dict) -> tuple[Any, dict]:
    """An engine for one generation payload, warmed and query-ready.

    Tries the persisted index first (memory-mapped, shared page
    cache); any load or fingerprint problem falls back to building the
    artifacts from the payload graph, so a swap completes even when
    the index file was corrupted between the parent writing it and
    this worker reading it.
    """
    import importlib

    from repro.engine.engine import SimilarityEngine
    from repro.index.artifacts import (
        IndexMismatchError,
        SimilarityIndex,
    )
    from repro.index.store import IndexFormatError

    measure_module = payload.get("measure_module")
    if measure_module:
        try:
            # a custom measure registers on its module's import; the
            # built-ins load through the registry either way
            importlib.import_module(measure_module)
        except ImportError:
            pass  # engine construction reports the unknown measure
    graph = graph_from_payload(payload)
    config = payload["config"]
    index_path = payload.get("index_path")
    engine = None
    info = {"adopted": False, "rebuilt": False}
    if index_path:
        try:
            index = SimilarityIndex.load(index_path, mmap=True)
            engine = SimilarityEngine.from_index(index, graph, config)
            info["adopted"] = True
        except (IndexFormatError, IndexMismatchError, OSError):
            engine = None
    if engine is None:
        engine = SimilarityEngine(graph, config)
        info["rebuilt"] = True
    _warm_engine(engine)
    return engine, info


def worker_main(conn) -> None:
    """The worker process entry point: serve requests until ``stop``.

    Runs forever on ``conn``; any exception inside one request is
    reported back as that request's error reply and the loop survives.
    ``SIGINT`` is ignored — an operator's Ctrl-C on the parent must
    shut workers down through the pool's ``stop`` message, not race
    it with a signal.

    The loop only touches ``conn`` — the protocol is testable
    in-process over a pipe (no fork required):

    >>> import threading
    >>> from multiprocessing import Pipe
    >>> from repro.cluster import worker_main
    >>> parent_end, worker_end = Pipe()
    >>> thread = threading.Thread(
    ...     target=worker_main, args=(worker_end,))
    >>> thread.start()
    >>> parent_end.send(("status", 1))
    >>> kind, job, info = parent_end.recv()
    >>> kind, info["generations"], info["columns_served"]
    ('status', [], 0)
    >>> parent_end.send(("stop",)); thread.join()
    """
    from time import perf_counter

    from repro.obs import MetricsRegistry

    if threading.current_thread() is threading.main_thread():
        # ignore Ctrl-C so the pool's stop message drives shutdown
        # (signal handlers may only be installed from the main thread,
        # and in-process/test harnesses run this loop on a thread)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    engines: dict[int, Any] = {}
    current_seq = -1
    corrupt_next = False  # chaos hook: poison the next shard reply
    prepare_rebuilds = 0
    delta_prepares = 0
    columns_served = 0
    tasks_served = 0
    ring: ResultRing | None = None
    ring_tag = 0
    ring_writes = 0
    ring_fallbacks = 0
    transport_bytes = 0
    # the worker's own registry: cumulative counters shipped whole on
    # every status ping, merged parent-side with replacement semantics
    registry = MetricsRegistry()
    m_shards = registry.counter(
        "repro_worker_shards_total",
        "Column shards this worker served.",
    )
    m_columns = registry.counter(
        "repro_worker_columns_served_total",
        "Query columns this worker computed for shards.",
    )
    m_compute = registry.histogram(
        "repro_worker_compute_seconds",
        "Worker-side blocked column-walk time per shard.",
    )
    registry.counter_fn(
        "repro_worker_prepare_rebuilds_total",
        "Generations this worker rebuilt instead of adopting.",
        lambda: prepare_rebuilds,
    )
    registry.counter_fn(
        "repro_worker_delta_prepares_total",
        "Generations this worker spliced from a delta segment.",
        lambda: delta_prepares,
    )
    registry.gauge_fn(
        "repro_worker_generations",
        "Engine generations this worker currently holds.",
        lambda: len(engines),
    )
    registry.gauge_fn(
        "repro_worker_engine_column_hits",
        "Column-memo hits summed over this worker's live engines.",
        lambda: sum(e.stats.hits for e in engines.values()),
    )
    registry.gauge_fn(
        "repro_worker_engine_column_misses",
        "Column-memo misses summed over this worker's live engines.",
        lambda: sum(e.stats.misses for e in engines.values()),
    )
    registry.counter_fn(
        "repro_worker_tasks_total",
        "Selection tasks (worker-side top-k / score) this worker ran.",
        lambda: tasks_served,
    )
    registry.counter_fn(
        "repro_worker_ring_writes_total",
        "Shard results shipped through the shared-memory ring.",
        lambda: ring_writes,
    )
    registry.counter_fn(
        "repro_worker_ring_fallbacks_total",
        "Shard results that fell back to pickle despite a ring.",
        lambda: ring_fallbacks,
    )
    registry.counter_fn(
        "repro_worker_transport_bytes_total",
        "Estimated reply-payload bytes shipped over the pipe.",
        lambda: transport_bytes,
    )

    def reply_meta(compute_s, payload_bytes, path, request_meta):
        meta = {
            "pid": os.getpid(),
            "compute_seconds": compute_s,
            "payload_bytes": int(payload_bytes),
            "path": path,
        }
        if request_meta is not None:
            meta["trace_ids"] = request_meta.get("trace_ids", [])
        return meta

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return  # parent is gone; nothing left to serve
        kind = message[0]
        if kind == "stop":
            return
        if kind == "prepare":
            _, seq, payload = message
            try:
                if payload.get("kind") == "delta":
                    engine, info = _build_engine_delta(
                        payload, engines
                    )
                else:
                    engine, info = _build_engine(payload)
            except Exception as exc:  # noqa: BLE001 - reported upward
                conn.send(("prepare_failed", seq, repr(exc)))
                continue
            engines[seq] = engine
            if info["rebuilt"]:
                prepare_rebuilds += 1
            if info.get("delta"):
                delta_prepares += 1
            conn.send(("prepared", seq, info))
        elif kind == "commit":
            current_seq = max(current_seq, message[1])
        elif kind == "release":
            engines.pop(message[1], None)
        elif kind == "ring":
            # fire-and-forget: adopt (or drop, on None) the shared-
            # memory ring the parent allocated for this worker; any
            # attach failure silently leaves the pickle path active
            spec = message[1]
            if ring is not None:
                ring.close()
                ring = None
            if spec is not None:
                try:
                    ring = ResultRing.attach(spec)
                except Exception:  # noqa: BLE001 - fallback, counted
                    ring = None
        elif kind == "hang":
            # chaos hook: stop reading the pipe for a while — exactly
            # what a worker wedged in a long GC pause or a deadlock
            # looks like to the parent (shard_timeout fires, the
            # worker is killed and respawned)
            time.sleep(float(message[1]))
        elif kind == "corrupt_next":
            corrupt_next = True
        elif kind == "columns":
            _, job, seq, ids, *extra = message
            request_meta = extra[0] if extra else None
            if corrupt_next:
                # chaos hook: answer with a mismatched job id — the
                # parent sees a desynchronised connection and treats
                # this worker as crashed
                corrupt_next = False
                conn.send(
                    ("error", job - 1, "corrupted reply (chaos hook)")
                )
                continue
            engine = engines.get(seq)
            if engine is None:
                conn.send(
                    ("error", job,
                     f"worker holds no generation {seq} "
                     f"(live: {sorted(engines)})")
                )
                continue
            try:
                t0 = perf_counter()
                columns = engine.columns(ids)
                compute_s = perf_counter() - t0
                qids = [int(q) for q in ids]
                cols = [np.asarray(columns[q]) for q in qids]
                m_shards.inc()
                m_columns.inc(len(ids))
                m_compute.observe(compute_s)
                descriptor = None
                if ring is not None and cols:
                    width = cols[0].shape[0]
                    if ring.fits(len(cols), width, cols[0].dtype):
                        ring_tag += 1
                        descriptor = ring.write(
                            tag=ring_tag, ids=qids, columns=cols
                        )
                    else:
                        ring_fallbacks += 1
                if descriptor is not None:
                    payload_bytes = len(pickle.dumps(descriptor))
                    ring_writes += 1
                    transport_bytes += payload_bytes
                    conn.send(
                        ("columns_shm", job, descriptor, reply_meta(
                            compute_s, payload_bytes, "shm",
                            request_meta,
                        ))
                    )
                else:
                    # plain-dict copy: Connection.send pickles, and
                    # the memo's read-only views pickle as owned
                    # arrays
                    payload = dict(zip(qids, cols))
                    payload_bytes = _pickled_columns_bytes(cols)
                    transport_bytes += payload_bytes
                    conn.send(
                        ("columns", job, payload, reply_meta(
                            compute_s, payload_bytes, "pickle",
                            request_meta,
                        ))
                    )
                columns_served += len(ids)
            except Exception as exc:  # noqa: BLE001 - reported upward
                conn.send(("error", job, repr(exc)))
        elif kind == "tasks":
            _, job, seq, tasks, *extra = message
            request_meta = extra[0] if extra else None
            if corrupt_next:
                corrupt_next = False
                conn.send(
                    ("error", job - 1, "corrupted reply (chaos hook)")
                )
                continue
            engine = engines.get(seq)
            if engine is None:
                conn.send(
                    ("error", job,
                     f"worker holds no generation {seq} "
                     f"(live: {sorted(engines)})")
                )
                continue
            try:
                t0 = perf_counter()
                results, ncols = run_tasks(engine, tasks)
                compute_s = perf_counter() - t0
                m_shards.inc()
                m_columns.inc(ncols)
                m_compute.observe(compute_s)
                tasks_served += len(tasks)
                columns_served += ncols
                payload = pickle.dumps(results)
                descriptor = None
                if ring is not None:
                    # results are tiny; route them through the ring
                    # too so only a descriptor crosses the pipe
                    try:
                        ring_tag += 1
                        descriptor = ring.write_bytes(
                            tag=ring_tag, payload=payload
                        )
                    except Exception:  # noqa: BLE001 - fall back
                        descriptor = None
                        ring_fallbacks += 1
                if descriptor is not None:
                    ring_writes += 1
                    payload_bytes = len(pickle.dumps(descriptor))
                    transport_bytes += payload_bytes
                    conn.send(
                        ("tasks_shm", job, descriptor, reply_meta(
                            compute_s, payload_bytes, "tasks_shm",
                            request_meta,
                        ))
                    )
                else:
                    payload_bytes = len(payload)
                    transport_bytes += payload_bytes
                    conn.send(
                        ("tasks", job, results, reply_meta(
                            compute_s, payload_bytes, "tasks",
                            request_meta,
                        ))
                    )
            except Exception as exc:  # noqa: BLE001 - reported upward
                conn.send(("error", job, repr(exc)))
        elif kind == "status":
            job = message[1]
            conn.send(
                ("status", job, {
                    "pid": os.getpid(),
                    "current_seq": current_seq,
                    "generations": sorted(engines),
                    "columns_served": columns_served,
                    "tasks_served": tasks_served,
                    "prepare_rebuilds": prepare_rebuilds,
                    "delta_prepares": delta_prepares,
                    "ring": None if ring is None else ring.spec(),
                    "ring_writes": ring_writes,
                    "ring_fallbacks": ring_fallbacks,
                    "transport_bytes": transport_bytes,
                    "metrics": registry.snapshot(),
                })
            )
        else:  # unknown message: answer nothing it could hang on
            continue
