"""The worker-process side of :mod:`repro.cluster`.

One worker is one OS process holding one
:class:`~repro.engine.SimilarityEngine` per live *generation* (snapshot
sequence number). The parent talks to it over a single
:class:`multiprocessing.connection.Connection`; requests and replies
are plain tuples, processed strictly in arrival order, so a worker is
single-threaded by construction and never mixes generations inside one
shard.

Engines are built from a *graph payload* (the edge arrays and the
pickled :class:`~repro.engine.SimilarityConfig`) plus the path of the
generation's persisted :class:`~repro.index.SimilarityIndex`.  The
worker loads the index with ``mmap=True``, so K workers pointed at the
same ``.simidx`` file share one page cache — the whole point of the
PR 4 container format.  A missing, corrupt, or mismatched index file is
*never* fatal: the worker falls back to building the artifacts from the
payload graph (counted in its status as ``prepare_rebuilds``) so a
two-phase swap always completes.

A *delta* payload (``kind="delta"``) carries no graph arrays at all:
just the path of a chained :mod:`repro.index.delta` segment and the
sequence number of the base generation the worker already holds. The
worker splices the segment onto the base engine's index and edits the
base graph with :meth:`~repro.graph.DiGraph.copy_with_edits` — the
whole prepare is ``O(delta)``, which is what keeps a small mutation's
two-phase swap cheap across K processes.

Protocol (parent -> worker, worker -> parent):

====================================  ===================================
request                               reply
====================================  ===================================
``("prepare", seq, payload)``         ``("prepared", seq, info)`` or
                                      ``("prepare_failed", seq, error)``
``("columns", job, seq, ids)``        ``("columns", job, {id: column})``
                                      or ``("error", job, message)``
``("columns", job, seq, ids, meta)``  ``("columns", job, {id: column},``
                                      ``reply_meta)`` or
                                      ``("error", job, message)``
``("status", job)``                   ``("status", job, info_dict)``
``("commit", seq)``                   *(no reply)*
``("release", seq)``                  *(no reply)*
``("stop",)``                         *(no reply; the worker exits)*
====================================  ===================================

The request/reply pairing is positional — the parent serialises use of
each connection — which is why the fire-and-forget messages must never
answer.

The five-element ``columns`` form is the traced variant: ``meta``
carries the batch's request ``trace_ids``, and ``reply_meta`` echoes
them back alongside the worker's pid and its measured
``compute_seconds`` — how a request trace proves its span crossed the
process boundary. The ``status`` reply's ``info_dict`` additionally
carries a cumulative ``metrics`` snapshot of the worker's own
:class:`~repro.obs.MetricsRegistry`, which the parent merges into its
registry with replacement semantics (idempotent, never
double-counted).
"""

from __future__ import annotations

import os
import signal
import threading
from typing import Any

import numpy as np

__all__ = ["graph_from_payload", "graph_to_payload", "worker_main"]


def graph_to_payload(graph) -> dict:
    """A picklable description of ``graph`` for shipping to a worker.

    Carries the dense edge arrays (shared, read-only — cheap to pickle)
    plus node count and labels; :func:`graph_from_payload` reconstructs
    a structurally identical :class:`~repro.graph.DiGraph` whose
    content digest matches the original, so a persisted index built
    against the parent's graph fingerprints cleanly against the
    worker's reconstruction.

    >>> from repro.graph import figure1_citation_graph
    >>> from repro.cluster.worker import (
    ...     graph_from_payload, graph_to_payload)
    >>> g = figure1_citation_graph()
    >>> h = graph_from_payload(graph_to_payload(g))
    >>> h == g
    True
    """
    heads, tails = graph.edge_arrays()
    return {
        "num_nodes": graph.num_nodes,
        "heads": np.asarray(heads, dtype=np.int64),
        "tails": np.asarray(tails, dtype=np.int64),
        "labels": graph.labels,
    }


def graph_from_payload(payload: dict):
    """Rebuild the :class:`~repro.graph.DiGraph` a payload describes.

    >>> from repro.cluster import graph_from_payload, graph_to_payload
    >>> from repro.graph.digraph import DiGraph
    >>> g = DiGraph(3, edges=[(0, 1), (1, 2)])
    >>> graph_from_payload(graph_to_payload(g)).num_edges
    2
    """
    from repro.graph.digraph import DiGraph

    graph = DiGraph(
        int(payload["num_nodes"]),
        edges=zip(
            (int(u) for u in payload["heads"]),
            (int(v) for v in payload["tails"]),
        ),
        labels=payload.get("labels"),
    )
    return graph


def _warm_engine(engine) -> None:
    # warm the shared artifacts now, off the query path, so the first
    # sharded batch after a commit pays only its own walk
    if (
        engine.measure.supports_single_source
        or "transition" in engine.measure.uses
    ):
        engine.transition_t
    if "compressed" in engine.measure.uses:
        engine.compressed
    if engine.config.mode == "approx":
        # adopt (mmap) or build the walk index before serving shards
        engine.walk_index


def _build_engine_delta(payload: dict, engines: dict) -> tuple[Any, dict]:
    """An engine for a *delta* generation payload.

    The payload carries no graph arrays — only the path of the chained
    delta segment and the base generation's sequence number. The graph
    is rebuilt ``O(delta)`` from the base engine's graph
    (:meth:`~repro.graph.DiGraph.copy_with_edits`) and the artifacts by
    splicing the segment onto the base engine's index. A segment that
    loads but fails to apply falls back to a full artifact build over
    the edited graph (counted as a rebuild); a missing base engine or
    unreadable segment raises, failing the prepare — the parent then
    aborts the delta swap and retries with a full payload.
    """
    from repro.engine.engine import SimilarityEngine
    from repro.index.artifacts import IndexMismatchError
    from repro.index.delta import apply_delta_file, load_delta
    from repro.index.store import IndexFormatError

    base_engine = engines.get(payload["base_seq"])
    if base_engine is None:
        raise RuntimeError(
            f"delta payload chains to generation "
            f"{payload['base_seq']}, which this worker does not hold"
        )
    delta_path = payload["delta_path"]
    delta = load_delta(delta_path)  # raises on corrupt/missing
    graph = base_engine.graph.copy_with_edits(
        [tuple(e) for e in delta.added],
        [tuple(e) for e in delta.removed],
    )
    config = payload["config"]
    info = {"adopted": False, "rebuilt": False, "delta": True}
    try:
        new_index, _ = apply_delta_file(
            base_engine.export_index(), delta_path
        )
        engine = SimilarityEngine.from_index(new_index, graph, config)
        info["adopted"] = True
    except (IndexFormatError, IndexMismatchError, OSError, ValueError):
        engine = SimilarityEngine(graph, config)
        info["rebuilt"] = True
    _warm_engine(engine)
    return engine, info


def _build_engine(payload: dict) -> tuple[Any, dict]:
    """An engine for one generation payload, warmed and query-ready.

    Tries the persisted index first (memory-mapped, shared page
    cache); any load or fingerprint problem falls back to building the
    artifacts from the payload graph, so a swap completes even when
    the index file was corrupted between the parent writing it and
    this worker reading it.
    """
    import importlib

    from repro.engine.engine import SimilarityEngine
    from repro.index.artifacts import (
        IndexMismatchError,
        SimilarityIndex,
    )
    from repro.index.store import IndexFormatError

    measure_module = payload.get("measure_module")
    if measure_module:
        try:
            # a custom measure registers on its module's import; the
            # built-ins load through the registry either way
            importlib.import_module(measure_module)
        except ImportError:
            pass  # engine construction reports the unknown measure
    graph = graph_from_payload(payload)
    config = payload["config"]
    index_path = payload.get("index_path")
    engine = None
    info = {"adopted": False, "rebuilt": False}
    if index_path:
        try:
            index = SimilarityIndex.load(index_path, mmap=True)
            engine = SimilarityEngine.from_index(index, graph, config)
            info["adopted"] = True
        except (IndexFormatError, IndexMismatchError, OSError):
            engine = None
    if engine is None:
        engine = SimilarityEngine(graph, config)
        info["rebuilt"] = True
    _warm_engine(engine)
    return engine, info


def worker_main(conn) -> None:
    """The worker process entry point: serve requests until ``stop``.

    Runs forever on ``conn``; any exception inside one request is
    reported back as that request's error reply and the loop survives.
    ``SIGINT`` is ignored — an operator's Ctrl-C on the parent must
    shut workers down through the pool's ``stop`` message, not race
    it with a signal.

    The loop only touches ``conn`` — the protocol is testable
    in-process over a pipe (no fork required):

    >>> import threading
    >>> from multiprocessing import Pipe
    >>> from repro.cluster import worker_main
    >>> parent_end, worker_end = Pipe()
    >>> thread = threading.Thread(
    ...     target=worker_main, args=(worker_end,))
    >>> thread.start()
    >>> parent_end.send(("status", 1))
    >>> kind, job, info = parent_end.recv()
    >>> kind, info["generations"], info["columns_served"]
    ('status', [], 0)
    >>> parent_end.send(("stop",)); thread.join()
    """
    from time import perf_counter

    from repro.obs import MetricsRegistry

    if threading.current_thread() is threading.main_thread():
        # ignore Ctrl-C so the pool's stop message drives shutdown
        # (signal handlers may only be installed from the main thread,
        # and in-process/test harnesses run this loop on a thread)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    engines: dict[int, Any] = {}
    current_seq = -1
    prepare_rebuilds = 0
    delta_prepares = 0
    columns_served = 0
    # the worker's own registry: cumulative counters shipped whole on
    # every status ping, merged parent-side with replacement semantics
    registry = MetricsRegistry()
    m_shards = registry.counter(
        "repro_worker_shards_total",
        "Column shards this worker served.",
    )
    m_columns = registry.counter(
        "repro_worker_columns_served_total",
        "Query columns this worker computed for shards.",
    )
    m_compute = registry.histogram(
        "repro_worker_compute_seconds",
        "Worker-side blocked column-walk time per shard.",
    )
    registry.counter_fn(
        "repro_worker_prepare_rebuilds_total",
        "Generations this worker rebuilt instead of adopting.",
        lambda: prepare_rebuilds,
    )
    registry.counter_fn(
        "repro_worker_delta_prepares_total",
        "Generations this worker spliced from a delta segment.",
        lambda: delta_prepares,
    )
    registry.gauge_fn(
        "repro_worker_generations",
        "Engine generations this worker currently holds.",
        lambda: len(engines),
    )
    registry.gauge_fn(
        "repro_worker_engine_column_hits",
        "Column-memo hits summed over this worker's live engines.",
        lambda: sum(e.stats.hits for e in engines.values()),
    )
    registry.gauge_fn(
        "repro_worker_engine_column_misses",
        "Column-memo misses summed over this worker's live engines.",
        lambda: sum(e.stats.misses for e in engines.values()),
    )
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return  # parent is gone; nothing left to serve
        kind = message[0]
        if kind == "stop":
            return
        if kind == "prepare":
            _, seq, payload = message
            try:
                if payload.get("kind") == "delta":
                    engine, info = _build_engine_delta(
                        payload, engines
                    )
                else:
                    engine, info = _build_engine(payload)
            except Exception as exc:  # noqa: BLE001 - reported upward
                conn.send(("prepare_failed", seq, repr(exc)))
                continue
            engines[seq] = engine
            if info["rebuilt"]:
                prepare_rebuilds += 1
            if info.get("delta"):
                delta_prepares += 1
            conn.send(("prepared", seq, info))
        elif kind == "commit":
            current_seq = max(current_seq, message[1])
        elif kind == "release":
            engines.pop(message[1], None)
        elif kind == "columns":
            _, job, seq, ids, *extra = message
            request_meta = extra[0] if extra else None
            engine = engines.get(seq)
            if engine is None:
                conn.send(
                    ("error", job,
                     f"worker holds no generation {seq} "
                     f"(live: {sorted(engines)})")
                )
                continue
            try:
                t0 = perf_counter()
                columns = engine.columns(ids)
                compute_s = perf_counter() - t0
                # plain-dict copy: Connection.send pickles, and the
                # memo's read-only views pickle as owned arrays
                payload = {
                    int(q): np.asarray(col)
                    for q, col in columns.items()
                }
                m_shards.inc()
                m_columns.inc(len(ids))
                m_compute.observe(compute_s)
                if request_meta is None:
                    conn.send(("columns", job, payload))
                else:
                    conn.send(
                        ("columns", job, payload, {
                            "pid": os.getpid(),
                            "compute_seconds": compute_s,
                            "trace_ids": request_meta.get(
                                "trace_ids", []
                            ),
                        })
                    )
                columns_served += len(ids)
            except Exception as exc:  # noqa: BLE001 - reported upward
                conn.send(("error", job, repr(exc)))
        elif kind == "status":
            job = message[1]
            conn.send(
                ("status", job, {
                    "pid": os.getpid(),
                    "current_seq": current_seq,
                    "generations": sorted(engines),
                    "columns_served": columns_served,
                    "prepare_rebuilds": prepare_rebuilds,
                    "delta_prepares": delta_prepares,
                    "metrics": registry.snapshot(),
                })
            )
        else:  # unknown message: answer nothing it could hang on
            continue
