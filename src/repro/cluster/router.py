"""`ShardRouter` — split micro-batches into per-worker column shards.

The router is the parent-side query plane of :mod:`repro.cluster`:
the broker hands it one coalesced micro-batch of resolved query ids,
it splits them into up to K contiguous shards, dispatches each shard
to its worker concurrently (one thread per shard — the *workers* do
the math, the threads only move pickles), and merges the per-shard
column dicts in arrival order. This is exactly the shape single-source
SimRank-family evaluation shards into: every query column is an
independent solve, so the split needs no coordination beyond the merge.

The router also owns the *pinning* discipline that makes hot-swaps
safe under concurrency: :meth:`pin` atomically reads the current
snapshot and counts the batch in-flight against its generation, and
:meth:`post_swap` retires old generations, releasing each one to the
workers only once its in-flight count drains to zero. A batch
therefore always computes against the exact generation it pinned —
never a mix, never a dropped request.

Worker death is handled below the caller's line of sight: a shard
whose worker died (or hung past the pool's ``shard_timeout``) respawns
the worker — replaying every live generation — and retries, up to
``max_retries`` per shard. Repeated failures trip that worker's
circuit breaker (a :class:`~repro.serve.guard.BreakerBoard`): while
open, shards bound for it are served by an in-process fallback engine
(the parent's own pinned snapshot) instead of queueing behind a sick
process, and a half-open probe after the cooldown restores it.
"""

from __future__ import annotations

import os
import shutil
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.cluster.pool import ClusterError, WorkerCrash, WorkerPool

__all__ = ["ShardRouter"]


class ShardRouter:
    """Route coalesced batches across a :class:`WorkerPool`.

    Parameters
    ----------
    pool:
        The worker pool that owns the processes and generations.
    snapshots:
        The parent :class:`~repro.serve.SnapshotManager`; its
        ``current`` snapshot is what :meth:`pin` pins, and its
        hot-swap hooks should point at :meth:`pre_swap` /
        :meth:`post_swap`.
    max_retries:
        Dispatch attempts per shard beyond the first (each retry
        respawns the shard's worker first).
    worker_topk:
        When true (default), the broker may route ``top_k`` /
        ``score`` batches through :meth:`compute_tasks` — selection
        runs worker-side and only ``(k, B)`` ids+scores cross the
        pipe instead of full ``(n, B)`` column blocks.
    obs:
        Optional :class:`~repro.obs.Observability`; when set, each
        shard's round-trip is observed into the
        ``repro_shard_dispatch_seconds{worker=...}`` histogram and
        :meth:`collect_worker_metrics` merges worker-side metric
        snapshots into its registry.

    Construction is inert (the doctest never forks):

    >>> from repro.cluster import ShardRouter, WorkerPool
    >>> from repro.graph import figure1_citation_graph
    >>> from repro.serve import SnapshotManager
    >>> router = ShardRouter(
    ...     WorkerPool(workers=2),
    ...     SnapshotManager(figure1_citation_graph(), measure="gSR*"),
    ... )
    >>> router.started
    False
    """

    def __init__(
        self,
        pool: WorkerPool,
        snapshots,
        *,
        max_retries: int = 2,
        worker_topk: bool = True,
        obs=None,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 5.0,
    ) -> None:
        from repro.serve.guard import BreakerBoard

        self.pool = pool
        self.snapshots = snapshots
        self.max_retries = int(max_retries)
        self.worker_topk = bool(worker_topk)
        self.obs = obs
        self._lock = threading.Lock()   # pins + retirement
        self._inflight: dict[int, int] = {}
        self._retired: set[int] = set()
        self._executor: ThreadPoolExecutor | None = None
        self.batches_routed = 0
        self.shards_dispatched = 0
        self.shard_retries = 0
        #: per-worker circuit breakers around shard dispatch
        self.breakers = BreakerBoard(
            pool.size,
            threshold=breaker_threshold,
            cooldown_s=breaker_cooldown_s,
        )
        # seq -> Snapshot for every generation a batch may pin: the
        # in-process fallback engine an open breaker serves from
        self._fallback_snapshots: dict[int, object] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self.pool.started

    def start(self) -> None:
        """Start the pool on the manager's current snapshot."""
        if self.started:
            return
        snapshot = self.snapshots.current
        self.pool.start(snapshot)
        self._mirror_persist(snapshot)
        self._executor = ThreadPoolExecutor(
            max_workers=self.pool.size,
            thread_name_prefix="repro-cluster-shard",
        )

    def stop(self) -> None:
        """Stop the pool and the shard-dispatch threads (idempotent)."""
        self.pool.stop()
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None
        with self._lock:
            self._inflight.clear()
            self._retired.clear()

    # ------------------------------------------------------------------
    # snapshot pinning (the hot-swap safety contract)
    # ------------------------------------------------------------------
    def pin(self):
        """Atomically grab the current snapshot and count it in-flight.

        The read of ``snapshots.current`` and the in-flight increment
        happen under one lock — the same lock :meth:`post_swap`
        retires generations under — so a generation can never be
        released between a batch pinning it and registering itself.
        """
        with self._lock:
            snapshot = self.snapshots.current
            self._inflight[snapshot.seq] = (
                self._inflight.get(snapshot.seq, 0) + 1
            )
            self._fallback_snapshots[snapshot.seq] = snapshot
            return snapshot

    def pin_snapshot(self, snapshot):
        """Pin a *specific* snapshot (the canary green generation).

        Same in-flight accounting as :meth:`pin`, but for a snapshot
        that is deliberately not ``snapshots.current`` — blue-green
        serving reads old and new generations side by side. The
        caller must have had the generation prepared on the workers
        first (:meth:`prepare_generation`).
        """
        with self._lock:
            self._inflight[snapshot.seq] = (
                self._inflight.get(snapshot.seq, 0) + 1
            )
            self._fallback_snapshots[snapshot.seq] = snapshot
            return snapshot

    def unpin(self, seq: int) -> None:
        """Drop one in-flight count; release the gen if fully drained."""
        with self._lock:
            remaining = self._inflight.get(seq, 0) - 1
            if remaining > 0:
                self._inflight[seq] = remaining
                return
            self._inflight.pop(seq, None)
            release = seq in self._retired
            if release:
                self._retired.discard(seq)
                self._fallback_snapshots.pop(seq, None)
        if release:
            self.pool.release(seq)

    def pre_swap(self, snapshot) -> None:
        """Hot-swap phase one: all workers prepare ``snapshot``.

        Raising here aborts the swap in
        :meth:`~repro.serve.SnapshotManager.mutate` — the old
        generation keeps serving, untouched.
        """
        if self.started:
            self.pool.prepare(snapshot)
            self._mirror_persist(snapshot)

    def prepare_generation(self, snapshot) -> None:
        """Prepare a generation on the workers *without* mirroring.

        The blue-green path: the green candidate must be servable by
        every worker, but it must not touch the manager's persisted
        ``index_path`` until (unless) it is promoted — a rollback has
        to leave the on-disk index exactly as blue left it.
        """
        if self.started:
            self.pool.prepare(snapshot)
        with self._lock:
            self._fallback_snapshots[snapshot.seq] = snapshot

    def abort_prepared(self, snapshot) -> None:
        """Drop a prepared-but-rejected generation (canary rollback).

        Respects pinning: a green batch still in flight keeps its
        generation alive until its last unpin, exactly like a
        retired generation after a normal swap.
        """
        seq = snapshot.seq
        with self._lock:
            if self._inflight.get(seq, 0) > 0:
                self._retired.add(seq)  # released on last unpin
                return
            self._retired.discard(seq)
            self._fallback_snapshots.pop(seq, None)
        if self.started:
            self.pool.release(seq)

    def _mirror_persist(self, snapshot) -> None:
        """Copy the generation's index file onto the manager's
        ``index_path`` instead of letting the manager re-export.

        The pool just serialised this exact engine's artifacts into
        ``gen-<seq>.simidx``; a file copy + atomic rename is far
        cheaper than a second ``export_index().save()`` (full
        serialisation + checksums) at the end of the same mutation.
        Best-effort: on any IO error the manager's own persist path
        still runs.

        Delta snapshots are skipped: their generation file is a tiny
        chained segment, not a full index — copying it over the
        manager's base file would destroy the chain. The manager
        persists those itself (as ``.delta-<n>`` siblings of its
        ``index_path``).
        """
        if not getattr(self.pool, "persists_index", True):
            return  # thread pool: no per-generation files to mirror
        if getattr(snapshot, "delta", None) is not None:
            return
        manager = self.snapshots
        path = getattr(manager, "index_path", None)
        if path is None or not getattr(manager, "persist_index", True):
            return
        try:
            source = self.pool.generation_path(snapshot.seq)
            staging = path.with_name(path.name + ".mirror")
            shutil.copy2(source, staging)
            os.replace(staging, path)
        except OSError:
            return
        manager.mark_persisted(snapshot.engine)

    def post_swap(self, old, new) -> None:
        """Hot-swap phase two: commit ``new``, retire older gens."""
        if not self.started:
            return
        self.pool.commit(new.seq)
        to_release = []
        with self._lock:
            known = set(self._inflight) | set(self._retired)
            known.add(old.seq)
            for seq in known:
                if seq >= new.seq:
                    continue
                if self._inflight.get(seq, 0) > 0:
                    self._retired.add(seq)  # released on last unpin
                else:
                    self._retired.discard(seq)
                    self._fallback_snapshots.pop(seq, None)
                    to_release.append(seq)
        for seq in to_release:
            self.pool.release(seq)

    # ------------------------------------------------------------------
    # the query plane
    # ------------------------------------------------------------------
    def compute(
        self, seq: int, ids: list[int], meta: dict | None = None
    ) -> dict:
        """Columns for ``ids`` from generation ``seq``, shard-parallel.

        Splits the (already resolved, deduplicated) ids into
        contiguous shards over the pool's workers, dispatches them
        concurrently, and merges the results. Blocking — the broker
        calls it through an executor thread.

        ``meta`` is an optional telemetry exchange dict: its
        ``trace_ids`` entry (the batch's request trace ids) is
        forwarded to every worker, and on return its ``shards`` entry
        holds one timing dict per dispatched shard (worker index,
        worker pid, id count, round-trip seconds, worker-side compute
        seconds) — what the broker turns into per-shard trace spans.
        """
        if not self.started:
            raise ClusterError("router not started")
        distinct = list(dict.fromkeys(int(q) for q in ids))
        if not distinct:
            return {}
        shards = self._split(distinct)
        # rotate the starting worker per batch: without the offset,
        # every batch smaller than the pool (the common case under
        # steady non-bursty traffic) would land on worker 0 alone
        offset = self.batches_routed % self.pool.size
        self.batches_routed += 1
        if meta is not None:
            meta.setdefault("shards", [])
        merged: dict[int, object] = {}
        if len(shards) == 1:
            merged.update(
                self._run_shard(offset, seq, shards[0], meta)
            )
            return merged
        futures = [
            self._executor.submit(
                self._run_shard,
                (offset + i) % self.pool.size,
                seq,
                shard,
                meta,
            )
            for i, shard in enumerate(shards)
        ]
        errors = []
        for future in futures:
            try:
                merged.update(future.result())
            except Exception as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)
        if errors:
            raise ClusterError(
                f"{len(errors)} of {len(shards)} shards failed "
                f"after retries: {errors[0]}"
            ) from errors[0]
        return merged

    def _split(self, ids: list[int]) -> list[list[int]]:
        """Contiguous, balanced shards — at most one per worker.

        Never yields an empty shard, and never a shard twice another's
        width: when ``len(ids) % k`` would leave some workers with
        ``base + 1`` ids against a ``base`` of 1 (e.g. 5 ids over 4
        workers splitting 2/1/1/1), the shard count drops until widths
        are either equal or within a ``(base + 1) / base <= 1.5``
        ratio — a 3/2 split on two workers beats four workers where
        one does double duty and the batch waits on it.
        """
        k = min(self.pool.size, len(ids))
        while k > 1 and len(ids) % k and len(ids) // k < 2:
            k -= 1
        base, extra = divmod(len(ids), k)
        shards, cursor = [], 0
        for i in range(k):
            width = base + (1 if i < extra else 0)
            shards.append(ids[cursor:cursor + width])
            cursor += width
        return shards

    def compute_tasks(
        self, seq: int, tasks: list[dict], meta: dict | None = None
    ) -> list:
        """Run selection ``tasks`` shard-parallel, worker-side top-k.

        The worker-side twin of :meth:`compute`: each task
        (see :func:`repro.cluster.worker.run_tasks`) is answered with
        a compact ``("top_k", nodes, scores)`` / ``("score", value)``
        tuple — results return positionally, one per task, and full
        score columns never cross the pipe. Sharding, the round-robin
        offset, retry, and ``meta`` telemetry all match
        :meth:`compute`.
        """
        if not self.started:
            raise ClusterError("router not started")
        if not tasks:
            return []
        shards = self._split(list(tasks))
        offset = self.batches_routed % self.pool.size
        self.batches_routed += 1
        if meta is not None:
            meta.setdefault("shards", [])
        if len(shards) == 1:
            return list(
                self._run_shard(
                    offset, seq, shards[0], meta, op="tasks"
                )
            )
        futures = [
            self._executor.submit(
                self._run_shard,
                (offset + i) % self.pool.size,
                seq,
                shard,
                meta,
                op="tasks",
            )
            for i, shard in enumerate(shards)
        ]
        merged: list = []
        errors = []
        for future in futures:
            try:
                merged.extend(future.result())
            except Exception as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)
        if errors:
            raise ClusterError(
                f"{len(errors)} of {len(shards)} shards failed "
                f"after retries: {errors[0]}"
            ) from errors[0]
        return merged

    def _run_shard(
        self,
        worker_index: int,
        seq: int,
        shard: list,
        meta: dict | None = None,
        *,
        op: str = "columns",
    ):
        """One shard on one worker: breaker, respawn-and-retry, fallback."""
        with self._lock:  # shard threads run concurrently
            self.shards_dispatched += 1
        if not self.breakers.allow(worker_index):
            # circuit open: don't queue behind a sick worker — the
            # parent's own engine for this generation answers instead
            return self._fallback_shard(
                worker_index, seq, shard, meta, op=op
            )
        trace_ids = meta.get("trace_ids") if meta else None
        dispatch = (
            self.pool.shard_tasks if op == "tasks" else self.pool.shard
        )
        attempts = self.max_retries + 1
        for attempt in range(attempts):
            try:
                t0 = time.perf_counter()
                shard_meta: dict = {}
                columns = dispatch(
                    worker_index,
                    seq,
                    shard,
                    trace_ids=trace_ids,
                    meta=shard_meta,
                )
                elapsed = time.perf_counter() - t0
                self.breakers.record_success(worker_index)
                if self.obs is not None and self.obs.enabled:
                    self.obs.shard_dispatch.labels(
                        worker=str(worker_index)
                    ).observe(elapsed)
                    self.obs.transport_bytes.labels(
                        path=shard_meta.get("path", "none")
                    ).inc(shard_meta.get("payload_bytes", 0))
                if meta is not None:
                    row = {
                        "worker": worker_index,
                        "ids": len(shard),
                        "seconds": elapsed,
                        "start_s": t0,
                    }
                    if shard_meta:
                        row.update(shard_meta)
                    with self._lock:
                        meta["shards"].append(row)
                return columns
            except WorkerCrash:
                opened = self.breakers.record_failure(worker_index)
                if opened:
                    # the breaker just tripped: heal the worker now so
                    # the half-open probe after the cooldown meets a
                    # fresh process, and serve this shard in-process
                    try:
                        self.pool.respawn(worker_index)
                    except Exception:  # noqa: BLE001 - best effort
                        pass
                    return self._fallback_shard(
                        worker_index, seq, shard, meta, op=op
                    )
                if attempt == attempts - 1:
                    raise
                with self._lock:
                    self.shard_retries += 1
                self.pool.respawn(worker_index)
        raise AssertionError("unreachable")

    def _fallback_shard(
        self,
        worker_index: int,
        seq: int,
        shard: list,
        meta: dict | None = None,
        *,
        op: str = "columns",
    ):
        """Serve one shard from the parent's in-process engine.

        The open-breaker degraded mode: correctness is identical (the
        fallback engine is the exact pinned snapshot the batch would
        have computed against worker-side), only the process boundary
        and its parallelism are given up while the worker heals.
        """
        with self._lock:
            snapshot = self._fallback_snapshots.get(seq)
        if snapshot is None:
            raise WorkerCrash(
                f"worker {worker_index} circuit open and no "
                f"in-process fallback engine for generation {seq}"
            )
        self.breakers.record_fallback()
        t0 = time.perf_counter()
        if op == "tasks":
            from repro.cluster.worker import run_tasks

            result, _ = run_tasks(snapshot.engine, shard)
        else:
            columns = snapshot.engine.columns(
                [int(q) for q in shard]
            )
            result = {int(q): columns[int(q)] for q in shard}
        if meta is not None:
            row = {
                "worker": worker_index,
                "ids": len(shard),
                "seconds": time.perf_counter() - t0,
                "start_s": t0,
                "fallback": True,
            }
            with self._lock:
                meta["shards"].append(row)
        return result

    def collect_worker_metrics(self, registry) -> int:
        """Merge every worker's metric snapshot into ``registry``.

        Pings the pool; each worker that answers ships a cumulative
        snapshot of its own :class:`~repro.obs.MetricsRegistry`, which
        is merged with replacement semantics
        (:meth:`~repro.obs.MetricsRegistry.ingest`) under the source
        id ``worker-<index>`` — re-ingesting never double-counts, and
        a busy worker simply keeps its previous contribution. Returns
        how many workers were merged.
        """
        if not self.started:
            return 0
        merged = 0
        for entry in self.pool.worker_status(strip_metrics=False):
            snapshot = entry.get("metrics")
            if not snapshot:
                continue
            registry.ingest(f"worker-{entry['index']}", snapshot)
            merged += 1
        return merged

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def describe(self, ping_workers: bool = True) -> dict:
        """JSON-ready router + pool state (the ``/status`` shape)."""
        with self._lock:
            inflight = dict(self._inflight)
        out = {
            "pool": self.pool.describe(),
            "batches_routed": self.batches_routed,
            "shards_dispatched": self.shards_dispatched,
            "shard_retries": self.shard_retries,
            "inflight": inflight,
            "breaker": self.breakers.describe(),
        }
        if ping_workers and self.started:
            out["worker_status"] = self.pool.worker_status()
        return out

    def __repr__(self) -> str:
        return (
            f"ShardRouter(pool={self.pool!r}, "
            f"batches_routed={self.batches_routed})"
        )
