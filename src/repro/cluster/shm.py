"""Shared-memory result rings: the zero-copy shard transport.

The process pool's original transport pickled every ``(n, B)`` score
block through a pipe — the parent paid one full copy to serialize in
the worker, one to deserialize, and the pipe itself is a byte stream
capped at ~64 KiB per chunk.  A :class:`ResultRing` replaces that hop:
the parent preallocates one ``multiprocessing.shared_memory`` block
per worker, the worker writes score columns straight into a slot of
that block, and only a tiny descriptor (ring name, slot, tag, query
ids, shape, dtype) crosses the pipe.  The parent then wraps the slot
in a read-only numpy view — zero copies end to end.

Ring layout (per worker)::

    +-- slot 0 --------------------+-- slot 1 --------------------+
    | tag u64 | nbytes u64 | data  | tag u64 | nbytes u64 | data  |
    +------------------------------+------------------------------+

* Every write gets a fresh monotonically increasing **tag**; the slot
  is ``tag % slots``.  The tag is written into the slot header and
  echoed in the descriptor, so a parent that reads a slot after the
  worker died mid-write (or after the slot was recycled) sees a tag
  mismatch and can retry the shard elsewhere instead of consuming a
  torn block.
* With ``slots >= 2`` the worker never overwrites the block the
  parent is still rendering from the previous batch (the serial
  broker fully renders batch *N* before dispatching *N + 1*; double
  buffering covers the overlap window of the retry path).
* Blocks that do not fit (``16 + B * n * itemsize > slot_bytes``)
  fall back to the pickle path — counted, never fatal.

>>> ring = ResultRing.create(slots=2, slot_bytes=4096)
>>> import numpy as np
>>> desc = ring.write(tag=7, ids=[3, 5], columns=[np.arange(4.0), np.ones(4)])
>>> sorted(desc) == ['cols', 'dtype', 'ids', 'name', 'rows', 'slot', 'tag']
True
>>> block = ring.read(desc)
>>> block.shape, float(block[0, 2])
((2, 4), 2.0)
>>> ring.destroy()
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

try:  # pragma: no cover - import guard exercised via monkeypatching
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without shm support
    _shared_memory = None

__all__ = ["HEADER_BYTES", "RingError", "ResultRing", "ring_available"]

#: Bytes reserved at the start of every slot: tag (u64 LE) + payload
#: nbytes (u64 LE).  16 keeps the data region 16-byte aligned.
HEADER_BYTES = 16



class RingError(RuntimeError):
    """A descriptor did not match the ring (stale tag, bad bounds)."""


def ring_available() -> bool:
    """True when ``multiprocessing.shared_memory`` usably exists.

    Probes by creating (and immediately unlinking) a tiny block, so a
    platform that imports the module but cannot map ``/dev/shm`` is
    still reported as unavailable.

    >>> isinstance(ring_available(), bool)
    True
    """

    if _shared_memory is None:
        return False
    try:
        probe = _shared_memory.SharedMemory(create=True, size=16)
    except (OSError, ValueError):
        return False
    try:
        probe.close()
        probe.unlink()
    except OSError:  # pragma: no cover - probe cleanup best effort
        pass
    return True


class ResultRing:
    """One worker's shared-memory result ring (see module docstring).

    The parent calls :meth:`create` and ships :meth:`spec` to the
    worker, which calls :meth:`attach`.  Workers :meth:`write`, the
    parent :meth:`read`\\ s the echoed descriptor, and only the
    creating side may :meth:`destroy` (unlink) the block.

    >>> parent = ResultRing.create(slots=2, slot_bytes=1024)
    >>> worker = ResultRing.attach(parent.spec())
    >>> import numpy as np
    >>> desc = worker.write(tag=1, ids=[9], columns=[np.full(3, 0.5)])
    >>> parent.read(desc)[0].tolist()
    [0.5, 0.5, 0.5]
    >>> bad = dict(desc, tag=99)
    >>> try:
    ...     parent.read(bad)
    ... except RingError:
    ...     print('stale')
    stale
    >>> worker.close(); parent.destroy()
    """

    def __init__(self, shm, slots: int, slot_bytes: int, *, owner: bool):
        self._shm = shm
        self.slots = int(slots)
        self.slot_bytes = int(slot_bytes)
        self.owner = bool(owner)
        self.unlinked = False

    # -- lifecycle ----------------------------------------------------

    @classmethod
    def create(cls, *, slots: int, slot_bytes: int) -> "ResultRing":
        """Allocate a fresh ring (parent side)."""

        if _shared_memory is None:  # pragma: no cover - guarded earlier
            raise RingError("multiprocessing.shared_memory unavailable")
        if slots < 1 or slot_bytes <= HEADER_BYTES:
            raise ValueError("ring needs >= 1 slot and a non-empty payload")
        shm = _shared_memory.SharedMemory(
            create=True, size=int(slots) * int(slot_bytes)
        )
        return cls(shm, slots, slot_bytes, owner=True)

    @classmethod
    def attach(cls, spec: dict) -> "ResultRing":
        """Map an existing ring from its :meth:`spec` (worker side)."""

        if _shared_memory is None:  # pragma: no cover - guarded earlier
            raise RingError("multiprocessing.shared_memory unavailable")
        # note: on POSIX this re-registers the name with the resource
        # tracker, which workers *share* with the parent (the tracker
        # process and its fd are inherited through spawn), so the
        # duplicate registration dedupes harmlessly and exactly one
        # unregister happens — at the creator's unlink
        shm = _shared_memory.SharedMemory(name=spec["name"])
        return cls(shm, spec["slots"], spec["slot_bytes"], owner=False)

    @property
    def name(self) -> str:
        """The OS-level shared-memory segment name."""

        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Total bytes mapped by this ring."""

        return self.slots * self.slot_bytes

    def spec(self) -> dict:
        """The pickled-over-the-pipe description workers attach from."""

        return {
            "name": self.name,
            "slots": self.slots,
            "slot_bytes": self.slot_bytes,
        }

    def close(self) -> None:
        """Drop this process's mapping (no-op once views pin it).

        ``SharedMemory.close`` raises :class:`BufferError` while numpy
        views into the buffer are alive; the parent therefore parks
        superseded rings and closes them best-effort.
        """

        try:
            self._shm.close()
        except BufferError:
            pass

    def unlink(self) -> None:
        """Remove the segment name (creator only; mapping survives)."""

        if self.owner and not self.unlinked:
            self.unlinked = True
            try:
                self._shm.unlink()
            except OSError:  # pragma: no cover - already gone
                pass

    def destroy(self) -> None:
        """Unlink then close — the creator's teardown."""

        self.unlink()
        self.close()

    # -- data path ----------------------------------------------------

    def fits(self, rows: int, cols: int, dtype) -> bool:
        """Whether a ``(rows, cols)`` block of *dtype* fits one slot."""

        needed = HEADER_BYTES + rows * cols * np.dtype(dtype).itemsize
        return needed <= self.slot_bytes

    def _header(self, slot: int) -> np.ndarray:
        offset = slot * self.slot_bytes
        return np.ndarray(2, dtype="<u8", buffer=self._shm.buf, offset=offset)

    def write(self, *, tag: int, ids: Sequence[int], columns) -> dict:
        """Copy score *columns* into slot ``tag % slots``; return the
        descriptor the parent needs to :meth:`read` them back."""

        columns = [np.asarray(col) for col in columns]
        rows = len(columns)
        cols = columns[0].shape[0] if rows else 0
        dtype = columns[0].dtype if rows else np.dtype("float64")
        if not self.fits(rows, cols, dtype):
            raise RingError(
                f"block ({rows}, {cols}) {dtype} exceeds slot_bytes="
                f"{self.slot_bytes}"
            )
        slot = int(tag) % self.slots
        block = np.ndarray(
            (rows, cols),
            dtype=dtype,
            buffer=self._shm.buf,
            offset=slot * self.slot_bytes + HEADER_BYTES,
        )
        for i, col in enumerate(columns):
            block[i, :] = col
        header = self._header(slot)
        header[0] = int(tag)
        header[1] = block.nbytes
        return {
            "name": self.name,
            "slot": slot,
            "tag": int(tag),
            "ids": [int(q) for q in ids],
            "rows": rows,
            "cols": cols,
            "dtype": str(dtype),
        }

    def write_bytes(self, *, tag: int, payload: bytes) -> dict:
        """Copy an opaque *payload* (e.g. pickled worker-side top-k
        results) into slot ``tag % slots``; return its descriptor.

        The same header/tag protocol as :meth:`write` applies, so a
        torn or recycled slot is detected identically."""

        nbytes = len(payload)
        if HEADER_BYTES + nbytes > self.slot_bytes:
            raise RingError(
                f"payload of {nbytes} bytes exceeds slot_bytes="
                f"{self.slot_bytes}"
            )
        slot = int(tag) % self.slots
        start = slot * self.slot_bytes + HEADER_BYTES
        self._shm.buf[start:start + nbytes] = payload
        header = self._header(slot)
        header[0] = int(tag)
        header[1] = nbytes
        return {
            "name": self.name,
            "slot": slot,
            "tag": int(tag),
            "kind": "bytes",
            "nbytes": nbytes,
        }

    def read_bytes(self, descriptor: dict) -> bytes:
        """Validate a :meth:`write_bytes` descriptor and copy the
        payload back out (a copy, so the slot is free immediately)."""

        slot = int(descriptor["slot"])
        nbytes = int(descriptor["nbytes"])
        if descriptor.get("name", self.name) != self.name:
            raise RingError("descriptor names a different ring")
        if not 0 <= slot < self.slots:
            raise RingError(f"slot {slot} out of range (slots={self.slots})")
        if HEADER_BYTES + nbytes > self.slot_bytes:
            raise RingError("descriptor payload exceeds the slot")
        header = self._header(slot)
        if int(header[0]) != int(descriptor["tag"]):
            raise RingError(
                f"stale slot: header tag {int(header[0])} != descriptor "
                f"tag {int(descriptor['tag'])}"
            )
        if int(header[1]) != nbytes:
            raise RingError("torn write: header nbytes mismatch")
        start = slot * self.slot_bytes + HEADER_BYTES
        return bytes(self._shm.buf[start:start + nbytes])

    def read(self, descriptor: dict) -> np.ndarray:
        """Validate *descriptor* and return a read-only ``(rows, cols)``
        view into the slot.  Raises :class:`RingError` on a stale tag or
        out-of-bounds shape (torn write, recycled slot, wrong ring)."""

        slot = int(descriptor["slot"])
        rows = int(descriptor["rows"])
        cols = int(descriptor["cols"])
        dtype = np.dtype(descriptor["dtype"])
        if descriptor.get("name", self.name) != self.name:
            raise RingError("descriptor names a different ring")
        if not 0 <= slot < self.slots:
            raise RingError(f"slot {slot} out of range (slots={self.slots})")
        nbytes = rows * cols * dtype.itemsize
        if HEADER_BYTES + nbytes > self.slot_bytes:
            raise RingError("descriptor shape exceeds the slot")
        header = self._header(slot)
        if int(header[0]) != int(descriptor["tag"]):
            raise RingError(
                f"stale slot: header tag {int(header[0])} != descriptor "
                f"tag {int(descriptor['tag'])}"
            )
        if int(header[1]) != nbytes:
            raise RingError("torn write: header nbytes mismatch")
        block = np.ndarray(
            (rows, cols),
            dtype=dtype,
            buffer=self._shm.buf,
            offset=slot * self.slot_bytes + HEADER_BYTES,
        )
        block.flags.writeable = False
        return block
