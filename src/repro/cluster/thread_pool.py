"""`ThreadWorkerPool` — the in-process, zero-transport cluster backend.

The process pool pays a real transport (pickle or shared-memory ring)
because its engines live in other address spaces. But the blocked
column kernels spend their time inside scipy's sparse matmul and BLAS
— C code that can release the GIL — so a pool of *threads* over
per-thread engines sharing **one** in-process index is a viable second
backend with no transport cost at all: the "shard" call runs directly
on the router's dispatch thread and returns the engine's own arrays.

This class duck-types :class:`~repro.cluster.WorkerPool` exactly where
the router, the serving service, the observability bindings, and the
status renderer touch it: ``size`` / ``started`` / ``current_seq`` /
``_workers`` (with ``alive`` / ``respawns`` per worker), ``start`` /
``prepare`` / ``commit`` / ``release`` / ``stop``, ``shard`` /
``shard_tasks``, ``worker_status`` / ``describe`` /
``transport_stats``.  Differences are deliberate:

* ``persists_index`` is ``False`` — there is no per-generation index
  file to mirror (every worker adopts the snapshot engine's exported
  index in place, sharing its artifact arrays).
* the chaos hooks (``kill_worker`` / ``hang_worker`` /
  ``corrupt_next_reply``) *simulate* their process-backend twins at
  the dispatch contract — a "killed" worker forgets its generations
  (the next shard raises :class:`WorkerCrash` exactly like a dead
  process), a "hung" one sleeps out ``shard_timeout`` before
  crashing, a "corrupted" reply crashes immediately — so the scripted
  chaos drills run unchanged on both backends. A thread cannot
  actually be SIGKILLed, so ``kill_worker`` still refuses (with
  :class:`ClusterError`) on a pool that was never started.
* Each worker still owns a :class:`~repro.obs.MetricsRegistry` with
  the same series names as a process worker, so the
  ``repro_shard_dispatch_seconds`` vs ``repro_worker_compute_seconds``
  split — and :meth:`ShardRouter.collect_worker_metrics
  <repro.cluster.ShardRouter.collect_worker_metrics>` — work
  identically across backends.
"""

from __future__ import annotations

import os
import threading
from time import perf_counter, sleep
from typing import Any

import numpy as np

from repro.cluster.pool import ClusterError, WorkerCrash

__all__ = ["ThreadWorkerPool"]


class _ThreadWorker:
    """One thread-backend worker: a bundle of per-generation engines."""

    __slots__ = (
        "index", "engines", "registry", "m_shards", "m_columns",
        "m_compute", "shards_served", "respawns", "job_counter",
        "columns_served", "tasks_served", "transport_bytes",
        "compute_seconds", "transport_seconds", "ring_replies",
        "pickle_replies", "task_replies", "lock",
        "hang_until", "corrupt_next",
    )

    #: a thread is alive as long as the pool is — there is no real
    #: process to crash (chaos is simulated at the dispatch contract);
    #: the attribute exists because status rendering and the obs
    #: gauges read it off every worker
    alive = property(lambda self: True)

    def __init__(self, index: int) -> None:
        from repro.obs import MetricsRegistry

        self.index = index
        self.engines: dict[int, Any] = {}
        self.shards_served = 0
        self.respawns = 0
        self.job_counter = 0
        self.columns_served = 0
        self.tasks_served = 0
        self.transport_bytes = 0
        self.compute_seconds = 0.0
        self.transport_seconds = 0.0
        self.ring_replies = 0
        self.pickle_replies = 0
        self.task_replies = 0
        self.hang_until = 0.0
        self.corrupt_next = False
        self.lock = threading.Lock()
        self.registry = MetricsRegistry()
        self.m_shards = self.registry.counter(
            "repro_worker_shards_total",
            "Column shards this worker served.",
        )
        self.m_columns = self.registry.counter(
            "repro_worker_columns_served_total",
            "Query columns this worker computed for shards.",
        )
        self.m_compute = self.registry.histogram(
            "repro_worker_compute_seconds",
            "Worker-side blocked column-walk time per shard.",
        )
        self.registry.counter_fn(
            "repro_worker_tasks_total",
            "Selection tasks (worker-side top-k / score) this "
            "worker ran.",
            lambda: self.tasks_served,
        )
        self.registry.gauge_fn(
            "repro_worker_generations",
            "Engine generations this worker currently holds.",
            lambda: len(self.engines),
        )


class ThreadWorkerPool:
    """K thread-local engines over one shared in-process index.

    Drop-in alternative to :class:`~repro.cluster.WorkerPool` for the
    :class:`~repro.cluster.ShardRouter` (``backend="thread"`` on
    :class:`~repro.serve.ServingService`). ``prepare`` exports the
    snapshot engine's index once and has every worker adopt it —
    the artifact arrays are shared, only the per-engine memo state is
    private — so a generation swap is O(1) per worker and a shard
    dispatch is a plain method call on the router's shard thread.

    Construction is inert, exactly like the process pool:

    >>> from repro.cluster import ThreadWorkerPool
    >>> pool = ThreadWorkerPool(workers=4)
    >>> pool.size, pool.started, pool.backend, pool.persists_index
    (4, False, 'thread', False)
    """

    backend = "thread"
    persists_index = False

    def __init__(
        self,
        *,
        workers: int = 2,
        shard_timeout: float = 120.0,
        **_compat: Any,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.size = int(workers)
        self.shard_timeout = float(shard_timeout)
        self._workers: list[_ThreadWorker] = []
        # seq -> (exported index, graph, config): what a respawn (or a
        # late prepare) rebuilds engines from without touching the
        # snapshot manager again
        self._sources: dict[int, tuple] = {}
        self._lock = threading.Lock()
        self.current_seq = -1
        self.started = False
        self.releases = 0
        self.index_saves = 0
        self.delta_generations = 0

    # ------------------------------------------------------------------
    # lifecycle + generations
    # ------------------------------------------------------------------
    def start(self, snapshot) -> None:
        """Create the workers, primed with ``snapshot`` as gen 0."""
        if self.started:
            raise ClusterError("pool already started")
        self._workers = [_ThreadWorker(i) for i in range(self.size)]
        self.started = True
        self.prepare(snapshot)
        self.commit(snapshot.seq)

    def stop(self, timeout: float = 10.0) -> None:
        """Drop every engine (idempotent; threads die with the pool)."""
        if not self.started:
            return
        self.started = False
        for worker in self._workers:
            worker.engines.clear()
        with self._lock:
            self._sources.clear()
        self.current_seq = -1

    def prepare(self, snapshot) -> list[dict]:
        """Phase one: every worker adopts ``snapshot``'s index.

        The export is computed once; each worker's
        ``SimilarityEngine.from_index`` adoption shares the artifact
        arrays (transition CSR, factors, walk segments) and keeps only
        the column memo private — the per-thread engines over one
        in-process index the backend exists for.
        """
        if not self.started:
            return []
        from repro.engine.engine import SimilarityEngine

        index = snapshot.engine.export_index()
        graph = snapshot.graph
        config = snapshot.engine.config
        with self._lock:
            self._sources[snapshot.seq] = (index, graph, config)
        infos = []
        for worker in self._workers:
            engine = SimilarityEngine.from_index(index, graph, config)
            worker.engines[snapshot.seq] = engine
            infos.append(
                {"adopted": True, "rebuilt": False, "delta": False}
            )
        return infos

    def commit(self, seq: int) -> None:
        """Phase two: mark ``seq`` current (pure bookkeeping)."""
        if self.started:
            self.current_seq = max(self.current_seq, seq)

    def release(self, seq: int) -> None:
        """Drop generation ``seq`` everywhere (synchronous, cheap)."""
        with self._lock:
            dropped = self._sources.pop(seq, None) is not None
        for worker in self._workers:
            worker.engines.pop(seq, None)
        if dropped:
            self.releases += 1

    def respawn(self, worker_index: int) -> None:
        """Rebuild one worker's engines from the recorded sources."""
        if not self.started:
            raise ClusterError(
                "pool is stopped; refusing to respawn a worker"
            )
        from repro.engine.engine import SimilarityEngine

        worker = self._workers[worker_index]
        with self._lock:
            sources = dict(self._sources)
        worker.engines = {
            seq: SimilarityEngine.from_index(index, graph, config)
            for seq, (index, graph, config) in sorted(sources.items())
        }
        worker.respawns += 1

    def kill_worker(self, worker_index: int) -> int:
        """Simulate one worker's crash (chaos hook).

        A thread cannot be SIGKILLed, so the crash is simulated at
        the dispatch contract: the worker forgets every generation,
        and the next shard routed at it raises
        :class:`~repro.cluster.WorkerCrash` exactly like a dead
        process — recovered by the router's respawn-and-retry, same
        as the process backend. Refuses on a pool that was never
        started (there are no worker processes, simulated or real).
        """
        if not self.started:
            raise ClusterError(
                "thread backend has no worker processes to kill "
                "before start(); chaos drills need a started pool"
            )
        worker = self._workers[worker_index]
        worker.engines = {}
        return os.getpid()

    def hang_worker(self, worker_index: int, seconds: float) -> None:
        """Simulate one worker wedging for ``seconds`` (chaos hook).

        The next shard routed at the worker sleeps like a dispatch
        waiting on a stuck process: if the hang outlives
        ``shard_timeout`` it raises
        :class:`~repro.cluster.WorkerCrash` after the timeout (the
        process backend would have killed the worker); a shorter hang
        just delays the shard.
        """
        if not self.started:
            raise ClusterError("pool not started")
        worker = self._workers[worker_index]
        worker.hang_until = perf_counter() + float(seconds)

    def corrupt_next_reply(self, worker_index: int) -> None:
        """Poison one worker's next shard reply (chaos hook).

        The next shard raises :class:`~repro.cluster.WorkerCrash`
        immediately — the thread twin of the process backend's
        desynchronised-connection detection.
        """
        if not self.started:
            raise ClusterError("pool not started")
        self._workers[worker_index].corrupt_next = True

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _engine(self, worker: _ThreadWorker, seq: int):
        if worker.corrupt_next:
            worker.corrupt_next = False
            raise WorkerCrash(
                f"worker {worker.index} returned a corrupted reply "
                "(chaos hook): desynchronised connection"
            )
        if worker.hang_until:
            remaining = worker.hang_until - perf_counter()
            if remaining >= self.shard_timeout:
                # the process backend would wait out shard_timeout,
                # kill the worker, and declare the shard crashed
                sleep(self.shard_timeout)
                worker.hang_until = 0.0
                raise WorkerCrash(
                    f"worker {worker.index} hung past shard_timeout "
                    f"{self.shard_timeout}s (chaos hook)"
                )
            if remaining > 0:
                sleep(remaining)
            worker.hang_until = 0.0
        engine = worker.engines.get(seq)
        if engine is None:
            raise WorkerCrash(
                f"worker {worker.index} holds no generation {seq} "
                f"(live: {sorted(worker.engines)})"
            )
        return engine

    def shard(
        self,
        worker_index: int,
        seq: int,
        ids: list[int],
        *,
        trace_ids: list[str] | None = None,
        meta: dict | None = None,
    ) -> dict:
        """One column shard, computed in-place on the calling thread."""
        worker = self._workers[worker_index]
        engine = self._engine(worker, seq)
        t0 = perf_counter()
        columns = engine.columns(ids)
        compute_s = perf_counter() - t0
        payload = {
            int(q): np.asarray(col) for q, col in columns.items()
        }
        self._account(
            worker, compute_s, len(ids), 0, trace_ids, meta, "inproc"
        )
        return payload

    def shard_tasks(
        self,
        worker_index: int,
        seq: int,
        tasks: list[dict],
        *,
        trace_ids: list[str] | None = None,
        meta: dict | None = None,
    ) -> list:
        """Selection tasks, same contract as the process pool's."""
        from repro.cluster.worker import run_tasks

        worker = self._workers[worker_index]
        engine = self._engine(worker, seq)
        t0 = perf_counter()
        results, ncols = run_tasks(engine, tasks)
        compute_s = perf_counter() - t0
        with worker.lock:
            worker.tasks_served += len(tasks)
            worker.task_replies += 1
        self._account(
            worker, compute_s, ncols, 0, trace_ids, meta, "inproc"
        )
        return results

    def _account(
        self, worker, compute_s, ncols, payload_bytes, trace_ids,
        meta, path,
    ) -> None:
        with worker.lock:
            worker.shards_served += 1
            worker.columns_served += ncols
            worker.compute_seconds += compute_s
            worker.transport_bytes += payload_bytes
            worker.m_shards.inc()
            worker.m_columns.inc(ncols)
            worker.m_compute.observe(compute_s)
        if meta is not None:
            meta.update({
                "pid": os.getpid(),
                "compute_seconds": compute_s,
                "payload_bytes": payload_bytes,
                "path": path,
            })
            if trace_ids is not None:
                meta["trace_ids"] = list(trace_ids)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def worker_status(
        self,
        timeout: float = 5.0,
        busy_wait: float = 0.5,
        *,
        strip_metrics: bool = True,
    ) -> list[dict]:
        """Per-worker status, shaped like the process pool's."""
        out = []
        for worker in self._workers:
            entry = {
                "index": worker.index,
                "pid": os.getpid(),
                "alive": self.started,
                "busy": False,
                "shards_served": worker.shards_served,
                "respawns": worker.respawns,
                "current_seq": self.current_seq,
                "generations": sorted(worker.engines),
                "columns_served": worker.columns_served,
                "tasks_served": worker.tasks_served,
                "prepare_rebuilds": 0,
                "delta_prepares": 0,
                "ring": None,
                "ring_writes": 0,
                "ring_fallbacks": 0,
                "transport_bytes": worker.transport_bytes,
            }
            if not strip_metrics:
                entry["metrics"] = worker.registry.snapshot()
            out.append(entry)
        return out

    def transport_stats(self) -> dict:
        """Transport accounting — trivially all-zero: no transport."""
        return {
            "mode": "inproc",
            "ring_slots": 0,
            "ring_slot_bytes": 0,
            "ring_bytes_per_worker": 0,
            "ring_allocations": 0,
            "ring_unavailable": False,
            "ring_replies": 0,
            "pickle_replies": 0,
            "task_replies": sum(
                w.task_replies for w in self._workers
            ),
            "transport_bytes": 0,
            "compute_seconds": sum(
                w.compute_seconds for w in self._workers
            ),
            "transport_seconds": 0.0,
            "per_worker": [
                {
                    "index": w.index,
                    "ring_replies": 0,
                    "pickle_replies": 0,
                    "task_replies": w.task_replies,
                    "transport_bytes": 0,
                    "compute_seconds": w.compute_seconds,
                    "transport_seconds": 0.0,
                }
                for w in self._workers
            ],
        }

    def describe(self) -> dict:
        """JSON-ready pool state, shaped like the process pool's."""
        with self._lock:
            generations = sorted(self._sources)
        return {
            "workers": self.size,
            "backend": self.backend,
            "started": self.started,
            "current_seq": self.current_seq,
            "generations": generations,
            "delta_generations": [],
            "parked": [],
            "delta_registered": 0,
            "index_dir": None,
            "index_saves": self.index_saves,
            "releases": self.releases,
            "respawns": sum(w.respawns for w in self._workers),
            "transport": self.transport_stats(),
        }

    def __repr__(self) -> str:
        return (
            f"ThreadWorkerPool(workers={self.size}, "
            f"started={self.started}, "
            f"current_seq={self.current_seq})"
        )
