"""Summary statistics for graphs (drives the Figure 5 dataset table)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import DiGraph

__all__ = ["GraphStats", "degree_histogram", "graph_stats"]


@dataclass(frozen=True)
class GraphStats:
    """The quantities the paper's Figure 5 reports per dataset."""

    num_nodes: int
    num_edges: int
    density: float  # |E| / |V|, the paper's "Density" column
    max_in_degree: int
    max_out_degree: int
    mean_in_degree: float
    num_sources: int  # nodes with no in-edges (zero SimRank rows)
    num_sinks: int  # nodes with no out-edges
    is_symmetric: bool  # True for undirected datasets such as DBLP

    def as_row(self) -> dict:
        """Figure-5-style table row."""
        return {
            "|G|": self.num_nodes + self.num_edges,
            "|V|": self.num_nodes,
            "|E|": self.num_edges,
            "Density": round(self.density, 1),
        }


def graph_stats(graph: DiGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    in_deg = graph.in_degrees()
    out_deg = graph.out_degrees()
    n = graph.num_nodes
    return GraphStats(
        num_nodes=n,
        num_edges=graph.num_edges,
        density=graph.density,
        max_in_degree=int(in_deg.max()) if n else 0,
        max_out_degree=int(out_deg.max()) if n else 0,
        mean_in_degree=float(in_deg.mean()) if n else 0.0,
        num_sources=int((in_deg == 0).sum()),
        num_sinks=int((out_deg == 0).sum()),
        is_symmetric=graph.is_symmetric(),
    )


def degree_histogram(graph: DiGraph, direction: str = "in") -> np.ndarray:
    """Histogram ``h[d] = #nodes with degree d``.

    ``direction`` is ``"in"`` or ``"out"``.
    """
    if direction == "in":
        degrees = graph.in_degrees()
    elif direction == "out":
        degrees = graph.out_degrees()
    else:
        raise ValueError(f"direction must be 'in' or 'out', got {direction!r}")
    if len(degrees) == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(degrees)
