"""Plain-text edge-list IO.

Format: one ``u v`` pair per line (whitespace separated, ``#`` comments
allowed). An optional header line ``# nodes: N`` pins the node count so
isolated trailing nodes survive a round-trip.
"""

from __future__ import annotations

from pathlib import Path

from repro.graph.digraph import DiGraph

__all__ = ["read_edge_list", "write_edge_list"]

_NODES_HEADER = "# nodes:"


def write_edge_list(graph: DiGraph, path: str | Path) -> None:
    """Write ``graph`` to ``path`` in edge-list format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(f"{_NODES_HEADER} {graph.num_nodes}\n")
        for u, v in graph.edges():
            fh.write(f"{u} {v}\n")


def read_edge_list(path: str | Path) -> DiGraph:
    """Read a graph written by :func:`write_edge_list`.

    Files without the ``# nodes:`` header infer the node count from the
    largest id seen.
    """
    path = Path(path)
    num_nodes: int | None = None
    edges: list[tuple[int, int]] = []
    with path.open("r", encoding="utf-8") as fh:
        for line_no, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith(_NODES_HEADER):
                num_nodes = int(line[len(_NODES_HEADER):])
                continue
            if line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(
                    f"{path}:{line_no}: expected 'u v', got {line!r}"
                )
            edges.append((int(parts[0]), int(parts[1])))
    return DiGraph.from_edges(edges, num_nodes=num_nodes)
