"""A plain directed graph with dense integer node ids.

This is the single graph substrate used throughout the package. It is
deliberately minimal: nodes are the integers ``0 .. n-1``, parallel edges
collapse, and optional string labels map user-facing names to ids (the
paper's Figure 1 uses letters ``a .. k``).

The similarity algorithms consume graphs through two views:

* neighbour lists (``in_neighbors`` / ``out_neighbors``) for the
  node-at-a-time algorithms (naive SimRank, Algorithm 1 memoization);
* sparse matrices built by :mod:`repro.graph.matrices` for the
  vectorised iterations.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["DiGraph"]


class DiGraph:
    """Directed graph on nodes ``0 .. num_nodes - 1``.

    Parameters
    ----------
    num_nodes:
        Number of nodes. Must be non-negative.
    edges:
        Optional iterable of ``(u, v)`` pairs meaning an edge ``u -> v``.
        Duplicates collapse silently; self-loops are allowed (cycles are
        permitted by the paper's path definition).
    labels:
        Optional sequence of ``num_nodes`` distinct hashable labels.

    Examples
    --------
    >>> g = DiGraph(3, edges=[(0, 1), (1, 2)])
    >>> g.out_neighbors(0)
    (1,)
    >>> g.in_neighbors(2)
    (1,)
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[tuple[int, int]] = (),
        labels: Sequence | None = None,
    ) -> None:
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be >= 0, got {num_nodes}")
        self._n = int(num_nodes)
        self._out: list[set[int]] = [set() for _ in range(self._n)]
        self._in: list[set[int]] = [set() for _ in range(self._n)]
        # copy-on-write bookkeeping: None means every adjacency set is
        # privately owned; a set holds the indices this instance has
        # re-materialised since the last `copy_with_edits` share
        self._own_out: set[int] | None = None
        self._own_in: set[int] | None = None
        self._m = 0
        self._version = 0
        self._edge_arrays_cache: tuple | None = None
        self._labels: list | None = None
        self._label_to_node: dict = {}
        if labels is not None:
            self.set_labels(labels)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int]],
        num_nodes: int | None = None,
        labels: Sequence | None = None,
    ) -> "DiGraph":
        """Build a graph from integer edge pairs.

        When ``num_nodes`` is omitted it is inferred as ``max id + 1``.
        """
        edge_list = [(int(u), int(v)) for u, v in edges]
        if num_nodes is None:
            num_nodes = 1 + max(
                (max(u, v) for u, v in edge_list), default=-1
            )
        return cls(num_nodes, edges=edge_list, labels=labels)

    @classmethod
    def from_label_edges(cls, edges: Iterable[tuple]) -> "DiGraph":
        """Build a graph from labelled edge pairs, assigning dense ids.

        Node ids are assigned in first-appearance order, which keeps
        small hand-written examples (like the paper's Figure 1 graph)
        stable and readable.

        >>> g = DiGraph.from_label_edges([("a", "b"), ("b", "c")])
        >>> g.node_of("c")
        2
        """
        label_order: list = []
        seen: dict = {}
        int_edges: list[tuple[int, int]] = []
        for u, v in edges:
            for x in (u, v):
                if x not in seen:
                    seen[x] = len(label_order)
                    label_order.append(x)
            int_edges.append((seen[u], seen[v]))
        return cls(len(label_order), edges=int_edges, labels=label_order)

    def add_edge(self, u: int, v: int) -> None:
        """Insert edge ``u -> v`` (no-op if it already exists)."""
        self._check_node(u)
        self._check_node(v)
        if v not in self._out[u]:
            # inline the copy-on-write check: ``_own_out is None``
            # (this graph owns every set — the overwhelmingly common
            # case, including bulk construction) must not pay a helper
            # call per edge
            if self._own_out is not None:
                self._writable_out(u).add(v)
                self._writable_in(v).add(u)
            else:
                self._out[u].add(v)
                self._in[v].add(u)
            self._m += 1
            self._version += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Delete edge ``u -> v``; raises ``KeyError`` if absent."""
        self._check_node(u)
        self._check_node(v)
        if v not in self._out[u]:
            raise KeyError(f"edge {u} -> {v} not in graph")
        if self._own_out is not None:
            self._writable_out(u).remove(v)
            self._writable_in(v).remove(u)
        else:
            self._out[u].remove(v)
            self._in[v].remove(u)
        self._m -= 1
        self._version += 1

    def set_labels(self, labels: Sequence) -> None:
        """Attach one distinct hashable label per node."""
        labels = list(labels)
        if len(labels) != self._n:
            raise ValueError(
                f"expected {self._n} labels, got {len(labels)}"
            )
        if len(set(labels)) != len(labels):
            raise ValueError("labels must be distinct")
        self._labels = labels
        self._label_to_node = {lab: i for i, lab in enumerate(labels)}
        self._version += 1

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m``."""
        return self._m

    @property
    def version(self) -> int:
        """Monotonic mutation counter.

        Increments on every mutation (``add_edge`` / ``remove_edge`` /
        ``set_labels``), letting caching layers such as
        :class:`repro.engine.SimilarityEngine` detect that their
        precomputed artifacts describe an older graph — including
        mutations that preserve the edge count.
        """
        return self._version

    @property
    def density(self) -> float:
        """Average degree ``m / n`` (the paper's Figure 5 density)."""
        return self._m / self._n if self._n else 0.0

    @property
    def labels(self) -> list | None:
        """Node labels in id order, or ``None`` if unlabelled."""
        return list(self._labels) if self._labels is not None else None

    def nodes(self) -> range:
        """Iterate node ids ``0 .. n-1``."""
        return range(self._n)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate edges as ``(u, v)`` pairs in sorted order."""
        for u in range(self._n):
            for v in sorted(self._out[u]):
                yield (u, v)

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The edge list as ``(heads, tails)`` numpy index arrays.

        ``heads[i] -> tails[i]`` enumerates :meth:`edges` in the same
        sorted order, ready to drop into a COO constructor without a
        per-edge Python loop. The arrays are read-only and cached until
        the next mutation (keyed on :attr:`version`), so repeated
        matrix builds over an unchanged graph pay for the traversal
        once.
        """
        cache = self._edge_arrays_cache
        if cache is not None and cache[0] == self._version:
            return cache[1], cache[2]
        counts = np.fromiter(
            (len(s) for s in self._out), dtype=np.intp, count=self._n
        )
        heads = np.repeat(np.arange(self._n, dtype=np.intp), counts)
        tails = np.fromiter(
            (v for s in self._out for v in sorted(s)),
            dtype=np.intp,
            count=self._m,
        )
        heads.flags.writeable = False
        tails.flags.writeable = False
        self._edge_arrays_cache = (self._version, heads, tails)
        return heads, tails

    def has_edge(self, u: int, v: int) -> bool:
        """True iff edge ``u -> v`` exists."""
        self._check_node(u)
        self._check_node(v)
        return v in self._out[u]

    def in_neighbors(self, v: int) -> tuple[int, ...]:
        """The in-neighbour set ``I(v)`` as a sorted tuple."""
        self._check_node(v)
        return tuple(sorted(self._in[v]))

    def out_neighbors(self, v: int) -> tuple[int, ...]:
        """The out-neighbour set ``O(v)`` as a sorted tuple."""
        self._check_node(v)
        return tuple(sorted(self._out[v]))

    def in_degree(self, v: int) -> int:
        """``|I(v)|``."""
        self._check_node(v)
        return len(self._in[v])

    def out_degree(self, v: int) -> int:
        """``|O(v)|``."""
        self._check_node(v)
        return len(self._out[v])

    def in_degrees(self) -> np.ndarray:
        """All in-degrees as an ``int64`` vector."""
        return np.array([len(s) for s in self._in], dtype=np.int64)

    def out_degrees(self) -> np.ndarray:
        """All out-degrees as an ``int64`` vector."""
        return np.array([len(s) for s in self._out], dtype=np.int64)

    # ------------------------------------------------------------------
    # labels
    # ------------------------------------------------------------------
    def label_of(self, v: int):
        """Label of node ``v`` (the id itself when unlabelled)."""
        self._check_node(v)
        return self._labels[v] if self._labels is not None else v

    def node_of(self, label) -> int:
        """Node id carrying ``label``."""
        if self._labels is None:
            raise KeyError("graph has no labels")
        try:
            return self._label_to_node[label]
        except KeyError:
            raise KeyError(f"no node labelled {label!r}") from None

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "DiGraph":
        """The graph with every edge direction flipped."""
        rev = DiGraph(self._n, labels=self._labels)
        for u, v in self.edges():
            rev.add_edge(v, u)
        return rev

    def to_undirected(self) -> "DiGraph":
        """Symmetric closure: each edge doubled into both directions.

        This is how the paper treats the undirected DBLP graph — an
        undirected edge is a pair of opposing directed edges, so all
        directed-graph algorithms apply unchanged.
        """
        sym = DiGraph(self._n, labels=self._labels)
        for u, v in self.edges():
            sym.add_edge(u, v)
            sym.add_edge(v, u)
        return sym

    def copy(self) -> "DiGraph":
        """An independent structural copy."""
        return DiGraph(self._n, edges=self.edges(), labels=self._labels)

    def copy_with_edits(
        self,
        added: Iterable[tuple[int, int]] = (),
        removed: Iterable[tuple[int, int]] = (),
    ) -> "DiGraph":
        """An independent copy with an edge batch already applied.

        Unlike ``copy()`` + per-edge ``add_edge`` / ``remove_edge`` —
        which re-inserts every edge through a Python loop — this shares
        the adjacency sets copy-on-write (both graphs re-materialise a
        set only when they first mutate it, at ``O(degree)`` cost),
        applies only the ``O(delta)`` edits, and splices the cached
        :meth:`edge_arrays` with vectorised numpy surgery — the clone
        never pays an ``O(m)`` traversal or copy.

        ``added`` edges must be absent from this graph and ``removed``
        edges present (``ValueError`` / ``KeyError`` otherwise); the two
        batches must be disjoint. Duplicates within a batch collapse.
        """
        add = {(int(u), int(v)) for u, v in added}
        rem = {(int(u), int(v)) for u, v in removed}
        overlap = add & rem
        if overlap:
            u, v = next(iter(overlap))
            raise ValueError(
                f"edge {u} -> {v} appears in both added and removed"
            )
        n = self._n
        # validate both batches in bulk: bounds via one comparison per
        # batch, membership via searchsorted against the sorted edge
        # keys — the keys are reused below to splice the edge arrays,
        # so validation costs no extra O(m) pass
        add_keys = rem_keys = None
        keys = np.empty(0, dtype=np.int64)
        if n:
            heads, tails = self.edge_arrays()
            keys = heads.astype(np.int64) * n + tails.astype(np.int64)

        def _checked_keys(pairs: set, batch: str) -> np.ndarray:
            flat = np.fromiter(
                (x for uv in pairs for x in uv),
                dtype=np.int64,
                count=2 * len(pairs),
            )
            bad = flat[(flat < 0) | (flat >= n)]
            if bad.size:
                raise IndexError(
                    f"node {int(bad[0])} out of range for graph "
                    f"with {n} nodes"
                )
            pair_keys = flat[0::2] * n + flat[1::2]
            pair_keys.sort()
            pos = np.searchsorted(keys, pair_keys)
            hit = np.zeros(pair_keys.size, dtype=bool)
            in_range = pos < keys.size
            hit[in_range] = keys[pos[in_range]] == pair_keys[in_range]
            if batch == "added" and hit.any():
                key = int(pair_keys[hit][0])
                raise ValueError(
                    f"edge {key // n} -> {key % n} already in graph"
                )
            if batch == "removed" and not hit.all():
                key = int(pair_keys[~hit][0])
                raise KeyError(
                    f"edge {key // n} -> {key % n} not in graph"
                )
            return pair_keys

        if add:
            add_keys = _checked_keys(add, "added")
        if rem:
            rem_keys = _checked_keys(rem, "removed")

        clone = DiGraph.__new__(DiGraph)
        clone._n = self._n
        # share the adjacency sets copy-on-write: after this point
        # neither graph owns any set (a list of references is O(n)
        # pointers, not O(m) elements); the first in-place mutation of
        # a set on either side re-materialises just that set
        clone._out = list(self._out)
        clone._in = list(self._in)
        if self._own_out is None:
            self._own_out = set()
            self._own_in = set()
        else:
            self._own_out.clear()
            self._own_in.clear()
        clone._own_out = set()
        clone._own_in = set()
        clone._m = self._m + len(add) - len(rem)
        clone._version = 0
        clone._labels = (
            list(self._labels) if self._labels is not None else None
        )
        clone._label_to_node = dict(self._label_to_node)
        own_out, out = clone._own_out, clone._out
        own_in, inn = clone._own_in, clone._in
        for u, v in add:
            s = out[u]
            if u not in own_out:
                s = out[u] = set(s)
                own_out.add(u)
            s.add(v)
            s = inn[v]
            if v not in own_in:
                s = inn[v] = set(s)
                own_in.add(v)
            s.add(u)
        for u, v in rem:
            s = out[u]
            if u not in own_out:
                s = out[u] = set(s)
                own_out.add(u)
            s.remove(v)
            s = inn[v]
            if v not in own_in:
                s = inn[v] = set(s)
                own_in.add(v)
            s.remove(u)

        # Splice the sorted (head, tail) arrays instead of re-deriving
        # them: the validated keys encode pairs as head * n + tail
        # (monotone in the edge sort order) — delete removed keys,
        # insert added keys.
        if n:
            if rem_keys is not None:
                keep = np.ones(keys.size, dtype=bool)
                keep[np.searchsorted(keys, rem_keys)] = False
                keys = keys[keep]
            if add_keys is not None:
                keys = np.insert(
                    keys, np.searchsorted(keys, add_keys), add_keys
                )
            new_heads = (keys // n).astype(np.intp)
            new_tails = (keys % n).astype(np.intp)
        else:
            new_heads = np.empty(0, dtype=np.intp)
            new_tails = np.empty(0, dtype=np.intp)
        new_heads.flags.writeable = False
        new_tails.flags.writeable = False
        clone._edge_arrays_cache = (clone._version, new_heads, new_tails)
        return clone

    def is_symmetric(self) -> bool:
        """True iff every edge has its reverse (i.e. undirected)."""
        return all(u in self._out[v] for u, v in self.edges())

    def has_self_loops(self) -> bool:
        """True iff some node links to itself."""
        return any(v in self._out[v] for v in range(self._n))

    def sources(self) -> list[int]:
        """Nodes with no in-edges (``I(v) = {}``) — zero SimRank rows."""
        return [v for v in range(self._n) if not self._in[v]]

    def sinks(self) -> list[int]:
        """Nodes with no out-edges (``O(v) = {}``)."""
        return [v for v in range(self._n) if not self._out[v]]

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self._n == other._n
            and self._out == other._out
            and self._labels == other._labels
        )

    def __hash__(self):  # mutable container
        raise TypeError("DiGraph is unhashable (mutable)")

    def __repr__(self) -> str:
        return f"DiGraph(n={self._n}, m={self._m})"

    # ------------------------------------------------------------------
    # internal
    # ------------------------------------------------------------------
    def _check_node(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise IndexError(
                f"node {v} out of range for graph with {self._n} nodes"
            )

    def _writable_out(self, u: int) -> set:
        own = self._own_out
        if own is not None and u not in own:
            self._out[u] = set(self._out[u])
            own.add(u)
        return self._out[u]

    def _writable_in(self, v: int) -> set:
        own = self._own_in
        if own is not None and v not in own:
            self._in[v] = set(self._in[v])
            own.add(v)
        return self._in[v]
