"""Sparse linear-algebra views of a :class:`~repro.graph.DiGraph`.

Matrix conventions follow the paper (Section 2):

* ``A`` — adjacency matrix, ``[A]_{ij} = 1`` iff there is an edge
  ``i -> j``.
* ``Q`` — *backward* transition matrix, the row-normalised ``A^T``:
  ``[Q]_{ij} = 1 / |I(i)|`` iff there is an edge ``j -> i``. Rows of
  nodes with no in-edges are all zero.
* ``W`` — *forward* transition matrix, the row-normalised ``A`` used by
  RWR / Personalized PageRank: ``[W]_{ij} = 1 / |O(i)|`` iff ``i -> j``.

All builders return ``scipy.sparse.csr_array``, assembled from the
graph's cached :meth:`~repro.graph.DiGraph.edge_arrays` (no per-edge
Python loop). ``dtype`` defaults to ``float64``; pass ``float32`` to
halve the memory footprint of the serving kernels.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.digraph import DiGraph

__all__ = [
    "adjacency_matrix",
    "backward_transition_matrix",
    "forward_transition_matrix",
    "row_normalize",
    "transition_pair",
]


def adjacency_matrix(
    graph: DiGraph, dtype: np.dtype | str = np.float64
) -> sp.csr_array:
    """The 0/1 adjacency matrix ``A`` with ``[A]_{ij} = 1`` iff ``i -> j``."""
    n = graph.num_nodes
    heads, tails = graph.edge_arrays()
    data = np.ones(heads.size, dtype=np.dtype(dtype))
    return sp.csr_array((data, (heads, tails)), shape=(n, n))


def row_normalize(matrix: sp.sparray) -> sp.csr_array:
    """Divide each row by its sum; all-zero rows stay zero.

    The zero-row convention matches the paper's handling of nodes with
    no in-neighbours: SimRank (and SimRank*) propagate nothing *into*
    such nodes, which the zero row of ``Q`` encodes exactly. The input
    dtype is preserved for floating matrices (integer input promotes
    to ``float64``).
    """
    dtype = (
        matrix.dtype
        if np.issubdtype(matrix.dtype, np.floating)
        else np.float64
    )
    csr = sp.csr_array(matrix, dtype=dtype, copy=True)
    row_sums = np.asarray(csr.sum(axis=1)).ravel()
    scale = np.divide(
        1.0,
        row_sums,
        out=np.zeros_like(row_sums),
        where=row_sums != 0,
    )
    diag = sp.dia_array(
        (scale[np.newaxis, :], [0]), shape=(len(scale), len(scale))
    )
    out = sp.csr_array(diag @ csr, dtype=dtype)
    # the dia @ csr product leaves column indices unsorted within a
    # row; canonicalise so every build of the same matrix is
    # byte-identical — the contract delta application (CSR row
    # surgery against sorted rows) and artifact checksums rely on
    out.sort_indices()
    return out


def backward_transition_matrix(
    graph: DiGraph, dtype: np.dtype | str = np.float64
) -> sp.csr_array:
    """The paper's ``Q``: row-normalised transpose of the adjacency.

    ``[Q]_{ij} = 1 / |I(i)|`` when ``j in I(i)``, else 0.
    """
    return row_normalize(adjacency_matrix(graph, dtype=dtype).T)


def transition_pair(
    graph: DiGraph, dtype: np.dtype | str = np.float64
) -> tuple[sp.csr_array, sp.csr_array]:
    """``(Q, Q^T)`` both in CSR form, from one adjacency assembly.

    The serving kernels consume the pair together (backward pass over
    ``Q^T``, Horner sweep over ``Q``), so the engine's caches and the
    :mod:`repro.index` artifact layer both build them through this one
    function.
    """
    q = backward_transition_matrix(graph, dtype=dtype)
    return q, q.T.tocsr()


def forward_transition_matrix(
    graph: DiGraph, dtype: np.dtype | str = np.float64
) -> sp.csr_array:
    """The RWR transition ``W``: row-normalised adjacency.

    ``[W]_{ij} = 1 / |O(i)|`` when ``j in O(i)``, else 0.
    """
    return row_normalize(adjacency_matrix(graph, dtype=dtype))
