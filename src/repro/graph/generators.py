"""Graph generators: synthetic models and the paper's worked examples.

The synthetic generators stand in for GTgraph (the paper's synthetic
workload tool) and are controlled by the same knobs — node count and
edge count. All randomised generators take an integer ``seed`` and are
bit-for-bit reproducible.

Two hand-built graphs reproduce the paper's figures exactly:

* :func:`figure1_citation_graph` — the 11-node citation graph of
  Figure 1 (nodes ``a .. k``). The edge set is reconstructed from the
  paths, bicliques, and bigraph structure quoted in the text, and the
  reconstruction is validated by the paper's own numbers: the induced
  bigraph has 18 edges, contains the bicliques ``({b,d}, {c,g,i})`` and
  ``({e,j,k}, {h,i})``, and edge concentration shrinks it to 16 edges.
* :func:`family_tree` — the Figure 3 family tree used to motivate the
  binomial symmetry weights.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph

__all__ = [
    "citation_dag",
    "complete_digraph",
    "cycle_graph",
    "erdos_renyi",
    "family_tree",
    "figure1_citation_graph",
    "path_graph",
    "random_digraph",
    "rmat",
    "star_graph",
    "two_ray_path",
]

# Figure 1 edge set, reconstructed from the text (see module docstring).
_FIGURE1_EDGES = [
    ("a", "b"),
    ("a", "d"),
    ("a", "e"),
    ("b", "c"),
    ("b", "f"),
    ("b", "g"),
    ("b", "i"),
    ("d", "c"),
    ("d", "g"),
    ("d", "i"),
    ("e", "h"),
    ("e", "i"),
    ("f", "d"),
    ("h", "i"),
    ("j", "h"),
    ("j", "i"),
    ("k", "h"),
    ("k", "i"),
]


def figure1_citation_graph() -> DiGraph:
    """The 11-node citation graph of the paper's Figure 1.

    Nodes are labelled ``a .. k``; an edge ``u -> v`` means "paper u
    cites paper v" (so ``v`` has an in-link from ``u``).
    """
    graph = DiGraph.from_label_edges(_FIGURE1_EDGES)
    # Label 'c' .. 'k' appear as edge endpoints, so all 11 nodes exist.
    assert graph.num_nodes == 11 and graph.num_edges == 18
    return graph


def family_tree() -> DiGraph:
    """The Figure 3 family tree (edges point parent -> child).

    Used to illustrate that more symmetric in-link paths (Me–Cousin,
    common source Grandpa in the centre) deserve larger weights than
    less symmetric ones (Uncle–Son) or one-directional ones
    (Grandpa–Grandson).
    """
    return DiGraph.from_label_edges(
        [
            ("Grandpa", "Father"),
            ("Grandpa", "Uncle"),
            ("Father", "Me"),
            ("Uncle", "Cousin"),
            ("Me", "Son"),
            ("Son", "Grandson"),
        ]
    )


def path_graph(num_nodes: int) -> DiGraph:
    """Directed path ``0 -> 1 -> ... -> n-1``."""
    return DiGraph(
        num_nodes, edges=[(i, i + 1) for i in range(num_nodes - 1)]
    )


def two_ray_path(ray_length: int) -> DiGraph:
    """The paper's path example ``a_{-n} <- ... <- a_0 -> ... -> a_n``.

    Node ``0`` is the common root; nodes ``1 .. n`` form the right ray
    and ``n+1 .. 2n`` the left ray. Every in-link path between a left
    node and a right node at different depths is *dissymmetric*, so
    SimRank scores vanish for all ``|i| != |j|`` while SimRank* does
    not — the motivating example of Section 1.
    """
    if ray_length < 1:
        raise ValueError("ray_length must be >= 1")
    graph = DiGraph(2 * ray_length + 1)
    graph.add_edge(0, 1)
    graph.add_edge(0, ray_length + 1)
    for i in range(1, ray_length):
        graph.add_edge(i, i + 1)
        graph.add_edge(ray_length + i, ray_length + i + 1)
    return graph


def star_graph(num_nodes: int, inward: bool = False) -> DiGraph:
    """Star with hub ``0``; edges hub->leaf, or leaf->hub if ``inward``."""
    if inward:
        edges = [(i, 0) for i in range(1, num_nodes)]
    else:
        edges = [(0, i) for i in range(1, num_nodes)]
    return DiGraph(num_nodes, edges=edges)


def cycle_graph(num_nodes: int) -> DiGraph:
    """Directed cycle ``0 -> 1 -> ... -> n-1 -> 0``."""
    if num_nodes < 1:
        raise ValueError("cycle needs at least one node")
    return DiGraph(
        num_nodes,
        edges=[(i, (i + 1) % num_nodes) for i in range(num_nodes)],
    )


def complete_digraph(num_nodes: int) -> DiGraph:
    """All ordered pairs ``u != v``."""
    return DiGraph(
        num_nodes,
        edges=[
            (u, v)
            for u in range(num_nodes)
            for v in range(num_nodes)
            if u != v
        ],
    )


def random_digraph(
    num_nodes: int, num_edges: int, seed: int = 0
) -> DiGraph:
    """Uniformly random simple digraph with exactly ``num_edges`` edges.

    This is the GTgraph "random" model: distinct directed edges drawn
    uniformly without self-loops.
    """
    max_edges = num_nodes * (num_nodes - 1)
    if num_edges > max_edges:
        raise ValueError(
            f"cannot place {num_edges} distinct edges in a "
            f"{num_nodes}-node simple digraph (max {max_edges})"
        )
    rng = np.random.default_rng(seed)
    chosen: set[tuple[int, int]] = set()
    # Rejection sampling is fast while the graph is sparse; fall back to
    # an explicit shuffle when the requested density is extreme.
    if num_edges <= max_edges // 2:
        while len(chosen) < num_edges:
            need = num_edges - len(chosen)
            us = rng.integers(0, num_nodes, size=2 * need + 8)
            vs = rng.integers(0, num_nodes, size=2 * need + 8)
            for u, v in zip(us, vs):
                if u != v:
                    chosen.add((int(u), int(v)))
                    if len(chosen) == num_edges:
                        break
    else:
        all_pairs = [
            (u, v)
            for u in range(num_nodes)
            for v in range(num_nodes)
            if u != v
        ]
        rng.shuffle(all_pairs)
        chosen = set(all_pairs[:num_edges])
    return DiGraph(num_nodes, edges=chosen)


def erdos_renyi(num_nodes: int, edge_prob: float, seed: int = 0) -> DiGraph:
    """G(n, p) digraph: each ordered pair is an edge with prob ``p``."""
    if not 0.0 <= edge_prob <= 1.0:
        raise ValueError("edge_prob must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    mask = rng.random((num_nodes, num_nodes)) < edge_prob
    np.fill_diagonal(mask, False)
    us, vs = np.nonzero(mask)
    return DiGraph(
        num_nodes, edges=zip(us.tolist(), vs.tolist())
    )


def rmat(
    scale: int,
    num_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> DiGraph:
    """R-MAT generator (GTgraph's power-law model; web-graph stand-in).

    Recursively drops each edge into one of four quadrants of the
    adjacency matrix with probabilities ``(a, b, c, d)`` where
    ``d = 1 - a - b - c``. Produces skewed degree distributions and
    community structure — which is what makes web graphs compress well
    under edge concentration.

    Parameters
    ----------
    scale:
        ``n = 2 ** scale`` nodes.
    num_edges:
        Number of *distinct* edges to keep (duplicates and self-loops
        are dropped, so the result may have slightly fewer).
    """
    d = 1.0 - a - b - c
    if d < 0 or min(a, b, c) < 0:
        raise ValueError("quadrant probabilities must be a distribution")
    n = 1 << scale
    rng = np.random.default_rng(seed)
    chosen: set[tuple[int, int]] = set()
    attempts = 0
    max_attempts = 50 * num_edges + 1000
    probs = np.array([a, b, c, d])
    while len(chosen) < num_edges and attempts < max_attempts:
        batch = num_edges - len(chosen)
        quadrants = rng.choice(4, size=(batch, scale), p=probs)
        row_bits = (quadrants >> 1) & 1  # quadrant 2,3 -> lower half
        col_bits = quadrants & 1  # quadrant 1,3 -> right half
        powers = 1 << np.arange(scale - 1, -1, -1)
        us = (row_bits * powers).sum(axis=1)
        vs = (col_bits * powers).sum(axis=1)
        for u, v in zip(us.tolist(), vs.tolist()):
            if u != v:
                chosen.add((u, v))
        attempts += batch
    return DiGraph(n, edges=chosen)


def citation_dag(
    num_nodes: int,
    avg_out_degree: float,
    seed: int = 0,
    preferential: bool = True,
) -> DiGraph:
    """Growing citation DAG: node ``i`` cites earlier nodes ``j < i``.

    With ``preferential=True`` targets are drawn proportionally to
    ``in_degree + 1`` (rich-get-richer), giving the heavy-tailed
    citation-count distribution of real bibliographic graphs such as
    CitHepTh and CitPatent. Acyclicity guarantees the zero-SimRank
    phenomenon is plentiful, exactly as the paper reports (95+% of
    CitHepTh pairs).
    """
    if num_nodes < 1:
        raise ValueError("need at least one node")
    rng = np.random.default_rng(seed)
    graph = DiGraph(num_nodes)
    in_deg = np.zeros(num_nodes, dtype=np.float64)
    for i in range(1, num_nodes):
        # Poisson out-degree keeps the average at avg_out_degree while
        # letting early (reference-poor) papers cite fewer works.
        k = min(int(rng.poisson(avg_out_degree)), i)
        if k == 0:
            continue
        if preferential:
            weights = in_deg[:i] + 1.0
            weights /= weights.sum()
            targets = rng.choice(i, size=k, replace=False, p=weights)
        else:
            targets = rng.choice(i, size=k, replace=False)
        for j in targets:
            graph.add_edge(i, int(j))
            in_deg[j] += 1.0
    return graph
