"""Directed-graph substrate: structure, matrices, generators, IO, statistics.

Every similarity measure in this package operates on :class:`DiGraph`,
a plain directed graph with dense integer node ids and optional labels.
The linear-algebra views (adjacency ``A``, backward transition ``Q``,
forward transition ``W``) live in :mod:`repro.graph.matrices`.
"""

from repro.graph.digraph import DiGraph
from repro.graph.matrices import (
    adjacency_matrix,
    backward_transition_matrix,
    forward_transition_matrix,
    row_normalize,
)
from repro.graph.generators import (
    citation_dag,
    complete_digraph,
    cycle_graph,
    erdos_renyi,
    family_tree,
    figure1_citation_graph,
    path_graph,
    random_digraph,
    rmat,
    star_graph,
    two_ray_path,
)
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.stats import GraphStats, degree_histogram, graph_stats

__all__ = [
    "DiGraph",
    "GraphStats",
    "adjacency_matrix",
    "backward_transition_matrix",
    "citation_dag",
    "complete_digraph",
    "cycle_graph",
    "degree_histogram",
    "erdos_renyi",
    "family_tree",
    "figure1_citation_graph",
    "forward_transition_matrix",
    "graph_stats",
    "path_graph",
    "random_digraph",
    "read_edge_list",
    "rmat",
    "row_normalize",
    "star_graph",
    "two_ray_path",
    "write_edge_list",
]
